package brace

import (
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/sim/predator"
	"github.com/bigreddata/brace/internal/sim/traffic"
)

// This file re-exports the paper's three evaluation workloads as public
// models so downstream users can run them through the Simulation API.

// FishParams configures the Couzin fish school model (App. C).
type FishParams = fish.Params

// DefaultFishParams returns the experiment calibration.
func DefaultFishParams() FishParams { return fish.DefaultParams() }

// FishModel is the fish school behavior (local effects only).
type FishModel = fish.Model

// NewFishModel builds the fish school model.
func NewFishModel(p FishParams) *FishModel { return fish.NewModel(p) }

// TrafficParams configures the MITSIM-derived traffic model (App. C).
type TrafficParams = traffic.Params

// DefaultTrafficParams returns the experiment calibration for a segment of
// the given length.
func DefaultTrafficParams(length float64) TrafficParams { return traffic.DefaultParams(length) }

// TrafficModel is the lane-changing/car-following driver behavior.
type TrafficModel = traffic.Model

// NewTrafficModel builds the traffic model.
func NewTrafficModel(p TrafficParams) *TrafficModel { return traffic.NewModel(p) }

// MITSIM is the hand-coded single-node traffic comparator used by the
// Fig. 3 and Table 2 experiments.
type MITSIM = traffic.MITSIM

// NewMITSIM builds the hand-coded traffic simulator.
func NewMITSIM(p TrafficParams, seed uint64) *MITSIM { return traffic.NewMITSIM(p, seed) }

// PredatorParams configures the predator model (App. C).
type PredatorParams = predator.Params

// DefaultPredatorParams returns the experiment calibration.
func DefaultPredatorParams() PredatorParams { return predator.DefaultParams() }

// PredatorModel is the bite/spawn predator behavior; build it inverted to
// run with local-only effects on the single-reduce dataflow (Fig. 5).
type PredatorModel = predator.Model

// NewPredatorModel builds the predator model. inverted selects the
// effect-inverted (local assignments) variant.
func NewPredatorModel(p PredatorParams, inverted bool) *PredatorModel {
	return predator.NewModel(p, inverted)
}
