package brace

import (
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/sim/epidemic"
	"github.com/bigreddata/brace/internal/sim/evacuate"
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/sim/predator"
	"github.com/bigreddata/brace/internal/sim/traffic"
)

// This file is the public surface of BRACE's workload subsystem. Every
// built-in behavior registers itself in internal/scenario; tools resolve
// workloads by name through that registry (no per-model switches), and
// the per-model constructors below remain for programmatic use.

// ScenarioSpec is one registered workload: name, description, parameter
// defaults, population builder and effect-locality flag.
type ScenarioSpec = scenario.Spec

// ScenarioConfig sizes one scenario instance; zero values select the
// spec's defaults.
type ScenarioConfig = scenario.Config

// Scenarios returns every registered workload, sorted by name.
func Scenarios() []ScenarioSpec { return scenario.All() }

// LookupScenario resolves a workload by its registry name.
func LookupScenario(name string) (ScenarioSpec, bool) { return scenario.Lookup(name) }

// ErrUnknownScenario builds the standard unknown-scenario error, listing
// the registered names.
func ErrUnknownScenario(name string) error { return scenario.ErrUnknown(name) }

// NewScenario builds a named scenario's model and population and wraps
// them in a Simulation — the one-call path from registry name to running
// engine:
//
//	sim, _ := brace.NewScenario("epidemic", brace.ScenarioConfig{Seed: 7}, brace.Config{Workers: 8})
//	_ = sim.Run(500)
func NewScenario(name string, sc ScenarioConfig, cfg Config) (*Simulation, error) {
	sp, ok := scenario.Lookup(name)
	if !ok {
		return nil, scenario.ErrUnknown(name)
	}
	// A single seed in either config drives the whole run: population
	// placement (ScenarioConfig.Seed) and tick randomness (Config.Seed)
	// default to each other so callers can set just one.
	if sc.Seed == 0 {
		sc.Seed = cfg.Seed
	}
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	m, pop, err := sp.New(sc)
	if err != nil {
		return nil, err
	}
	return New(m, pop, cfg)
}

// FishParams configures the Couzin fish school model (App. C).
type FishParams = fish.Params

// DefaultFishParams returns the experiment calibration.
func DefaultFishParams() FishParams { return fish.DefaultParams() }

// FishModel is the fish school behavior (local effects only).
type FishModel = fish.Model

// NewFishModel builds the fish school model.
func NewFishModel(p FishParams) *FishModel { return fish.NewModel(p) }

// TrafficParams configures the MITSIM-derived traffic model (App. C).
type TrafficParams = traffic.Params

// DefaultTrafficParams returns the experiment calibration for a segment of
// the given length.
func DefaultTrafficParams(length float64) TrafficParams { return traffic.DefaultParams(length) }

// TrafficModel is the lane-changing/car-following driver behavior.
type TrafficModel = traffic.Model

// NewTrafficModel builds the traffic model.
func NewTrafficModel(p TrafficParams) *TrafficModel { return traffic.NewModel(p) }

// MITSIM is the hand-coded single-node traffic comparator used by the
// Fig. 3 and Table 2 experiments.
type MITSIM = traffic.MITSIM

// NewMITSIM builds the hand-coded traffic simulator.
func NewMITSIM(p TrafficParams, seed uint64) *MITSIM { return traffic.NewMITSIM(p, seed) }

// PredatorParams configures the predator model (App. C).
type PredatorParams = predator.Params

// DefaultPredatorParams returns the experiment calibration.
func DefaultPredatorParams() PredatorParams { return predator.DefaultParams() }

// PredatorModel is the bite/spawn predator behavior; build it inverted to
// run with local-only effects on the single-reduce dataflow (Fig. 5).
type PredatorModel = predator.Model

// NewPredatorModel builds the predator model. inverted selects the
// effect-inverted (local assignments) variant.
func NewPredatorModel(p PredatorParams, inverted bool) *PredatorModel {
	return predator.NewModel(p, inverted)
}

// EpidemicParams configures the spatial SIR epidemic model.
type EpidemicParams = epidemic.Params

// DefaultEpidemicParams returns the epidemic calibration.
func DefaultEpidemicParams() EpidemicParams { return epidemic.DefaultParams() }

// EpidemicModel is the SIR epidemic behavior (local effects only):
// infection pressure spreads through the visible region as an exposure
// effect field.
type EpidemicModel = epidemic.Model

// NewEpidemicModel builds the epidemic model.
func NewEpidemicModel(p EpidemicParams) *EpidemicModel { return epidemic.NewModel(p) }

// EvacuateParams configures the crowd-evacuation model.
type EvacuateParams = evacuate.Params

// DefaultEvacuateParams returns the evacuation calibration.
func DefaultEvacuateParams() EvacuateParams { return evacuate.DefaultParams() }

// EvacuateModel is the evacuation behavior (local effects only):
// social-force repulsion plus exit seeking; evacuated agents leave the
// simulation.
type EvacuateModel = evacuate.Model

// NewEvacuateModel builds the evacuation model.
func NewEvacuateModel(p EvacuateParams) *EvacuateModel { return evacuate.NewModel(p) }
