package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExpListEnumeratesRunners(t *testing.T) {
	code, out, _ := runCLI(t, "-exp", "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"table2", "fig3", "fig8", "collocation", "scenarios"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing runner %q:\n%s", name, out)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-exp", "fig99")
	if code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(errOut, "fig99") || !strings.Contains(errOut, "table2") {
		t.Errorf("error should name the bad experiment and list alternatives:\n%s", errOut)
	}
}

func TestScenarioSweepEndToEnd(t *testing.T) {
	code, out, errOut := runCLI(t, "-exp", "scenarios")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "Scenario Sweep") {
		t.Errorf("missing sweep header:\n%s", out)
	}
	// Every registered scenario appears as a series label.
	for _, name := range []string{"epidemic", "evacuate", "fish", "predator", "predator-inv", "traffic"} {
		if !strings.Contains(out, name) {
			t.Errorf("sweep output missing scenario %q:\n%s", name, out)
		}
	}
}
