// Command experiments regenerates the paper's evaluation artifacts
// (Table 2, Figures 3–8), the reproduction's ablations, and the
// registry-driven scenario sweep, printing each in the harness's standard
// text format.
//
// Usage:
//
//	experiments [-exp all|list|<name>] [-full] [-seed N]
//
// experiments -exp list enumerates the registered runners. The default
// quick scale finishes in seconds; -full approximates the paper's problem
// sizes (minutes). Run it alone on an idle machine — the single-node
// figures measure wall-clock time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/bigreddata/brace/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all, list, or a name from -exp list")
	full := fs.Bool("full", false, "use paper-scale problem sizes (slow)")
	seed := fs.Uint64("seed", 42, "simulation seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	scale.Seed = *seed

	switch *exp {
	case "list":
		listRunners(stdout)
		return 0
	case "all":
		results, err := experiments.All(scale)
		if err != nil {
			return fail(stderr, err)
		}
		for _, r := range results {
			fmt.Fprintln(stdout, r)
		}
		return 0
	}
	runExp, err := experiments.ByName(*exp)
	if err != nil {
		return fail(stderr, err)
	}
	r, err := runExp(scale)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, r)
	return 0
}

func listRunners(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tALIASES\tTITLE")
	for _, rn := range experiments.Runners() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", rn.Name, strings.Join(rn.Aliases, ","), rn.Title)
	}
	tw.Flush()
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "experiments:", err)
	return 1
}
