// Command experiments regenerates the paper's evaluation artifacts
// (Table 2, Figures 3–8) and prints them in the harness's standard text
// format.
//
// Usage:
//
//	experiments [-exp all|table2|fig3|...|fig8] [-full] [-seed N]
//
// The default quick scale finishes in seconds; -full approximates the
// paper's problem sizes (minutes). Run it alone on an idle machine — the
// single-node figures measure wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bigreddata/brace/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table2, fig3..fig8")
	full := flag.Bool("full", false, "use paper-scale problem sizes (slow)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	scale.Seed = *seed

	if *exp == "all" {
		results, err := experiments.All(scale)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
		return
	}
	run, err := experiments.ByName(*exp)
	if err != nil {
		fatal(err)
	}
	r, err := run(scale)
	if err != nil {
		fatal(err)
	}
	fmt.Println(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
