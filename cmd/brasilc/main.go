// Command brasilc is the BRASIL compiler front end: it checks scripts,
// reports the analysis (field layout, visibility/reach, non-local effect
// classification), and shows what the optimizer does — including the
// effect-inverted form of a script and its monad-algebra translation.
//
// Usage:
//
//	brasilc school.brasil                 # check + describe
//	brasilc -invert school.brasil         # show inversion outcome
//	brasilc -monad school.brasil          # print the algebra translation
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/monad"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: parse args, compile/describe the
// script, write the report to stdout. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("brasilc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	invert := fs.Bool("invert", false, "apply effect inversion and re-describe")
	showMonad := fs.Bool("monad", false, "print the monad-algebra translation of run()")
	rewrite := fs.Bool("rewrite", false, "with -monad: print the rewritten (optimized) plan too")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: brasilc [-invert] [-monad [-rewrite]] <script.brasil>")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}

	cl, err := brasil.Parse(string(src))
	if err != nil {
		return fail(stderr, err)
	}
	ck, err := brasil.Check(cl)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprint(stdout, ck.Describe())

	wasNonLocal := ck.HasNonLocal
	if *invert {
		if !wasNonLocal {
			fmt.Fprintln(stdout, "script has only local effects; inversion is a no-op")
		} else {
			inv, err := brasil.Invert(ck)
			if err != nil {
				return fail(stderr, fmt.Errorf("not invertible: %w", err))
			}
			ck2, err := brasil.Check(inv)
			if err != nil {
				return fail(stderr, err)
			}
			fmt.Fprint(stdout, "after inversion: ", ck2.Describe())
			fmt.Fprintln(stdout, "inverted source:")
			fmt.Fprint(stdout, brasil.Format(inv))
			ck = ck2
		}
	}

	// Always confirm the script compiles to an executable plan.
	prog, err := brasil.Compile(string(src), brasil.CompileOptions{Invert: *invert && wasNonLocal})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "compiles OK: schema %s, dataflow %s\n",
		prog.Schema().Name, dataflow(prog))

	if *showMonad {
		tr := monad.NewTranslator(ck)
		expr, err := tr.TranslateRun()
		if err != nil {
			return fail(stderr, fmt.Errorf("monad translation: %w", err))
		}
		fmt.Fprintln(stdout, "monad algebra translation of run():")
		fmt.Fprintln(stdout, " ", expr)
		if *rewrite {
			fmt.Fprintln(stdout, "after algebraic rewriting:")
			fmt.Fprintln(stdout, " ", monad.Rewrite(expr))
		}
	}
	return 0
}

func dataflow(p *brasil.Program) string {
	if p.HasNonLocalEffects() {
		return "map-reduce-reduce (non-local effects)"
	}
	if p.Inverted() {
		return "map-reduce (effect-inverted)"
	}
	return "map-reduce (local effects)"
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "brasilc:", err)
	return 1
}
