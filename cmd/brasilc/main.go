// Command brasilc is the BRASIL compiler front end: it checks scripts,
// reports the analysis (field layout, visibility/reach, non-local effect
// classification), and shows what the optimizer does — including the
// effect-inverted form of a script and its monad-algebra translation.
//
// Usage:
//
//	brasilc school.brasil                 # check + describe
//	brasilc -invert school.brasil         # show inversion outcome
//	brasilc -monad school.brasil          # print the algebra translation
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/monad"
)

func main() {
	invert := flag.Bool("invert", false, "apply effect inversion and re-describe")
	showMonad := flag.Bool("monad", false, "print the monad-algebra translation of run()")
	rewrite := flag.Bool("rewrite", false, "with -monad: print the rewritten (optimized) plan too")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: brasilc [-invert] [-monad [-rewrite]] <script.brasil>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cl, err := brasil.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	ck, err := brasil.Check(cl)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ck.Describe())

	wasNonLocal := ck.HasNonLocal
	if *invert {
		if !wasNonLocal {
			fmt.Println("script has only local effects; inversion is a no-op")
		} else {
			inv, err := brasil.Invert(ck)
			if err != nil {
				fatal(fmt.Errorf("not invertible: %w", err))
			}
			ck2, err := brasil.Check(inv)
			if err != nil {
				fatal(err)
			}
			fmt.Print("after inversion: ", ck2.Describe())
			fmt.Println("inverted source:")
			fmt.Print(brasil.Format(inv))
			ck = ck2
		}
	}

	// Always confirm the script compiles to an executable plan.
	prog, err := brasil.Compile(string(src), brasil.CompileOptions{Invert: *invert && wasNonLocal})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiles OK: schema %s, dataflow %s\n",
		prog.Schema().Name, dataflow(prog))

	if *showMonad {
		tr := monad.NewTranslator(ck)
		expr, err := tr.TranslateRun()
		if err != nil {
			fatal(fmt.Errorf("monad translation: %w", err))
		}
		fmt.Println("monad algebra translation of run():")
		fmt.Println(" ", expr)
		if *rewrite {
			fmt.Println("after algebraic rewriting:")
			fmt.Println(" ", monad.Rewrite(expr))
		}
	}
}

func dataflow(p *brasil.Program) string {
	if p.HasNonLocalEffects() {
		return "map-reduce-reduce (non-local effects)"
	}
	if p.Inverted() {
		return "map-reduce (effect-inverted)"
	}
	return "map-reduce (local effects)"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brasilc:", err)
	os.Exit(1)
}
