package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// The quickstart's Fig. 2 fish behavior: valid, local effects only.
const fishSrc = `
class Fish {
  public state float x : x + vx; #range[-5,5];
  public state float y : y + vy; #range[-5,5];
  public state float vx : 0.5 * vx + avoidx / max(count, 1);
  public state float vy : 0.5 * vy + avoidy / max(count, 1);
  private effect float avoidx : sum;
  private effect float avoidy : sum;
  private effect int count : sum;

  public void run() {
    foreach (Fish p : Extent<Fish>) {
      if (p != this) {
        avoidx <- (x - p.x) / (dist(this, p) + 0.01);
        avoidy <- (y - p.y) / (dist(this, p) + 0.01);
        count <- 1;
      }
    }
  }
}
`

func writeScript(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "script.brasil")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut, "-invert") {
		t.Errorf("usage should document flags:\n%s", errOut)
	}
}

func TestNoArgsUsage(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Errorf("usage line missing:\n%s", errOut)
	}
}

func TestBadScriptPathReportsIt(t *testing.T) {
	code, _, errOut := runCLI(t, "/no/such/dir/script.brasil")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "script.brasil") {
		t.Errorf("error should name the missing path:\n%s", errOut)
	}
}

func TestValidScriptDescribesAndCompiles(t *testing.T) {
	code, out, errOut := runCLI(t, writeScript(t, fishSrc))
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "compiles OK") || !strings.Contains(out, "Fish") {
		t.Errorf("report incomplete:\n%s", out)
	}
	if !strings.Contains(out, "map-reduce (local effects)") {
		t.Errorf("dataflow classification missing:\n%s", out)
	}
}

func TestSyntaxErrorFails(t *testing.T) {
	code, _, errOut := runCLI(t, writeScript(t, "class {{{"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "brasilc:") {
		t.Errorf("error not reported:\n%s", errOut)
	}
}

func TestMonadTranslation(t *testing.T) {
	code, out, errOut := runCLI(t, "-monad", "-rewrite", writeScript(t, fishSrc))
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "monad algebra translation") || !strings.Contains(out, "algebraic rewriting") {
		t.Errorf("monad output missing:\n%s", out)
	}
}

func TestInvertLocalScriptIsNoOp(t *testing.T) {
	code, out, _ := runCLI(t, "-invert", writeScript(t, fishSrc))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "inversion is a no-op") {
		t.Errorf("no-op notice missing:\n%s", out)
	}
}
