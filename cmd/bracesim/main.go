// Command bracesim runs a behavioral simulation on the BRACE engine from
// the command line: one of the built-in models (fish, traffic, predator)
// or a BRASIL script.
//
// Usage:
//
//	bracesim -model fish -agents 10000 -ticks 500 -workers 8 -lb
//	bracesim -script school.brasil -agents 5000 -ticks 200 -workers 4
//
// It prints a metrics summary (and per-epoch load statistics with -v).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bigreddata/brace"
)

func main() {
	model := flag.String("model", "fish", "built-in model: fish, traffic, predator, predator-inv")
	script := flag.String("script", "", "path to a BRASIL script (overrides -model)")
	agents := flag.Int("agents", 5000, "number of agents (fish/predator/BRASIL)")
	length := flag.Float64("length", 20000, "segment length (traffic)")
	ticks := flag.Int("ticks", 100, "ticks to simulate")
	workers := flag.Int("workers", 4, "worker nodes")
	seed := flag.Uint64("seed", 42, "simulation seed")
	index := flag.String("index", "kd", "spatial index: kd, scan, grid")
	lb := flag.Bool("lb", false, "enable load balancing")
	vt := flag.Bool("vtime", false, "enable virtual-time cluster accounting")
	seq := flag.Bool("seq", false, "use the sequential reference engine")
	invert := flag.Bool("invert", false, "apply effect inversion to the BRASIL script")
	span := flag.Float64("span", 100, "initial placement span for BRASIL agents")
	verbose := flag.Bool("v", false, "verbose output")
	flag.Parse()

	cfg := brace.Config{
		Workers:     *workers,
		Seed:        *seed,
		LoadBalance: *lb,
		VirtualTime: *vt,
		Sequential:  *seq,
	}
	switch *index {
	case "kd":
		cfg.Index = brace.IndexKD
	case "scan":
		cfg.Index = brace.IndexScan
	case "grid":
		cfg.Index = brace.IndexGrid
	default:
		fatal(fmt.Errorf("unknown index %q", *index))
	}

	var m brace.Model
	var pop []*brace.Agent
	switch {
	case *script != "":
		src, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		prog, err := brace.CompileBRASIL(string(src), brace.CompileOptions{Invert: *invert})
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Printf("compiled %s: non-local=%v inverted=%v\n",
				*script, prog.HasNonLocalEffects(), prog.Inverted())
		}
		m = prog
		pop = brace.SeedPopulation(prog.Schema(), *agents, *seed, *span)
	case *model == "fish":
		fm := brace.NewFishModel(brace.DefaultFishParams())
		m = fm
		pop = fm.NewPopulation(*agents, *seed)
	case *model == "traffic":
		tm := brace.NewTrafficModel(brace.DefaultTrafficParams(*length))
		m = tm
		pop = tm.NewPopulation(*seed)
	case *model == "predator" || *model == "predator-inv":
		pm := brace.NewPredatorModel(brace.DefaultPredatorParams(), *model == "predator-inv")
		m = pm
		pop = pm.NewPopulation(*agents, *seed)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	sim, err := brace.New(m, pop, cfg)
	if err != nil {
		fatal(err)
	}
	if err := sim.Run(*ticks); err != nil {
		fatal(err)
	}
	fmt.Println(sim.Metrics())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bracesim:", err)
	os.Exit(1)
}
