// Command bracesim runs a behavioral simulation on the BRACE engine from
// the command line: any scenario in the registry (bracesim -model list
// enumerates them) or a BRASIL script.
//
// Usage:
//
//	bracesim -model list
//	bracesim -model fish -agents 10000 -ticks 500 -workers 8 -lb
//	bracesim -model epidemic -agents 4000 -ticks 200 -workers 4
//	bracesim -script school.brasil -agents 5000 -ticks 200 -workers 4
//
// It prints a metrics summary (and per-epoch load statistics with -v).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/bigreddata/brace"
	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/service"
	"github.com/bigreddata/brace/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: it parses args, resolves the
// scenario through the registry, runs the simulation and writes the
// metrics summary to stdout. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bracesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "fish", "scenario to run, or 'list' to enumerate the registry")
	script := fs.String("script", "", "path to a BRASIL script (overrides -model)")
	agents := fs.Int("agents", 0, "population size (0 = scenario default; traffic derives it from -extent)")
	extent := fs.Float64("extent", 0, "spatial size: segment length (traffic), world radius or room width (0 = scenario default)")
	ticks := fs.Int("ticks", 100, "ticks to simulate")
	workers := fs.Int("workers", 4, "worker nodes")
	seed := fs.Uint64("seed", 42, "simulation seed")
	index := fs.String("index", "kd", "spatial index: kd, scan, grid")
	part := fs.String("part", "strips", "partitioning: strips (1-D quantile cuts, load-balanceable), kd2d (2-D median splits)")
	lb := fs.Bool("lb", false, "enable load balancing")
	ckptEpochs := fs.Int("ckpt-epochs", 0, "coordinated checkpoint every N epochs (0 = initial checkpoint only)")
	ckptFullEvery := fs.Int("ckpt-full-every", 0, fmt.Sprintf(
		"with -distribute: every Nth checkpoint is a full keyframe, the rest ship deltas (0 = default %d, 1 = always full)",
		distrib.DefaultCheckpointFullEvery))
	heartbeat := fs.Duration("heartbeat", 0, fmt.Sprintf(
		"with -distribute: liveness ping interval; a worker silent for %d intervals is force-dropped (0 = default %v, negative = off)",
		distrib.DefaultHeartbeatMisses, distrib.DefaultHeartbeat))
	epochTimeout := fs.Duration("epoch-timeout", 0, fmt.Sprintf(
		"with -distribute: max age of an epoch barrier round before laggards are force-dropped (0 = adaptive with a %v floor, negative = off)",
		distrib.DefaultEpochTimeout))
	dialTimeout := fs.Duration("dial-timeout", 0, fmt.Sprintf(
		"with -distribute: worker dial+handshake budget (0 = default %v)", distrib.DefaultDialTimeout))
	rejoinTimeout := fs.Duration("rejoin-timeout", 0, "with -distribute: re-dial budget when re-admitting a dead worker (0 = same as -dial-timeout)")
	vt := fs.Bool("vtime", false, "enable virtual-time cluster accounting")
	seq := fs.Bool("seq", false, "use the sequential reference engine")
	invert := fs.Bool("invert", false, "apply effect inversion to the BRASIL script")
	span := fs.Float64("span", 100, "initial placement span for BRASIL agents")
	distribute := fs.String("distribute", "", "run across real worker processes: 'tcp' (requires -worker-addrs or -registry)")
	submit := fs.String("submit", "", "submit the run to a bracesimd service at this base URL (e.g. http://127.0.0.1:8080) instead of running it here")
	workerAddrs := fs.String("worker-addrs", "", "comma-separated bracesim-worker addresses for -distribute tcp")
	registry := fs.String("registry", "", "with -distribute: listen here for worker registrations (bracesim-worker -register) instead of naming every address in -worker-addrs")
	awaitWorkers := fs.Int("await-workers", 0, "with -registry: wait for this many registered workers before starting the run")
	mesh := fs.Bool("mesh", false, "with -distribute: peer-mesh data plane — workers exchange neighbor envelopes directly and only the control plane crosses the coordinator")
	verbose := fs.Bool("v", false, "verbose output")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *script == "" && *model == "list" {
		listScenarios(stdout)
		return 0
	}

	if *submit != "" {
		switch {
		case *distribute != "":
			return fail(stderr, fmt.Errorf("-distribute and -submit are mutually exclusive"))
		case *script != "":
			return fail(stderr, fmt.Errorf("-script is unsupported with -submit: the service rebuilds scenarios from the registry"))
		case *vt:
			return fail(stderr, fmt.Errorf("-vtime is unsupported with -submit: service runs measure real time"))
		}
		return submitRun(*submit, service.RunSpec{
			Scenario:            *model,
			Agents:              *agents,
			Extent:              *extent,
			Seed:                *seed,
			Ticks:               *ticks,
			Partitions:          *workers,
			Index:               *index,
			LoadBalance:         *lb,
			CheckpointEpochs:    *ckptEpochs,
			CheckpointFullEvery: *ckptFullEvery,
			Sequential:          *seq,
		}, *verbose, stdout, stderr)
	}

	if *distribute != "" {
		if *distribute != "tcp" {
			return fail(stderr, fmt.Errorf("unknown -distribute mode %q (supported: tcp)", *distribute))
		}
		switch {
		case *script != "":
			return fail(stderr, fmt.Errorf("-script is unsupported with -distribute: workers rebuild scenarios from the registry"))
		case *vt:
			return fail(stderr, fmt.Errorf("-vtime is unsupported with -distribute: distributed runs measure real time"))
		}
		o := distrib.Options{
			Addrs:       splitAddrs(*workerAddrs),
			Scenario:    *model,
			Agents:      *agents,
			Extent:      *extent,
			Seed:        *seed,
			Partitions:  *workers,
			Ticks:       *ticks,
			Index:       *index,
			Part:        *part,
			Sequential:  *seq,
			LoadBalance: *lb,
			Tunables: distrib.Tunables{
				CheckpointEveryEpochs: *ckptEpochs,
				CheckpointFullEvery:   *ckptFullEvery,
				Heartbeat:             *heartbeat,
				EpochTimeout:          *epochTimeout,
				DialTimeout:           *dialTimeout,
				RejoinTimeout:         *rejoinTimeout,
				Mesh:                  *mesh,
			},
		}
		if *registry != "" {
			rlis, err := net.Listen("tcp", *registry)
			if err != nil {
				return fail(stderr, err)
			}
			reg := distrib.NewRegistry(rlis)
			defer reg.Close()
			o.Registry = reg
			// Printed before any waiting so operators (and the process
			// tests) can point workers' -register here.
			fmt.Fprintf(stdout, "registry on %s\n", reg.Addr())
			if *awaitWorkers > 0 {
				addrs, err := reg.Await(*awaitWorkers, 60*time.Second)
				if err != nil {
					return fail(stderr, err)
				}
				o.Addrs = append(o.Addrs, addrs...)
			}
		} else if *awaitWorkers > 0 {
			return fail(stderr, fmt.Errorf("-await-workers requires -registry"))
		}
		if len(o.Addrs) == 0 {
			return fail(stderr, fmt.Errorf("-distribute tcp needs workers: -worker-addrs, or -registry with -await-workers"))
		}
		if *verbose {
			if sp, ok := brace.LookupScenario(*model); ok {
				fmt.Fprintf(stdout, "scenario %s: %s\n", sp.Name, sp.Description)
			}
			for i, addr := range o.Addrs {
				fmt.Fprintf(stdout, "worker %d @ %s: partitions %v\n",
					i, addr, transport.PartsOf(i, *workers, len(o.Addrs)))
			}
		}
		res, err := distrib.Run(o)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "distributed ticks=%d agents=%d procs=%d partitions=%d net=%dB (%d msgs) local=%dB rebalances=%d recoveries=%d stalls=%d ckpt=%dB (%d full / %d delta parts)\n",
			res.Ticks, len(res.Agents), res.Procs, *workers, res.Net.SentBytes, res.Net.SentMsgs, res.Net.LocalBytes,
			res.Rebalances, res.Recoveries, res.StallDrops, res.CheckpointBytes, res.CheckpointFullParts, res.CheckpointDeltaParts)
		if *verbose {
			for i, ep := range res.Epochs {
				fmt.Fprintf(stdout, "epoch %d: tick=%d rebalanced=%v\n", i+1, ep.Tick, ep.Rebalanced)
			}
		}
		return 0
	}

	// Distributed-only flags are meaningless on the in-process engines;
	// reject the combination like the -script/-vtime guards above instead
	// of silently ignoring an operator's liveness or checkpoint settings.
	distOnly := map[string]bool{
		"worker-addrs": true, "heartbeat": true, "epoch-timeout": true,
		"ckpt-full-every": true, "dial-timeout": true, "rejoin-timeout": true,
		"registry": true, "await-workers": true, "mesh": true,
	}
	var misused []string
	fs.Visit(func(f *flag.Flag) {
		if distOnly[f.Name] {
			misused = append(misused, "-"+f.Name)
		}
	})
	if len(misused) > 0 {
		return fail(stderr, fmt.Errorf("%s only applies with -distribute", strings.Join(misused, ", ")))
	}

	cfg := brace.Config{
		Workers:     *workers,
		Seed:        *seed,
		LoadBalance: *lb,
		Checkpoint:  *ckptEpochs,
		VirtualTime: *vt,
		Sequential:  *seq,
	}
	switch *part {
	case "", "strips":
	case "kd2d":
		if *seq {
			return fail(stderr, fmt.Errorf("-part kd2d needs the distributed engine; drop -seq"))
		}
		cfg.TwoDPartition = true
	default:
		return fail(stderr, fmt.Errorf("unknown -part %q (supported: strips, kd2d)", *part))
	}
	ix, err := brace.ParseIndex(*index)
	if err != nil {
		return fail(stderr, err)
	}
	cfg.Index = ix

	var m brace.Model
	var pop []*brace.Agent
	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			return fail(stderr, err)
		}
		prog, err := brace.CompileBRASIL(string(src), brace.CompileOptions{Invert: *invert})
		if err != nil {
			return fail(stderr, err)
		}
		if *verbose {
			fmt.Fprintf(stdout, "compiled %s: non-local=%v inverted=%v\n",
				*script, prog.HasNonLocalEffects(), prog.Inverted())
		}
		n := *agents
		if n <= 0 {
			n = 5000
		}
		m = prog
		pop = brace.SeedPopulation(prog.Schema(), n, *seed, *span)
	} else {
		sp, ok := brace.LookupScenario(*model)
		if !ok {
			return fail(stderr, brace.ErrUnknownScenario(*model))
		}
		var err error
		m, pop, err = sp.New(brace.ScenarioConfig{Agents: *agents, Seed: *seed, Extent: *extent})
		if err != nil {
			return fail(stderr, err)
		}
		if *verbose {
			fmt.Fprintf(stdout, "scenario %s: %s (%d agents)\n", sp.Name, sp.Description, len(pop))
		}
	}

	sim, err := brace.New(m, pop, cfg)
	if err != nil {
		return fail(stderr, err)
	}
	if err := sim.Run(*ticks); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, sim.Metrics())
	if *verbose {
		for i, ep := range sim.EpochStats() {
			fmt.Fprintf(stdout, "epoch %d: imbalance=%.2f rebalanced=%v\n", i+1, ep.Imbalance, ep.Rebalanced)
		}
	}
	return 0
}

// listScenarios renders the registry as a table (the README's scenario
// table mirrors this output).
func listScenarios(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tEFFECTS\tAGENTS\tDESCRIPTION")
	for _, sp := range brace.Scenarios() {
		locality := "local"
		if !sp.LocalOnly {
			locality = "non-local"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", sp.Name, locality, sp.DefaultAgents, sp.Description)
	}
	tw.Flush()
}

// submitRun is the -submit client: it POSTs the spec to a bracesimd
// service and prints the accepted run's id and state. The run proceeds on
// the service; status and observations come from GET /v1/runs/{id} and
// /v1/runs/{id}/watch.
func submitRun(base string, spec service.RunSpec, verbose bool, stdout, stderr io.Writer) int {
	body, err := json.Marshal(spec)
	if err != nil {
		return fail(stderr, err)
	}
	url := strings.TrimSuffix(base, "/") + "/v1/runs"
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fail(stderr, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return fail(stderr, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(raw))))
	}
	var st service.RunStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return fail(stderr, fmt.Errorf("bad service response: %w", err))
	}
	fmt.Fprintf(stdout, "submitted %s state=%s (status: %s/v1/runs/%s, watch: %s/v1/runs/%s/watch)\n",
		st.ID, st.State, base, st.ID, base, st.ID)
	if verbose {
		fmt.Fprintf(stdout, "%s\n", raw)
	}
	return 0
}

// splitAddrs parses the -worker-addrs list, dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "bracesim:", err)
	return 1
}
