package main

import (
	"bufio"
	"fmt"

	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/bigreddata/brace"
	"github.com/bigreddata/brace/internal/distrib"
)

// workerProcEnv makes the test binary re-exec itself as a worker daemon:
// real multi-process distribution without shelling out to the go tool.
const workerProcEnv = "BRACESIM_TEST_WORKER"

// workerRegisterEnv switches the re-exec'd worker from a single-session
// daemon to a registering multi-session one: it announces itself at the
// env value's registry address and routes peer links, which mesh runs
// need (a peer dial is a second connection to the same listener).
const workerRegisterEnv = "BRACESIM_TEST_WORKER_REGISTER"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) != "" {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening on %s\n", lis.Addr())
		if reg := os.Getenv(workerRegisterEnv); reg != "" {
			err = distrib.ServeWith(lis, distrib.ServeOptions{Log: os.Stderr, Register: reg})
		} else {
			err = distrib.Serve(lis, os.Stderr, true)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerProc is one re-exec'd worker OS process.
type workerProc struct {
	addr string
	// started closes when the daemon's session banner appears on stderr —
	// the worker is provably inside a coordinator session.
	started <-chan struct{}
	proc    *os.Process
}

// spawnWorker starts one real worker OS process and returns it once the
// daemon reports its bound port. Extra env entries select daemon modes
// (workerRegisterEnv).
func spawnWorker(t *testing.T, env ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(append(os.Environ(), workerProcEnv+"=1"), env...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	started := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(errPipe)
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line) // keep worker logs visible
			if !signaled && strings.Contains(line, "bracesim-worker: proc") {
				close(started)
				signaled = true
			}
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- ""
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			t.Fatal("worker process exited without binding")
		}
		return &workerProc{addr: a, started: started, proc: cmd.Process}
	case <-time.After(30 * time.Second):
		t.Fatal("worker process did not bind in time")
		return nil
	}
}

func spawnWorkerProc(t *testing.T) string { return spawnWorker(t).addr }

// TestDistributeTCPAcrossProcesses is the acceptance criterion end to end:
// `bracesim -distribute tcp` across two real worker OS processes
// completes, and the assembled final state is bit-identical to the
// in-memory transport at the same seed and worker count.
func TestDistributeTCPAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	addrs := spawnWorkerProc(t) + "," + spawnWorkerProc(t)
	code, out, errOut := runCLI(t,
		"-distribute", "tcp", "-worker-addrs", addrs,
		"-model", "epidemic", "-agents", "120", "-ticks", "6", "-workers", "4", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "distributed ticks=6") || !strings.Contains(out, "procs=2") {
		t.Errorf("summary line missing:\n%s", out)
	}

	// Equivalence: fresh worker processes, coordinator called directly for
	// the assembled population, compared against a pure in-memory run.
	res, err := distrib.Run(distrib.Options{
		Addrs:    []string{spawnWorkerProc(t), spawnWorkerProc(t)},
		Scenario: "epidemic",
		Agents:   120, Seed: 9,
		Partitions: 4, Ticks: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: 120, Seed: 9}, brace.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(6); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: tcp %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs across transports:\n  mem: %v\n  tcp: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
	if res.Net.SentMsgs == 0 {
		t.Error("no bytes crossed process boundaries; the run was not distributed")
	}
}

// TestDistributeTCPWorkerKillRecovery is the failure-recovery acceptance
// criterion against real OS processes: SIGKILL one re-exec'd worker
// mid-run and the coordinator must finish — re-placing the dead worker's
// partitions on the survivors from the last coordinated checkpoint — with
// final state bit-identical to an unfailed in-memory run.
func TestDistributeTCPWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills OS processes")
	}
	const (
		agents = 150
		seed   = uint64(17)
		parts  = 6
		ticks  = 400
		epoch  = 5
	)
	ws := []*workerProc{spawnWorker(t), spawnWorker(t), spawnWorker(t)}

	type outcome struct {
		res *distrib.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := distrib.Run(distrib.Options{
			Addrs:    []string{ws[0].addr, ws[1].addr, ws[2].addr},
			Scenario: "epidemic",
			Agents:   agents, Seed: seed,
			Partitions: parts, Ticks: ticks,
			Tunables: distrib.Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		})
		done <- outcome{res, err}
	}()

	// Wait until the victim is provably inside the session, then SIGKILL
	// it mid-run (400 ticks of socket round-trips take far longer than
	// the delay below).
	select {
	case <-ws[1].started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never started its session")
	}
	time.Sleep(50 * time.Millisecond)
	if err := ws[1].proc.Kill(); err != nil {
		t.Fatal(err)
	}

	var got outcome
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish after worker kill")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	res := got.res
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1 (was the worker killed too late?)", res.Recoveries)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 survivors", res.Procs)
	}

	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: agents, Seed: seed}, brace.Config{Workers: parts})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: tcp %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs after recovery:\n  mem: %v\n  tcp: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
}

// TestDistributeTCPWorkerStallRecovery is the liveness acceptance
// criterion against real OS processes: SIGSTOP (not kill) one re-exec'd
// worker mid-run. Its sockets stay open and never error — the failure
// mode that used to hang the epoch barrier forever. The coordinator's
// heartbeat must declare it dead within the detection window, recovery
// must absorb its partitions (the frozen process cannot answer the
// rejoin dial), and the final state must be bit-identical to an unfailed
// run.
func TestDistributeTCPWorkerStallRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and freezes OS processes")
	}
	const (
		agents = 150
		seed   = uint64(17)
		parts  = 6
		ticks  = 400
		epoch  = 5
	)
	ws := []*workerProc{spawnWorker(t), spawnWorker(t), spawnWorker(t)}

	type outcome struct {
		res *distrib.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := distrib.Run(distrib.Options{
			Addrs:    []string{ws[0].addr, ws[1].addr, ws[2].addr},
			Scenario: "epidemic",
			Agents:   agents, Seed: seed,
			Partitions: parts, Ticks: ticks,
			// RejoinTimeout is short because the frozen worker's kernel
			// still completes the rejoin dial's TCP handshake; only the
			// handshake timeout unmasks it.
			Tunables: distrib.Tunables{
				EpochTicks: epoch, CheckpointEveryEpochs: 1,
				Heartbeat: 100 * time.Millisecond, EpochTimeout: 30 * time.Second,
				RejoinTimeout: time.Second,
			},
		})
		done <- outcome{res, err}
	}()

	select {
	case <-ws[1].started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never started its session")
	}
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(ws[1].proc.Pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	// Cleanup SIGKILLs the stopped process, which needs no SIGCONT first.

	var got outcome
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish after worker freeze: the stall was not detected")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	res := got.res
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1 (a SIGSTOP raises no socket error)", res.StallDrops)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1 (was the worker frozen too late?)", res.Recoveries)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 survivors", res.Procs)
	}

	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: agents, Seed: seed}, brace.Config{Workers: parts})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: tcp %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs after stall recovery:\n  mem: %v\n  tcp: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
}

func TestDistributeFlagValidation(t *testing.T) {
	if code, _, errOut := runCLI(t, "-distribute", "udp"); code == 0 || !strings.Contains(errOut, "udp") {
		t.Errorf("unknown mode accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp"); code == 0 || !strings.Contains(errOut, "worker") {
		t.Errorf("missing -worker-addrs accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp", "-worker-addrs", "x", "-vtime"); code == 0 ||
		!strings.Contains(errOut, "-vtime") {
		t.Errorf("-vtime with -distribute accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp", "-worker-addrs", "x", "-script", "s.brasil"); code == 0 ||
		!strings.Contains(errOut, "registry") {
		t.Errorf("-script with -distribute accepted: %s", errOut)
	}
}

// -lb with -distribute used to be rejected ("needs a global view"); the
// coordinator control plane made it legal. The loopback path is the real
// oracle (internal/distrib); here the flag must simply reach the
// coordinator and the run must report its balancing activity.
func TestDistributeLoadBalanceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	addrs := spawnWorkerProc(t) + "," + spawnWorkerProc(t)
	code, out, errOut := runCLI(t,
		"-distribute", "tcp", "-worker-addrs", addrs, "-lb", "-ckpt-epochs", "1",
		"-ckpt-full-every", "2", "-heartbeat", "200ms", "-epoch-timeout", "30s",
		"-dial-timeout", "15s", "-rejoin-timeout", "2s",
		"-model", "epidemic", "-agents", "120", "-ticks", "8", "-workers", "4", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "rebalances=") || !strings.Contains(out, "recoveries=0") {
		t.Errorf("summary should report control-plane counters:\n%s", out)
	}
	if !strings.Contains(out, "stalls=0") || !strings.Contains(out, "ckpt=") {
		t.Errorf("summary should report liveness and checkpoint counters:\n%s", out)
	}
}

// TestDistributeTCPMeshRegistration is the tentpole's real-process
// acceptance: worker OS processes discovered through -register (no
// -worker-addrs anywhere), the data plane on direct peer links between
// them, and the assembled state bit-identical to the in-memory engine.
// Steady state must relay zero data frames through the coordinator.
func TestDistributeTCPMeshRegistration(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := distrib.NewRegistry(rlis)
	t.Cleanup(reg.Close)

	spawnWorker(t, workerRegisterEnv+"="+reg.Addr())
	spawnWorker(t, workerRegisterEnv+"="+reg.Addr())
	if _, err := reg.Await(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := distrib.Run(distrib.Options{
		Registry: reg,
		Scenario: "epidemic",
		Agents:   120, Seed: 9,
		Partitions: 4, Ticks: 6,
		Tunables: distrib.Tunables{Mesh: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 2 {
		t.Fatalf("procs = %d, want 2 discovered workers", res.Procs)
	}
	if res.RelayedDataFrames != 0 {
		t.Errorf("coordinator relayed %d data frames; a healthy mesh carries its own data plane",
			res.RelayedDataFrames)
	}

	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: 120, Seed: 9}, brace.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(6); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: mesh %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs across data planes:\n  mem: %v\n  mesh: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
}

// The same discovery path through the CLI flags: `-registry` owns the
// registry socket, `-await-workers` gates on fleet width, `-mesh` moves
// the data plane onto peer links. Workers retry their registry dial, so
// they can be spawned before the coordinator binds the socket.
func TestDistributeTCPMeshRegistrationCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	// Reserve a port for the registry, free it, and hand it to the CLI;
	// the workers' registration dials retry until the coordinator binds.
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	regAddr := rlis.Addr().String()
	rlis.Close()

	spawnWorker(t, workerRegisterEnv+"="+regAddr)
	spawnWorker(t, workerRegisterEnv+"="+regAddr)

	code, out, errOut := runCLI(t,
		"-distribute", "tcp", "-registry", regAddr, "-await-workers", "2", "-mesh",
		"-model", "epidemic", "-agents", "120", "-ticks", "6", "-workers", "4", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "registry on "+regAddr) {
		t.Errorf("registry banner missing:\n%s", out)
	}
	if !strings.Contains(out, "distributed ticks=6") || !strings.Contains(out, "procs=2") {
		t.Errorf("summary line missing:\n%s", out)
	}
}
