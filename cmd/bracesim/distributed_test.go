package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/bigreddata/brace"
	"github.com/bigreddata/brace/internal/distrib"
)

// workerProcEnv makes the test binary re-exec itself as a worker daemon:
// real multi-process distribution without shelling out to the go tool.
const workerProcEnv = "BRACESIM_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) != "" {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening on %s\n", lis.Addr())
		if err := distrib.Serve(lis, os.Stderr, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnWorkerProc starts one real worker OS process and returns its
// address once the daemon reports its bound port.
func spawnWorkerProc(t *testing.T) string {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerProcEnv+"=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- ""
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			t.Fatal("worker process exited without binding")
		}
		return a
	case <-time.After(30 * time.Second):
		t.Fatal("worker process did not bind in time")
		return ""
	}
}

// TestDistributeTCPAcrossProcesses is the acceptance criterion end to end:
// `bracesim -distribute tcp` across two real worker OS processes
// completes, and the assembled final state is bit-identical to the
// in-memory transport at the same seed and worker count.
func TestDistributeTCPAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	addrs := spawnWorkerProc(t) + "," + spawnWorkerProc(t)
	code, out, errOut := runCLI(t,
		"-distribute", "tcp", "-worker-addrs", addrs,
		"-model", "epidemic", "-agents", "120", "-ticks", "6", "-workers", "4", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "distributed ticks=6") || !strings.Contains(out, "procs=2") {
		t.Errorf("summary line missing:\n%s", out)
	}

	// Equivalence: fresh worker processes, coordinator called directly for
	// the assembled population, compared against a pure in-memory run.
	res, err := distrib.Run(distrib.Options{
		Addrs:    []string{spawnWorkerProc(t), spawnWorkerProc(t)},
		Scenario: "epidemic",
		Agents:   120, Seed: 9,
		Partitions: 4, Ticks: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: 120, Seed: 9}, brace.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(6); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: tcp %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs across transports:\n  mem: %v\n  tcp: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
	if res.Net.SentMsgs == 0 {
		t.Error("no bytes crossed process boundaries; the run was not distributed")
	}
}

func TestDistributeFlagValidation(t *testing.T) {
	if code, _, errOut := runCLI(t, "-distribute", "udp"); code == 0 || !strings.Contains(errOut, "udp") {
		t.Errorf("unknown mode accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp"); code == 0 || !strings.Contains(errOut, "worker") {
		t.Errorf("missing -worker-addrs accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp", "-worker-addrs", "x", "-lb"); code == 0 ||
		!strings.Contains(errOut, "-lb") {
		t.Errorf("-lb with -distribute accepted: %s", errOut)
	}
	if code, _, errOut := runCLI(t, "-distribute", "tcp", "-worker-addrs", "x", "-script", "s.brasil"); code == 0 ||
		!strings.Contains(errOut, "registry") {
		t.Errorf("-script with -distribute accepted: %s", errOut)
	}
}
