package main

import (
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/service"
)

// startService brings up a bracesimd-equivalent HTTP service over an
// in-process worker fleet.
func startService(t *testing.T, workers int) string {
	t.Helper()
	var addrs []string
	for i := 0; i < workers; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		addrs = append(addrs, lis.Addr().String())
		go distrib.Serve(lis, io.Discard, false)
	}
	m, err := service.NewManager(service.Config{WorkerAddrs: addrs, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.Handler(m))
	t.Cleanup(srv.Close)
	return srv.URL
}

// -submit hands the run to a service and reports the accepted id plus the
// status/watch URLs.
func TestSubmitMode(t *testing.T) {
	base := startService(t, 2)
	code, out, errOut := runCLI(t,
		"-submit", base, "-model", "epidemic", "-agents", "80", "-ticks", "10", "-workers", "2", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "submitted run-") || !strings.Contains(out, "/v1/runs/") {
		t.Errorf("submission not reported:\n%s", out)
	}
	if !strings.Contains(out, "state=running") {
		t.Errorf("accepted state missing:\n%s", out)
	}
}

// Server-side rejections surface as CLI failures, not silent exits.
func TestSubmitModeServerRejection(t *testing.T) {
	base := startService(t, 2)
	code, _, errOut := runCLI(t, "-submit", base, "-model", "epidemic", "-ticks", "0")
	if code != 1 || !strings.Contains(errOut, "ticks") {
		t.Errorf("invalid spec: exit=%d stderr:\n%s", code, errOut)
	}
	code, _, errOut = runCLI(t, "-submit", "http://127.0.0.1:1", "-model", "epidemic", "-ticks", "5")
	if code != 1 || !strings.Contains(errOut, "bracesim:") {
		t.Errorf("unreachable service: exit=%d stderr:\n%s", code, errOut)
	}
}

func TestSubmitFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"with distribute", []string{"-submit", "http://x", "-distribute", "tcp", "-worker-addrs", "a"}, "mutually exclusive"},
		{"with script", []string{"-submit", "http://x", "-script", "s.brasil"}, "registry"},
		{"with vtime", []string{"-submit", "http://x", "-vtime"}, "real time"},
	} {
		code, _, errOut := runCLI(t, tc.args...)
		if code == 0 || !strings.Contains(errOut, tc.want) {
			t.Errorf("%s: exit=%d stderr:\n%s", tc.name, code, errOut)
		}
	}
}
