package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/distrib"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestModelListEnumeratesRegistry(t *testing.T) {
	code, out, _ := runCLI(t, "-model", "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"fish", "traffic", "predator", "predator-inv", "epidemic", "evacuate"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing scenario %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "non-local") {
		t.Errorf("list output missing effect-locality column:\n%s", out)
	}
}

func TestUnknownModelFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-model", "no-such-model")
	if code == 0 {
		t.Fatal("unknown model accepted")
	}
	if !strings.Contains(errOut, "no-such-model") || !strings.Contains(errOut, "fish") {
		t.Errorf("error should name the bad model and list alternatives:\n%s", errOut)
	}
}

func TestUnknownIndexFails(t *testing.T) {
	if code, _, _ := runCLI(t, "-index", "btree", "-ticks", "1"); code == 0 {
		t.Fatal("unknown index accepted")
	}
}

// Distributed-only flags used to be silently ignored without -distribute;
// the combination is now rejected like -script/-vtime with -distribute.
func TestDistributedOnlyFlagsRequireDistribute(t *testing.T) {
	for _, args := range [][]string{
		{"-heartbeat", "1s"},
		{"-epoch-timeout", "30s"},
		{"-ckpt-full-every", "4"},
		{"-dial-timeout", "5s"},
		{"-rejoin-timeout", "5s"},
		{"-worker-addrs", "localhost:9"},
	} {
		flagName := args[0]
		args = append(args, "-model", "epidemic", "-agents", "50", "-ticks", "1")
		code, _, errOut := runCLI(t, args...)
		if code == 0 {
			t.Errorf("%s accepted without -distribute", flagName)
			continue
		}
		if !strings.Contains(errOut, flagName) || !strings.Contains(errOut, "-distribute") {
			t.Errorf("%s: error should name the flag and -distribute:\n%s", flagName, errOut)
		}
	}
	// Several at once: every misused flag is named.
	code, _, errOut := runCLI(t, "-heartbeat", "1s", "-worker-addrs", "x", "-ticks", "1")
	if code == 0 || !strings.Contains(errOut, "-heartbeat") || !strings.Contains(errOut, "-worker-addrs") {
		t.Errorf("combined misuse should name every flag:\n%s", errOut)
	}
}

// The -heartbeat/-epoch-timeout help derives from the liveness defaults
// actually in force instead of hardcoding stale numbers.
func TestLivenessHelpDerivedFromDefaults(t *testing.T) {
	code, _, errOut := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit = %d", code)
	}
	if want := fmt.Sprintf("silent for %d intervals", distrib.DefaultHeartbeatMisses); !strings.Contains(errOut, want) {
		t.Errorf("-heartbeat help should say %q (distrib.DefaultHeartbeatMisses):\n%s", want, errOut)
	}
	if want := fmt.Sprintf("default %v", distrib.DefaultHeartbeat); !strings.Contains(errOut, want) {
		t.Errorf("-heartbeat help should carry the %v default:\n%s", distrib.DefaultHeartbeat, errOut)
	}
	if want := fmt.Sprintf("adaptive with a %v floor", distrib.DefaultEpochTimeout); !strings.Contains(errOut, want) {
		t.Errorf("-epoch-timeout help should carry the %v adaptive floor:\n%s", distrib.DefaultEpochTimeout, errOut)
	}
}

func TestEpidemicEndToEnd(t *testing.T) {
	code, out, errOut := runCLI(t, "-model", "epidemic", "-agents", "120", "-ticks", "5", "-workers", "2", "-v")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "ticks=5") || !strings.Contains(out, "agents=120") {
		t.Errorf("metrics line missing:\n%s", out)
	}
	if !strings.Contains(out, "scenario epidemic") {
		t.Errorf("-v should print the scenario header:\n%s", out)
	}
}

func TestEvacuateEndToEnd(t *testing.T) {
	code, out, errOut := runCLI(t, "-model", "evacuate", "-agents", "80", "-ticks", "5", "-workers", "2", "-seq")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "ticks=5") {
		t.Errorf("metrics line missing:\n%s", out)
	}
}

func TestExtentSizesTraffic(t *testing.T) {
	// A 2km segment at default density holds ~128 vehicles; the registry
	// must thread -extent through to the traffic builder.
	code, out, errOut := runCLI(t, "-model", "traffic", "-extent", "2000", "-ticks", "2", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "agents=128") {
		t.Errorf("expected 128 vehicles from -extent 2000:\n%s", out)
	}
}
