package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/bigreddata/brace
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScenario/epidemic         	    3547	    614526 ns/op	   3254543 agent-ticks/s	  157908 B/op	    4411 allocs/op
BenchmarkScenario/fish-8           	     180	  14256875 ns/op	    140283 agent-ticks/s	  463408 B/op	    8229 allocs/op
BenchmarkTrafficTickIndexed        	    1768	   1806837 ns/op	  333979 B/op	    7455 allocs/op
PASS
ok  	github.com/bigreddata/brace	21.183s
`

func TestParse(t *testing.T) {
	f := Parse(sampleOutput)
	if f.Goos != "linux" || f.Goarch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("platform header not parsed: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	epi := f.Benchmarks[0]
	if epi.Name != "Scenario/epidemic" || epi.Iterations != 3547 ||
		epi.NsPerOp != 614526 || epi.AgentTicksPerS != 3254543 ||
		epi.BytesPerOp != 157908 || epi.AllocsPerOp != 4411 {
		t.Fatalf("epidemic parsed wrong: %+v", epi)
	}
	// The -8 GOMAXPROCS suffix is retained: under a -cpu sweep each core
	// count is its own baseline entry.
	if f.Benchmarks[1].Name != "Scenario/fish-8" {
		t.Fatalf("fish name = %q", f.Benchmarks[1].Name)
	}
	// A benchmark without the custom metric falls back to ops/s.
	tr := f.Benchmarks[2]
	if tr.AgentTicksPerS != 0 || tr.Throughput() <= 0 {
		t.Fatalf("traffic throughput fallback wrong: %+v", tr)
	}
}

func TestGate(t *testing.T) {
	base := Parse(sampleOutput)
	// Unchanged run: no failures.
	if fails := Gate(base, Parse(sampleOutput), 0.25, new(bytes.Buffer)); len(fails) != 0 {
		t.Fatalf("identical run failed the gate: %v", fails)
	}
	// 50% regression on fish: fails at 25% tolerance.
	reg := Parse(strings.Replace(sampleOutput, "140283 agent-ticks/s", "70000 agent-ticks/s", 1))
	fails := Gate(base, reg, 0.25, new(bytes.Buffer))
	if len(fails) != 1 || !strings.Contains(fails[0], "Scenario/fish") {
		t.Fatalf("fish regression not caught: %v", fails)
	}
	// 10% regression: passes at 25% tolerance.
	small := Parse(strings.Replace(sampleOutput, "140283 agent-ticks/s", "127000 agent-ticks/s", 1))
	if fails := Gate(base, small, 0.25, new(bytes.Buffer)); len(fails) != 0 {
		t.Fatalf("within-tolerance run failed: %v", fails)
	}
	// A benchmark missing from the run fails the gate.
	missing := Parse(strings.Replace(sampleOutput, "BenchmarkScenario/fish-8", "BenchmarkScenario/other", 1))
	fails = Gate(base, missing, 0.25, new(bytes.Buffer))
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing benchmark not caught: %v", fails)
	}
}

func TestGateAllocs(t *testing.T) {
	base := Parse(sampleOutput)
	// A 10× allocation blow-up with unchanged throughput fails.
	bloat := Parse(strings.Replace(sampleOutput, "8229 allocs/op", "82290 allocs/op", 1))
	fails := Gate(base, bloat, 0.25, new(bytes.Buffer))
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") || !strings.Contains(fails[0], "Scenario/fish-8") {
		t.Fatalf("alloc regression not caught: %v", fails)
	}
	// Within the ceiling (base × 1.25 + 2): passes.
	small := Parse(strings.Replace(sampleOutput, "8229 allocs/op", "9000 allocs/op", 1))
	if fails := Gate(base, small, 0.25, new(bytes.Buffer)); len(fails) != 0 {
		t.Fatalf("within-ceiling allocs failed the gate: %v", fails)
	}
	// The +2 grace: a near-zero baseline tolerates a stray allocation.
	zeroBase := Parse(strings.Replace(sampleOutput, "8229 allocs/op", "0 allocs/op", 1))
	oneNow := Parse(strings.Replace(sampleOutput, "8229 allocs/op", "2 allocs/op", 1))
	if fails := Gate(zeroBase, oneNow, 0.25, new(bytes.Buffer)); len(fails) != 0 {
		t.Fatalf("grace allocation failed the gate: %v", fails)
	}
	// ... but not a real leak on a zero baseline.
	manyNow := Parse(strings.Replace(sampleOutput, "8229 allocs/op", "50 allocs/op", 1))
	if fails := Gate(zeroBase, manyNow, 0.25, new(bytes.Buffer)); len(fails) != 1 {
		t.Fatalf("leak on zero baseline not caught: %v", fails)
	}
	// A throughput regression takes precedence: one message per benchmark.
	both := Parse(strings.NewReplacer(
		"140283 agent-ticks/s", "1 agent-ticks/s",
		"8229 allocs/op", "82290 allocs/op",
	).Replace(sampleOutput))
	fails = Gate(base, both, 0.25, new(bytes.Buffer))
	if len(fails) != 1 || strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("double regression double-counted: %v", fails)
	}
}

// TestRunInputMode drives the CLI end to end on a saved output file:
// parse, write the artifact, and gate against it.
func TestRunInputMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-input", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("write run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if f.Schema != "brace-bench/1" || len(f.Benchmarks) != 3 {
		t.Fatalf("artifact contents wrong: %+v", f)
	}

	// Same data gates cleanly against itself.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-input", in, "-baseline", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-gate exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "trajectory OK") {
		t.Fatalf("no OK message: %s", stdout.String())
	}

	// A regressed run against the same baseline fails.
	reg := filepath.Join(dir, "reg.txt")
	if err := os.WriteFile(reg, []byte(strings.Replace(sampleOutput, "140283 agent-ticks/s", "1 agent-ticks/s", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-input", reg, "-baseline", out}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run exited %d, want 1", code)
	}

	// An unknown-schema baseline is rejected.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-input", in, "-baseline", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad baseline exited %d, want 1", code)
	}
}

// -prove-gate demonstrates the regression gate actually fires: a baseline
// doctored to impossible throughput must flag every benchmark, and only
// then is the real verdict trusted.
func TestRunProveGate(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-input", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("write run exited %d: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-input", in, "-baseline", out, "-prove-gate"}, &stdout, &stderr); code != 0 {
		t.Fatalf("prove-gate run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate self-test OK") {
		t.Fatalf("no self-test message: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "trajectory OK") {
		t.Fatalf("real gate did not run after the self-test: %s", stdout.String())
	}
}
