// Command benchjson runs the repo's benchmarks through `go test -bench`,
// parses the text output into a machine-readable JSON artifact, and —
// given a committed baseline file — fails when any benchmark's throughput
// regressed beyond a tolerance. It is the engine of the CI
// benchmark-trajectory gate: every change ships a BENCH_<n>.json snapshot,
// and CI re-runs the suite against the committed one.
//
// Usage:
//
//	benchjson -out BENCH.json                         # run + write
//	benchjson -out BENCH.json -baseline BENCH_4.json  # run + write + gate
//	benchjson -input bench.txt -out BENCH.json        # parse a saved run
//
// Throughput is the benchmark's agent-ticks/s metric when it reports one,
// else 1e9/ns_per_op. The gate fails when new < old × (1 − tolerance);
// improvements never fail. A benchmark that held its throughput but grew
// its allocations beyond old × (1 + tolerance) + 2 fails too — allocation
// regressions are how throughput regressions start, and the +2 grace
// keeps near-zero baselines from flagging on a single stray allocation.
// Benchmarks present in the baseline but missing from the run fail the
// gate (a deleted benchmark must be removed from the baseline
// deliberately); new benchmarks are reported and pass.
//
// -cpu threads a GOMAXPROCS sweep through to `go test -cpu`; each setting
// parses as its own entry (the -N name suffix is retained), so a
// multi-core baseline gates every core count it recorded.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Result is one benchmark's parsed figures. Zero-valued metrics were not
// reported by the benchmark.
type Result struct {
	Name           string  `json:"name"`
	Iterations     int64   `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AgentTicksPerS float64 `json:"agent_ticks_per_s,omitempty"`
	BytesPerOp     int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
}

// File is the BENCH_*.json schema (documented in README.md).
type File struct {
	Schema     string   `json:"schema"` // "brace-bench/1"
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	BenchArgs  string   `json:"bench_args,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// run is the testable CLI entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BenchmarkScenario$", "go test -bench regexp")
	benchtime := fs.String("benchtime", "2s", "go test -benchtime")
	count := fs.Int("count", 1, "go test -count")
	cpu := fs.String("cpu", "", "go test -cpu list for a GOMAXPROCS sweep (e.g. 1,2,4)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	input := fs.String("input", "", "parse this saved `go test -bench` output instead of running")
	out := fs.String("out", "", "write the JSON artifact here")
	baseline := fs.String("baseline", "", "committed BENCH_*.json to gate against")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional throughput regression")
	proveGate := fs.Bool("prove-gate", false, "self-test the regression gate against a doctored baseline before trusting its verdict")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var base *File
	if *baseline != "" {
		b, err := readFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		base = b
	}

	var text string
	benchArgs := fmt.Sprintf("-bench %s -benchtime %s -count %d -benchmem", *bench, *benchtime, *count)
	if *cpu != "" {
		benchArgs += " -cpu " + *cpu
	}
	benchArgs += " " + *pkg
	if *input != "" {
		raw, err := os.ReadFile(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		text = string(raw)
	} else {
		goArgs := []string{"test", "-run=NONE",
			"-bench", *bench, "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count), "-benchmem"}
		if *cpu != "" {
			goArgs = append(goArgs, "-cpu", *cpu)
		}
		goArgs = append(goArgs, *pkg)
		cmd := exec.Command("go", goArgs...)
		var sb strings.Builder
		cmd.Stdout = &sb
		cmd.Stderr = stderr
		fmt.Fprintf(stderr, "benchjson: running go test %s\n", benchArgs)
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(stderr, "benchjson: go test:", err)
			fmt.Fprint(stderr, sb.String())
			return 1
		}
		text = sb.String()
	}

	f := Parse(text)
	f.BenchArgs = benchArgs
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark results parsed")
		return 1
	}

	if *out != "" {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", *out, len(f.Benchmarks))
	}

	if *proveGate {
		// A gate that cannot fail is worthless — and an empty or
		// unparsed run would "pass" every comparison. Doctor a baseline
		// from this very run with impossible throughput and prove the
		// gate flags every benchmark before trusting its real verdict.
		doctored := &File{Schema: f.Schema, Benchmarks: make([]Result, len(f.Benchmarks))}
		for i, r := range f.Benchmarks {
			r.NsPerOp /= 10
			if r.AgentTicksPerS > 0 {
				r.AgentTicksPerS *= 10
			}
			doctored.Benchmarks[i] = r
		}
		failures := Gate(doctored, f, *tolerance, io.Discard)
		if len(failures) != len(f.Benchmarks) {
			fmt.Fprintf(stderr, "benchjson: throughput gate self-test FAILED: doctored baseline flagged %d of %d benchmarks\n",
				len(failures), len(f.Benchmarks))
			return 1
		}
		// Same drill for the allocation gate: a run doctored to allocate
		// wildly more than this one must be flagged on every benchmark.
		bloated := &File{Schema: f.Schema, Benchmarks: make([]Result, len(f.Benchmarks))}
		for i, r := range f.Benchmarks {
			r.AllocsPerOp = r.AllocsPerOp*10 + 1000
			bloated.Benchmarks[i] = r
		}
		failures = Gate(f, bloated, *tolerance, io.Discard)
		if len(failures) != len(f.Benchmarks) {
			fmt.Fprintf(stderr, "benchjson: allocs gate self-test FAILED: bloated run flagged %d of %d benchmarks\n",
				len(failures), len(f.Benchmarks))
			return 1
		}
		fmt.Fprintf(stdout, "gate self-test OK: doctored comparisons flagged all %d benchmarks on both throughput and allocs\n", len(f.Benchmarks))
	}

	if base != nil {
		failures := Gate(base, f, *tolerance, stdout)
		if len(failures) > 0 {
			fmt.Fprintf(stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%:\n", len(failures), *tolerance*100)
			for _, msg := range failures {
				fmt.Fprintln(stderr, "  "+msg)
			}
			return 1
		}
		fmt.Fprintf(stdout, "benchmark trajectory OK vs %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
	}
	return 0
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "brace-bench/1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}

// benchLine keeps any -N GOMAXPROCS suffix in the name: under a -cpu
// sweep the same benchmark runs once per core count and each setting is
// its own baseline entry.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// Parse extracts benchmark results and the platform header from `go test
// -bench` text output.
func Parse(text string) *File {
	f := &File{Schema: "brace-bench/1"}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		// The tail is value/unit pairs: `123.4 ns/op 51363 agent-ticks/s ...`.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "agent-ticks/s":
				r.AgentTicksPerS = val
			case "B/op":
				r.BytesPerOp = int64(val)
			case "allocs/op":
				r.AllocsPerOp = int64(val)
			}
		}
		if r.NsPerOp > 0 {
			f.Benchmarks = append(f.Benchmarks, r)
		}
	}
	return f
}

// Throughput is the gate's comparison metric: the benchmark's own
// agent-ticks/s when reported, else ops/s derived from ns/op.
func (r Result) Throughput() float64 {
	if r.AgentTicksPerS > 0 {
		return r.AgentTicksPerS
	}
	if r.NsPerOp > 0 {
		return 1e9 / r.NsPerOp
	}
	return 0
}

// Gate compares a run against the baseline and returns at most one
// message per benchmark: a throughput regression beyond tolerance, or —
// when throughput held — an allocs/op regression beyond
// base × (1 + tolerance) + 2. It prints a comparison table to w as a
// side effect.
func Gate(base, got *File, tolerance float64, w io.Writer) []string {
	byName := make(map[string]Result, len(got.Benchmarks))
	for _, r := range got.Benchmarks {
		byName[r.Name] = r
	}
	names := make([]string, 0, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		names = append(names, r.Name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(w, "%-40s %14s %14s %8s %16s\n", "benchmark", "baseline", "current", "ratio", "allocs/op")
	for _, b := range base.Benchmarks {
		n, ok := byName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", b.Name))
			fmt.Fprintf(w, "%-40s %14.0f %14s %8s %16s\n", b.Name, b.Throughput(), "MISSING", "-", "-")
			continue
		}
		ratio := 0.0
		if b.Throughput() > 0 {
			ratio = n.Throughput() / b.Throughput()
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %7.2fx %7d->%-7d\n",
			b.Name, b.Throughput(), n.Throughput(), ratio, b.AllocsPerOp, n.AllocsPerOp)
		allocCeil := float64(b.AllocsPerOp)*(1+tolerance) + 2
		switch {
		case n.Throughput() < b.Throughput()*(1-tolerance):
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f (%.2fx, floor %.2fx)",
				b.Name, b.Throughput(), n.Throughput(), ratio, 1-tolerance))
		case float64(n.AllocsPerOp) > allocCeil:
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d (ceiling %.0f)",
				b.Name, b.AllocsPerOp, n.AllocsPerOp, allocCeil))
		}
		delete(byName, b.Name)
	}
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "%-40s %14s %14.0f %8s %16d\n", name, "(new)", byName[name].Throughput(), "-", byName[name].AllocsPerOp)
	}
	return failures
}
