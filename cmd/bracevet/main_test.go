package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for gate tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const doctoredEngine = `package engine

// Emit walks a map in iteration order — exactly the bug class bracevet
// exists to stop.
func Emit(m map[int]float64, sink func(int, float64)) {
	for k, v := range m {
		sink(k, v)
	}
}
`

// TestGateRedOnDoctoredViolation proves the CI lint gate can fire: a tree
// with one reintroduced map-order violation must fail bracevet. This is
// the doctored-violation half of the acceptance criteria; the clean-tree
// half is TestRepoClean below and internal/lint's TestRepoIsCleanAtHEAD.
func TestGateRedOnDoctoredViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module example.com/doctored\n\ngo 1.21\n",
		"engine/emit.go": doctoredEngine,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "range over map") || !strings.Contains(stdout.String(), "[maporder]") {
		t.Fatalf("missing maporder finding in output:\n%s", stdout.String())
	}
}

// TestGateGreenAfterFix: the same module with the loop rewritten over a
// sorted slice passes.
func TestGateGreenAfterFix(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/fixed\n\ngo 1.21\n",
		"engine/emit.go": `package engine

import "sort"

func Emit(m map[int]float64, sink func(int, float64)) {
	keys := make([]int, 0, len(m))
	for k := range m { //bracevet:allow maporder order erased by the sort below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		sink(k, m[k])
	}
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRepoClean runs the real binary path over the real repository: the
// acceptance criterion `go run ./cmd/bracevet ./...` exits 0.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire repository")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("bracevet not clean at HEAD (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"maporder", "framecase", "wallclock", "globalrand"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestVetToolProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit = %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "bracevet version ") {
		t.Errorf("-V=full output %q", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit = %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags output %q, want []", stdout.String())
	}
}
