// Command bracevet runs the repo's determinism & wire-protocol analyzers
// (maporder, framecase, wallclock, globalrand — see internal/lint) over a
// set of packages.
//
// Standalone:
//
//	go run ./cmd/bracevet ./...        # exit 1 if any finding
//	go run ./cmd/bracevet -list        # print the suite
//
// As a vet tool (unitchecker-compatible: -V=full, -flags, and *.cfg
// invocations from cmd/go):
//
//	go build -o bracevet ./cmd/bracevet
//	go vet -vettool=$PWD/bracevet ./...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/bigreddata/brace/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go's vettool protocol probes before any real work: -V=full asks
	// for a version line to mix into the build cache key, -flags asks
	// which analyzer flags the tool accepts (none), and the real
	// invocation passes a single path ending in .cfg.
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			fmt.Fprintln(stdout, "bracevet version v1.0.0")
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetTool(args[0], stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("bracevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := lint.Run(lint.All(), pkgs)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "bracevet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
