package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/bigreddata/brace/internal/lint"
)

// vetConfig mirrors the JSON cmd/go writes for each package when driving
// a -vettool (the x/tools unitchecker wire format). Only the fields
// bracevet needs are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by a cmd/go vet config
// file. Types for imports come from the export data cmd/go already built
// (PackageFile), so this path needs no go list and is fast enough for
// `go vet -vettool` across a whole tree.
func runVetTool(cfgPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "bracevet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go expects the facts file to exist even though bracevet's
	// analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset}
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, af)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	pkg.Types, _ = tconf.Check(cfg.ImportPath, fset, pkg.Files, pkg.Info)
	if len(pkg.Errors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	diags := lint.Run(lint.All(), []*lint.Package{pkg})
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
