package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoVetVettool drives the real cmd/go vettool protocol end-to-end: a
// built bracevet binary, `go vet -vettool=...`, a doctored module that
// must fail with a maporder finding, and a clean module that must pass.
// This is what makes `go vet -vettool=$(which bracevet) ./...` a
// supported invocation rather than a README claim.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "bracevet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building bracevet: %v\n%s", err, out)
	}

	t.Run("doctored module fails", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":         "module example.com/vetdoctored\n\ngo 1.21\n",
			"engine/emit.go": doctoredEngine,
		})
		out, err := runGoVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet -vettool passed on a doctored violation:\n%s", out)
		}
		if !strings.Contains(out, "range over map") {
			t.Fatalf("go vet output missing the maporder finding:\n%s", out)
		}
	})

	t.Run("clean module passes", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module example.com/vetclean\n\ngo 1.21\n",
			"engine/emit.go": `package engine

func Emit(xs []float64, sink func(int, float64)) {
	for i, v := range xs {
		sink(i, v)
	}
}
`,
		})
		if out, err := runGoVet(t, bin, dir); err != nil {
			t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, out)
		}
	})
}

func runGoVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.CombinedOutput()
	return string(out), err
}
