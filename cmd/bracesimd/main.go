// Command bracesimd is the BRACE simulation service: a long-lived HTTP
// daemon that owns a fleet of bracesim-worker processes and multiplexes
// many concurrent simulations over it. Where bracesim -distribute tcp
// builds a cluster per invocation, bracesimd keeps the cluster resident —
// the same amortization the BRACE runtime applies to epochs, applied to
// whole runs.
//
// Usage:
//
//	bracesimd -listen 127.0.0.1:8080 -worker-addrs 127.0.0.1:7101,127.0.0.1:7102
//	bracesimd -listen 127.0.0.1:0 -local-workers 4   # self-contained: in-process fleet
//
//	bracesim -submit http://127.0.0.1:8080 -model fish -ticks 200
//	curl -s http://127.0.0.1:8080/v1/runs
//	curl -s http://127.0.0.1:8080/v1/runs/run-0001
//	curl -sN http://127.0.0.1:8080/v1/runs/run-0001/watch
//	curl -s -X DELETE http://127.0.0.1:8080/v1/runs/run-0001
//
// The daemon prints "listening on <addr>" once the API socket is bound.
// SIGTERM (and SIGINT) drain gracefully: the API stops accepting new
// work, every active run is canceled, and any -local-workers fleet drains
// its in-flight epoch barriers before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/service"
)

func main() {
	shutdown := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "bracesimd: %v: shutting down\n", s)
		close(shutdown)
	}()
	os.Exit(run(os.Args[1:], shutdown, os.Stdout, os.Stderr))
}

// run is the testable CLI entry point; it returns the process exit code.
// Closing shutdown makes the daemon drain and exit.
func run(args []string, shutdown <-chan struct{}, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bracesimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve the HTTP API on")
	workerAddrs := fs.String("worker-addrs", "", "comma-separated bracesim-worker addresses forming the fleet")
	localWorkers := fs.Int("local-workers", 0, "spin up this many in-process workers instead of -worker-addrs (self-contained service)")
	registryAddr := fs.String("registry", "", "listen address for worker registration (bracesim-worker -register); implied on a loopback ephemeral port by -local-workers")
	mesh := fs.Bool("mesh", false, "peer-mesh data plane: workers exchange neighbor envelopes directly, the daemon keeps only the control plane")
	maxRuns := fs.Int("max-runs", 0, "max concurrently running simulations (0 = default 4); admitted runs beyond it queue")
	queueDepth := fs.Int("queue", 0, "max queued runs (0 = default 16); submissions beyond it are rejected")
	runWorkers := fs.Int("run-workers", 0, "default per-run worker budget when a spec omits one (0 = the whole fleet)")
	sessionsPer := fs.Int("sessions-per-worker", 0, "max concurrent run sessions multiplexed on each worker (0 = default 4)")
	keyframeEvery := fs.Int("keyframe-every", 0, fmt.Sprintf(
		"watch-stream keyframe cadence: a full snapshot every N frames (0 = default %d)", service.DefaultKeyframeEvery))
	heartbeat := fs.Duration("heartbeat", 0, fmt.Sprintf(
		"per-run liveness ping interval; a worker silent for %d intervals is force-dropped (0 = default %v, negative = off)",
		distrib.DefaultHeartbeatMisses, distrib.DefaultHeartbeat))
	epochTimeout := fs.Duration("epoch-timeout", 0, fmt.Sprintf(
		"max age of an epoch barrier round before laggards are force-dropped (0 = adaptive with a %v floor, negative = off)",
		distrib.DefaultEpochTimeout))
	dialTimeout := fs.Duration("dial-timeout", 0, fmt.Sprintf(
		"worker dial+handshake budget (0 = default %v)", distrib.DefaultDialTimeout))
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	addrs := splitAddrs(*workerAddrs)
	if len(addrs) > 0 && *localWorkers > 0 {
		return fail(stderr, fmt.Errorf("-worker-addrs and -local-workers are mutually exclusive"))
	}
	if len(addrs) == 0 && *localWorkers <= 0 && *registryAddr == "" {
		return fail(stderr, fmt.Errorf("a fleet is required: -worker-addrs, -local-workers, or -registry"))
	}

	// The registry is how workers find the service (and vice versa):
	// external daemons dial it with -register, and the -local-workers
	// fleet announces itself through it too — one discovery path instead
	// of a static list. Workers registering later grow the fleet live.
	var reg *distrib.Registry
	if *registryAddr != "" || *localWorkers > 0 {
		bind := *registryAddr
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		rlis, err := net.Listen("tcp", bind)
		if err != nil {
			return fail(stderr, err)
		}
		reg = distrib.NewRegistry(rlis)
		defer reg.Close()
		fmt.Fprintf(stdout, "registry on %s\n", reg.Addr())
	}

	// A -local-workers fleet lives inside the daemon process: each worker
	// is a distrib.ServeWith loop on a loopback listener, draining with
	// the daemon. Placement, wire protocol and recovery behave exactly as
	// with external daemons (short of surviving this process).
	var workerWG sync.WaitGroup
	drain := make(chan struct{})
	defer func() { close(drain); workerWG.Wait() }()
	for i := 0; i < *localWorkers; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(stderr, err)
		}
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			if err := distrib.ServeWith(lis, distrib.ServeOptions{Log: stderr, Drain: drain, Register: reg.Addr()}); err != nil {
				fmt.Fprintln(stderr, "bracesimd: local worker:", err)
			}
		}()
	}
	if *localWorkers > 0 {
		// Gate on the fleet actually announcing itself — the same path an
		// external worker takes — so the manager below starts fully wired.
		local, err := reg.Await(*localWorkers, 30*time.Second)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "local fleet: %s\n", strings.Join(local, ","))
	}

	mgr, err := service.NewManager(service.Config{
		WorkerAddrs:       addrs,
		Registry:          reg,
		MaxRuns:           *maxRuns,
		QueueDepth:        *queueDepth,
		SessionsPerWorker: *sessionsPer,
		DefaultRunWorkers: *runWorkers,
		KeyframeEvery:     *keyframeEvery,
		Tunables: distrib.Tunables{
			Heartbeat:    *heartbeat,
			EpochTimeout: *epochTimeout,
			DialTimeout:  *dialTimeout,
			Mesh:         *mesh,
		},
		Log: stderr,
	})
	if err != nil {
		return fail(stderr, err)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(stderr, err)
	}
	srv := &http.Server{Handler: service.Handler(mgr)}
	fmt.Fprintf(stdout, "listening on %s\n", lis.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case err := <-serveErr:
		mgr.Close()
		return fail(stderr, err)
	case <-shutdown:
	}

	// Drain: cancel every run and wait for the coordinators (which ends
	// the runs' watch streams, releasing their handlers), then stop the
	// API with a bounded window for stragglers, then let the deferred
	// close drain any local workers' epoch barriers.
	mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	return 0
}

// splitAddrs parses the -worker-addrs list, dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "bracesimd:", err)
	return 1
}
