package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/service"
)

// workerProcEnv makes the test binary re-exec itself as a multi-session
// worker daemon — the real shared-fleet deployment, one OS process
// hosting sessions of many concurrent runs.
const workerProcEnv = "BRACESIMD_TEST_WORKER"

// workerRegisterEnv makes the re-exec'd worker announce itself at the
// env value's registry address instead of being named in -worker-addrs.
const workerRegisterEnv = "BRACESIMD_TEST_WORKER_REGISTER"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) != "" {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening on %s\n", lis.Addr())
		if reg := os.Getenv(workerRegisterEnv); reg != "" {
			err = distrib.ServeWith(lis, distrib.ServeOptions{Log: os.Stderr, Register: reg})
		} else {
			err = distrib.Serve(lis, os.Stderr, false)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerProc is one re-exec'd shared worker OS process.
type workerProc struct {
	addr string
	proc *os.Process
	// sessions receives one tick per coordinator session the worker
	// starts, so tests can wait until it provably hosts both runs.
	sessions chan struct{}
}

func spawnWorker(t *testing.T, env ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(append(os.Environ(), workerProcEnv+"=1"), env...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	w := &workerProc{proc: cmd.Process, sessions: make(chan struct{}, 64)}
	go func() {
		sc := bufio.NewScanner(errPipe)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "bracesim-worker: proc") {
				select {
				case w.sessions <- struct{}{}:
				default:
				}
			}
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- ""
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			t.Fatal("worker process exited without binding")
		}
		w.addr = a
		return w
	case <-time.After(30 * time.Second):
		t.Fatal("worker process did not bind in time")
		return nil
	}
}

func (w *workerProc) waitSessions(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-w.sessions:
		case <-time.After(60 * time.Second):
			t.Fatalf("worker %s hosted %d sessions, want %d", w.addr, i, n)
		}
	}
}

// addrWaiter scrapes the daemon's stdout for the "listening on" banner.
type addrWaiter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	ch   chan string
	sent bool
}

func newAddrWaiter() *addrWaiter { return &addrWaiter{ch: make(chan string, 1)} }

func (w *addrWaiter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		for _, line := range strings.Split(w.buf.String(), "\n") {
			if a, ok := strings.CutPrefix(line, "listening on "); ok {
				w.sent = true
				w.ch <- a
				break
			}
		}
	}
	return len(p), nil
}

// startDaemon runs the bracesimd CLI in-process and returns its API base
// URL. Cleanup triggers the SIGTERM-equivalent graceful shutdown path and
// waits for it.
func startDaemon(t *testing.T, args ...string) string {
	t.Helper()
	shutdown := make(chan struct{})
	exited := make(chan int, 1)
	aw := newAddrWaiter()
	go func() { exited <- run(args, shutdown, aw, io.Discard) }()
	t.Cleanup(func() {
		close(shutdown)
		select {
		case code := <-exited:
			if code != 0 {
				t.Errorf("daemon exit = %d, want 0", code)
			}
		case <-time.After(60 * time.Second):
			t.Error("daemon did not shut down")
		}
	})
	select {
	case addr := <-aw.ch:
		return "http://" + addr
	case code := <-exited:
		t.Fatalf("daemon exited early with code %d", code)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not bind in time")
	}
	return ""
}

func postRun(t *testing.T, base, body string) service.RunStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st service.RunStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, base, id string) service.RunStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, base, id string, timeout time.Duration) service.RunStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		switch st.State {
		case service.StateDone:
			return st
		case service.StateFailed, service.StateCanceled:
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// watchFinal consumes a run's whole watch stream through the strict
// decoder and returns the last reconstructed state — after a completed
// run, its final population.
func watchFinal(t *testing.T, base, id string) []*engine.Envelope {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %s", resp.Status)
	}
	var dec service.StreamDecoder
	var last []*engine.Envelope
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var f service.ObsFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		if last, err = dec.Apply(&f); err != nil {
			t.Fatalf("frame seq %d: %v", f.Seq, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("watch stream carried no frames")
	}
	return engine.CloneEnvelopes(last)
}

// soloEquivalent runs the same spec as a single-run `-distribute tcp`
// coordinator on its own fresh worker fleet.
func soloEquivalent(t *testing.T, scenarioName string, agents int, seed uint64, parts, ticks, epoch int) agent.Population {
	t.Helper()
	addrs := []string{spawnWorker(t).addr, spawnWorker(t).addr, spawnWorker(t).addr, spawnWorker(t).addr}
	res, err := distrib.Run(distrib.Options{
		Addrs:    addrs,
		Scenario: scenarioName,
		Agents:   agents, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: distrib.Tunables{EpochTicks: epoch},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Agents
}

func requireSameFinalState(t *testing.T, label string, want agent.Population, got []*engine.Envelope) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: population sizes differ: solo %d vs service %d", label, len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i].A) {
			t.Fatalf("%s: agent %d differs:\n  solo:    %v\n  service: %v",
				label, want[i].ID, want[i], got[i].A)
		}
	}
}

// TestDaemonTwoConcurrentRunsSharedFleet is the multi-tenancy acceptance
// criterion end to end: two concurrent runs — different scenarios,
// different seeds — submitted over HTTP to one daemon sharing a 4-worker
// fleet of real OS processes, each finishing bit-identical to its
// single-run `-distribute tcp` equivalent.
func TestDaemonTwoConcurrentRunsSharedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	fleet := []*workerProc{spawnWorker(t), spawnWorker(t), spawnWorker(t), spawnWorker(t)}
	var addrs []string
	for _, w := range fleet {
		addrs = append(addrs, w.addr)
	}
	base := startDaemon(t, "-listen", "127.0.0.1:0", "-worker-addrs", strings.Join(addrs, ","))

	const (
		parts = 4
		ticks = 40
		epoch = 5
	)
	a := postRun(t, base, `{"scenario":"epidemic","agents":150,"seed":9,"ticks":40,"partitions":4,"epoch_ticks":5}`)
	b := postRun(t, base, `{"scenario":"fish","agents":120,"seed":23,"ticks":40,"partitions":4,"epoch_ticks":5}`)
	if a.State != service.StateRunning || b.State != service.StateRunning {
		t.Fatalf("both runs should run concurrently, got %s / %s", a.State, b.State)
	}
	waitDone(t, base, a.ID, 120*time.Second)
	waitDone(t, base, b.ID, 120*time.Second)

	requireSameFinalState(t, "epidemic", soloEquivalent(t, "epidemic", 150, 9, parts, ticks, epoch), watchFinal(t, base, a.ID))
	requireSameFinalState(t, "fish", soloEquivalent(t, "fish", 120, 23, parts, ticks, epoch), watchFinal(t, base, b.ID))
}

// TestDaemonSharedWorkerKillRecoversBothRuns is the shared-failure-domain
// acceptance criterion: SIGKILL one worker of the shared fleet while it
// hosts sessions of two concurrent runs. BOTH runs — not just the one
// that noticed first — must recover through their own coordinators and
// finish bit-identical to unfailed single-run equivalents, and the fleet
// must mark the dead worker down.
func TestDaemonSharedWorkerKillRecoversBothRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills OS processes")
	}
	fleet := []*workerProc{spawnWorker(t), spawnWorker(t), spawnWorker(t), spawnWorker(t)}
	var addrs []string
	for _, w := range fleet {
		addrs = append(addrs, w.addr)
	}
	base := startDaemon(t, "-listen", "127.0.0.1:0", "-worker-addrs", strings.Join(addrs, ","))

	const (
		parts = 6
		ticks = 400
		epoch = 5
	)
	a := postRun(t, base, `{"scenario":"epidemic","agents":150,"seed":17,"ticks":400,"partitions":6,"epoch_ticks":5}`)
	b := postRun(t, base, `{"scenario":"fish","agents":120,"seed":29,"ticks":400,"partitions":6,"epoch_ticks":5}`)

	// Every run spans the whole fleet (default worker budget), so worker 1
	// hosts one session per run; wait until both are provably attached,
	// then kill it mid-run.
	victim := fleet[1]
	victim.waitSessions(t, 2)
	time.Sleep(50 * time.Millisecond)
	if err := victim.proc.Kill(); err != nil {
		t.Fatal(err)
	}

	finA := waitDone(t, base, a.ID, 180*time.Second)
	finB := waitDone(t, base, b.ID, 180*time.Second)
	if finA.Recoveries < 1 {
		t.Errorf("run A recoveries = %d, want ≥ 1 (was the worker killed too late?)", finA.Recoveries)
	}
	if finB.Recoveries < 1 {
		t.Errorf("run B recoveries = %d, want ≥ 1", finB.Recoveries)
	}

	requireSameFinalState(t, "epidemic", soloEquivalent(t, "epidemic", 150, 17, parts, ticks, epoch), watchFinal(t, base, a.ID))
	requireSameFinalState(t, "fish", soloEquivalent(t, "fish", 120, 29, parts, ticks, epoch), watchFinal(t, base, b.ID))

	// The scheduler must have steered away from the dead address.
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var infos []service.WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	down := 0
	for _, w := range infos {
		if w.Down {
			down++
			if w.Addr != victim.addr {
				t.Errorf("wrong worker marked down: %s (victim %s)", w.Addr, victim.addr)
			}
		}
	}
	if down != 1 {
		t.Errorf("down workers = %d, want exactly the victim", down)
	}
}

// The daemon's self-contained mode: -local-workers spins the fleet up
// inside the process, and the whole submit → watch → done flow works over
// plain HTTP.
func TestDaemonLocalWorkers(t *testing.T) {
	base := startDaemon(t, "-listen", "127.0.0.1:0", "-local-workers", "2")
	st := postRun(t, base, `{"scenario":"epidemic","agents":90,"seed":4,"ticks":20,"epoch_ticks":5}`)
	waitDone(t, base, st.ID, 60*time.Second)
	if final := watchFinal(t, base, st.ID); len(final) == 0 {
		t.Fatal("no final population")
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	if code := run([]string{"-listen", "127.0.0.1:0"}, nil, io.Discard, io.Discard); code != 1 {
		t.Errorf("no fleet: exit = %d, want 1", code)
	}
	if code := run([]string{"-worker-addrs", "a:1", "-local-workers", "2"}, nil, io.Discard, io.Discard); code != 1 {
		t.Errorf("conflicting fleet flags: exit = %d, want 1", code)
	}
	if code := run([]string{"-h"}, nil, io.Discard, io.Discard); code != 0 {
		t.Errorf("-h: exit = %d, want 0", code)
	}
	if code := run([]string{"-no-such"}, nil, io.Discard, io.Discard); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}

// The self-contained fleet now wires itself through registration: with
// -mesh the local workers' sessions exchange envelopes directly, the run
// completes over HTTP as before, and /v1/fleet reports every worker as
// registered.
func TestDaemonLocalWorkersRegistryMesh(t *testing.T) {
	base := startDaemon(t, "-listen", "127.0.0.1:0", "-local-workers", "2", "-mesh")
	st := postRun(t, base, `{"scenario":"epidemic","agents":90,"seed":4,"ticks":20,"epoch_ticks":5}`)
	waitDone(t, base, st.ID, 60*time.Second)

	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet []service.WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 2 {
		t.Fatalf("fleet = %v, want 2 workers", fleet)
	}
	for _, w := range fleet {
		if !w.Registered {
			t.Errorf("worker %s not marked registered", w.Addr)
		}
	}
}

// An externally-owned registry fleet: real worker OS processes announce
// themselves at the daemon's -registry socket (no -worker-addrs, no
// -local-workers) and a mesh run completes over them.
func TestDaemonRegistryMeshWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	// Reserve a port for the registry, free it, and hand it to the
	// daemon; the workers' registration dials retry until it binds.
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	regAddr := rlis.Addr().String()
	rlis.Close()

	spawnWorker(t, workerRegisterEnv+"="+regAddr)
	spawnWorker(t, workerRegisterEnv+"="+regAddr)

	base := startDaemon(t, "-listen", "127.0.0.1:0", "-registry", regAddr, "-mesh")

	// Wait for both announcements to land: runs submitted into an empty
	// fleet are rejected, not queued.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		var fleet []service.WorkerInfo
		err = json.NewDecoder(resp.Body).Decode(&fleet)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(fleet) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 2 workers: %v", fleet)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := postRun(t, base, `{"scenario":"epidemic","agents":90,"seed":4,"ticks":20,"epoch_ticks":5}`)
	waitDone(t, base, st.ID, 60*time.Second)
	if final := watchFinal(t, base, st.ID); len(final) == 0 {
		t.Fatal("no final population")
	}
}
