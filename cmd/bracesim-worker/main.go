// Command bracesim-worker is the BRACE worker daemon for distributed
// runs: it listens for a coordinator (bracesim -distribute tcp), rebuilds
// the requested scenario locally from the registry, computes its assigned
// partition block over the TCP transport, and reports its final state.
//
// Usage:
//
//	bracesim-worker -listen 127.0.0.1:7101
//	bracesim-worker -listen 127.0.0.1:0 -once   # ephemeral port, one run
//	bracesim-worker -listen 127.0.0.1:7101 -heartbeat 30s   # abort sessions whose coordinator goes silent
//
// The daemon prints "listening on <addr>" once the socket is bound, so
// scripts (and the loopback tests) can use port 0 and scrape the address.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"github.com/bigreddata/brace/internal/distrib"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bracesim-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "address to accept the coordinator on")
	once := fs.Bool("once", false, "exit after one coordinator session")
	heartbeat := fs.Duration("heartbeat", 0,
		"abort a session whose coordinator has been silent this long (0 = wait forever); "+
			"the coordinator pings every 2s by default, so a small multiple of that is safe")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "bracesim-worker:", err)
		return 1
	}
	defer lis.Close()
	fmt.Fprintf(stdout, "listening on %s\n", lis.Addr())
	err = distrib.ServeWith(lis, distrib.ServeOptions{
		Log:          stderr,
		Once:         *once,
		CoordTimeout: *heartbeat,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bracesim-worker:", err)
		return 1
	}
	return 0
}
