// Command bracesim-worker is the BRACE worker daemon for distributed
// runs: it listens for coordinators (bracesim -distribute tcp, or a
// bracesimd fleet), rebuilds each requested scenario locally from the
// registry, computes its assigned partition block over the TCP transport,
// and reports its final state. Sessions are served concurrently, so one
// daemon can host partitions of many simultaneous runs.
//
// Usage:
//
//	bracesim-worker -listen 127.0.0.1:7101
//	bracesim-worker -listen 127.0.0.1:0 -once   # ephemeral port, one run
//	bracesim-worker -listen 127.0.0.1:7101 -heartbeat 30s   # abort sessions whose coordinator goes silent
//
// The daemon prints "listening on <addr>" once the socket is bound, so
// scripts (and the loopback tests) can use port 0 and scrape the address.
//
// SIGTERM (and SIGINT) drain gracefully: the daemon stops accepting new
// coordinators, lets every in-flight session finish its current epoch up
// to the barrier — stats, directives, checkpoint shipping, cut installs
// all complete — then closes the connections and exits 0. Each session's
// coordinator sees the close as a worker death at a clean epoch boundary
// and recovers the run on the surviving fleet from the barrier's
// checkpoint. SIGKILL remains the unclean path the recovery tests cover.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"github.com/bigreddata/brace/internal/distrib"
)

func main() {
	os.Exit(mainWith(os.Args[1:]))
}

// mainWith wires the signal-driven drain around run; the SIGTERM test
// re-execs straight into it.
func mainWith(args []string) int {
	drain := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "bracesim-worker: %v: draining (finishing in-flight epochs)\n", s)
		close(drain)
	}()
	return run(args, drain, os.Stdout, os.Stderr)
}

// run is the testable CLI entry point; it returns the process exit code.
// Closing drain makes the serve loop wind down at the next epoch barrier.
func run(args []string, drain <-chan struct{}, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bracesim-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "address to accept coordinators on")
	once := fs.Bool("once", false, "exit after one coordinator session")
	register := fs.String("register", "", "announce this daemon to a coordinator/service registry at this address instead of being named in -worker-addrs")
	advertise := fs.String("advertise", "", "session address to announce with -register (default: the -listen address; set it when listening on a wildcard)")
	heartbeat := fs.Duration("heartbeat", 0,
		fmt.Sprintf("abort a session whose coordinator has been silent this long (0 = wait forever); "+
			"the coordinator pings every %v by default, so a small multiple of that is safe", distrib.DefaultHeartbeat))
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "bracesim-worker:", err)
		return 1
	}
	defer lis.Close()
	fmt.Fprintf(stdout, "listening on %s\n", lis.Addr())
	err = distrib.ServeWith(lis, distrib.ServeOptions{
		Log:          stderr,
		Once:         *once,
		CoordTimeout: *heartbeat,
		Drain:        drain,
		Register:     *register,
		Advertise:    *advertise,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bracesim-worker:", err)
		return 1
	}
	return 0
}
