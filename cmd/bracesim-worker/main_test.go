package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, nil, &out, &errb)
	return code, out.String(), errb.String()
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut, "-listen") {
		t.Errorf("usage should document -listen:\n%s", errOut)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnbindableAddressFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-listen", "256.0.0.1:0")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "bracesim-worker:") {
		t.Errorf("error not reported:\n%s", errOut)
	}
}
