package main

import (
	"bufio"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/bigreddata/brace"
	"github.com/bigreddata/brace/internal/distrib"
)

// workerMainEnv makes the test binary re-exec itself straight into the
// daemon's main path — flag parsing, signal handling, serve loop — so the
// SIGTERM drain is tested against the real process wiring.
const workerMainEnv = "BRACESIM_WORKER_TEST_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(workerMainEnv) != "" {
		os.Exit(mainWith([]string{"-listen", "127.0.0.1:0"}))
	}
	os.Exit(m.Run())
}

// daemonProc is one re-exec'd bracesim-worker OS process.
type daemonProc struct {
	addr    string
	cmd     *exec.Cmd
	started <-chan struct{} // first coordinator session attached
	stderr  *strings.Builder
	// stderrDone closes when the stderr pipe hits EOF; waitExit waits for
	// it so the drain announcement is fully captured (and so Wait never
	// closes the pipe under the reader).
	stderrDone chan struct{}
}

func spawnDaemon(t *testing.T) *daemonProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerMainEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	d := &daemonProc{cmd: cmd, stderr: &strings.Builder{}, stderrDone: make(chan struct{})}
	started := make(chan struct{})
	d.started = started
	go func() {
		defer close(d.stderrDone)
		sc := bufio.NewScanner(errPipe)
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			d.stderr.WriteString(line + "\n")
			if !signaled && strings.Contains(line, "bracesim-worker: proc") {
				close(started)
				signaled = true
			}
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- ""
	}()
	select {
	case a := <-addrCh:
		if a == "" {
			t.Fatal("worker process exited without binding")
		}
		d.addr = a
		return d
	case <-time.After(30 * time.Second):
		t.Fatal("worker process did not bind in time")
		return nil
	}
}

// waitExit waits for the process and returns its exit code.
func (d *daemonProc) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case <-d.stderrDone:
	case <-time.After(timeout):
		t.Fatal("worker stderr never hit EOF")
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatal(err)
	case <-time.After(timeout):
		t.Fatal("worker process did not exit")
	}
	return -1
}

// The graceful-shutdown satellite against a real OS process: SIGTERM to
// an idle daemon exits 0 after announcing the drain.
func TestSIGTERMIdleDaemonExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	d := spawnDaemon(t)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, d.stderr.String())
	}
	if !strings.Contains(d.stderr.String(), "draining") {
		t.Errorf("drain not announced:\n%s", d.stderr.String())
	}
}

// SIGTERM mid-run: the daemon finishes its in-flight epoch barrier, exits
// 0, and the coordinator recovers the run on the surviving worker with
// final state bit-identical to an unfailed in-memory run.
func TestSIGTERMMidRunDrainsEpochAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const (
		agents = 150
		seed   = uint64(17)
		parts  = 4
		ticks  = 400
		epoch  = 5
	)
	survivor := spawnDaemon(t)
	victim := spawnDaemon(t)

	type outcome struct {
		res *distrib.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := distrib.Run(distrib.Options{
			Addrs:    []string{survivor.addr, victim.addr},
			Scenario: "epidemic",
			Agents:   agents, Seed: seed,
			Partitions: parts, Ticks: ticks,
			Tunables: distrib.Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, RejoinTimeout: time.Second},
		})
		done <- outcome{res, err}
	}()

	select {
	case <-victim.started:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never started its session")
	}
	time.Sleep(50 * time.Millisecond)
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := victim.waitExit(t, 60*time.Second); code != 0 {
		t.Fatalf("drained worker exit = %d, want 0\nstderr:\n%s", code, victim.stderr.String())
	}

	var got outcome
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish after the drain")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	res := got.res
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1 (was the drain too late?)", res.Recoveries)
	}

	mem, err := brace.NewScenario("epidemic",
		brace.ScenarioConfig{Agents: agents, Seed: seed}, brace.Config{Workers: parts})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want := mem.Agents()
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: drained %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs after SIGTERM drain:\n  mem: %v\n  got: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
}
