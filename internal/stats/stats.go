// Package stats provides the statistical utilities used by the experiment
// harness: RMSPE goodness-of-fit (the measure of Table 2), running moments,
// throughput meters and labeled result series for the figure reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RMSPE returns the Relative Mean Square Percentage Error between a
// reference series and a measured series:
//
//	RMSPE = sqrt( (1/n) Σ ((meas_i − ref_i)/ref_i)² )
//
// It is the goodness-of-fit measure used in the traffic simulation
// literature [9] and in Table 2 of the paper. Reference entries equal to
// zero are skipped (their relative error is undefined); if every entry is
// skipped or the series are empty, RMSPE returns an error.
func RMSPE(ref, meas []float64) (float64, error) {
	if len(ref) != len(meas) {
		return 0, fmt.Errorf("stats: RMSPE length mismatch %d vs %d", len(ref), len(meas))
	}
	var sum float64
	var n int
	for i := range ref {
		if ref[i] == 0 {
			continue
		}
		d := (meas[i] - ref[i]) / ref[i]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: RMSPE has no usable reference entries")
	}
	return math.Sqrt(sum / float64(n)), nil
}

// Welford accumulates mean and variance in a single numerically stable pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge combines another accumulator into w (parallel Welford / Chan et
// al.), allowing per-worker accumulation with a final reduce.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Histogram is a fixed-bin histogram over [min, max); out-of-range values
// are clamped into the edge bins so totals are preserved.
type Histogram struct {
	Min, Max float64
	Bins     []int64
}

// NewHistogram allocates a histogram with n bins over [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Bins)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated from bin midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var cum int64
	w := (h.Max - h.Min) / float64(len(h.Bins))
	for i, b := range h.Bins {
		cum += b
		if cum > target {
			return h.Min + w*(float64(i)+0.5)
		}
	}
	return h.Max
}

// Series is one labeled curve of an experiment figure: x values with the
// measured y values, e.g. "BRACE - indexing" in Fig. 3.
type Series struct {
	Label string
	X, Y  []float64
}

// Add appends one (x, y) sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table formats one or more series sharing (approximately) the same x grid
// as an aligned text table, the format the experiment harness prints.
func Table(title, xName string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	// Collect the union of x values.
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	grid := make([]float64, 0, len(xs))
	for x := range xs {
		grid = append(grid, x)
	}
	sort.Float64s(grid)
	fmt.Fprintf(&b, "%-14s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range grid {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, " %22.4g", y)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s *Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MonotoneIncreasing reports whether ys never decreases by more than a
// fractional tolerance; the scale-up assertions (Figs. 6–7) allow small
// noise but must catch a collapse.
func MonotoneIncreasing(ys []float64, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]*(1-tol) {
			return false
		}
	}
	return true
}

// GrowthExponent fits y ≈ c·xᵏ by least squares on log-log axes and returns
// k. The Fig. 3 shape check asserts k≈2 for the no-index engine and k≈1 for
// the indexed one. All inputs must be positive.
func GrowthExponent(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("stats: GrowthExponent needs ≥2 paired samples")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("stats: GrowthExponent requires positive samples")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("stats: degenerate x values")
	}
	return (n*sxy - sx*sy) / den, nil
}
