package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRMSPEExact(t *testing.T) {
	got, err := RMSPE([]float64{10, 20}, []float64{11, 18})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((0.1*0.1 + 0.1*0.1) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSPE = %v, want %v", got, want)
	}
}

func TestRMSPEPerfectFit(t *testing.T) {
	got, err := RMSPE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("RMSPE perfect = %v, %v", got, err)
	}
}

func TestRMSPESkipsZeroRef(t *testing.T) {
	got, err := RMSPE([]float64{0, 10}, []float64{5, 12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RMSPE = %v, want 0.2", got)
	}
}

func TestRMSPEErrors(t *testing.T) {
	if _, err := RMSPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RMSPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero reference accepted")
	}
	if _, err := RMSPE(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-v) > 1e-9 {
		t.Errorf("var = %v, want %v", w.Var(), v)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Std()-math.Sqrt(v)) > 1e-9 {
		t.Error("Std mismatch")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole, a, b Welford
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Errorf("merge mean/var = %v/%v, want %v/%v", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}
	// Merging into empty and merging empty are both identity-ish.
	var empty Welford
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty broken")
	}
	before := whole
	whole.Merge(Welford{})
	if whole != before {
		t.Error("merging empty changed accumulator")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("edge bins = %d, %d", h.Bins[0], h.Bins[9])
	}
	med := h.Quantile(0.5)
	if med < 3 || med > 7 {
		t.Errorf("median = %v", med)
	}
	if (&Histogram{Min: 0, Max: 1, Bins: make([]int64, 3)}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Label: "idx"}
	b := &Series{Label: "noidx"}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 30)
	out := Table("Fig X", "n", a, b)
	if !strings.Contains(out, "# Fig X") || !strings.Contains(out, "idx") {
		t.Errorf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing marker for absent sample:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, 2 rows
		t.Errorf("table rows = %d:\n%s", len(lines), out)
	}
}

func TestMonotoneIncreasing(t *testing.T) {
	if !MonotoneIncreasing([]float64{1, 2, 3, 3.9}, 0.1) {
		t.Error("increasing series rejected")
	}
	if MonotoneIncreasing([]float64{1, 2, 1.0}, 0.1) {
		t.Error("collapsing series accepted")
	}
	if !MonotoneIncreasing([]float64{1, 0.95}, 0.1) {
		t.Error("within-tolerance dip rejected")
	}
	if !MonotoneIncreasing(nil, 0) {
		t.Error("empty series should be monotone")
	}
}

func TestGrowthExponent(t *testing.T) {
	var xs, ys, ys2 []float64
	for _, x := range []float64{100, 200, 400, 800} {
		xs = append(xs, x)
		ys = append(ys, 3*x*x) // quadratic
		ys2 = append(ys2, 5*x) // linear
	}
	k, err := GrowthExponent(xs, ys)
	if err != nil || math.Abs(k-2) > 1e-9 {
		t.Errorf("quadratic exponent = %v, %v", k, err)
	}
	k, err = GrowthExponent(xs, ys2)
	if err != nil || math.Abs(k-1) > 1e-9 {
		t.Errorf("linear exponent = %v, %v", k, err)
	}
	if _, err := GrowthExponent([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := GrowthExponent([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := GrowthExponent([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}
