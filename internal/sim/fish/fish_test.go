package fish

import (
	"math"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestPopulationLayout(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(100, 1)
	if len(pop) != 100 {
		t.Fatalf("population = %d", len(pop))
	}
	informed := 0
	plus, minus := 0, 0
	for _, a := range pop {
		if r := m.Pos(a).Len(); r > m.P.SchoolRadius {
			t.Errorf("fish outside school radius: %v", r)
		}
		h := math.Hypot(a.State[m.hx], a.State[m.hy])
		if math.Abs(h-1) > 1e-9 {
			t.Errorf("heading not unit length: %v", h)
		}
		switch m.Class(a) {
		case 1:
			informed++
			plus++
		case -1:
			informed++
			minus++
		}
	}
	if informed != 10 {
		t.Errorf("informed = %d, want 10", informed)
	}
	if plus != 5 || minus != 5 {
		t.Errorf("informed split = %d/%d", plus, minus)
	}
}

func TestSequentialMatchesDistributed(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(150, 2)
	pop2 := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		pop2[i] = a.Clone()
	}
	seq, err := engine.NewSequential(m, pop, spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(m, pop2, engine.Options{
		Workers: 5, Index: spatial.KindKDTree, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("sizes differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("fish %d diverged", a[i].ID)
		}
	}
}

func TestHeadingsStayUnit(t *testing.T) {
	m := NewModel(DefaultParams())
	e, err := engine.NewSequential(m, m.NewPopulation(80, 3), spatial.KindKDTree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(30); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Agents() {
		h := math.Hypot(a.State[m.hx], a.State[m.hy])
		if math.Abs(h-1) > 1e-6 {
			t.Fatalf("fish %d heading norm %v", a.ID, h)
		}
	}
}

func TestAvoidanceSeparatesPair(t *testing.T) {
	p := DefaultParams()
	p.TurnNoise = 0 // deterministic geometry
	p.InformedFrac = 0
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(0, 0))
	a.State[m.hx] = 1
	b := agent.New(m.s, 2)
	b.SetPos(m.s, geom.V(0.5, 0)) // inside avoidance radius α=1
	b.State[m.hx] = 1
	e, err := engine.NewSequential(m, []*agent.Agent{a, b}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	d0 := a.Pos(m.s).Dist(b.Pos(m.s))
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	d1 := got[0].Pos(m.s).Dist(got[1].Pos(m.s))
	if d1 <= d0 {
		t.Errorf("avoidance did not separate: %v -> %v", d0, d1)
	}
}

func TestAttractionPullsPairTogether(t *testing.T) {
	p := DefaultParams()
	p.TurnNoise = 0
	p.InformedFrac = 0
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(0, 0))
	a.State[m.hy] = 1 // heading +y, neighbor to the east
	b := agent.New(m.s, 2)
	b.SetPos(m.s, geom.V(5, 0)) // inside ρ=10, outside α=1
	b.State[m.hy] = 1
	e, err := engine.NewSequential(m, []*agent.Agent{a, b}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	d0 := a.Pos(m.s).Dist(b.Pos(m.s))
	if err := e.RunTicks(2); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	d1 := got[0].Pos(m.s).Dist(got[1].Pos(m.s))
	if d1 >= d0 {
		t.Errorf("attraction did not pull together: %v -> %v", d0, d1)
	}
}

func TestInformedClassesSplitSchool(t *testing.T) {
	// The two informed classes pull the school apart along x over time —
	// the load-skew driver of Figs. 7–8.
	p := DefaultParams()
	p.InformedFrac = 0.2
	p.Omega = 0.8
	m := NewModel(p)
	e, err := engine.NewSequential(m, m.NewPopulation(200, 4), spatial.KindKDTree, 4)
	if err != nil {
		t.Fatal(err)
	}
	spreadX := func() float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, a := range e.Agents() {
			x := m.Pos(a).X
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return hi - lo
	}
	s0 := spreadX()
	if err := e.RunTicks(150); err != nil {
		t.Fatal(err)
	}
	s1 := spreadX()
	if s1 < s0*2 {
		t.Errorf("school did not spread: %v -> %v", s0, s1)
	}
	// Informed classes should sit on opposite sides: mean x of class +1
	// greater than mean x of class −1.
	var sumP, sumM float64
	var nP, nM int
	for _, a := range e.Agents() {
		switch m.Class(a) {
		case 1:
			sumP += m.Pos(a).X
			nP++
		case -1:
			sumM += m.Pos(a).X
			nM++
		}
	}
	if nP == 0 || nM == 0 {
		t.Fatal("informed classes missing")
	}
	if sumP/float64(nP) <= sumM/float64(nM) {
		t.Errorf("informed classes did not separate: +x mean %v, -x mean %v",
			sumP/float64(nP), sumM/float64(nM))
	}
}

func TestLonelyFishKeepsSwimming(t *testing.T) {
	p := DefaultParams()
	p.TurnNoise = 0
	p.InformedFrac = 0
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.State[m.hx] = 1
	e, err := engine.NewSequential(m, []*agent.Agent{a}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()[0]
	if got.State[m.x] != 5*p.Speed || got.State[m.y] != 0 {
		t.Errorf("lonely fish at (%v,%v), want (%v,0)", got.State[m.x], got.State[m.y], 5*p.Speed)
	}
}
