// Package fish implements the Couzin et al. fish school model the paper
// evaluates (§5.1, App. C): "Effective leadership and decision-making in
// animal groups on the move" [12]. Each fish avoids neighbors closer than
// the avoidance radius α; otherwise it is attracted to and aligns with
// neighbors within the visibility radius ρ. Informed individuals balance
// their social vector with a preferred direction g using weight ω.
//
// The experiments use two classes of informed individuals with opposite
// preferred directions, so the school gradually splits into two groups at
// the extremes of the (unbounded) ocean — the load-skew driver of
// Figs. 7–8.
package fish

import (
	"math"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
)

// Params holds the Couzin model constants.
type Params struct {
	// Alpha is the avoidance radius α.
	Alpha float64
	// Rho is the attraction/visibility radius ρ (> α); Fig. 4 sweeps it.
	Rho float64
	// Speed is the constant cruise speed per tick.
	Speed float64
	// Omega is the informed individuals' preference weight ω.
	Omega float64
	// TurnNoise perturbs the heading each tick (radians, uniform ±).
	TurnNoise float64
	// InformedFrac is the fraction of fish that are informed, split
	// evenly between the two preferred directions (±x).
	InformedFrac float64
	// SchoolRadius is the initial placement radius.
	SchoolRadius float64
}

// DefaultParams returns the calibration used by the experiments.
func DefaultParams() Params {
	return Params{
		Alpha:        1,
		Rho:          10,
		Speed:        1,
		Omega:        0.4,
		TurnNoise:    0.05,
		InformedFrac: 0.1,
		SchoolRadius: 30,
	}
}

// Model is the BRACE form of the fish school. All effect assignments are
// local (the paper: "Neither of these simulations uses non-local effect
// assignments"), so the engine runs the single-reduce dataflow.
type Model struct {
	P Params

	s *agent.Schema
	// state: position, heading, class (0 uninformed, ±1 informed)
	x, y, hx, hy, class int
	// effects
	avx, avy, cntAv    int // avoidance accumulator
	atx, aty, alx, aly int // attraction + alignment accumulators
	cntSoc             int
}

// NewModel builds the schema.
func NewModel(p Params) *Model {
	m := &Model{P: p}
	s := agent.NewSchema("Fish")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.hx = s.AddState("hx", true)
	m.hy = s.AddState("hy", true)
	m.class = s.AddState("class", false)
	m.avx = s.AddEffect("avoidx", false, agent.Sum)
	m.avy = s.AddEffect("avoidy", false, agent.Sum)
	m.cntAv = s.AddEffect("countAvoid", false, agent.Sum)
	m.atx = s.AddEffect("attractx", false, agent.Sum)
	m.aty = s.AddEffect("attracty", false, agent.Sum)
	m.alx = s.AddEffect("alignx", false, agent.Sum)
	m.aly = s.AddEffect("aligny", false, agent.Sum)
	m.cntSoc = s.AddEffect("countSocial", false, agent.Sum)
	s.SetPosition("x", "y")
	s.SetVisibility(p.Rho)
	s.SetReach(p.Speed + 1e-9)
	return m
}

// Schema implements engine.Model.
func (m *Model) Schema() *agent.Schema { return m.s }

// Query implements engine.Model: accumulate the avoidance and social
// (attraction + alignment) vectors. Both accumulations are sums, so the
// query is exactly order-independent. Like the traffic model (and the
// BRASIL compiler's output), it folds into local variables and assigns
// each effect once: every field still receives the same additions in the
// same neighbor order starting from θ = 0, so the result is bit-identical
// to per-neighbor assignment — without an interface call per neighbor per
// field on the hottest loop in the tree.
func (m *Model) Query(self *agent.Agent, env engine.Env) {
	sx, sy := self.State[m.x], self.State[m.y]
	a2 := m.P.Alpha * m.P.Alpha
	// One escaping struct, not eight escaping floats: the closure capture
	// costs a single allocation per query phase.
	var acc struct {
		avx, avy, cntAv            float64
		atx, aty, alx, aly, cntSoc float64
	}
	env.ForEachVisible(func(o *agent.Agent) {
		if o.ID == self.ID {
			return
		}
		dx, dy := o.State[m.x]-sx, o.State[m.y]-sy
		d2 := dx*dx + dy*dy
		if d2 == 0 {
			return
		}
		d := math.Sqrt(d2)
		if d2 < a2 {
			// Avoidance: turn away from too-close neighbors.
			acc.avx += -dx / d
			acc.avy += -dy / d
			acc.cntAv++
			return
		}
		// Attraction toward, and alignment with, visible neighbors.
		acc.atx += dx / d
		acc.aty += dy / d
		acc.alx += o.State[m.hx]
		acc.aly += o.State[m.hy]
		acc.cntSoc++
	})
	env.Assign(self, m.avx, acc.avx)
	env.Assign(self, m.avy, acc.avy)
	env.Assign(self, m.cntAv, acc.cntAv)
	env.Assign(self, m.atx, acc.atx)
	env.Assign(self, m.aty, acc.aty)
	env.Assign(self, m.alx, acc.alx)
	env.Assign(self, m.aly, acc.aly)
	env.Assign(self, m.cntSoc, acc.cntSoc)
}

// QueryCols implements engine.ColumnarModel: the same accumulation as
// Query, streamed over the state columns. Same visible rows in the same
// ascending-ID order, same arithmetic on the same float64 values, so the
// effects are bit-identical — without the per-neighbor indirect call, the
// two pointer chases into each neighbor's State, or the escaping closure
// frame. This is the hottest loop of the benchmark suite.
func (m *Model) QueryCols(env *engine.Cols, self int32) {
	xs, ys := env.State(m.x), env.State(m.y)
	hxs, hys := env.State(m.hx), env.State(m.hy)
	sx, sy := xs[self], ys[self]
	a2 := m.P.Alpha * m.P.Alpha
	var avx, avy, cntAv float64
	var atx, aty, alx, aly, cntSoc float64
	for _, j := range env.Visible() {
		if j == self {
			continue
		}
		dx, dy := xs[j]-sx, ys[j]-sy
		d2 := dx*dx + dy*dy
		if d2 == 0 {
			continue
		}
		d := math.Sqrt(d2)
		if d2 < a2 {
			avx += -dx / d
			avy += -dy / d
			cntAv++
			continue
		}
		atx += dx / d
		aty += dy / d
		alx += hxs[j]
		aly += hys[j]
		cntSoc++
	}
	env.Assign(self, m.avx, avx)
	env.Assign(self, m.avy, avy)
	env.Assign(self, m.cntAv, cntAv)
	env.Assign(self, m.atx, atx)
	env.Assign(self, m.aty, aty)
	env.Assign(self, m.alx, alx)
	env.Assign(self, m.aly, aly)
	env.Assign(self, m.cntSoc, cntSoc)
}

// Update implements engine.Model: compose the desired direction per
// Couzin's priority rule, blend the informed preference, perturb, move.
func (m *Model) Update(self *agent.Agent, u *engine.UpdateCtx) {
	var dir geom.Vec
	if self.Effect[m.cntAv] > 0 {
		// Avoidance has strict priority.
		dir = geom.V(self.Effect[m.avx], self.Effect[m.avy])
	} else if self.Effect[m.cntSoc] > 0 {
		dir = geom.V(
			self.Effect[m.atx]+self.Effect[m.alx],
			self.Effect[m.aty]+self.Effect[m.aly],
		)
	} else {
		dir = geom.V(self.State[m.hx], self.State[m.hy])
	}
	dir = dir.Norm()
	if dir == (geom.Vec{}) {
		dir = geom.V(self.State[m.hx], self.State[m.hy])
	}
	if c := self.State[m.class]; c != 0 {
		g := geom.V(c, 0) // preferred direction ±x
		dir = dir.Add(g.Scale(m.P.Omega)).Norm()
	}
	// Angular noise.
	dir = dir.Rotate(u.RNG.Range(-m.P.TurnNoise, m.P.TurnNoise))
	self.State[m.hx] = dir.X
	self.State[m.hy] = dir.Y
	self.State[m.x] += m.P.Speed * dir.X
	self.State[m.y] += m.P.Speed * dir.Y
}

// NewPopulation places n fish uniformly in a disc with random headings;
// InformedFrac of them are informed, alternating between the +x and −x
// preferred directions.
func (m *Model) NewPopulation(n int, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	informed := int(float64(n) * m.P.InformedFrac)
	for i := 0; i < n; i++ {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(m.s, id)
		r := m.P.SchoolRadius * math.Sqrt(rng.Float64())
		th := rng.Range(0, 2*math.Pi)
		a.State[m.x] = r * math.Cos(th)
		a.State[m.y] = r * math.Sin(th)
		h := rng.Range(0, 2*math.Pi)
		a.State[m.hx] = math.Cos(h)
		a.State[m.hy] = math.Sin(h)
		if i < informed {
			if i%2 == 0 {
				a.State[m.class] = 1
			} else {
				a.State[m.class] = -1
			}
		}
		pop[i] = a
	}
	return pop
}

// Pos returns a fish's position.
func (m *Model) Pos(a *agent.Agent) geom.Vec { return a.Pos(m.s) }

// Class returns 0 for uninformed fish, ±1 for the two informed classes.
func (m *Model) Class(a *agent.Agent) float64 { return a.State[m.class] }

var (
	_ engine.Model         = (*Model)(nil)
	_ engine.ColumnarModel = (*Model)(nil)
)
