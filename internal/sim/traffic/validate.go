package traffic

import (
	"fmt"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/stats"
)

// LaneSeries holds the windowed per-lane telemetry Table 2 compares:
// lane-change counts, vehicle density, and mean velocity, sampled every
// window ticks. Indexing is [lane][window].
type LaneSeries struct {
	Lanes                   int
	Changes, Density, MeanV [][]float64
}

func newLaneSeries(lanes int) *LaneSeries {
	ls := &LaneSeries{Lanes: lanes}
	ls.Changes = make([][]float64, lanes)
	ls.Density = make([][]float64, lanes)
	ls.MeanV = make([][]float64, lanes)
	return ls
}

// tickStepper runs one simulation tick and reports the per-vehicle view;
// implemented for both the BRACE engine and the hand-coded MITSIM so the
// telemetry pipeline is identical for the two sides of Table 2.
type tickStepper interface {
	step() error
	each(fn func(id uint64, lane int, v float64))
	params() Params
}

// collect runs `ticks` ticks, recording per-lane stats every window ticks.
// Lane changes are detected by diffing each vehicle's lane across ticks
// (recycled vehicles get fresh IDs and don't count as changes), so both
// simulators are measured by the same instrument.
func collect(s tickStepper, ticks, window int) (*LaneSeries, error) {
	p := s.params()
	ls := newLaneSeries(p.Lanes)
	prev := make(map[uint64]int)
	s.each(func(id uint64, lane int, v float64) { prev[id] = lane })

	changes := make([]float64, p.Lanes)
	for t := 1; t <= ticks; t++ {
		if err := s.step(); err != nil {
			return nil, err
		}
		cur := make(map[uint64]int, len(prev))
		counts := make([]float64, p.Lanes)
		sumV := make([]float64, p.Lanes)
		s.each(func(id uint64, lane int, v float64) {
			cur[id] = lane
			counts[lane]++
			sumV[lane] += v
			if old, ok := prev[id]; ok && old != lane {
				changes[lane]++
			}
		})
		prev = cur
		if t%window == 0 {
			for l := 0; l < p.Lanes; l++ {
				ls.Changes[l] = append(ls.Changes[l], changes[l])
				ls.Density[l] = append(ls.Density[l], counts[l]/p.Length)
				mv := 0.0
				if counts[l] > 0 {
					mv = sumV[l] / counts[l]
				}
				ls.MeanV[l] = append(ls.MeanV[l], mv)
			}
			changes = make([]float64, p.Lanes)
		}
	}
	return ls, nil
}

// braceStepper adapts a BRACE engine (sequential or distributed) running a
// traffic Model.
type braceStepper struct {
	m   *Model
	run func(int) error
	pop func() agent.Population
}

func (b *braceStepper) step() error { return b.run(1) }
func (b *braceStepper) each(fn func(uint64, int, float64)) {
	for _, a := range b.pop() {
		fn(uint64(a.ID), b.m.Lane(a), b.m.Speed(a))
	}
}
func (b *braceStepper) params() Params { return b.m.P }

// Engine is the subset of engine.Sequential / engine.Distributed the
// telemetry needs.
type Engine interface {
	RunTicks(int) error
	Agents() agent.Population
}

// CollectBRACE gathers windowed lane statistics from a BRACE engine.
func CollectBRACE(e Engine, m *Model, ticks, window int) (*LaneSeries, error) {
	return collect(&braceStepper{m: m, run: e.RunTicks, pop: e.Agents}, ticks, window)
}

// mitsimStepper adapts the hand-coded simulator.
type mitsimStepper struct{ s *MITSIM }

func (m *mitsimStepper) step() error { m.s.RunTicks(1); return nil }
func (m *mitsimStepper) each(fn func(uint64, int, float64)) {
	for _, c := range m.s.cars {
		fn(c.id, c.lane, c.v)
	}
}
func (m *mitsimStepper) params() Params { return m.s.P }

// CollectMITSIM gathers windowed lane statistics from the hand-coded
// simulator.
func CollectMITSIM(s *MITSIM, ticks, window int) (*LaneSeries, error) {
	return collect(&mitsimStepper{s: s}, ticks, window)
}

// Row is one lane's row of Table 2: RMSPE of change frequency, average
// density and average velocity between the reference (MITSIM) and measured
// (BRACE) series.
type Row struct {
	Lane                       int
	ChangeFreq, Density, MeanV float64
}

// Validate computes the Table 2 rows. ref is the hand-coded MITSIM run,
// meas the BRACE run.
func Validate(ref, meas *LaneSeries) ([]Row, error) {
	if ref.Lanes != meas.Lanes {
		return nil, fmt.Errorf("traffic: lane counts differ: %d vs %d", ref.Lanes, meas.Lanes)
	}
	rows := make([]Row, ref.Lanes)
	for l := 0; l < ref.Lanes; l++ {
		cf, err := stats.RMSPE(ref.Changes[l], meas.Changes[l])
		if err != nil {
			return nil, fmt.Errorf("traffic: lane %d changes: %w", l+1, err)
		}
		de, err := stats.RMSPE(ref.Density[l], meas.Density[l])
		if err != nil {
			return nil, fmt.Errorf("traffic: lane %d density: %w", l+1, err)
		}
		mv, err := stats.RMSPE(ref.MeanV[l], meas.MeanV[l])
		if err != nil {
			return nil, fmt.Errorf("traffic: lane %d velocity: %w", l+1, err)
		}
		rows[l] = Row{Lane: l + 1, ChangeFreq: cf, Density: de, MeanV: mv}
	}
	return rows, nil
}
