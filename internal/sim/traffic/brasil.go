package traffic

// FollowScript is a BRASIL implementation of the traffic model's
// longitudinal core — car following plus free flow on a ring road —
// mirroring how "a large part of our traffic simulation was implemented by
// a domain scientist" in BRASIL (§4.1). Full MITSIM lane changing needs
// argmin perception (lead vehicle *speed* at the minimum gap), which
// BRASIL's pure combinators cannot express in one pass; the Go Model keeps
// that part, exactly as the paper's BRACE kept parts of MITSIM in the
// runtime.
//
// Model notes:
//   - one lane per class instance; x wraps modulo the segment length, so
//     the x field carries no #range tag (the wrap jump must not be
//     cropped) and visibility comes from the tagged y field;
//   - perception: minimum forward gap (min combinator) and the mean speed
//     of traffic ahead within the headway window (sum/sum);
//   - control: follow the window's mean speed when the gap is tight,
//     otherwise relax toward the desired speed; hard-brake inside the
//     minimum gap. All branches via cond(), keeping the update rule a
//     single expression.
//
// The constants mirror DefaultParams: headway 1.6 s, min gap 6 m, follow
// gain 0.6, free-flow gain 0.3, vmax 34 m/s, segment 4000 m, ρ = 200 m.
const FollowScript = `
class Car {
  // Ring position; wraps at the 4000m segment end.
  public state float x : (x + v) % 4000;
  // Lane (fixed); its range tag sets visibility rho = 200.
  public state float y : y; #range[-200,200];
  // Speed: brake hard under the minimum gap; follow the window mean when
  // inside the headway distance; otherwise free-flow toward desired.
  public state float v :
    max(0, min(34,
      cond(gap < 6,
           v - 34,
           cond(gap < v * 1.6 + 6,
                v + 0.6 * (cond(cnt > 0, vsum / max(cnt, 1), desired) - v),
                v + 0.3 * (desired - v)))));
  public state float desired : desired;

  private effect float gap  : min;
  private effect float vsum : sum;
  private effect float cnt  : sum;

  public void run() {
    foreach (Car p : Extent<Car>) {
      if (p != this) {
        if (p.y == y) {
          // Forward distance on the ring.
          const float d = (p.x - x + 4000) % 4000;
          if (d < 200) {
            gap <- d;
            if (d < v * 1.6 + 6) {
              vsum <- p.v;
              cnt <- 1;
            }
          }
        }
      }
    }
  }
}
`
