package traffic

import (
	"math"
	"sort"

	"github.com/bigreddata/brace/internal/agent"
)

// MITSIM is the hand-coded single-node comparator: the same driving model
// executed over per-lane position-sorted vehicle lists, so lead/rear lookup
// is a true nearest-neighbor probe (O(1) after an O(n log n) per-tick
// sort) with *unbounded* lookahead — exactly the hand-optimized design the
// paper compares BRACE against in Fig. 3, and the source of the small
// statistical deviations quantified in Table 2 (BRACE fixes ρ = 200).
type MITSIM struct {
	P    Params
	Seed uint64

	cars  []car
	tick  uint64
	next  uint64 // next vehicle id
	moved int64  // agent-ticks processed

	// per-tick telemetry for validation
	laneChanges []int64 // by lane changed *into*
}

type car struct {
	id      uint64
	x       float64
	lane    int
	v       float64
	desired float64
}

// NewMITSIM builds and populates the hand-coded simulator.
func NewMITSIM(p Params, seed uint64) *MITSIM {
	s := &MITSIM{P: p, Seed: seed, laneChanges: make([]int64, p.Lanes)}
	n := p.Vehicles()
	perLane := n / p.Lanes
	var id uint64 = 1
	for lane := 0; lane < p.Lanes; lane++ {
		for i := 0; i < perLane; i++ {
			rng := agent.NewRNG(seed, 0, agent.ID(id))
			spacing := p.Length / float64(perLane)
			s.cars = append(s.cars, car{
				id:      id,
				x:       (float64(i) + 0.5*rng.Float64()) * spacing,
				lane:    lane,
				v:       rng.Range(p.DesiredMean-p.DesiredSpread, p.DesiredMean),
				desired: rng.Range(p.DesiredMean-p.DesiredSpread, p.DesiredMean+p.DesiredSpread),
			})
			id++
		}
	}
	s.next = id
	return s
}

// RunTicks advances the hand-coded simulation n ticks.
func (s *MITSIM) RunTicks(n int) {
	for i := 0; i < n; i++ {
		s.runTick()
		s.tick++
	}
}

func (s *MITSIM) runTick() {
	p := s.P
	// Per-lane sorted order (indices into s.cars).
	byLane := make([][]int, p.Lanes)
	for i := range s.cars {
		l := s.cars[i].lane
		byLane[l] = append(byLane[l], i)
	}
	for _, lane := range byLane {
		sort.Slice(lane, func(a, b int) bool {
			ca, cb := &s.cars[lane[a]], &s.cars[lane[b]]
			if ca.x != cb.x {
				return ca.x < cb.x
			}
			return ca.id < cb.id
		})
	}
	// Rank of each car within its lane, for O(1) lead/rear lookup.
	rank := make([]int, len(s.cars))
	for _, lane := range byLane {
		for r, ci := range lane {
			rank[ci] = r
		}
	}
	// Prefix sums of speed per lane for the ρ-window average-speed probe.
	// MITSIM's hand-coded index makes this cheap; we binary search the
	// window bounds.
	type pre struct {
		xs  []float64
		cum []float64 // cumulative speeds
	}
	pres := make([]pre, p.Lanes)
	for l, lane := range byLane {
		xs := make([]float64, len(lane))
		cum := make([]float64, len(lane)+1)
		for i, ci := range lane {
			xs[i] = s.cars[ci].x
			cum[i+1] = cum[i] + s.cars[ci].v
		}
		pres[l] = pre{xs: xs, cum: cum}
	}

	// Decide all cars against the tick-start snapshot (the state-effect
	// discipline: decisions read only tick-start state).
	decisions := make([]decision, len(s.cars))
	for i := range s.cars {
		c := &s.cars[i]
		per := newPerception()
		for rel := 0; rel < 3; rel++ {
			abs := c.lane + rel - 1
			if abs < 0 || abs >= p.Lanes {
				continue
			}
			lane := byLane[abs]
			// Nearest lead/rear via sorted order (unbounded lookahead).
			var li int
			if abs == c.lane {
				li = rank[i]
			} else {
				li = sort.Search(len(lane), func(k int) bool {
					o := &s.cars[lane[k]]
					if o.x != c.x {
						return o.x >= c.x
					}
					return o.id >= c.id
				})
				li-- // li now indexes the nearest car strictly behind
			}
			if li+1 < len(lane) {
				o := &s.cars[lane[li+1]]
				per.leadGap[rel] = o.x - c.x
				per.leadV[rel] = o.v
			}
			if li >= 0 && lane[li] != i {
				per.rearGap[rel] = c.x - s.cars[lane[li]].x
			} else if li-1 >= 0 && lane[li] == i {
				per.rearGap[rel] = c.x - s.cars[lane[li-1]].x
			}
			// ρ-window average speed (excluding self).
			lo := sort.SearchFloat64s(pres[abs].xs, c.x-p.Lookahead)
			hi := sort.SearchFloat64s(pres[abs].xs, c.x+p.Lookahead)
			sum := pres[abs].cum[hi] - pres[abs].cum[lo]
			n := hi - lo
			if abs == c.lane {
				sum -= c.v
				n--
			}
			if n > 0 {
				per.avgV[rel] = sum / float64(n)
			}
		}
		rng := agent.NewRNG(s.Seed, s.tick, agent.ID(c.id))
		decisions[i] = drive(p, c.lane, c.v, c.desired, per, rng)
	}

	// Apply.
	out := s.cars[:0]
	for i := range s.cars {
		c := s.cars[i]
		d := decisions[i]
		if d.changed {
			s.laneChanges[d.newLane]++
		}
		c.lane = d.newLane
		c.v = d.newV
		c.x += d.dx
		if c.x > p.Length {
			// Recycle: exit downstream, fresh vehicle enters upstream.
			rng := agent.NewRNG(s.Seed, s.tick, agent.ID(c.id)+1<<62)
			c = car{
				id:      s.next,
				x:       c.x - p.Length,
				lane:    c.lane,
				v:       c.v,
				desired: rng.Range(p.DesiredMean-p.DesiredSpread, p.DesiredMean+p.DesiredSpread),
			}
			s.next++
		}
		out = append(out, c)
	}
	s.cars = out
	s.moved += int64(len(s.cars))
}

// Tick returns completed ticks.
func (s *MITSIM) Tick() uint64 { return s.tick }

// AgentTicks returns processed vehicle-ticks.
func (s *MITSIM) AgentTicks() int64 { return s.moved }

// Cars returns the live vehicle count.
func (s *MITSIM) Cars() int { return len(s.cars) }

// LaneStats summarizes the current state: per-lane vehicle count and mean
// speed, plus cumulative lane changes (into each lane).
func (s *MITSIM) LaneStats() (counts []float64, meanV []float64, changes []float64) {
	p := s.P
	counts = make([]float64, p.Lanes)
	meanV = make([]float64, p.Lanes)
	changes = make([]float64, p.Lanes)
	for _, c := range s.cars {
		counts[c.lane]++
		meanV[c.lane] += c.v
	}
	for l := 0; l < p.Lanes; l++ {
		if counts[l] > 0 {
			meanV[l] /= counts[l]
		}
		changes[l] = float64(s.laneChanges[l])
	}
	return counts, meanV, changes
}

var _ = math.Inf // keep math imported for future tuning
