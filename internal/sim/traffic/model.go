package traffic

import (
	"math"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
)

// Model is the BRACE (state-effect) form of the MITSIM driving model. Its
// agents live in a 2-D space where x is the position along the segment and
// y is the lane index, so the engine's spatial machinery (strip
// partitioning along x, KD-tree range queries with ρ = Lookahead) applies
// directly.
//
// The query phase perceives lead/rear vehicles and per-lane average speeds
// within ρ and stores them in the agent's own effect fields (one
// assignment per field per tick — a degenerate but legal use of the sum
// combinators, mirroring how the BRASIL script computes into local
// variables and assigns once). The update phase runs drive().
type Model struct {
	P Params

	s *agent.Schema
	// state indices
	x, lane, v, desired, changes int
	// effect indices: perception per relative lane (left, cur, right)
	effLeadGap, effLeadV, effRearGap, effAvgV, effCnt [3]int
}

// NewModel builds the schema for the given parameters.
func NewModel(p Params) *Model {
	m := &Model{P: p}
	s := agent.NewSchema("Vehicle")
	m.s = s
	m.x = s.AddState("x", true)
	m.lane = s.AddState("lane", true)
	m.v = s.AddState("v", true)
	m.desired = s.AddState("desired", false)
	m.changes = s.AddState("changes", false)
	rel := [3]string{"L", "C", "R"}
	for i, r := range rel {
		m.effLeadGap[i] = s.AddEffect("leadGap"+r, false, agent.Min)
		m.effLeadV[i] = s.AddEffect("leadV"+r, false, agent.Sum)
		m.effRearGap[i] = s.AddEffect("rearGap"+r, false, agent.Min)
		m.effAvgV[i] = s.AddEffect("avgV"+r, false, agent.Sum)
		m.effCnt[i] = s.AddEffect("cnt"+r, false, agent.Sum)
	}
	s.SetPosition("x", "lane")
	s.SetVisibility(p.Lookahead)
	s.SetReach(p.VMax + 1) // one tick of travel plus a lane hop
	return m
}

// Schema implements engine.Model.
func (m *Model) Schema() *agent.Schema { return m.s }

// Query implements engine.Model: perceive the three candidate lanes.
func (m *Model) Query(self *agent.Agent, env engine.Env) {
	sx := self.State[m.x]
	lane := int(self.State[m.lane])

	var leadGap, leadV, rearGap, sumV [3]float64
	var cnt [3]float64
	for i := range leadGap {
		leadGap[i] = math.Inf(1)
		rearGap[i] = math.Inf(1)
		leadV[i] = math.Inf(1)
	}

	env.ForEachVisible(func(o *agent.Agent) {
		if o.ID == self.ID {
			return
		}
		rel := int(o.State[m.lane]) - lane + 1
		if rel < 0 || rel > 2 {
			return
		}
		dx := o.State[m.x] - sx
		sumV[rel] += o.State[m.v]
		cnt[rel]++
		if dx >= 0 {
			if dx < leadGap[rel] {
				leadGap[rel] = dx
				leadV[rel] = o.State[m.v]
			}
		} else if -dx < rearGap[rel] {
			rearGap[rel] = -dx
		}
	})

	for i := 0; i < 3; i++ {
		env.Assign(self, m.effLeadGap[i], leadGap[i])
		env.Assign(self, m.effLeadV[i], leadV[i])
		env.Assign(self, m.effRearGap[i], rearGap[i])
		env.Assign(self, m.effAvgV[i], sumV[i])
		env.Assign(self, m.effCnt[i], cnt[i])
	}
}

// QueryCols implements engine.ColumnarModel: the three-lane perception
// streamed over the state columns. Same visible rows in the same
// ascending-ID order, same arithmetic and the same single Assign per
// effect field as Query, so the perceived values are bit-identical.
func (m *Model) QueryCols(env *engine.Cols, self int32) {
	xs := env.State(m.x)
	lanes := env.State(m.lane)
	vs := env.State(m.v)
	sx := xs[self]
	lane := int(lanes[self])

	var leadGap, leadV, rearGap, sumV [3]float64
	var cnt [3]float64
	for i := range leadGap {
		leadGap[i] = math.Inf(1)
		rearGap[i] = math.Inf(1)
		leadV[i] = math.Inf(1)
	}

	for _, j := range env.Visible() {
		if j == self {
			continue
		}
		rel := int(lanes[j]) - lane + 1
		if rel < 0 || rel > 2 {
			continue
		}
		dx := xs[j] - sx
		sumV[rel] += vs[j]
		cnt[rel]++
		if dx >= 0 {
			if dx < leadGap[rel] {
				leadGap[rel] = dx
				leadV[rel] = vs[j]
			}
		} else if -dx < rearGap[rel] {
			rearGap[rel] = -dx
		}
	}

	for i := 0; i < 3; i++ {
		env.Assign(self, m.effLeadGap[i], leadGap[i])
		env.Assign(self, m.effLeadV[i], leadV[i])
		env.Assign(self, m.effRearGap[i], rearGap[i])
		env.Assign(self, m.effAvgV[i], sumV[i])
		env.Assign(self, m.effCnt[i], cnt[i])
	}
}

// Update implements engine.Model: decide and move, recycling vehicles that
// leave the downstream end.
func (m *Model) Update(self *agent.Agent, u *engine.UpdateCtx) {
	per := newPerception()
	for i := 0; i < 3; i++ {
		per.leadGap[i] = self.Effect[m.effLeadGap[i]]
		per.leadV[i] = self.Effect[m.effLeadV[i]]
		per.rearGap[i] = self.Effect[m.effRearGap[i]]
		if c := self.Effect[m.effCnt[i]]; c > 0 {
			per.avgV[i] = self.Effect[m.effAvgV[i]] / c
		}
	}
	lane := int(self.State[m.lane])
	d := drive(m.P, lane, self.State[m.v], self.State[m.desired], per, u.RNG)
	if d.changed {
		self.State[m.changes]++
	}
	self.State[m.lane] = float64(d.newLane)
	self.State[m.v] = d.newV
	self.State[m.x] += d.dx

	if self.State[m.x] > m.P.Length {
		// Constant upstream traffic: this vehicle exits; a fresh one
		// enters at the upstream end in the same lane.
		u.Kill(self)
		c := u.Spawn()
		c.State[m.x] = self.State[m.x] - m.P.Length // carry the overshoot
		c.State[m.lane] = float64(d.newLane)
		c.State[m.v] = d.newV
		c.State[m.desired] = u.RNG.Range(m.P.DesiredMean-m.P.DesiredSpread, m.P.DesiredMean+m.P.DesiredSpread)
	}
}

// NewPopulation lays out the initial vehicles: per-lane uniform spacing
// with jitter, desired speeds drawn per driver.
func (m *Model) NewPopulation(seed uint64) []*agent.Agent {
	p := m.P
	n := p.Vehicles()
	pop := make([]*agent.Agent, 0, n)
	perLane := n / p.Lanes
	id := agent.ID(1)
	for lane := 0; lane < p.Lanes; lane++ {
		for i := 0; i < perLane; i++ {
			rng := agent.NewRNG(seed, 0, id)
			a := agent.New(m.s, id)
			spacing := p.Length / float64(perLane)
			a.State[m.x] = (float64(i) + 0.5*rng.Float64()) * spacing
			a.State[m.lane] = float64(lane)
			a.State[m.v] = rng.Range(p.DesiredMean-p.DesiredSpread, p.DesiredMean)
			a.State[m.desired] = rng.Range(p.DesiredMean-p.DesiredSpread, p.DesiredMean+p.DesiredSpread)
			pop = append(pop, a)
			id++
		}
	}
	return pop
}

// Pos returns a vehicle's (x, lane) position; exported for harness code.
func (m *Model) Pos(a *agent.Agent) geom.Vec { return a.Pos(m.s) }

// Lane returns a vehicle's lane index.
func (m *Model) Lane(a *agent.Agent) int { return int(a.State[m.lane]) }

// Speed returns a vehicle's current speed.
func (m *Model) Speed(a *agent.Agent) float64 { return a.State[m.v] }

// Changes returns a vehicle's cumulative lane-change count.
func (m *Model) Changes(a *agent.Agent) float64 { return a.State[m.changes] }

var (
	_ engine.Model         = (*Model)(nil)
	_ engine.ColumnarModel = (*Model)(nil)
)
