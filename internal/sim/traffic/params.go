// Package traffic implements the paper's traffic workload (§5.1, App. C):
// a reimplementation of the MITSIM microscopic traffic model [47] — lane
// selection by probabilistic utility, gap-acceptance lane changing, car
// following, and a free-flow submodel — in two forms:
//
//   - Model: a BRACE engine.Model following the state-effect pattern with a
//     fixed lookahead ρ (the paper fixes ρ=200 "in order to apply
//     single-node spatial indexing");
//   - MITSIM: a hand-coded single-node simulator using per-lane sorted
//     vehicle lists with true nearest-neighbor lead/rear lookup, the
//     comparator of Fig. 3 and Table 2.
//
// Both forms share the exact same driver decision function (drive), so any
// statistical difference between them comes from perception — fixed ρ vs
// nearest neighbor — which is precisely the deviation Table 2 quantifies.
//
// Substitution note: the paper simulates "a linear segment of highway with
// constant up-stream traffic". We reproduce the constant inflow by
// recycling: a vehicle leaving the downstream end dies and a fresh vehicle
// (new agent ID) enters upstream with a newly drawn desired speed, keeping
// density stationary without teleporting any agent beyond its reachable
// region.
package traffic

import "math"

// Params holds the model constants. Units: meters, seconds.
type Params struct {
	// Length of the simulated segment; Fig. 3 sweeps this.
	Length float64
	// Lanes is the lane count (the paper's Table 2 uses 4).
	Lanes int
	// Density is vehicles per meter per lane at initialization and the
	// target for upstream inflow (≈ 351 vehicles per 20km lane in the
	// paper's busy lanes → ~0.0176).
	Density float64
	// Lookahead is the BRACE visibility ρ (fixed 200 in the paper).
	Lookahead float64
	// VMax is the physical speed cap.
	VMax float64
	// DesiredMean and DesiredSpread bound each driver's desired speed,
	// drawn uniformly from [DesiredMean−Spread, DesiredMean+Spread].
	DesiredMean, DesiredSpread float64
	// CarFollowSense scales acceleration toward the lead's speed.
	CarFollowSense float64
	// FreeFlowGain scales acceleration toward the desired speed.
	FreeFlowGain float64
	// MinGap is the bumper-to-bumper distance forcing a hard brake.
	MinGap float64
	// HeadwayTime converts speed to the following-distance threshold.
	HeadwayTime float64
	// UtilSpeed and UtilGap weigh a lane's average speed and lead gap in
	// the lane utility.
	UtilSpeed, UtilGap float64
	// RightBias is subtracted from the right-most lane's utility (MITSIM
	// drivers are reluctant to use it; the cause of Table 2's L4 row).
	RightBias float64
	// ChangeThreshold is the utility advantage required to consider a
	// lane change, and Temperature the logit spread of the probabilistic
	// choice.
	ChangeThreshold, Temperature float64
	// GapLeadFactor/GapRearFactor scale the speed-dependent acceptance
	// gaps.
	GapLeadFactor, GapRearFactor float64
}

// DefaultParams returns the calibration used by the experiments.
func DefaultParams(length float64) Params {
	return Params{
		Length:          length,
		Lanes:           4,
		Density:         0.016,
		Lookahead:       200,
		VMax:            34,
		DesiredMean:     28,
		DesiredSpread:   6,
		CarFollowSense:  0.6,
		FreeFlowGain:    0.3,
		MinGap:          6,
		HeadwayTime:     1.6,
		UtilSpeed:       1.0,
		UtilGap:         0.05,
		RightBias:       8,
		ChangeThreshold: 1.5,
		Temperature:     2.0,
		GapLeadFactor:   0.9,
		GapRearFactor:   0.6,
	}
}

// Vehicles returns the initial vehicle count for the configured segment.
func (p Params) Vehicles() int {
	return int(p.Density * p.Length * float64(p.Lanes))
}

// perception is what a driver sees: lead/rear gaps and lead speeds for the
// current, left and right lanes plus per-lane average speeds. Gaps are
// +Inf when no vehicle is visible (the free-flow assumption of App. C).
type perception struct {
	leadGap, leadV, rearGap [3]float64 // indexed by relLane: 0=left,1=current,2=right
	avgV                    [3]float64
}

func newPerception() perception {
	var p perception
	for i := 0; i < 3; i++ {
		p.leadGap[i] = math.Inf(1)
		p.rearGap[i] = math.Inf(1)
		p.leadV[i] = math.Inf(1) // no lead: free flow
		p.avgV[i] = -1           // no data
	}
	return p
}

// decision is drive's output.
type decision struct {
	newLane int
	newV    float64
	dx      float64
	changed bool
}

// rngSource abstracts agent.RNG so drive can be tested in isolation.
type rngSource interface {
	Float64() float64
	Range(lo, hi float64) float64
}

// drive is the shared MITSIM driver logic: lane selection by probabilistic
// utility, gap acceptance, then car following / free flow on the chosen
// lane. It is a pure function of (state, perception, rng draw order),
// which is what lets Table 2 attribute divergence to perception alone.
func drive(p Params, lane int, v, desired float64, per perception, rng rngSource) decision {
	// Lane utilities. rel 0/1/2 = left/current/right.
	util := [3]float64{math.Inf(-1), 0, math.Inf(-1)}
	for rel := 0; rel < 3; rel++ {
		abs := lane + rel - 1
		if abs < 0 || abs >= p.Lanes {
			continue
		}
		av := per.avgV[rel]
		if av < 0 {
			av = desired // empty lane is as good as it gets
		}
		gap := per.leadGap[rel]
		if math.IsInf(gap, 1) {
			gap = p.Lookahead
		}
		u := p.UtilSpeed*av + p.UtilGap*gap
		if abs == p.Lanes-1 {
			u -= p.RightBias
		}
		util[rel] = u
	}

	// Probabilistic choice among lanes with enough advantage (logit).
	target := 1
	best := util[1] + p.ChangeThreshold
	var ps [3]float64
	var sum float64
	for rel := 0; rel < 3; rel++ {
		if rel != 1 && util[rel] > best {
			ps[rel] = math.Exp((util[rel] - util[1]) / p.Temperature)
			sum += ps[rel]
		}
	}
	if sum > 0 {
		ps[1] = 1 // staying is always an option
		sum++
		r := rng.Float64() * sum
		acc := 0.0
		for rel := 0; rel < 3; rel++ {
			acc += ps[rel]
			if r < acc && ps[rel] > 0 {
				target = rel
				break
			}
		}
	} else {
		_ = rng.Float64() // keep the stream aligned across branches
	}

	changed := false
	newLane := lane
	if target != 1 {
		// Gap acceptance in the target lane.
		if per.leadGap[target] > p.GapLeadFactor*v+p.MinGap &&
			per.rearGap[target] > p.GapRearFactor*v+p.MinGap {
			newLane = lane + target - 1
			changed = true
		}
	}

	// Longitudinal control on the (possibly new) lane.
	rel := newLane - lane + 1
	gap := per.leadGap[rel]
	leadV := per.leadV[rel]
	var acc float64
	switch {
	case gap <= p.MinGap:
		acc = -p.VMax // emergency brake
	case gap < v*p.HeadwayTime+p.MinGap:
		acc = p.CarFollowSense * (leadV - v)
		if math.IsInf(acc, 1) {
			acc = p.FreeFlowGain * (desired - v)
		}
	default:
		acc = p.FreeFlowGain * (desired - v)
	}
	newV := v + acc
	if newV < 0 {
		newV = 0
	}
	if newV > p.VMax {
		newV = p.VMax
	}
	return decision{newLane: newLane, newV: newV, dx: newV, changed: changed}
}
