package traffic

import (
	"math"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

func smallParams() Params {
	p := DefaultParams(2000)
	return p
}

func TestPopulationLayout(t *testing.T) {
	m := NewModel(smallParams())
	pop := m.NewPopulation(1)
	if len(pop) != m.P.Vehicles()/m.P.Lanes*m.P.Lanes {
		t.Fatalf("population = %d", len(pop))
	}
	laneCounts := make([]int, m.P.Lanes)
	for _, a := range pop {
		l := m.Lane(a)
		if l < 0 || l >= m.P.Lanes {
			t.Fatalf("lane out of range: %d", l)
		}
		laneCounts[l]++
		x := a.State[m.x]
		if x < 0 || x > m.P.Length {
			t.Fatalf("x out of range: %v", x)
		}
		if m.Speed(a) <= 0 {
			t.Fatalf("non-positive speed")
		}
	}
	for l, c := range laneCounts {
		if c != laneCounts[0] {
			t.Errorf("lane %d count %d != %d", l, c, laneCounts[0])
		}
	}
}

func TestSequentialMatchesDistributed(t *testing.T) {
	m := NewModel(smallParams())
	pop := m.NewPopulation(7)
	pop2 := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		pop2[i] = a.Clone()
	}
	seq, err := engine.NewSequential(m, pop, spatial.KindKDTree, 7)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(m, pop2, engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 10
	if err := seq.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("population sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("vehicle %d diverged:\n%v\n%v", a[i].ID, a[i], b[i])
		}
	}
}

func TestVehiclesStayOnRoad(t *testing.T) {
	m := NewModel(smallParams())
	e, err := engine.NewSequential(m, m.NewPopulation(3), spatial.KindKDTree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(50); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Agents() {
		x := a.State[m.x]
		if x < 0 || x > m.P.Length {
			t.Errorf("vehicle %d off segment: x=%v", a.ID, x)
		}
		l := m.Lane(a)
		if l < 0 || l >= m.P.Lanes {
			t.Errorf("vehicle %d off road: lane=%d", a.ID, l)
		}
		v := m.Speed(a)
		if v < 0 || v > m.P.VMax {
			t.Errorf("vehicle %d speed out of range: %v", a.ID, v)
		}
	}
}

func TestRecyclingConservesDensity(t *testing.T) {
	m := NewModel(smallParams())
	e, err := engine.NewSequential(m, m.NewPopulation(5), spatial.KindKDTree, 5)
	if err != nil {
		t.Fatal(err)
	}
	start := len(e.Agents())
	if err := e.RunTicks(120); err != nil { // plenty of recycles at v≈28, L=2000
		t.Fatal(err)
	}
	if got := len(e.Agents()); got != start {
		t.Errorf("vehicle count drifted: %d -> %d", start, got)
	}
	// Some vehicles must actually have been recycled (new IDs present).
	recycled := false
	for _, a := range e.Agents() {
		if uint64(a.ID) >= 1<<63 {
			recycled = true
		}
	}
	if !recycled {
		t.Error("no vehicle was recycled in 120 ticks")
	}
}

func TestMITSIMBasics(t *testing.T) {
	s := NewMITSIM(smallParams(), 9)
	start := s.Cars()
	s.RunTicks(60)
	if s.Tick() != 60 {
		t.Errorf("Tick = %d", s.Tick())
	}
	if s.Cars() != start {
		t.Errorf("car count drifted: %d -> %d", start, s.Cars())
	}
	if s.AgentTicks() != int64(start*60) {
		t.Errorf("AgentTicks = %d", s.AgentTicks())
	}
	counts, meanV, changes := s.LaneStats()
	var total float64
	var anyChange bool
	for l := range counts {
		total += counts[l]
		if counts[l] > 0 && (meanV[l] <= 0 || meanV[l] > s.P.VMax) {
			t.Errorf("lane %d mean speed %v implausible", l, meanV[l])
		}
		if changes[l] > 0 {
			anyChange = true
		}
	}
	if int(total) != start {
		t.Errorf("lane counts sum %v != %d", total, start)
	}
	if !anyChange {
		t.Error("no lane changes in 60 ticks — lane model inert")
	}
}

func TestRightLaneReluctance(t *testing.T) {
	// The right-most lane should end up with markedly fewer vehicles —
	// the cause of Table 2's L4 anomaly in the paper.
	s := NewMITSIM(smallParams(), 10)
	s.RunTicks(150)
	counts, _, _ := s.LaneStats()
	last := counts[len(counts)-1]
	var others float64
	for _, c := range counts[:len(counts)-1] {
		others += c
	}
	others /= float64(len(counts) - 1)
	if last >= others {
		t.Errorf("right-most lane has %v cars vs %v average elsewhere; reluctance not working", last, others)
	}
}

func TestDrivePureFunction(t *testing.T) {
	p := smallParams()
	// blockSides makes the adjacent lanes unusable so gap acceptance fails
	// and longitudinal behavior can be observed in isolation.
	blockSides := func(per *perception) {
		for _, rel := range []int{0, 2} {
			per.leadGap[rel] = 1
			per.rearGap[rel] = 1
			per.avgV[rel] = 1
		}
	}
	per := newPerception()
	per.leadGap[1] = 20
	per.leadV[1] = 10
	per.avgV[1] = 15
	blockSides(&per)
	r1 := agent.NewRNG(1, 1, 1)
	r2 := agent.NewRNG(1, 1, 1)
	d1 := drive(p, 1, 25, 30, per, r1)
	d2 := drive(p, 1, 25, 30, per, r2)
	if d1 != d2 {
		t.Error("drive is not deterministic")
	}
	if d1.changed {
		t.Fatal("changed into a blocked lane")
	}
	// Following a slow lead from a small gap must decelerate.
	if d1.newV >= 25 {
		t.Errorf("no deceleration behind slow lead: %v", d1.newV)
	}
	// Free flow accelerates toward desired.
	free := newPerception()
	d3 := drive(p, 1, 20, 30, free, agent.NewRNG(2, 2, 2))
	if d3.newV <= 20 {
		t.Errorf("free flow did not accelerate: %v", d3.newV)
	}
	// Emergency braking under MinGap (sides blocked: cannot swerve away).
	tight := newPerception()
	tight.leadGap[1] = p.MinGap / 2
	tight.leadV[1] = 0
	blockSides(&tight)
	d4 := drive(p, 1, 20, 30, tight, agent.NewRNG(3, 3, 3))
	if d4.newV >= 20 {
		t.Errorf("no braking at gap %v: v %v", tight.leadGap[1], d4.newV)
	}
	// An open faster lane is taken when the utility advantage is large.
	escape := newPerception()
	escape.leadGap[1] = 10
	escape.leadV[1] = 2
	escape.avgV[1] = 3
	changedCount := 0
	for s := uint64(0); s < 20; s++ {
		d := drive(p, 1, 20, 30, escape, agent.NewRNG(s, 1, 1))
		if d.changed {
			changedCount++
		}
	}
	if changedCount == 0 {
		t.Error("never escaped a congested lane with free neighbors")
	}
}

func TestValidateTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("validation run is slow")
	}
	p := DefaultParams(4000)
	mit := NewMITSIM(p, 11)
	ref, err := CollectMITSIM(mit, 90, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(p)
	eng, err := engine.NewSequential(m, m.NewPopulation(11), spatial.KindKDTree, 11)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := CollectBRACE(eng, m, 90, 30)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Validate(ref, meas)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != p.Lanes {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.MeanV) || math.IsNaN(r.Density) || math.IsNaN(r.ChangeFreq) {
			t.Fatalf("NaN RMSPE: %+v", r)
		}
		// Velocities agree very tightly in the paper (0.007%); allow a
		// loose bound here — the claim under test is *strong agreement*.
		if r.MeanV > 0.10 {
			t.Errorf("lane %d velocity RMSPE = %v, want < 0.10", r.Lane, r.MeanV)
		}
		if r.Density > 0.60 {
			t.Errorf("lane %d density RMSPE = %v, want < 0.60", r.Lane, r.Density)
		}
	}
}

func TestLaneSeriesCollection(t *testing.T) {
	p := DefaultParams(1500)
	s := NewMITSIM(p, 13)
	ls, err := CollectMITSIM(s, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Lanes != p.Lanes {
		t.Fatalf("Lanes = %d", ls.Lanes)
	}
	for l := 0; l < p.Lanes; l++ {
		if len(ls.Density[l]) != 4 || len(ls.MeanV[l]) != 4 || len(ls.Changes[l]) != 4 {
			t.Fatalf("lane %d window counts = %d/%d/%d", l,
				len(ls.Density[l]), len(ls.MeanV[l]), len(ls.Changes[l]))
		}
	}
	// Validate rejects mismatched shapes.
	other := newLaneSeries(p.Lanes + 1)
	if _, err := Validate(ls, other); err == nil {
		t.Error("lane mismatch accepted")
	}
}
