package traffic

import (
	"math"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// goFollowTwin mirrors FollowScript operation-for-operation in Go, so the
// BRASIL compiler can be validated bit-for-bit on the traffic domain.
type goFollowTwin struct {
	s                *agent.Schema
	x, y, v, desired int
	gap, vsum, cnt   int
}

func newGoFollowTwin() *goFollowTwin {
	m := &goFollowTwin{}
	s := agent.NewSchema("Car")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.v = s.AddState("v", true)
	m.desired = s.AddState("desired", true)
	m.gap = s.AddEffect("gap", false, agent.Min)
	m.vsum = s.AddEffect("vsum", false, agent.Sum)
	m.cnt = s.AddEffect("cnt", false, agent.Sum)
	// Reach is unbounded: x wraps at the ring boundary and the engine's
	// square crop must not clamp the jump (matches the script, whose x
	// field carries no #range tag).
	s.SetPosition("x", "y").SetVisibility(200)
	return m
}

func (m *goFollowTwin) Schema() *agent.Schema { return m.s }

func (m *goFollowTwin) Query(self *agent.Agent, env engine.Env) {
	env.ForEachVisible(func(p *agent.Agent) {
		if p.ID == self.ID {
			return
		}
		if p.State[m.y] != self.State[m.y] {
			return
		}
		d := math.Mod(p.State[m.x]-self.State[m.x]+4000, 4000)
		if d < 200 {
			env.Assign(self, m.gap, d)
			if d < self.State[m.v]*1.6+6 {
				env.Assign(self, m.vsum, p.State[m.v])
				env.Assign(self, m.cnt, 1)
			}
		}
	})
}

func (m *goFollowTwin) Update(self *agent.Agent, u *engine.UpdateCtx) {
	x := self.State[m.x]
	v := self.State[m.v]
	desired := self.State[m.desired]
	gap := self.Effect[m.gap]
	vsum := self.Effect[m.vsum]
	cnt := self.Effect[m.cnt]

	var follow float64
	if cnt > 0 {
		follow = vsum / math.Max(cnt, 1)
	} else {
		follow = desired
	}
	var nv float64
	if gap < 6 {
		nv = v - 34
	} else if gap < v*1.6+6 {
		nv = v + 0.6*(follow-v)
	} else {
		nv = v + 0.3*(desired-v)
	}
	nv = math.Max(0, math.Min(34, nv))

	self.State[m.x] = math.Mod(x+v, 4000)
	self.State[m.v] = nv
}

func followPopulation(s *agent.Schema, n int, seed uint64) []*agent.Agent {
	xi, yi := s.StateIndex("x"), s.StateIndex("y")
	vi, di := s.StateIndex("v"), s.StateIndex("desired")
	pop := make([]*agent.Agent, n)
	for i := range pop {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(s, id)
		a.State[xi] = float64(i) * 4000 / float64(n) * rng.Range(0.9, 1.0)
		a.State[yi] = float64(i % 2) // two lanes
		a.State[vi] = rng.Range(20, 30)
		a.State[di] = rng.Range(24, 32)
		pop[i] = a
	}
	return pop
}

// The BRASIL car-following script matches its hand-written Go twin
// bit-for-bit on the sequential engine (the §5.2 parity claim on the
// traffic domain).
func TestFollowScriptMatchesGoTwin(t *testing.T) {
	prog, err := brasil.Compile(FollowScript, brasil.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.HasNonLocalEffects() {
		t.Fatal("follow script should be local-only")
	}
	if prog.Schema().Visibility != 200 {
		t.Fatalf("visibility = %v", prog.Schema().Visibility)
	}
	twin := newGoFollowTwin()

	e1, err := engine.NewSequential(prog, followPopulation(prog.Schema(), 120, 9), spatial.KindKDTree, 9)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewSequential(twin, followPopulation(twin.s, 120, 9), spatial.KindKDTree, 9)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 25
	if err := e1.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := e1.Agents(), e2.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("BRASIL vs Go twin diverged at car %d:\n%v\n%v", a[i].ID, a[i], b[i])
		}
	}
}

// Physical sanity of the scripted traffic: speeds stay in [0, 34], cars
// stay on the ring, and no rear-end pileup (minimum spacing respected on
// average).
func TestFollowScriptPhysicalInvariants(t *testing.T) {
	prog, err := brasil.Compile(FollowScript, brasil.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Schema()
	e, err := engine.NewSequential(prog, followPopulation(s, 160, 10), spatial.KindKDTree, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(80); err != nil {
		t.Fatal(err)
	}
	xi, vi := s.StateIndex("x"), s.StateIndex("v")
	var vbar float64
	for _, a := range e.Agents() {
		x, v := a.State[xi], a.State[vi]
		if x < 0 || x >= 4000 {
			t.Fatalf("car %d off ring: x=%v", a.ID, x)
		}
		if v < 0 || v > 34 {
			t.Fatalf("car %d speed out of range: %v", a.ID, v)
		}
		vbar += v
	}
	vbar /= float64(len(e.Agents()))
	if vbar < 5 {
		t.Errorf("traffic collapsed: mean speed %v", vbar)
	}
}

// The script also runs distributed, identically to sequential (local
// effects ⇒ exact).
func TestFollowScriptDistributed(t *testing.T) {
	prog, err := brasil.Compile(FollowScript, brasil.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := engine.NewSequential(prog, followPopulation(prog.Schema(), 100, 11), spatial.KindKDTree, 11)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(prog, followPopulation(prog.Schema(), 100, 11), engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("scripted traffic diverged across engines at car %d", a[i].ID)
		}
	}
}
