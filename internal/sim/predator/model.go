// Package predator implements the paper's predator simulation (§5.1,
// App. C): an artificial-society-style model where fish "spawn" new fish
// and "bite" weaker fish, "so density naturally approaches an equilibrium
// value at which births and deaths are balanced".
//
// The bite is the paper's canonical non-local effect: a biter assigns a
// "hurt" effect to its victims. Because the paper's compiler did not yet
// implement effect inversion, they programmed the behavior twice — as a
// non-local assignment (fish assign hurt to others) and as a local one
// (fish collect hurt from others) — in otherwise identical scripts. We do
// the same: NewModel(Inverted: false) declares non-local effects and runs
// on the two-reduce dataflow; NewModel(Inverted: true) is the
// effect-inverted equivalent on the single-reduce dataflow (Fig. 5's
// Inv configurations). Theorem 2 says they compute the same simulation;
// the tests verify it exactly on the sequential engine.
package predator

import (
	"math"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
)

// Params holds the model constants.
type Params struct {
	// BiteRadius bounds who a fish can bite (< Visibility).
	BiteRadius float64
	// Visibility is the schema visibility bound ρ.
	Visibility float64
	// BiteDamage is the energy a bite removes.
	BiteDamage float64
	// BiteGain is the energy the biter receives per victim.
	BiteGain float64
	// Metabolism is the per-tick upkeep cost.
	Metabolism float64
	// Graze is the per-tick ambient energy intake (plankton); Graze >
	// Metabolism lets isolated fish slowly gain energy and spawn, while
	// crowding causes bite losses — the mechanism behind the density
	// equilibrium App. C describes.
	Graze float64
	// SpawnEnergy is the threshold above which a fish splits.
	SpawnEnergy float64
	// InitEnergy is a newborn's energy.
	InitEnergy float64
	// Speed is the per-tick random-walk step.
	Speed float64
	// WorldRadius softly confines the population (drift back toward the
	// origin beyond it) so density stays meaningful.
	WorldRadius float64
}

// DefaultParams returns the calibration used by the experiments.
func DefaultParams() Params {
	return Params{
		BiteRadius:  2,
		Visibility:  5,
		BiteDamage:  1.0,
		BiteGain:    0.3,
		Metabolism:  0.15,
		Graze:       0.4,
		SpawnEnergy: 12,
		InitEnergy:  6,
		Speed:       0.8,
		WorldRadius: 60,
	}
}

// Model implements both the non-local and the hand-inverted predator
// scripts, selected by Inverted.
type Model struct {
	P        Params
	Inverted bool

	s *agent.Schema
	// state
	x, y, energy int
	// effects
	hurt, fed int
}

// NewModel builds the schema. When inverted, bites are *collected* by the
// victim (local assignments only); otherwise they are *assigned* by the
// biter (non-local).
func NewModel(p Params, inverted bool) *Model {
	m := &Model{P: p, Inverted: inverted}
	s := agent.NewSchema("Predator")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.energy = s.AddState("energy", true)
	m.hurt = s.AddEffect("hurt", true, agent.Sum)
	m.fed = s.AddEffect("fed", false, agent.Sum)
	s.SetPosition("x", "y")
	s.SetVisibility(p.Visibility)
	// Both variants only ever probe within the bite radius; telling the
	// engine lets its query cache size candidate lists to the bite range
	// instead of the (much larger) visible region.
	s.SetProbeRadius(p.BiteRadius)
	s.SetReach(p.Speed + 1e-9)
	return m
}

// Schema implements engine.Model.
func (m *Model) Schema() *agent.Schema { return m.s }

// HasNonLocalEffects implements engine.NonLocalModel.
func (m *Model) HasNonLocalEffects() bool { return !m.Inverted }

// bites reports whether biter takes a bite out of victim this tick: a fish
// bites every strictly weaker fish within the bite radius. The predicate
// depends only on the pair's states and a symmetric distance, which is
// what makes the inversion exact (Theorem 2).
func (m *Model) bites(biter, victim *agent.Agent) bool {
	if biter.ID == victim.ID {
		return false
	}
	dx := biter.State[m.x] - victim.State[m.x]
	dy := biter.State[m.y] - victim.State[m.y]
	if dx*dx+dy*dy > m.P.BiteRadius*m.P.BiteRadius {
		return false
	}
	return biter.State[m.energy] > victim.State[m.energy]
}

// Query implements engine.Model. In both variants the biter's feeding gain
// is a *local* assignment (counting my victims only reads visible state),
// so the variants differ solely in how hurt reaches the victim.
func (m *Model) Query(self *agent.Agent, env engine.Env) {
	env.Nearby(m.P.BiteRadius, func(o *agent.Agent) {
		if m.bites(self, o) {
			env.Assign(self, m.fed, m.P.BiteGain)
			if !m.Inverted {
				// Non-local script: assign hurt to the victim.
				env.Assign(o, m.hurt, m.P.BiteDamage)
			}
		}
		if m.Inverted && m.bites(o, self) {
			// Inverted script: collect hurt from everyone biting me.
			env.Assign(self, m.hurt, m.P.BiteDamage)
		}
	})
}

// QueryCols implements engine.ColumnarModel. The engine only takes the
// columnar path for local-effect models, i.e. the inverted variant; the
// classic script (hurt assigned to the victim, a non-local effect) always
// runs through Query. The bite predicate is inlined over the columns with
// the same arithmetic as bites — dx negates exactly, so both directions
// of the pair test agree bit-for-bit with the pointer path.
func (m *Model) QueryCols(env *engine.Cols, self int32) {
	xs, ys := env.State(m.x), env.State(m.y)
	es := env.State(m.energy)
	sx, sy, se := xs[self], ys[self], es[self]
	r2 := m.P.BiteRadius * m.P.BiteRadius
	var fed, hurt float64
	for _, j := range env.Nearby(m.P.BiteRadius) {
		if j == self {
			continue
		}
		dx, dy := sx-xs[j], sy-ys[j]
		if dx*dx+dy*dy > r2 {
			continue
		}
		if se > es[j] {
			fed += m.P.BiteGain
		}
		if m.Inverted && es[j] > se {
			hurt += m.P.BiteDamage
		}
	}
	env.Assign(self, m.fed, fed)
	if m.Inverted {
		env.Assign(self, m.hurt, hurt)
	}
}

// Update implements engine.Model: settle the tick's energy budget, then
// die, split, or move.
func (m *Model) Update(self *agent.Agent, u *engine.UpdateCtx) {
	e := self.State[m.energy] + self.Effect[m.fed] - self.Effect[m.hurt] + m.P.Graze - m.P.Metabolism
	if e <= 0 {
		u.Kill(self)
		return
	}
	if e >= m.P.SpawnEnergy {
		// Split: parent keeps half, child gets InitEnergy.
		e /= 2
		c := u.Spawn()
		c.State[m.x] = self.State[m.x] + u.RNG.Range(-1, 1)
		c.State[m.y] = self.State[m.y] + u.RNG.Range(-1, 1)
		c.State[m.energy] = m.P.InitEnergy
	}
	self.State[m.energy] = e

	// Random walk with a soft pull toward the origin beyond WorldRadius.
	th := u.RNG.Range(0, 2*math.Pi)
	step := geom.V(math.Cos(th), math.Sin(th)).Scale(m.P.Speed)
	pos := geom.V(self.State[m.x], self.State[m.y])
	if r := pos.Len(); r > m.P.WorldRadius {
		step = step.Add(pos.Scale(-0.2 * m.P.Speed / r))
	}
	self.State[m.x] += step.X
	self.State[m.y] += step.Y
}

// NewPopulation scatters n fish uniformly in the world disc with energies
// jittered around InitEnergy.
func (m *Model) NewPopulation(n int, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	for i := 0; i < n; i++ {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(m.s, id)
		r := m.P.WorldRadius * 0.8 * math.Sqrt(rng.Float64())
		th := rng.Range(0, 2*math.Pi)
		a.State[m.x] = r * math.Cos(th)
		a.State[m.y] = r * math.Sin(th)
		a.State[m.energy] = m.P.InitEnergy * rng.Range(0.5, 1.5)
		pop[i] = a
	}
	return pop
}

// Energy returns a fish's energy level.
func (m *Model) Energy(a *agent.Agent) float64 { return a.State[m.energy] }

var (
	_ engine.Model         = (*Model)(nil)
	_ engine.NonLocalModel = (*Model)(nil)
	_ engine.ColumnarModel = (*Model)(nil)
)
