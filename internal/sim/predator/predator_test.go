package predator

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

func clonePop(pop []*agent.Agent) []*agent.Agent {
	out := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		out[i] = a.Clone()
	}
	return out
}

// Effect inversion (Theorem 2): the non-local script and its inverted
// local form compute the same simulation. On the sequential engine both
// fold each victim's hurt in ascending biter-ID order, so the agreement is
// exact, not approximate.
func TestInvertedScriptMatchesNonLocalExactly(t *testing.T) {
	p := DefaultParams()
	nl := NewModel(p, false)
	inv := NewModel(p, true)
	base := nl.NewPopulation(200, 1)

	e1, err := engine.NewSequential(nl, clonePop(base), spatial.KindKDTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewSequential(inv, clonePop(base), spatial.KindKDTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 20
	if err := e1.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := e1.Agents(), e2.Agents()
	if len(a) != len(b) {
		t.Fatalf("population sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("agent %d diverged:\n%v\n%v", a[i].ID, a[i], b[i])
		}
	}
}

// The inverted (local-only) model must agree exactly between sequential
// and distributed engines at any worker count.
func TestInvertedDistributedMatchesSequential(t *testing.T) {
	p := DefaultParams()
	inv := NewModel(p, true)
	base := inv.NewPopulation(150, 2)
	seq, err := engine.NewSequential(inv, clonePop(base), spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(inv, clonePop(base), engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("agent %d diverged", a[i].ID)
		}
	}
}

// The non-local model on the two-reduce dataflow agrees with sequential up
// to floating-point reassociation of the global ⊕.
func TestNonLocalDistributedApproxSequential(t *testing.T) {
	p := DefaultParams()
	nl := NewModel(p, false)
	base := nl.NewPopulation(150, 3)
	seq, err := engine.NewSequential(nl, clonePop(base), spatial.KindKDTree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(nl, clonePop(base), engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("ID mismatch at %d", i)
		}
		for j := range a[i].State {
			d := a[i].State[j] - b[i].State[j]
			if d > 1e-7 || d < -1e-7 {
				t.Fatalf("agent %d state[%d] differs by %g", a[i].ID, j, d)
			}
		}
	}
}

func TestBitePredicate(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, false)
	strong := agent.New(m.s, 1)
	strong.SetPos(m.s, geom.V(0, 0))
	strong.State[m.energy] = 10
	weak := agent.New(m.s, 2)
	weak.SetPos(m.s, geom.V(1, 0))
	weak.State[m.energy] = 5
	far := agent.New(m.s, 3)
	far.SetPos(m.s, geom.V(100, 0))
	far.State[m.energy] = 1

	if !m.bites(strong, weak) {
		t.Error("strong should bite adjacent weak")
	}
	if m.bites(weak, strong) {
		t.Error("weak should not bite strong")
	}
	if m.bites(strong, far) {
		t.Error("bite beyond radius")
	}
	if m.bites(strong, strong) {
		t.Error("self bite")
	}
}

func TestBiteTransfersEnergy(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, false)
	strong := agent.New(m.s, 1)
	strong.SetPos(m.s, geom.V(0, 0))
	strong.State[m.energy] = 10
	weak := agent.New(m.s, 2)
	weak.SetPos(m.s, geom.V(1, 0))
	weak.State[m.energy] = 5
	e, err := engine.NewSequential(m, []*agent.Agent{strong, weak}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	// strong: +gain +graze −metabolism; weak: −damage +graze −metabolism.
	wantStrong := 10 + p.BiteGain + p.Graze - p.Metabolism
	wantWeak := 5 - p.BiteDamage + p.Graze - p.Metabolism
	if got[0].State[m.energy] != wantStrong {
		t.Errorf("biter energy = %v, want %v", got[0].State[m.energy], wantStrong)
	}
	if got[1].State[m.energy] != wantWeak {
		t.Errorf("victim energy = %v, want %v", got[1].State[m.energy], wantWeak)
	}
}

func TestStarvationKills(t *testing.T) {
	p := DefaultParams()
	p.Graze = 0 // barren water: metabolism drains energy
	m := NewModel(p, true)
	a := agent.New(m.s, 1)
	a.State[m.energy] = 3 * p.Metabolism // survives 2 ticks, dies on the 3rd
	e, err := engine.NewSequential(m, []*agent.Agent{a}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(2); err != nil {
		t.Fatal(err)
	}
	if len(e.Agents()) != 1 {
		t.Fatal("died too early")
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	if len(e.Agents()) != 0 {
		t.Fatal("starved fish survived")
	}
}

func TestSpawnSplitsEnergy(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, true)
	a := agent.New(m.s, 1)
	a.State[m.energy] = p.SpawnEnergy + 1
	e, err := engine.NewSequential(m, []*agent.Agent{a}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	if len(got) != 2 {
		t.Fatalf("population = %d, want 2 after spawn", len(got))
	}
	var parent, child *agent.Agent
	for _, x := range got {
		if x.ID == 1 {
			parent = x
		} else {
			child = x
		}
	}
	if parent == nil || child == nil {
		t.Fatal("parent/child missing")
	}
	if parent.State[m.energy] >= p.SpawnEnergy {
		t.Errorf("parent kept too much energy: %v", parent.State[m.energy])
	}
	if child.State[m.energy] != p.InitEnergy {
		t.Errorf("child energy = %v, want %v", child.State[m.energy], p.InitEnergy)
	}
}

// Density equilibrium (App. C): the population neither explodes nor dies
// out over a long run.
func TestDensityEquilibrium(t *testing.T) {
	if testing.Short() {
		t.Skip("long equilibrium run")
	}
	p := DefaultParams()
	m := NewModel(p, true)
	e, err := engine.NewSequential(m, m.NewPopulation(300, 5), spatial.KindKDTree, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(200); err != nil {
		t.Fatal(err)
	}
	n := len(e.Agents())
	if n < 50 || n > 3000 {
		t.Errorf("population %d left the plausible equilibrium band", n)
	}
}
