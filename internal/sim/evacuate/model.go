// Package evacuate implements a crowd-evacuation workload in the paper's
// state-effect pattern: pedestrians in a rectangular room head for the
// nearest exit while a social-force-style repulsion keeps them apart
// (Helbing-Molnár in miniature). The query phase accumulates the repulsive
// force from visible neighbors into the agent's own effect fields — local
// assignments folded by sum combinators, so the query is exactly
// order-independent and the model runs bit-identically on both engines.
// The update phase blends exit attraction with the aggregated repulsion,
// crops the step to the agent's reach, and removes agents that arrive at
// an exit (the population monotonically drains, exercising the engines'
// deterministic kill path).
//
// The spatial pattern is the inverse of the fish school's: the crowd
// *converges* onto a handful of exit cells, so density — and with it
// query cost — concentrates over time. That makes evacuation a natural
// complement to the fish split for load-balancer experiments.
package evacuate

import (
	"math"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
)

// Params holds the model constants. Units: meters, seconds (one tick ≈
// one second of pedestrian motion).
type Params struct {
	// Width and Height are the room dimensions; agents are clamped inside.
	Width, Height float64
	// Exits are the exit locations (on or near the walls).
	Exits []geom.Vec
	// ExitRadius is the capture distance: an agent within it has left.
	ExitRadius float64
	// RepelRadius bounds the social repulsion (the visibility bound ρ).
	RepelRadius float64
	// RepelGain scales the aggregated repulsion against the unit-length
	// exit attraction.
	RepelGain float64
	// Speed is the desired (and maximum) per-tick step length.
	Speed float64
	// TurnNoise perturbs the step direction each tick (radians, uniform ±).
	TurnNoise float64
}

// DefaultParams returns a two-exit room calibration.
func DefaultParams() Params {
	return Params{
		Width:       60,
		Height:      40,
		Exits:       []geom.Vec{geom.V(0, 20), geom.V(60, 20)},
		ExitRadius:  1.5,
		RepelRadius: 3,
		RepelGain:   1.2,
		Speed:       1.0,
		TurnNoise:   0.05,
	}
}

// Model is the BRACE form of the evacuation. All effect assignments are
// local, so the engine uses the single-reduce dataflow.
type Model struct {
	P Params

	s *agent.Schema
	// state: position
	x, y int
	// effects: aggregated social repulsion and neighbor count
	repx, repy, crowd int
}

// NewModel builds the schema.
func NewModel(p Params) *Model {
	m := &Model{P: p}
	s := agent.NewSchema("Pedestrian")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.repx = s.AddEffect("repelx", false, agent.Sum)
	m.repy = s.AddEffect("repely", false, agent.Sum)
	m.crowd = s.AddEffect("crowd", false, agent.Sum)
	s.SetPosition("x", "y")
	s.SetVisibility(p.RepelRadius)
	s.SetReach(p.Speed + 1e-9)
	return m
}

// Schema implements engine.Model.
func (m *Model) Schema() *agent.Schema { return m.s }

// Query implements engine.Model: accumulate the social force — each
// visible neighbor pushes the agent away with strength falling linearly
// to zero at the repulsion radius.
func (m *Model) Query(self *agent.Agent, env engine.Env) {
	sx, sy := self.State[m.x], self.State[m.y]
	r := m.P.RepelRadius
	env.ForEachVisible(func(o *agent.Agent) {
		if o.ID == self.ID {
			return
		}
		dx, dy := sx-o.State[m.x], sy-o.State[m.y]
		d := math.Sqrt(dx*dx + dy*dy)
		if d == 0 || d > r {
			return
		}
		w := (1 - d/r) / d
		env.Assign(self, m.repx, dx*w)
		env.Assign(self, m.repy, dy*w)
		env.Assign(self, m.crowd, 1)
	})
}

// QueryCols implements engine.ColumnarModel: the social-force
// accumulation streamed over the state columns. Same visible rows, same
// arithmetic; the local accumulators fold the same additions in the same
// order the per-neighbor Assigns fold into the θ = 0 effects, so the
// result is bit-identical.
func (m *Model) QueryCols(env *engine.Cols, self int32) {
	xs, ys := env.State(m.x), env.State(m.y)
	sx, sy := xs[self], ys[self]
	r := m.P.RepelRadius
	var repx, repy, crowd float64
	for _, j := range env.Visible() {
		if j == self {
			continue
		}
		dx, dy := sx-xs[j], sy-ys[j]
		d := math.Sqrt(dx*dx + dy*dy)
		if d == 0 || d > r {
			continue
		}
		w := (1 - d/r) / d
		repx += dx * w
		repy += dy * w
		crowd++
	}
	env.Assign(self, m.repx, repx)
	env.Assign(self, m.repy, repy)
	env.Assign(self, m.crowd, crowd)
}

// nearestExit returns the exit closest to pos (ties broken by declaration
// order, which is deterministic).
func (m *Model) nearestExit(pos geom.Vec) geom.Vec {
	best := m.P.Exits[0]
	bestD := pos.Dist2(best)
	for _, e := range m.P.Exits[1:] {
		if d := pos.Dist2(e); d < bestD {
			best, bestD = e, d
		}
	}
	return best
}

// Update implements engine.Model: step toward the nearest exit, deflected
// by the aggregated repulsion; leave the simulation on arrival.
func (m *Model) Update(self *agent.Agent, u *engine.UpdateCtx) {
	pos := geom.V(self.State[m.x], self.State[m.y])
	exit := m.nearestExit(pos)
	if pos.Dist(exit) <= m.P.ExitRadius {
		u.Kill(self)
		return
	}
	dir := exit.Sub(pos).Norm()
	dir = dir.Add(geom.V(self.Effect[m.repx], self.Effect[m.repy]).Scale(m.P.RepelGain))
	// Norm maps an exactly-canceled force to the zero vector, so the agent
	// holds position that tick; the noise draw below still advances the
	// RNG stream either way.
	dir = dir.Norm()
	dir = dir.Rotate(u.RNG.Range(-m.P.TurnNoise, m.P.TurnNoise))
	next := pos.Add(dir.Scale(m.P.Speed))
	// Walls: stay inside the room.
	next = next.Clamp(geom.R(0, 0, m.P.Width, m.P.Height))
	self.State[m.x] = next.X
	self.State[m.y] = next.Y
}

// NewPopulation places n pedestrians uniformly in the room interior,
// excluding the exit capture discs so nobody evacuates at tick zero.
// Rejection sampling is bounded: in a degenerate geometry where the exit
// discs cover (almost) the whole floor, the last sampled point is
// accepted rather than looping forever — those agents just evacuate
// immediately.
func (m *Model) NewPopulation(n int, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	margin := m.P.ExitRadius
	for i := 0; i < n; i++ {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(m.s, id)
		for try := 0; ; try++ {
			p := geom.V(
				rng.Range(margin, m.P.Width-margin),
				rng.Range(margin, m.P.Height-margin),
			)
			clear := true
			for _, e := range m.P.Exits {
				if p.Dist(e) <= m.P.ExitRadius+margin {
					clear = false
					break
				}
			}
			if clear || try >= 64 {
				a.State[m.x] = p.X
				a.State[m.y] = p.Y
				break
			}
		}
		pop[i] = a
	}
	return pop
}

// Pos returns a pedestrian's position.
func (m *Model) Pos(a *agent.Agent) geom.Vec { return a.Pos(m.s) }

var (
	_ engine.Model         = (*Model)(nil)
	_ engine.ColumnarModel = (*Model)(nil)
)
