package evacuate

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestPopulationLayout(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(300, 1)
	if len(pop) != 300 {
		t.Fatalf("population = %d", len(pop))
	}
	for _, a := range pop {
		pos := m.Pos(a)
		if pos.X < 0 || pos.X > m.P.Width || pos.Y < 0 || pos.Y > m.P.Height {
			t.Errorf("agent %d placed outside the room: %v", a.ID, pos)
		}
		for _, e := range m.P.Exits {
			if pos.Dist(e) <= m.P.ExitRadius {
				t.Errorf("agent %d placed inside an exit capture disc: %v", a.ID, pos)
			}
		}
	}
}

func TestCrowdDrains(t *testing.T) {
	m := NewModel(DefaultParams())
	e, err := engine.NewSequential(m, m.NewPopulation(250, 2), spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	start := len(e.Agents())
	if err := e.RunTicks(40); err != nil {
		t.Fatal(err)
	}
	mid := len(e.Agents())
	if mid >= start {
		t.Errorf("nobody evacuated in 40 ticks: %d -> %d", start, mid)
	}
	// Run long enough for everyone to reach an exit: the farthest corner
	// is ~|(W,H)| away at speed ~1/tick, with slack for congestion.
	if err := e.RunTicks(400); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Agents()); got != 0 {
		t.Errorf("%d agents never evacuated", got)
	}
}

func TestAgentsStayInRoom(t *testing.T) {
	m := NewModel(DefaultParams())
	e, err := engine.NewSequential(m, m.NewPopulation(150, 3), spatial.KindKDTree, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 30; tick++ {
		if err := e.RunTicks(1); err != nil {
			t.Fatal(err)
		}
		for _, a := range e.Agents() {
			pos := m.Pos(a)
			if pos.X < -1e-9 || pos.X > m.P.Width+1e-9 || pos.Y < -1e-9 || pos.Y > m.P.Height+1e-9 {
				t.Fatalf("tick %d: agent %d escaped the room walls: %v", tick, a.ID, pos)
			}
		}
	}
}

func TestLonePedestrianWalksToNearestExit(t *testing.T) {
	p := DefaultParams()
	p.TurnNoise = 0 // deterministic geometry
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(10, 20)) // nearest exit is (0, 20)
	e, err := engine.NewSequential(m, []*agent.Agent{a}, spatial.KindScan, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 10m at speed 1 with a 1.5m capture radius: the capture check runs at
	// the top of Update, so the agent is gone within 10 ticks.
	if err := e.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Agents()); got != 0 {
		pos := m.Pos(e.Agents()[0])
		t.Errorf("pedestrian never reached the exit; still at %v", pos)
	}
}

func TestRepulsionSeparatesPair(t *testing.T) {
	p := DefaultParams()
	p.TurnNoise = 0
	// Put both agents equidistant from their shared nearest exit so the
	// attraction is symmetric and only repulsion differs.
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(30, 19.5))
	b := agent.New(m.s, 2)
	b.SetPos(m.s, geom.V(30, 20.5)) // 1m apart, inside RepelRadius=3
	e, err := engine.NewSequential(m, []*agent.Agent{a, b}, spatial.KindScan, 5)
	if err != nil {
		t.Fatal(err)
	}
	d0 := a.Pos(m.s).Dist(b.Pos(m.s))
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	if len(got) != 2 {
		t.Fatal("pair evacuated prematurely")
	}
	d1 := got[0].Pos(m.s).Dist(got[1].Pos(m.s))
	if d1 <= d0 {
		t.Errorf("repulsion did not separate the pair: %v -> %v", d0, d1)
	}
}

func TestSequentialMatchesDistributed(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(180, 6)
	pop2 := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		pop2[i] = a.Clone()
	}
	seq, err := engine.NewSequential(m, pop, spatial.KindKDTree, 6)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(m, pop2, engine.Options{
		Workers: 5, Index: spatial.KindKDTree, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kills (evacuations) happen mid-run, so this exercises deterministic
	// population shrink across engines.
	if err := seq.RunTicks(30); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(30); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("population sizes differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("everyone evacuated before the comparison window")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("agent %d diverged", a[i].ID)
		}
	}
}
