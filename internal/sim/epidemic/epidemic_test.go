package epidemic

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestPopulationLayout(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(500, 1)
	if len(pop) != 500 {
		t.Fatalf("population = %d", len(pop))
	}
	s, i, r := m.Counts(pop)
	if i != m.P.SeedInfected {
		t.Errorf("initially infected = %d, want %d", i, m.P.SeedInfected)
	}
	if r != 0 {
		t.Errorf("initially recovered = %d, want 0", r)
	}
	if s+i != 500 {
		t.Errorf("S+I = %d, want 500", s+i)
	}
	for idx, a := range pop {
		pos := a.Pos(m.s)
		limit := m.P.WorldRadius * 0.9
		if idx < m.P.SeedInfected {
			limit = m.P.SeedRadius
		}
		if pos.Len() > limit+1e-9 {
			t.Errorf("agent %d at %v, beyond placement radius %v", a.ID, pos, limit)
		}
	}
}

func TestEpidemicSpreadsAndRecovers(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p)
	e, err := engine.NewSequential(m, m.NewPopulation(800, 2), spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(60); err != nil {
		t.Fatal(err)
	}
	s, i, r := m.Counts(e.Agents())
	if i+r <= m.P.SeedInfected {
		t.Errorf("no spread: S=%d I=%d R=%d", s, i, r)
	}
	if r == 0 {
		t.Errorf("nobody recovered after 60 ticks (RecoverTicks=%v)", p.RecoverTicks)
	}
	if s == 0 {
		t.Errorf("everyone infected in 60 ticks; spread unrealistically fast")
	}
}

func TestRecoveredAreImmune(t *testing.T) {
	// A recovered agent surrounded by infected neighbors must stay
	// recovered: no reinfection path exists in SIR.
	p := DefaultParams()
	p.Speed = 0 // hold the cluster together
	m := NewModel(p)
	var pop []*agent.Agent
	center := agent.New(m.s, 1)
	center.State[m.status] = Recovered
	pop = append(pop, center)
	for i := 0; i < 6; i++ {
		a := agent.New(m.s, agent.ID(i+2))
		a.SetPos(m.s, geom.V(0.5, 0).Rotate(float64(i)))
		a.State[m.status] = Infected
		pop = append(pop, a)
	}
	e, err := engine.NewSequential(m, pop, spatial.KindScan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	if got := m.Status(e.Agents()[0]); got != Recovered {
		t.Errorf("recovered agent re-entered state %d", got)
	}
}

func TestIsolatedSusceptibleStaysHealthy(t *testing.T) {
	m := NewModel(DefaultParams())
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(0, 0))
	b := agent.New(m.s, 2)
	b.SetPos(m.s, geom.V(200, 0)) // far outside the infection radius
	b.State[m.status] = Infected
	e, err := engine.NewSequential(m, []*agent.Agent{a, b}, spatial.KindScan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	if got := m.Status(e.Agents()[0]); got != Susceptible {
		t.Errorf("isolated agent caught the infection at 200m (status %d)", got)
	}
}

func TestInfectionRunsItsCourse(t *testing.T) {
	// An infected agent recovers after exactly RecoverTicks.
	p := DefaultParams()
	p.Speed = 0
	m := NewModel(p)
	a := agent.New(m.s, 1)
	a.State[m.status] = Infected
	e, err := engine.NewSequential(m, []*agent.Agent{a}, spatial.KindScan, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(int(p.RecoverTicks) - 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Status(e.Agents()[0]); got != Infected {
		t.Fatalf("recovered one tick early (status %d)", got)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	if got := m.Status(e.Agents()[0]); got != Recovered {
		t.Errorf("not recovered after %v ticks (status %d)", p.RecoverTicks, got)
	}
}

func TestSequentialMatchesDistributed(t *testing.T) {
	m := NewModel(DefaultParams())
	pop := m.NewPopulation(200, 6)
	pop2 := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		pop2[i] = a.Clone()
	}
	seq, err := engine.NewSequential(m, pop, spatial.KindKDTree, 6)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.NewDistributed(m, pop2, engine.Options{
		Workers: 5, Index: spatial.KindKDTree, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(25); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(25); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	if len(a) != len(b) {
		t.Fatalf("sizes differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("agent %d diverged", a[i].ID)
		}
	}
}
