// Package epidemic implements a spatial SIR (susceptible-infected-
// recovered) epidemic in the paper's state-effect pattern. Infection
// pressure travels through the visible region as a *local* effect field:
// each susceptible agent sums a distance-weighted exposure from the
// infected agents it can see, then converts the aggregate into an
// infection probability during its update phase. Because every effect
// assignment targets self and the accumulator is a sum, the query phase
// is order-independent and the model runs bit-identically on the
// sequential and distributed engines with the single-reduce dataflow.
//
// The model is the classic agent-based SIR on a moving population:
// agents random-walk inside a soft world disc, susceptibles catch the
// infection with probability 1−exp(−β·exposure), infected agents recover
// after a fixed number of ticks. Seeding the infection in a spatial
// cluster at the center produces the traveling infection wave that makes
// the workload spatially skewed — a natural load-balancer stressor.
package epidemic

import (
	"math"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
)

// Disease progression states stored in the status state field.
const (
	Susceptible = 0
	Infected    = 1
	Recovered   = 2
)

// Params holds the model constants.
type Params struct {
	// Beta scales aggregate exposure into infection probability:
	// p = 1 − exp(−Beta · exposure).
	Beta float64
	// InfectRadius bounds who can expose whom (≤ Visibility).
	InfectRadius float64
	// Visibility is the schema visibility bound ρ.
	Visibility float64
	// RecoverTicks is how long an agent stays infected.
	RecoverTicks float64
	// Speed is the per-tick random-walk step.
	Speed float64
	// WorldRadius softly confines the population (drift back toward the
	// origin beyond it), keeping density stationary.
	WorldRadius float64
	// SeedInfected is the number of initially infected agents, placed in
	// a cluster at the world center.
	SeedInfected int
	// SeedRadius is the placement radius of the initial infection cluster.
	SeedRadius float64
}

// DefaultParams returns a calibration producing a clear S→I→R wave in a
// few hundred ticks at a few thousand agents.
func DefaultParams() Params {
	return Params{
		Beta:         0.9,
		InfectRadius: 2.5,
		Visibility:   2.5,
		RecoverTicks: 20,
		Speed:        0.6,
		WorldRadius:  45,
		SeedInfected: 8,
		SeedRadius:   3,
	}
}

// Model is the BRACE form of the SIR epidemic. All effect assignments are
// local, so the engine uses the single-reduce dataflow and the sequential
// and distributed engines agree exactly.
type Model struct {
	P Params

	s *agent.Schema
	// state: position, disease status, ticks spent infected
	x, y, status, sick int
	// effect: distance-weighted infection pressure from visible infected
	exposure int
}

// NewModel builds the schema.
func NewModel(p Params) *Model {
	m := &Model{P: p}
	s := agent.NewSchema("Person")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.status = s.AddState("status", true)
	m.sick = s.AddState("sick", false)
	m.exposure = s.AddEffect("exposure", false, agent.Sum)
	s.SetPosition("x", "y")
	s.SetVisibility(p.Visibility)
	// The confinement pull adds up to 0.2·Speed to the random-walk step,
	// so reach must cover the combined displacement or the engine's crop
	// would truncate only the inward drift.
	s.SetReach(1.2*p.Speed + 1e-9)
	return m
}

// Schema implements engine.Model.
func (m *Model) Schema() *agent.Schema { return m.s }

// Query implements engine.Model: a susceptible agent collects exposure
// from every infected agent within the infection radius, weighted by a
// linear distance kernel (closer contacts transmit more).
func (m *Model) Query(self *agent.Agent, env engine.Env) {
	if self.State[m.status] != Susceptible {
		return
	}
	r := m.P.InfectRadius
	env.Nearby(r, func(o *agent.Agent) {
		if o.ID == self.ID || o.State[m.status] != Infected {
			return
		}
		dx := o.State[m.x] - self.State[m.x]
		dy := o.State[m.y] - self.State[m.y]
		d := math.Sqrt(dx*dx + dy*dy)
		if d > r {
			return
		}
		env.Assign(self, m.exposure, 1-d/r)
	})
}

// QueryCols implements engine.ColumnarModel: Query streamed over the
// state columns. The non-susceptible early return happens before any
// probe, exactly as in Query, so probe accounting matches too. The local
// exposure accumulator folds the same terms in the same order starting
// from zero that the per-neighbor Assign sequence folds into the θ = 0
// effect, so the aggregate is bit-identical.
func (m *Model) QueryCols(env *engine.Cols, self int32) {
	status := env.State(m.status)
	if status[self] != Susceptible {
		return
	}
	r := m.P.InfectRadius
	xs, ys := env.State(m.x), env.State(m.y)
	sx, sy := xs[self], ys[self]
	var exposure float64
	for _, j := range env.Nearby(r) {
		if j == self || status[j] != Infected {
			continue
		}
		dx, dy := xs[j]-sx, ys[j]-sy
		d := math.Sqrt(dx*dx + dy*dy)
		if d > r {
			continue
		}
		exposure += 1 - d/r
	}
	env.Assign(self, m.exposure, exposure)
}

// Update implements engine.Model: progress the disease, then random-walk.
func (m *Model) Update(self *agent.Agent, u *engine.UpdateCtx) {
	switch self.State[m.status] {
	case Susceptible:
		if e := self.Effect[m.exposure]; e > 0 {
			p := 1 - math.Exp(-m.P.Beta*e)
			if u.RNG.Float64() < p {
				self.State[m.status] = Infected
				self.State[m.sick] = 0
			}
		}
	case Infected:
		self.State[m.sick]++
		if self.State[m.sick] >= m.P.RecoverTicks {
			self.State[m.status] = Recovered
		}
	}

	// Random walk with a soft pull toward the origin beyond WorldRadius.
	th := u.RNG.Range(0, 2*math.Pi)
	step := geom.V(math.Cos(th), math.Sin(th)).Scale(m.P.Speed)
	pos := geom.V(self.State[m.x], self.State[m.y])
	if r := pos.Len(); r > m.P.WorldRadius {
		step = step.Add(pos.Scale(-0.2 * m.P.Speed / r))
	}
	self.State[m.x] += step.X
	self.State[m.y] += step.Y
}

// NewPopulation scatters n agents uniformly in the world disc and infects
// SeedInfected of them in a cluster at the center.
func (m *Model) NewPopulation(n int, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	seeded := m.P.SeedInfected
	if seeded > n {
		seeded = n
	}
	for i := 0; i < n; i++ {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(m.s, id)
		radius := m.P.WorldRadius * 0.9
		if i < seeded {
			radius = m.P.SeedRadius
			a.State[m.status] = Infected
		}
		r := radius * math.Sqrt(rng.Float64())
		th := rng.Range(0, 2*math.Pi)
		a.State[m.x] = r * math.Cos(th)
		a.State[m.y] = r * math.Sin(th)
		pop[i] = a
	}
	return pop
}

// Status returns an agent's disease state (Susceptible, Infected or
// Recovered).
func (m *Model) Status(a *agent.Agent) int { return int(a.State[m.status]) }

// Counts tallies a population by disease state.
func (m *Model) Counts(pop []*agent.Agent) (s, i, r int) {
	for _, a := range pop {
		switch int(a.State[m.status]) {
		case Susceptible:
			s++
		case Infected:
			i++
		default:
			r++
		}
	}
	return
}

var (
	_ engine.Model         = (*Model)(nil)
	_ engine.ColumnarModel = (*Model)(nil)
)
