package detutil

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	if got, want := SortedKeys(m), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	s := map[string]int{"b": 2, "a": 1}
	if got, want := SortedKeys(s), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[int]int{}); len(got) != 0 {
		t.Errorf("SortedKeys(empty) = %v", got)
	}

	type namedMap map[uint64]struct{}
	nm := namedMap{9: {}, 4: {}}
	if got, want := SortedKeys(nm), []uint64{4, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys(named) = %v, want %v", got, want)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]string{{2, 1}: "x", {1, 2}: "y", {1, 1}: "z"}
	got := SortedKeysFunc(m, func(p, q key) bool {
		if p.a != q.a {
			return p.a < q.a
		}
		return p.b < q.b
	})
	want := []key{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeysFunc = %v, want %v", got, want)
	}
}

// TestSortedKeysIsStableAcrossRuns hammers the helper with a map big
// enough that Go's randomized iteration would betray an ordering bug.
func TestSortedKeysIsStableAcrossRuns(t *testing.T) {
	m := make(map[int]int)
	for i := 0; i < 1000; i++ {
		m[i*7919%104729] = i
	}
	first := SortedKeys(m)
	for run := 0; run < 10; run++ {
		if !reflect.DeepEqual(SortedKeys(m), first) {
			t.Fatalf("run %d: key order differs", run)
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("keys not strictly ascending at %d: %d >= %d", i, first[i-1], first[i])
		}
	}
}
