// Package detutil holds the deterministic-iteration helpers the bracevet
// maporder analyzer (internal/lint) steers map-loop fixes toward. Go
// randomizes map iteration order per run; any loop whose body's effect
// order can reach simulation state, wire traffic, or serialized bytes
// iterates one of these sorted views instead, so every site fixes the
// invariant the same way rather than re-rolling a sort in place.
package detutil

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. The map itself is not
// touched; iterate the returned slice and index the map.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys ordered by the provided less function,
// for key types without a natural order.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
