package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [Min.X, Max.X] × [Min.Y, Max.Y].
// Rectangles model the paper's (hyper)rectangle visibility and reachability
// constraints (§4.1) as well as partition owned regions (§3.2, App. A).
type Rect struct {
	Min, Max Vec
}

// R constructs the rectangle spanning (x0,y0)-(x1,y1), normalizing the
// corner order so Min ≤ Max in both coordinates.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Vec{x0, y0}, Vec{x1, y1}}
}

// Square returns the axis-aligned square of half-width r centered at c.
// It is the rectangle circumscribing the disc of radius r, which is how a
// distance-bound visible region V R(l) is over-approximated for replication.
func Square(c Vec, r float64) Rect {
	return Rect{Vec{c.X - r, c.Y - r}, Vec{c.X + r, c.Y + r}}
}

// Infinite returns the rectangle covering the whole plane, used for
// unbounded visible regions ("the ocean is unbounded", §5.1).
func Infinite() Rect {
	return Rect{
		Vec{math.Inf(-1), math.Inf(-1)},
		Vec{math.Inf(1), math.Inf(1)},
	}
}

// Empty reports whether r contains no points (Min > Max on an axis).
func (r Rect) Empty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// W returns the width of r (Max.X − Min.X).
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r (Max.Y − Min.Y).
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r; an empty rectangle has zero area.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Center returns the midpoint of r.
func (r Rect) Center() Vec { return Vec{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2} }

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Vec) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Vec{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Vec{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Vec{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Vec{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand grows r by d on every side. The visible region of a partition p is
// its owned rectangle expanded by the agents' visibility radius:
// VR(p) = ∪_{l∈p} VR(l) (App. A). A negative d shrinks the rectangle.
func (r Rect) Expand(d float64) Rect {
	return Rect{Vec{r.Min.X - d, r.Min.Y - d}, Vec{r.Max.X + d, r.Max.Y + d}}
}

// Translate returns r shifted by v.
func (r Rect) Translate(v Vec) Rect {
	return Rect{r.Min.Add(v), r.Max.Add(v)}
}

// ClampPoint returns p moved to the closest point inside r.
func (r Rect) ClampPoint(p Vec) Vec { return p.Clamp(r) }

// Dist2 returns the squared distance from p to the rectangle (0 when p is
// inside). It prunes KD-tree traversal for range and nearest queries.
func (r Rect) Dist2(p Vec) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// IntersectsCircle reports whether the disc of radius rad centered at c
// intersects the rectangle.
func (r Rect) IntersectsCircle(c Vec, rad float64) bool {
	return r.Dist2(c) <= rad*rad
}

// SplitX cuts the rectangle at x into left and right parts.
func (r Rect) SplitX(x float64) (left, right Rect) {
	left = Rect{r.Min, Vec{x, r.Max.Y}}
	right = Rect{Vec{x, r.Min.Y}, r.Max}
	return left, right
}

// SplitY cuts the rectangle at y into bottom and top parts.
func (r Rect) SplitY(y float64) (bottom, top Rect) {
	bottom = Rect{r.Min, Vec{r.Max.X, y}}
	top = Rect{Vec{r.Min.X, y}, r.Max}
	return bottom, top
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

func axisDist(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}
