// Package geom provides the low-level spatial types used throughout BRACE:
// 2-D vectors and axis-aligned rectangles. Behavioral simulations are
// "eminently spatial" (paper §2.1); every agent carries a location in a
// 2-D domain L and interacts only with agents inside its visible region.
//
// The package is deliberately small and allocation-free: vectors and
// rectangles are plain value types so they can live inside agent state
// without indirection.
package geom

import "math"

// Vec is a point or displacement in the 2-D simulation domain.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean length |v|.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns |v|² without the square root.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Len2() }

// Norm returns v scaled to unit length. The zero vector normalizes to
// itself so callers need not special-case stationary agents.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Clamp returns v with each coordinate clamped into r. It implements the
// reachability constraint cropping of BRASIL #range tags: "the update rule
// is guaranteed to crop any changes ... to at most one unit" (paper §4.1).
func (v Vec) Clamp(r Rect) Vec {
	return Vec{clamp(v.X, r.Min.X, r.Max.X), clamp(v.Y, r.Min.Y, r.Max.Y)}
}

// Lerp returns v + t·(w−v), the linear interpolation between v and w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// Rotate returns v rotated by the given angle in radians.
func (v Vec) Rotate(rad float64) Vec {
	s, c := math.Sincos(rad)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the angle of v in radians in (−π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsFinite reports whether both coordinates are finite numbers. Simulation
// update rules divide by distances; this guards against NaN/Inf escaping
// into agent state.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
