package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectNormalization(t *testing.T) {
	r := R(5, 6, 1, 2)
	if r.Min != V(1, 2) || r.Max != V(5, 6) {
		t.Errorf("R did not normalize corners: %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 5)
	for _, p := range []Vec{V(0, 0), V(10, 5), V(5, 2.5)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Vec{V(-0.1, 0), V(10.1, 5), V(5, 5.1)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
}

func TestRectAreaWH(t *testing.T) {
	r := R(1, 2, 4, 6)
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Errorf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	empty := Rect{V(1, 1), V(0, 0)}
	if !empty.Empty() || empty.Area() != 0 {
		t.Error("inverted rect should be empty with zero area")
	}
}

func TestRectIntersects(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{R(5, 5, 15, 15), true},
		{R(10, 10, 20, 20), true}, // closed rectangles share corner
		{R(11, 11, 20, 20), false},
		{R(-5, -5, -1, -1), false},
		{R(2, 2, 3, 3), true}, // contained
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a, b := R(0, 0, 10, 10), R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", got)
	}
	disjoint := a.Intersect(R(20, 20, 30, 30))
	if !disjoint.Empty() {
		t.Errorf("disjoint intersection not empty: %v", disjoint)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(0, 0, 2, 2).Expand(1)
	if r != R(-1, -1, 3, 3) {
		t.Errorf("Expand = %v", r)
	}
	if got := R(0, 0, 4, 4).Expand(-1); got != R(1, 1, 3, 3) {
		t.Errorf("negative Expand = %v", got)
	}
}

func TestRectDist2(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Vec
		want float64
	}{
		{V(5, 5), 0},        // inside
		{V(13, 5), 9},       // right of
		{V(13, 14), 9 + 16}, // corner
		{V(5, -2), 4},       // below
	}
	for _, c := range cases {
		if got := r.Dist2(c.p); got != c.want {
			t.Errorf("Dist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersectsCircle(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.IntersectsCircle(V(12, 5), 2) {
		t.Error("circle touching edge should intersect")
	}
	if r.IntersectsCircle(V(13, 5), 2) {
		t.Error("circle at distance 3 radius 2 should not intersect")
	}
	if !r.IntersectsCircle(V(5, 5), 0.1) {
		t.Error("circle inside should intersect")
	}
}

func TestRectSplit(t *testing.T) {
	r := R(0, 0, 10, 10)
	l, rt := r.SplitX(4)
	if l != R(0, 0, 4, 10) || rt != R(4, 0, 10, 10) {
		t.Errorf("SplitX = %v | %v", l, rt)
	}
	b, tp := r.SplitY(7)
	if b != R(0, 0, 10, 7) || tp != R(0, 7, 10, 10) {
		t.Errorf("SplitY = %v | %v", b, tp)
	}
}

func TestRectInfinite(t *testing.T) {
	inf := Infinite()
	f := func(x, y float64) bool {
		v := V(x, y)
		if !v.IsFinite() {
			return true
		}
		return inf.Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectSquare(t *testing.T) {
	s := Square(V(1, 1), 2)
	if s != R(-1, -1, 3, 3) {
		t.Errorf("Square = %v", s)
	}
}

// Property: Dist2(p) == 0 iff Contains(p), for finite rectangles and points.
func TestRectDist2ZeroIffContains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		r := R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		p := V(rng.Float64()*12-1, rng.Float64()*12-1)
		if (r.Dist2(p) == 0) != r.Contains(p) {
			t.Fatalf("Dist2/Contains disagree: r=%v p=%v", r, p)
		}
	}
}

// Property: intersection is contained in both; union contains both.
func TestRectIntersectUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		a := R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		b := R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		inter := a.Intersect(b)
		if !inter.Empty() {
			if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
				t.Fatalf("intersection escapes operands: a=%v b=%v i=%v", a, b, inter)
			}
		}
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union misses operand: a=%v b=%v u=%v", a, b, u)
		}
	}
}

// Property: expanding by the visibility radius makes the square around any
// contained point intersect the rectangle's expansion — this is the
// replication-sufficiency fact the engine relies on.
func TestRectExpandCoversVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 500; i++ {
		r := R(0, 0, 10+rng.Float64()*10, 10+rng.Float64()*10)
		rad := rng.Float64() * 5
		p := V(rng.Float64()*r.Max.X, rng.Float64()*r.Max.Y) // p inside r
		vr := Square(p, rad)
		q := V(vr.Min.X+rng.Float64()*vr.W(), vr.Min.Y+rng.Float64()*vr.H())
		if !r.Expand(rad).Contains(q) {
			t.Fatalf("q=%v visible from p=%v (rad %v) escapes expanded %v", q, p, rad, r)
		}
	}
}

func TestRectString(t *testing.T) {
	if s := R(0, 1, 2, 3).String(); s != "[0,2]x[1,3]" {
		t.Errorf("String = %q", s)
	}
}

func TestRectCenter(t *testing.T) {
	if c := R(0, 0, 4, 8).Center(); c != V(2, 4) {
		t.Errorf("Center = %v", c)
	}
}

func TestRectTranslate(t *testing.T) {
	r := R(0, 0, 2, 2).Translate(V(3, -1))
	if r != R(3, -1, 5, 1) {
		t.Errorf("Translate = %v", r)
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := R(0, 0, 10, 10)
	if !outer.ContainsRect(R(1, 1, 9, 9)) {
		t.Error("inner rect rejected")
	}
	if outer.ContainsRect(R(5, 5, 11, 9)) {
		t.Error("overhanging rect accepted")
	}
	if !outer.ContainsRect(Rect{V(3, 3), V(2, 2)}) {
		t.Error("empty rect should be contained everywhere")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
}

func TestRectClampPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	if p := r.ClampPoint(V(15, -5)); p != V(10, 0) {
		t.Errorf("ClampPoint = %v", p)
	}
}

func TestAxisDist(t *testing.T) {
	if axisDist(5, 0, 10) != 0 || axisDist(-3, 0, 10) != 3 || axisDist(14, 0, 10) != 4 {
		t.Error("axisDist broken")
	}
	_ = math.Pi // keep math imported even if constants change
}
