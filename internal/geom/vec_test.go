package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func vecEq(a, b Vec) bool { return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) }

func TestVecBasicOps(t *testing.T) {
	a, b := V(1, 2), V(3, -4)
	if got := a.Add(b); got != V(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v", got)
	}
	if got := b.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := b.Len2(); got != 25 {
		t.Errorf("Len2 = %v", got)
	}
}

func TestVecDist(t *testing.T) {
	if d := V(0, 0).Dist(V(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := V(1, 1).Dist2(V(4, 5)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestVecNorm(t *testing.T) {
	n := V(3, 4).Norm()
	if !vecEq(n, V(0.6, 0.8)) {
		t.Errorf("Norm = %v", n)
	}
	if got := (Vec{}).Norm(); got != (Vec{}) {
		t.Errorf("Norm(0) = %v, want zero vector", got)
	}
}

func TestVecNormPropertyUnitLength(t *testing.T) {
	f := func(x, y float64) bool {
		v := V(x, y)
		if !v.IsFinite() || v.Len() == 0 || math.IsInf(v.Len(), 0) {
			return true
		}
		n := v.Norm()
		// Extremely large inputs can overflow; skip those.
		if !n.IsFinite() {
			return true
		}
		return almostEq(n.Len(), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecAddCommutativeAssociative(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := V(ax, ay), V(bx, by), V(cx, cy)
		if a.Add(b) != b.Add(a) {
			return false
		}
		l, r := a.Add(b).Add(c), a.Add(b.Add(c))
		if !l.IsFinite() || !r.IsFinite() {
			return true // overflow to ±Inf is outside the algebraic domain
		}
		// Floating-point addition is only approximately associative; compare
		// with a tolerance scaled to the operand magnitudes.
		tol := 1e-9 * (1 + a.Len() + b.Len() + c.Len())
		return math.Abs(l.X-r.X) <= tol && math.Abs(l.Y-r.Y) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecRotate(t *testing.T) {
	got := V(1, 0).Rotate(math.Pi / 2)
	if !vecEq(got, V(0, 1)) {
		t.Errorf("Rotate(π/2) = %v", got)
	}
	got = V(1, 0).Rotate(math.Pi)
	if !vecEq(got, V(-1, 0)) {
		t.Errorf("Rotate(π) = %v", got)
	}
}

func TestVecRotatePreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		v := V(rng.NormFloat64(), rng.NormFloat64())
		a := rng.Float64() * 2 * math.Pi
		if !almostEq(v.Rotate(a).Len(), v.Len()) {
			t.Fatalf("rotation changed length of %v by angle %v", v, a)
		}
	}
}

func TestVecAngle(t *testing.T) {
	if a := V(0, 1).Angle(); !almostEq(a, math.Pi/2) {
		t.Errorf("Angle = %v", a)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(10, -10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecClamp(t *testing.T) {
	r := R(-1, -1, 1, 1)
	cases := []struct{ in, want Vec }{
		{V(0, 0), V(0, 0)},
		{V(2, 0), V(1, 0)},
		{V(-3, -9), V(-1, -1)},
		{V(0.5, 7), V(0.5, 1)},
	}
	for _, c := range cases {
		if got := c.in.Clamp(r); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVecClampAlwaysInside(t *testing.T) {
	r := R(-2, 3, 5, 9)
	f := func(x, y float64) bool {
		v := V(x, y)
		if !v.IsFinite() {
			return true
		}
		return r.Contains(v.Clamp(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, v := range []Vec{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}
