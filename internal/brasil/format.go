package brasil

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a Class back to BRASIL source. It is used by brasilc to
// show the result of compiler transformations (notably effect inversion),
// and round-trips: Parse(Format(c)) is structurally identical to c (the
// format_test suite checks Format∘Parse∘Format is a fixpoint).
func Format(cl *Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s {\n", cl.Name)
	for _, f := range cl.Fields {
		b.WriteString("  ")
		b.WriteString(visibility(f.Public))
		if f.IsState {
			fmt.Fprintf(&b, " state %s %s : %s;", f.Type, f.Name, FormatExpr(f.Update))
		} else {
			fmt.Fprintf(&b, " effect %s %s : %s;", f.Type, f.Name, f.Comb)
		}
		if f.Range != nil {
			fmt.Fprintf(&b, " #range[%s,%s];", num(f.Range.Lo), num(f.Range.Hi))
		}
		b.WriteByte('\n')
	}
	if cl.Run != nil {
		fmt.Fprintf(&b, "  %s void run() {\n", visibility(cl.Run.Public))
		writeStmts(&b, cl.Run.Body, "    ")
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func visibility(public bool) string {
	if public {
		return "public"
	}
	return "private"
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			fmt.Fprintf(b, "%sconst %s %s = %s;\n", indent, st.Type, st.Name, FormatExpr(st.Init))
		case *AssignEffect:
			if st.On != nil {
				fmt.Fprintf(b, "%s%s.%s <- %s;\n", indent, FormatExpr(st.On), st.Field, FormatExpr(st.Value))
			} else {
				fmt.Fprintf(b, "%s%s <- %s;\n", indent, st.Field, FormatExpr(st.Value))
			}
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, FormatExpr(st.Cond))
			writeStmts(b, st.Then, indent+"  ")
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				writeStmts(b, st.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *Foreach:
			fmt.Fprintf(b, "%sforeach (%s %s : Extent<%s>) {\n", indent, st.VarType, st.VarName, st.VarType)
			writeStmts(b, st.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}

// FormatExpr renders an expression. Parenthesization is conservative
// (every binary operation is wrapped), which keeps the printer simple and
// the round-trip exact.
func FormatExpr(e Expr) string {
	switch ex := e.(type) {
	case *Num:
		return num(ex.Val)
	case *Ref:
		return ex.Name
	case *This:
		return "this"
	case *FieldRef:
		return FormatExpr(ex.On) + "." + ex.Field
	case *Unary:
		return ex.Op + parenthesize(ex.X)
	case *Binary:
		return "(" + FormatExpr(ex.L) + " " + ex.Op + " " + FormatExpr(ex.R) + ")"
	case *Call:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = FormatExpr(a)
		}
		return ex.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("/*?%T*/", e)
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *Num, *Ref, *This, *Call, *FieldRef:
		return FormatExpr(e)
	default:
		return "(" + FormatExpr(e) + ")"
	}
}

func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
