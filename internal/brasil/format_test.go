package brasil

import (
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// Format∘Parse must be a fixpoint: formatting, reparsing and formatting
// again yields the same text.
func TestFormatRoundTrip(t *testing.T) {
	for name, src := range map[string]string{"fish": fishSrc, "push": pushSrc} {
		cl, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		once := Format(cl)
		cl2, err := Parse(once)
		if err != nil {
			t.Fatalf("%s: formatted source does not reparse: %v\n%s", name, err, once)
		}
		twice := Format(cl2)
		if once != twice {
			t.Errorf("%s: format not a fixpoint:\n--- once ---\n%s--- twice ---\n%s", name, once, twice)
		}
	}
}

// The formatted source must compile to a semantically identical program.
func TestFormatPreservesSemantics(t *testing.T) {
	cl, err := Parse(fishSrc)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(cl)
	p1, err := Compile(fishSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(formatted, CompileOptions{})
	if err != nil {
		t.Fatalf("formatted source does not compile: %v\n%s", err, formatted)
	}
	mk := func(s *agent.Schema) []*agent.Agent { return seedPop(s, 40, 12) }
	e1, err := engine.NewSequential(p1, mk(p1.Schema()), spatial.KindKDTree, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewSequential(p2, mk(p2.Schema()), spatial.KindKDTree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.RunTicks(6); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunTicks(6); err != nil {
		t.Fatal(err)
	}
	a, b := e1.Agents(), e2.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("formatted program diverged at agent %d", a[i].ID)
		}
	}
}

// Formatting the inverted script shows the Theorem 2 rewrite: the
// non-local assignment is gone, the swapped local one is present under
// the re-imposed distance guard.
func TestFormatInvertedScript(t *testing.T) {
	ck := checkedFor(t, pushSrc)
	inv, err := Invert(ck)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(inv)
	if strings.Contains(out, "p.pushx <-") {
		t.Errorf("inverted script still assigns non-locally:\n%s", out)
	}
	if !strings.Contains(out, "pushx <-") {
		t.Errorf("inverted script lost the assignment:\n%s", out)
	}
	// pushSrc has no #range tags (Theorem 2's unbounded case): the swapped
	// distance guard must appear, and no visibility guard is added.
	if !strings.Contains(out, "dist(p, this) < 3") {
		t.Errorf("inverted script lacks the swapped guard:\n%s", out)
	}
	if strings.Contains(out, "<= ") && strings.Contains(out, "dist(this, p) <=") {
		t.Errorf("unexpected visibility guard in the unbounded case:\n%s", out)
	}
	// And it still parses + checks.
	cl2, err := Parse(out)
	if err != nil {
		t.Fatalf("inverted script does not reparse: %v\n%s", err, out)
	}
	ck2, err := Check(cl2)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.HasNonLocal {
		t.Error("reparsed inverted script still non-local")
	}
}

// With a distance-bound visibility (Theorem 3's case) the inverter
// re-imposes the original bound as an explicit guard.
func TestFormatInvertedScriptWithVisibility(t *testing.T) {
	const visSrc = `
class C {
  public state float x : x; #range[-4,4];
  public state float y : y; #range[-4,4];
  public state float m : m;
  public effect float push : sum;
  public void run() {
    foreach (C p : Extent<C>) {
      if (p != this) {
        p.push <- (p.x - x) * m;
      }
    }
  }
}
`
	ck := checkedFor(t, visSrc)
	inv, err := Invert(ck)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(inv)
	if !strings.Contains(out, "dist(this, p) <= 4") {
		t.Errorf("inverted script lacks the re-imposed visibility guard:\n%s", out)
	}
	if strings.Contains(out, "p.push <-") {
		t.Errorf("non-local assignment survived inversion:\n%s", out)
	}
}

func checkedFor(t *testing.T, src string) *Checked {
	t.Helper()
	cl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Check(cl)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}
