package brasil

import "math"

// This file implements the algebraic optimizations of §4.2 that operate
// directly on the AST: constant folding (a representative of the standard
// relational/monad-algebra rewrites) and automatic index selection, which
// turns a distance-guarded foreach into an orthogonal range probe — the
// optimization behind Fig. 3's log-linear curve.

// foldClass folds constants in every expression of the class, in place.
func foldClass(cl *Class) {
	for _, f := range cl.Fields {
		if f.Update != nil {
			f.Update = fold(f.Update)
		}
	}
	if cl.Run != nil {
		foldStmts(cl.Run.Body)
	}
}

func foldStmts(stmts []Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			st.Init = fold(st.Init)
		case *AssignEffect:
			st.Value = fold(st.Value)
		case *If:
			st.Cond = fold(st.Cond)
			foldStmts(st.Then)
			foldStmts(st.Else)
		case *Foreach:
			foldStmts(st.Body)
		}
	}
}

// fold performs bottom-up constant folding. rand() is never folded; all
// other builtins are pure.
func fold(e Expr) Expr {
	switch ex := e.(type) {
	case *Unary:
		ex.X = fold(ex.X)
		if n, ok := ex.X.(*Num); ok {
			switch ex.Op {
			case "-":
				return &Num{Val: -n.Val, Pos: ex.Pos}
			case "!":
				return &Num{Val: b2f(n.Val == 0), Pos: ex.Pos}
			}
		}
		return ex

	case *Binary:
		ex.L = fold(ex.L)
		ex.R = fold(ex.R)
		l, lok := ex.L.(*Num)
		r, rok := ex.R.(*Num)
		if lok && rok {
			if v, ok := evalConstBinary(ex.Op, l.Val, r.Val); ok {
				return &Num{Val: v, Pos: ex.Pos}
			}
		}
		// Algebraic identities: x+0, x*1, x*0, 0/x keep the tree small.
		if rok {
			switch {
			case ex.Op == "+" && r.Val == 0,
				ex.Op == "-" && r.Val == 0,
				ex.Op == "*" && r.Val == 1,
				ex.Op == "/" && r.Val == 1:
				return ex.L
			}
		}
		if lok {
			switch {
			case ex.Op == "+" && l.Val == 0:
				return ex.R
			case ex.Op == "*" && l.Val == 1:
				return ex.R
			}
		}
		return ex

	case *Call:
		for i := range ex.Args {
			ex.Args[i] = fold(ex.Args[i])
		}
		if ex.Name == "rand" || ex.Name == "dist" {
			return ex
		}
		vals := make([]float64, len(ex.Args))
		for i, a := range ex.Args {
			n, ok := a.(*Num)
			if !ok {
				return ex
			}
			vals[i] = n.Val
		}
		if v, ok := evalConstCall(ex.Name, vals); ok {
			return &Num{Val: v, Pos: ex.Pos}
		}
		return ex

	case *FieldRef:
		ex.On = fold(ex.On)
		return ex
	}
	return e
}

func evalConstBinary(op string, l, r float64) (float64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		return l / r, true
	case "%":
		return math.Mod(l, r), true
	case "<":
		return b2f(l < r), true
	case "<=":
		return b2f(l <= r), true
	case ">":
		return b2f(l > r), true
	case ">=":
		return b2f(l >= r), true
	case "==":
		return b2f(l == r), true
	case "!=":
		return b2f(l != r), true
	case "&&":
		return b2f(l != 0 && r != 0), true
	case "||":
		return b2f(l != 0 || r != 0), true
	}
	return 0, false
}

func evalConstCall(name string, v []float64) (float64, bool) {
	switch name {
	case "abs":
		return math.Abs(v[0]), true
	case "sqrt":
		return math.Sqrt(v[0]), true
	case "floor":
		return math.Floor(v[0]), true
	case "exp":
		return math.Exp(v[0]), true
	case "log":
		return math.Log(v[0]), true
	case "sin":
		return math.Sin(v[0]), true
	case "cos":
		return math.Cos(v[0]), true
	case "min":
		return math.Min(v[0], v[1]), true
	case "max":
		return math.Max(v[0], v[1]), true
	case "pow":
		return math.Pow(v[0], v[1]), true
	case "cond":
		if v[0] != 0 {
			return v[1], true
		}
		return v[2], true
	}
	return 0, false
}

// selectIndexes installs Radius hints on foreach loops whose body is a
// single distance guard `if (dist(this, p) < R) {...}` (or dist(p, this),
// or <=) where R does not depend on the loop variable. The guard stays in
// place — the index probe is an over-approximation and the residual filter
// preserves exact semantics — but the engine now visits O(k) candidates
// instead of the whole visible set.
func selectIndexes(ck *Checked) {
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *If:
				walk(st.Then)
				walk(st.Else)
			case *Foreach:
				tryIndexForeach(ck, st)
				walk(st.Body)
			}
		}
	}
	walk(ck.Class.Run.Body)
}

func tryIndexForeach(ck *Checked, fe *Foreach) {
	if fe.Radius != nil || len(fe.Body) != 1 {
		return
	}
	guard, ok := fe.Body[0].(*If)
	if !ok || guard.Else != nil {
		return
	}
	bin, ok := guard.Cond.(*Binary)
	if !ok || (bin.Op != "<" && bin.Op != "<=") {
		return
	}
	call, ok := bin.L.(*Call)
	if !ok || call.Name != "dist" || len(call.Args) != 2 {
		return
	}
	if !distMentions(ck, call, fe.VarName) {
		return
	}
	if mentionsVar(ck, bin.R, fe.VarName) {
		return
	}
	fe.Radius = bin.R
}

// distMentions reports whether the dist() call is between this and the
// loop variable (in either order).
func distMentions(ck *Checked, call *Call, loopVar string) bool {
	isThis := func(e Expr) bool { _, ok := e.(*This); return ok }
	isVar := func(e Expr) bool {
		r, ok := e.(*Ref)
		if !ok {
			return false
		}
		ri, ok := ck.Refs[r]
		return ok && ri.kind == refAgent && r.Name == loopVar
	}
	a, b := call.Args[0], call.Args[1]
	return isThis(a) && isVar(b) || isVar(a) && isThis(b)
}

// mentionsVar reports whether e references the loop variable.
func mentionsVar(ck *Checked, e Expr, name string) bool {
	switch ex := e.(type) {
	case *Ref:
		ri, ok := ck.Refs[ex]
		return ok && ri.kind == refAgent && ex.Name == name
	case *FieldRef:
		return mentionsVar(ck, ex.On, name)
	case *Unary:
		return mentionsVar(ck, ex.X, name)
	case *Binary:
		return mentionsVar(ck, ex.L, name) || mentionsVar(ck, ex.R, name)
	case *Call:
		for _, a := range ex.Args {
			if mentionsVar(ck, a, name) {
				return true
			}
		}
	}
	return false
}
