package brasil

import (
	"fmt"
	"math"

	"github.com/bigreddata/brace/internal/agent"
)

// refKind classifies a resolved name.
type refKind int

const (
	refLocal refKind = iota
	refState
	refEffect
	refAgent // a foreach loop variable
)

// refInfo is the resolution of one reference: its kind and either a local
// slot, a field index, or an agent-variable depth.
type refInfo struct {
	kind  refKind
	index int
}

// typ is BRASIL's two-type universe: numbers (float/int/bool collapse to
// float64) and agent references.
type typ int

const (
	typNum typ = iota
	typAgent
)

// Checked is the semantic-analysis result: the AST plus resolution tables
// and the classifications the compiler and optimizer need.
type Checked struct {
	Class *Class

	Fields    map[string]*FieldDecl
	StateIdx  map[string]int // state field name → State vector index
	EffectIdx map[string]int // effect field name → Effect vector index

	Refs    map[*Ref]refInfo
	FieldOf map[*FieldRef]refInfo
	Agents  map[*Foreach]int // loop nesting depth (agent slot)
	Locals  map[*VarDecl]int // local slot

	NLocals int
	NAgents int

	// HasNonLocal reports whether run() contains a non-local effect
	// assignment, forcing the two-reduce dataflow unless inverted.
	HasNonLocal bool
	// ReadsEffects reports whether run() reads any effect field (only
	// legal outside foreach loops, and incompatible with non-local
	// assignments whose aggregates are not yet final at read time).
	ReadsEffects bool

	// Visibility and Reach derive from the #range tags on the spatial
	// fields x and y (0 = unbounded).
	Visibility, Reach float64
}

type checker struct {
	c      *Checked
	errs   []error
	scopes []map[string]refInfo // lexical scopes for locals/agent vars
	depth  int                  // current foreach nesting
}

// Check performs semantic analysis on a parsed class.
func Check(cl *Class) (*Checked, error) {
	c := &Checked{
		Class:     cl,
		Fields:    map[string]*FieldDecl{},
		StateIdx:  map[string]int{},
		EffectIdx: map[string]int{},
		Refs:      map[*Ref]refInfo{},
		FieldOf:   map[*FieldRef]refInfo{},
		Agents:    map[*Foreach]int{},
		Locals:    map[*VarDecl]int{},
	}
	ck := &checker{c: c}

	// Field table.
	for _, f := range cl.Fields {
		if _, dup := c.Fields[f.Name]; dup {
			ck.errorf(f.Pos, "duplicate field %q", f.Name)
			continue
		}
		c.Fields[f.Name] = f
		if f.IsState {
			c.StateIdx[f.Name] = len(c.StateIdx)
		} else {
			if _, err := agent.CombinatorByName(f.Comb); err != nil {
				ck.errorf(f.Pos, "effect %q: unknown combinator %q", f.Name, f.Comb)
			}
			c.EffectIdx[f.Name] = len(c.EffectIdx)
		}
	}

	// Spatial convention: state fields x and y are the agent position.
	for _, name := range []string{"x", "y"} {
		f, ok := c.Fields[name]
		if !ok || !f.IsState {
			ck.errorf(cl.Pos, "class %s needs state fields x and y for its spatial position", cl.Name)
		}
	}
	// Visibility/reach from #range tags on the spatial fields (§4.1: the
	// tagged interval bounds both inspection and movement on that axis).
	// Visibility takes the largest tagged bound. Reach is only bounded
	// when *both* axes carry tags: an untagged axis means unbounded
	// movement there (e.g. a ring road wrapping x), and the engine's
	// square crop must not clamp it — per-axis #range crops still apply
	// individually in the update rules.
	tagged := 0
	for _, name := range []string{"x", "y"} {
		if f, ok := c.Fields[name]; ok && f.Range != nil {
			r := math.Max(math.Abs(f.Range.Lo), math.Abs(f.Range.Hi))
			c.Visibility = math.Max(c.Visibility, r)
			c.Reach = math.Max(c.Reach, r)
			tagged++
		}
	}
	if tagged < 2 {
		c.Reach = 0
	}

	// Update rules.
	for _, f := range cl.Fields {
		if !f.IsState {
			continue
		}
		if f.Update == nil {
			ck.errorf(f.Pos, "state %q has no update rule", f.Name)
			continue
		}
		ck.checkUpdateExpr(f.Update)
	}

	// Query script.
	if cl.Run != nil {
		ck.pushScope()
		ck.checkStmts(cl.Run.Body)
		ck.popScope()
	}

	if c.HasNonLocal && c.ReadsEffects {
		ck.errorf(cl.Run.Pos,
			"run() both assigns non-local effects and reads effect fields; partial aggregates are not final at read time")
	}
	if len(ck.errs) > 0 {
		return nil, ck.errs[0]
	}
	return c, nil
}

func (ck *checker) errorf(t Token, format string, args ...any) {
	ck.errs = append(ck.errs, errAt(t, format, args...))
}

func (ck *checker) pushScope() { ck.scopes = append(ck.scopes, map[string]refInfo{}) }
func (ck *checker) popScope()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) lookup(name string) (refInfo, bool) {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if ri, ok := ck.scopes[i][name]; ok {
			return ri, true
		}
	}
	return refInfo{}, false
}

func (ck *checker) checkStmts(stmts []Stmt) {
	for _, s := range stmts {
		ck.checkStmt(s)
	}
}

func (ck *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		t := ck.checkExpr(st.Init, false)
		if t != typNum {
			ck.errorf(st.Pos, "local %q must be numeric", st.Name)
		}
		slot := ck.c.NLocals
		ck.c.NLocals++
		ck.c.Locals[st] = slot
		ck.scopes[len(ck.scopes)-1][st.Name] = refInfo{kind: refLocal, index: slot}

	case *AssignEffect:
		f, ok := ck.c.Fields[st.Field]
		if !ok || f.IsState {
			ck.errorf(st.Pos, "effect assignment target %q is not an effect field", st.Field)
			return
		}
		if st.On != nil {
			t := ck.checkExpr(st.On, false)
			if t != typAgent {
				ck.errorf(st.Pos, "assignment through a non-agent expression")
			}
			if _, isThis := st.On.(*This); !isThis {
				ck.c.HasNonLocal = true
			}
		}
		if ck.checkExpr(st.Value, false) != typNum {
			ck.errorf(st.Pos, "effect value must be numeric")
		}

	case *If:
		if ck.checkExpr(st.Cond, false) != typNum {
			ck.errorf(st.Pos, "if condition must be boolean/numeric")
		}
		ck.pushScope()
		ck.checkStmts(st.Then)
		ck.popScope()
		ck.pushScope()
		ck.checkStmts(st.Else)
		ck.popScope()

	case *Foreach:
		if st.VarType != ck.c.Class.Name {
			ck.errorf(st.Pos, "foreach over %s, but only Extent<%s> exists", st.VarType, ck.c.Class.Name)
		}
		depth := ck.depth
		ck.c.Agents[st] = depth
		if depth+1 > ck.c.NAgents {
			ck.c.NAgents = depth + 1
		}
		ck.pushScope()
		ck.scopes[len(ck.scopes)-1][st.VarName] = refInfo{kind: refAgent, index: depth}
		ck.depth++
		ck.checkStmts(st.Body)
		ck.depth--
		ck.popScope()
	}
}

// checkExpr type-checks an expression in the query script. inUpdate
// selects the update-rule discipline instead.
func (ck *checker) checkExpr(e Expr, inUpdate bool) typ {
	switch ex := e.(type) {
	case *Num:
		return typNum

	case *This:
		if inUpdate {
			ck.errorf(ex.Pos, "update rules cannot reference agents")
		}
		return typAgent

	case *Ref:
		if ri, ok := ck.lookup(ex.Name); ok && !inUpdate {
			ck.c.Refs[ex] = ri
			if ri.kind == refAgent {
				return typAgent
			}
			return typNum
		}
		f, ok := ck.c.Fields[ex.Name]
		if !ok {
			ck.errorf(ex.Pos, "undefined name %q", ex.Name)
			return typNum
		}
		if f.IsState {
			ck.c.Refs[ex] = refInfo{kind: refState, index: ck.c.StateIdx[ex.Name]}
			return typNum
		}
		// Effect read.
		if !inUpdate {
			if ck.depth > 0 {
				ck.errorf(ex.Pos, "effect %q read inside a foreach loop (effects are write-only there)", ex.Name)
			}
			ck.c.ReadsEffects = true
		}
		ck.c.Refs[ex] = refInfo{kind: refEffect, index: ck.c.EffectIdx[ex.Name]}
		return typNum

	case *FieldRef:
		if inUpdate {
			ck.errorf(ex.Pos, "update rules read only the agent's own bare fields")
			return typNum
		}
		if ck.checkExpr(ex.On, inUpdate) != typAgent {
			ck.errorf(ex.Pos, "field access through a non-agent expression")
			return typNum
		}
		f, ok := ck.c.Fields[ex.Field]
		if !ok {
			ck.errorf(ex.Pos, "undefined field %q", ex.Field)
			return typNum
		}
		if f.IsState {
			ck.c.FieldOf[ex] = refInfo{kind: refState, index: ck.c.StateIdx[ex.Field]}
		} else {
			// Reading another agent's effects is never legal; reading
			// this.effect follows the same rule as a bare effect read.
			if _, isThis := ex.On.(*This); !isThis {
				ck.errorf(ex.Pos, "effect %q of another agent is not readable", ex.Field)
			} else if ck.depth > 0 {
				ck.errorf(ex.Pos, "effect %q read inside a foreach loop", ex.Field)
			} else {
				ck.c.ReadsEffects = true
			}
			ck.c.FieldOf[ex] = refInfo{kind: refEffect, index: ck.c.EffectIdx[ex.Field]}
		}
		return typNum

	case *Unary:
		if ck.checkExpr(ex.X, inUpdate) != typNum {
			ck.errorf(ex.Pos, "unary %s needs a numeric operand", ex.Op)
		}
		return typNum

	case *Binary:
		lt := ck.checkExpr(ex.L, inUpdate)
		rt := ck.checkExpr(ex.R, inUpdate)
		if ex.Op == "==" || ex.Op == "!=" {
			if lt != rt {
				ck.errorf(ex.Pos, "cannot compare agent with number")
			}
			return typNum
		}
		if lt == typAgent || rt == typAgent {
			ck.errorf(ex.Pos, "agent references only support == and !=")
		}
		return typNum

	case *Call:
		return ck.checkCall(ex, inUpdate)
	}
	return typNum
}

var numericBuiltins = map[string]int{
	"abs": 1, "sqrt": 1, "floor": 1, "exp": 1, "log": 1,
	"sin": 1, "cos": 1, "min": 2, "max": 2, "pow": 2,
	// cond(c, a, b) is the eager ternary: a when c ≠ 0, else b. Both arms
	// evaluate (no short-circuit), keeping rand() stream alignment trivial.
	"cond": 3,
}

func (ck *checker) checkCall(ex *Call, inUpdate bool) typ {
	switch ex.Name {
	case "rand":
		if !inUpdate {
			ck.errorf(ex.Pos, "rand() is only available in update rules (query phases must be order-independent)")
		}
		if len(ex.Args) != 0 {
			ck.errorf(ex.Pos, "rand() takes no arguments")
		}
		return typNum
	case "dist":
		if inUpdate {
			ck.errorf(ex.Pos, "dist() is not available in update rules")
			return typNum
		}
		if len(ex.Args) != 2 {
			ck.errorf(ex.Pos, "dist() takes two agent arguments")
			return typNum
		}
		for _, a := range ex.Args {
			if ck.checkExpr(a, inUpdate) != typAgent {
				ck.errorf(ex.Pos, "dist() arguments must be agents")
			}
		}
		return typNum
	default:
		n, ok := numericBuiltins[ex.Name]
		if !ok {
			ck.errorf(ex.Pos, "unknown function %q", ex.Name)
			return typNum
		}
		if len(ex.Args) != n {
			ck.errorf(ex.Pos, "%s() takes %d argument(s), got %d", ex.Name, n, len(ex.Args))
		}
		for _, a := range ex.Args {
			if ck.checkExpr(a, inUpdate) != typNum {
				ck.errorf(ex.Pos, "%s() arguments must be numeric", ex.Name)
			}
		}
		return typNum
	}
}

// checkUpdateExpr applies the update-rule discipline: only the agent's own
// state and effect fields plus numeric builtins and rand().
func (ck *checker) checkUpdateExpr(e Expr) {
	t := ck.checkExpr(e, true)
	if t != typNum {
		ck.errorf(ck.c.Class.Pos, "update rule must be numeric")
	}
}

// Fprint formats a resolved field table for brasilc's -describe output.
func (c *Checked) Describe() string {
	s := fmt.Sprintf("class %s: %d state, %d effect fields; visibility %g, reach %g; non-local effects: %v\n",
		c.Class.Name, len(c.StateIdx), len(c.EffectIdx), c.Visibility, c.Reach, c.HasNonLocal)
	return s
}
