package brasil

import "fmt"

// Invert implements the effect-inversion optimization of §4.2 and
// Theorems 2–3 (App. B.2): it rewrites a script with non-local effect
// assignments into an equivalent script with only local assignments, so
// the engine can process each tick with one MapReduce pass instead of two.
//
// The transformation follows the proof of Theorem 2: the acting agent
// simulates, for every visible agent p, the assignments p would have made
// *to the acting agent*, by swapping the roles of `this` and the loop
// variable in the assignment's value and in every enclosing condition. A
// non-local assignment is invertible here when every expression involved
// references only the pair {this, loop variable} — the case where a
// visibility radius of R already suffices (the general Theorem 3 bound of
// 2R is needed only when values route information through third agents;
// the monad package exercises that bound formally).
//
// When the original script has a distance-bound visibility constraint,
// the swapped statements are wrapped in an explicit `if (dist(this,p) <=
// R)` guard so that the inverted script assigns exactly the effects the
// original's visibility semantics permitted (Theorem 1 equivalence).
//
// Invert returns a new Class; the input is not modified.
func Invert(ck *Checked) (*Class, error) {
	cl := ck.Class
	out := &Class{Name: cl.Name, Fields: cl.Fields, Pos: cl.Pos}
	run := &MethodDecl{Name: "run", Public: cl.Run.Public, Pos: cl.Run.Pos}
	for _, s := range cl.Run.Body {
		switch st := s.(type) {
		case *Foreach:
			inv, err := invertForeach(ck, st)
			if err != nil {
				return nil, err
			}
			run.Body = append(run.Body, inv)
		default:
			if containsNonLocal(ck, []Stmt{s}) {
				return nil, fmt.Errorf("brasil: non-local assignment outside a foreach loop cannot be inverted")
			}
			run.Body = append(run.Body, s)
		}
	}
	out.Run = run
	return out, nil
}

func invertForeach(ck *Checked, fe *Foreach) (*Foreach, error) {
	if !containsNonLocal(ck, fe.Body) {
		return fe, nil
	}
	inv := &Foreach{VarName: fe.VarName, VarType: fe.VarType, Pos: fe.Pos}
	sw := &swapper{ck: ck, loopVar: fe.VarName}

	// Keep the local halves verbatim; append the swapped non-local halves.
	local, err := stripNonLocal(ck, fe.Body, fe.VarName)
	if err != nil {
		return nil, err
	}
	swapped, err := sw.stmts(onlyNonLocal(ck, fe.Body, fe.VarName))
	if err != nil {
		return nil, err
	}
	if ck.Visibility > 0 {
		// Re-impose the original visibility bound explicitly (see doc).
		swapped = []Stmt{&If{
			Cond: &Binary{
				Op: "<=",
				L:  &Call{Name: "dist", Args: []Expr{&This{}, &Ref{Name: fe.VarName}}},
				R:  &Num{Val: ck.Visibility},
			},
			Then: swapped,
			Pos:  fe.Pos,
		}}
	}
	inv.Body = append(append([]Stmt{}, local...), swapped...)
	return inv, nil
}

// containsNonLocal reports whether any statement performs a non-local
// effect assignment.
func containsNonLocal(ck *Checked, stmts []Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignEffect:
			if st.On != nil {
				if _, isThis := st.On.(*This); !isThis {
					return true
				}
			}
		case *If:
			if containsNonLocal(ck, st.Then) || containsNonLocal(ck, st.Else) {
				return true
			}
		case *Foreach:
			if containsNonLocal(ck, st.Body) {
				return true
			}
		}
	}
	return false
}

// stripNonLocal returns the statements with non-local assignments removed
// (keeping local assignments, declarations and control flow intact, and
// dropping conditionals that become empty).
func stripNonLocal(ck *Checked, stmts []Stmt, loopVar string) ([]Stmt, error) {
	var out []Stmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignEffect:
			if st.On != nil {
				if _, isThis := st.On.(*This); !isThis {
					continue
				}
			}
			out = append(out, st)
		case *If:
			then, err := stripNonLocal(ck, st.Then, loopVar)
			if err != nil {
				return nil, err
			}
			els, err := stripNonLocal(ck, st.Else, loopVar)
			if err != nil {
				return nil, err
			}
			if len(then)+len(els) > 0 {
				out = append(out, &If{Cond: st.Cond, Then: then, Else: els, Pos: st.Pos})
			}
		case *Foreach:
			return nil, fmt.Errorf("brasil: cannot invert nested foreach loops")
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

// onlyNonLocal returns the statements with only the non-local assignments
// retained (under their guarding conditionals).
func onlyNonLocal(ck *Checked, stmts []Stmt, loopVar string) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignEffect:
			if st.On != nil {
				if _, isThis := st.On.(*This); !isThis {
					out = append(out, st)
				}
			}
		case *If:
			then := onlyNonLocal(ck, st.Then, loopVar)
			els := onlyNonLocal(ck, st.Else, loopVar)
			if len(then)+len(els) > 0 {
				out = append(out, &If{Cond: st.Cond, Then: then, Else: els, Pos: st.Pos})
			}
		}
	}
	return out
}

// swapper rewrites expressions with the roles of `this` and the loop
// variable exchanged.
type swapper struct {
	ck      *Checked
	loopVar string
}

func (s *swapper) stmts(in []Stmt) ([]Stmt, error) {
	var out []Stmt
	for _, st := range in {
		switch x := st.(type) {
		case *AssignEffect:
			// Non-local p.f <- E becomes local f <- swap(E). The target
			// must be the loop variable itself; anything else cannot be
			// expressed as a pairwise swap.
			if r, ok := x.On.(*Ref); !ok || r.Name != s.loopVar {
				return nil, fmt.Errorf("brasil: non-local assignment through %v is not invertible", x.On)
			}
			v, err := s.expr(x.Value)
			if err != nil {
				return nil, err
			}
			out = append(out, &AssignEffect{Field: x.Field, Value: v, Pos: x.Pos})
		case *If:
			cond, err := s.expr(x.Cond)
			if err != nil {
				return nil, err
			}
			then, err := s.stmts(x.Then)
			if err != nil {
				return nil, err
			}
			els, err := s.stmts(x.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &If{Cond: cond, Then: then, Else: els, Pos: x.Pos})
		default:
			return nil, fmt.Errorf("brasil: statement %T is not invertible", st)
		}
	}
	return out, nil
}

// expr returns e with this ↔ loopVar swapped. Locals and effect reads are
// rejected: their values depend on the acting agent's private computation,
// which the swapped perspective cannot reproduce pairwise.
func (s *swapper) expr(e Expr) (Expr, error) {
	switch ex := e.(type) {
	case *Num:
		return ex, nil

	case *This:
		return &Ref{Name: s.loopVar, Pos: ex.Pos}, nil

	case *Ref:
		ri, ok := s.ck.Refs[ex]
		if !ok {
			return nil, fmt.Errorf("brasil: unresolved %q during inversion", ex.Name)
		}
		switch ri.kind {
		case refAgent:
			if ex.Name == s.loopVar {
				return &This{Pos: ex.Pos}, nil
			}
			return nil, fmt.Errorf("brasil: foreign loop variable %q is not invertible", ex.Name)
		case refState:
			// Bare state read of this → the loop variable's field.
			return &FieldRef{On: &Ref{Name: s.loopVar, Pos: ex.Pos}, Field: ex.Name, Pos: ex.Pos}, nil
		case refLocal:
			return nil, fmt.Errorf("brasil: local %q in a non-local assignment prevents inversion (declare it inside the loop from pair state only)", ex.Name)
		default:
			return nil, fmt.Errorf("brasil: effect read %q in a non-local assignment prevents inversion", ex.Name)
		}

	case *FieldRef:
		switch on := ex.On.(type) {
		case *This:
			return &FieldRef{On: &Ref{Name: s.loopVar, Pos: ex.Pos}, Field: ex.Field, Pos: ex.Pos}, nil
		case *Ref:
			ri, ok := s.ck.Refs[on]
			if ok && ri.kind == refAgent && on.Name == s.loopVar {
				// p.f → this's bare field.
				return &Ref{Name: ex.Field, Pos: ex.Pos}, nil
			}
			return nil, fmt.Errorf("brasil: field access through %q is not invertible", on.Name)
		default:
			return nil, fmt.Errorf("brasil: field access through %T is not invertible", ex.On)
		}

	case *Unary:
		x, err := s.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: ex.Op, X: x, Pos: ex.Pos}, nil

	case *Binary:
		l, err := s.expr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := s.expr(ex.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: ex.Op, L: l, R: r, Pos: ex.Pos}, nil

	case *Call:
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			v, err := s.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return &Call{Name: ex.Name, Args: args, Pos: ex.Pos}, nil
	}
	return nil, fmt.Errorf("brasil: expression %T is not invertible", e)
}
