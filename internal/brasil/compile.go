package brasil

import (
	"fmt"
	"math"
	"sync"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
)

// CompileOptions selects optimizer passes (§4.2).
type CompileOptions struct {
	// Invert applies effect inversion (Theorem 2/3) when the script has
	// non-local effect assignments, letting the engine run the cheaper
	// single-reduce dataflow. Compilation fails if the script is not
	// invertible (see Invert).
	Invert bool
	// NoConstFold disables constant folding (on by default).
	NoConstFold bool
	// NoIndexSelect disables the distance-guard → range-probe rewrite
	// (on by default).
	NoIndexSelect bool
}

// Program is a compiled BRASIL script: an engine.Model plus compiler
// metadata.
type Program struct {
	checked  *Checked
	schema   *agent.Schema
	query    []cstmt
	updates  []cexpr     // by state index
	crops    []*RangeTag // by state index
	nonLocal bool
	inverted bool

	frames sync.Pool
}

// frame is the interpreter's activation record. Frames are pooled; the
// Program is shared by all workers, each call takes its own frame.
type frame struct {
	self   *agent.Agent
	agents []*agent.Agent
	locals []float64
	state  []float64 // update-phase scratch for simultaneous assignment
	env    engine.Env
	u      *engine.UpdateCtx
}

type cexpr func(*frame) float64
type cstmt func(*frame)
type aexpr func(*frame) *agent.Agent

// Compile parses, checks, optimizes and compiles a BRASIL source file.
func Compile(src string, opt CompileOptions) (*Program, error) {
	cl, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ck, err := Check(cl)
	if err != nil {
		return nil, err
	}
	if opt.Invert && ck.HasNonLocal {
		cl2, err := Invert(ck)
		if err != nil {
			return nil, err
		}
		ck, err = Check(cl2)
		if err != nil {
			return nil, fmt.Errorf("brasil: inverted script failed re-check: %w", err)
		}
		if ck.HasNonLocal {
			return nil, fmt.Errorf("brasil: inversion left non-local assignments behind")
		}
		return compileChecked(ck, opt, true)
	}
	return compileChecked(ck, opt, false)
}

func compileChecked(ck *Checked, opt CompileOptions, inverted bool) (*Program, error) {
	if !opt.NoConstFold {
		foldClass(ck.Class)
	}
	if !opt.NoIndexSelect {
		selectIndexes(ck)
	}

	p := &Program{checked: ck, nonLocal: ck.HasNonLocal, inverted: inverted}
	p.schema = buildSchema(ck)
	c := &compiler{ck: ck, p: p}

	// Query script.
	for _, s := range ck.Class.Run.Body {
		st, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		p.query = append(p.query, st)
	}

	// Update rules, by state index, evaluated simultaneously against the
	// old state (Fig. 2 semantics: `x : (x+vx)` uses tick-start values).
	p.updates = make([]cexpr, len(ck.StateIdx))
	p.crops = make([]*RangeTag, len(ck.StateIdx))
	for _, f := range ck.Class.Fields {
		if !f.IsState {
			continue
		}
		e, err := c.expr(f.Update, true)
		if err != nil {
			return nil, err
		}
		idx := ck.StateIdx[f.Name]
		p.updates[idx] = e
		p.crops[idx] = f.Range
	}

	p.frames.New = func() any {
		return &frame{
			agents: make([]*agent.Agent, ck.NAgents),
			locals: make([]float64, ck.NLocals),
			state:  make([]float64, len(ck.StateIdx)),
		}
	}
	return p, nil
}

func buildSchema(ck *Checked) *agent.Schema {
	s := agent.NewSchema(ck.Class.Name)
	for _, f := range ck.Class.Fields {
		if f.IsState {
			s.AddState(f.Name, f.Public)
		} else {
			comb, _ := agent.CombinatorByName(f.Comb)
			s.AddEffect(f.Name, f.Public, comb)
		}
	}
	s.SetPosition("x", "y")
	s.SetVisibility(ck.Visibility)
	s.SetReach(ck.Reach)
	return s
}

// Schema implements engine.Model.
func (p *Program) Schema() *agent.Schema { return p.schema }

// HasNonLocalEffects implements engine.NonLocalModel.
func (p *Program) HasNonLocalEffects() bool { return p.nonLocal }

// Inverted reports whether effect inversion was applied.
func (p *Program) Inverted() bool { return p.inverted }

// Checked exposes the analysis result (for tools and tests).
func (p *Program) Checked() *Checked { return p.checked }

// Query implements engine.Model by interpreting the compiled run() plan.
func (p *Program) Query(self *agent.Agent, env engine.Env) {
	fr := p.frames.Get().(*frame)
	fr.self = self
	fr.env = env
	fr.u = nil
	for _, s := range p.query {
		s(fr)
	}
	fr.self, fr.env = nil, nil
	p.frames.Put(fr)
}

// Update implements engine.Model: evaluate every update rule against the
// old state, apply #range crops, then commit.
func (p *Program) Update(self *agent.Agent, u *engine.UpdateCtx) {
	fr := p.frames.Get().(*frame)
	fr.self = self
	fr.u = u
	newState := fr.state
	for i, e := range p.updates {
		newState[i] = e(fr)
		if r := p.crops[i]; r != nil {
			d := newState[i] - self.State[i]
			if d < r.Lo {
				d = r.Lo
			}
			if d > r.Hi {
				d = r.Hi
			}
			newState[i] = self.State[i] + d
		}
	}
	copy(self.State, newState)
	fr.self, fr.u = nil, nil
	p.frames.Put(fr)
}

var (
	_ engine.Model         = (*Program)(nil)
	_ engine.NonLocalModel = (*Program)(nil)
)

// compiler lowers checked AST to closures.
type compiler struct {
	ck *Checked
	p  *Program
}

func (c *compiler) stmt(s Stmt) (cstmt, error) {
	switch st := s.(type) {
	case *VarDecl:
		slot := c.ck.Locals[st]
		init, err := c.expr(st.Init, false)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) { fr.locals[slot] = init(fr) }, nil

	case *AssignEffect:
		idx := c.ck.EffectIdx[st.Field]
		val, err := c.expr(st.Value, false)
		if err != nil {
			return nil, err
		}
		if st.On == nil {
			return func(fr *frame) { fr.env.Assign(fr.self, idx, val(fr)) }, nil
		}
		target, err := c.agentExpr(st.On)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) { fr.env.Assign(target(fr), idx, val(fr)) }, nil

	case *If:
		cond, err := c.expr(st.Cond, false)
		if err != nil {
			return nil, err
		}
		var then, els []cstmt
		for _, x := range st.Then {
			cs, err := c.stmt(x)
			if err != nil {
				return nil, err
			}
			then = append(then, cs)
		}
		for _, x := range st.Else {
			cs, err := c.stmt(x)
			if err != nil {
				return nil, err
			}
			els = append(els, cs)
		}
		return func(fr *frame) {
			if cond(fr) != 0 {
				for _, s := range then {
					s(fr)
				}
			} else {
				for _, s := range els {
					s(fr)
				}
			}
		}, nil

	case *Foreach:
		depth := c.ck.Agents[st]
		var body []cstmt
		for _, x := range st.Body {
			cs, err := c.stmt(x)
			if err != nil {
				return nil, err
			}
			body = append(body, cs)
		}
		var radius cexpr
		if st.Radius != nil {
			r, err := c.expr(st.Radius, false)
			if err != nil {
				return nil, err
			}
			radius = r
		}
		return func(fr *frame) {
			iter := func(nb *agent.Agent) {
				fr.agents[depth] = nb
				for _, s := range body {
					s(fr)
				}
			}
			if radius != nil {
				fr.env.Nearby(radius(fr), iter)
			} else {
				fr.env.ForEachVisible(iter)
			}
			fr.agents[depth] = nil
		}, nil
	}
	return nil, fmt.Errorf("brasil: unknown statement %T", s)
}

// agentExpr compiles an agent-typed expression.
func (c *compiler) agentExpr(e Expr) (aexpr, error) {
	switch ex := e.(type) {
	case *This:
		return func(fr *frame) *agent.Agent { return fr.self }, nil
	case *Ref:
		ri, ok := c.ck.Refs[ex]
		if !ok || ri.kind != refAgent {
			return nil, errAt(ex.Pos, "%q is not an agent variable", ex.Name)
		}
		slot := ri.index
		return func(fr *frame) *agent.Agent { return fr.agents[slot] }, nil
	}
	return nil, fmt.Errorf("brasil: not an agent expression: %T", e)
}

func (c *compiler) isAgent(e Expr) bool {
	switch ex := e.(type) {
	case *This:
		return true
	case *Ref:
		ri, ok := c.ck.Refs[ex]
		return ok && ri.kind == refAgent
	}
	return false
}

// expr compiles a numeric expression; inUpdate selects update-rule
// resolution (bare names are always the agent's own fields there).
func (c *compiler) expr(e Expr, inUpdate bool) (cexpr, error) {
	switch ex := e.(type) {
	case *Num:
		v := ex.Val
		return func(*frame) float64 { return v }, nil

	case *Ref:
		if inUpdate {
			if f, ok := c.ck.Fields[ex.Name]; ok {
				if f.IsState {
					idx := c.ck.StateIdx[ex.Name]
					return func(fr *frame) float64 { return fr.self.State[idx] }, nil
				}
				idx := c.ck.EffectIdx[ex.Name]
				return func(fr *frame) float64 { return fr.self.Effect[idx] }, nil
			}
			return nil, errAt(ex.Pos, "undefined name %q in update rule", ex.Name)
		}
		ri, ok := c.ck.Refs[ex]
		if !ok {
			return nil, errAt(ex.Pos, "unresolved name %q", ex.Name)
		}
		switch ri.kind {
		case refLocal:
			slot := ri.index
			return func(fr *frame) float64 { return fr.locals[slot] }, nil
		case refState:
			idx := ri.index
			return func(fr *frame) float64 { return fr.self.State[idx] }, nil
		case refEffect:
			idx := ri.index
			return func(fr *frame) float64 { return fr.self.Effect[idx] }, nil
		default:
			return nil, errAt(ex.Pos, "agent variable %q used as a number", ex.Name)
		}

	case *FieldRef:
		on, err := c.agentExpr(ex.On)
		if err != nil {
			return nil, err
		}
		ri := c.ck.FieldOf[ex]
		idx := ri.index
		if ri.kind == refState {
			return func(fr *frame) float64 { return on(fr).State[idx] }, nil
		}
		return func(fr *frame) float64 { return on(fr).Effect[idx] }, nil

	case *Unary:
		x, err := c.expr(ex.X, inUpdate)
		if err != nil {
			return nil, err
		}
		if ex.Op == "-" {
			return func(fr *frame) float64 { return -x(fr) }, nil
		}
		return func(fr *frame) float64 { return b2f(x(fr) == 0) }, nil

	case *Binary:
		if (ex.Op == "==" || ex.Op == "!=") && (c.isAgent(ex.L) || c.isAgent(ex.R)) {
			l, err := c.agentExpr(ex.L)
			if err != nil {
				return nil, err
			}
			r, err := c.agentExpr(ex.R)
			if err != nil {
				return nil, err
			}
			eq := ex.Op == "=="
			return func(fr *frame) float64 {
				la, ra := l(fr), r(fr)
				same := la != nil && ra != nil && la.ID == ra.ID
				return b2f(same == eq)
			}, nil
		}
		l, err := c.expr(ex.L, inUpdate)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(ex.R, inUpdate)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "+":
			return func(fr *frame) float64 { return l(fr) + r(fr) }, nil
		case "-":
			return func(fr *frame) float64 { return l(fr) - r(fr) }, nil
		case "*":
			return func(fr *frame) float64 { return l(fr) * r(fr) }, nil
		case "/":
			return func(fr *frame) float64 { return l(fr) / r(fr) }, nil
		case "%":
			return func(fr *frame) float64 { return math.Mod(l(fr), r(fr)) }, nil
		case "<":
			return func(fr *frame) float64 { return b2f(l(fr) < r(fr)) }, nil
		case "<=":
			return func(fr *frame) float64 { return b2f(l(fr) <= r(fr)) }, nil
		case ">":
			return func(fr *frame) float64 { return b2f(l(fr) > r(fr)) }, nil
		case ">=":
			return func(fr *frame) float64 { return b2f(l(fr) >= r(fr)) }, nil
		case "==":
			return func(fr *frame) float64 { return b2f(l(fr) == r(fr)) }, nil
		case "!=":
			return func(fr *frame) float64 { return b2f(l(fr) != r(fr)) }, nil
		case "&&":
			return func(fr *frame) float64 { return b2f(l(fr) != 0 && r(fr) != 0) }, nil
		case "||":
			return func(fr *frame) float64 { return b2f(l(fr) != 0 || r(fr) != 0) }, nil
		}
		return nil, errAt(ex.Pos, "unknown operator %q", ex.Op)

	case *Call:
		return c.call(ex, inUpdate)

	case *This:
		return nil, errAt(ex.Pos, "this used as a number")
	}
	return nil, fmt.Errorf("brasil: unknown expression %T", e)
}

func (c *compiler) call(ex *Call, inUpdate bool) (cexpr, error) {
	switch ex.Name {
	case "rand":
		return func(fr *frame) float64 { return fr.u.RNG.Float64() }, nil
	case "dist":
		a, err := c.agentExpr(ex.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.agentExpr(ex.Args[1])
		if err != nil {
			return nil, err
		}
		xi, yi := c.ck.StateIdx["x"], c.ck.StateIdx["y"]
		return func(fr *frame) float64 {
			aa, bb := a(fr), b(fr)
			return math.Hypot(aa.State[xi]-bb.State[xi], aa.State[yi]-bb.State[yi])
		}, nil
	}
	args := make([]cexpr, len(ex.Args))
	for i, a := range ex.Args {
		e, err := c.expr(a, inUpdate)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	switch ex.Name {
	case "abs":
		return func(fr *frame) float64 { return math.Abs(args[0](fr)) }, nil
	case "sqrt":
		return func(fr *frame) float64 { return math.Sqrt(args[0](fr)) }, nil
	case "floor":
		return func(fr *frame) float64 { return math.Floor(args[0](fr)) }, nil
	case "exp":
		return func(fr *frame) float64 { return math.Exp(args[0](fr)) }, nil
	case "log":
		return func(fr *frame) float64 { return math.Log(args[0](fr)) }, nil
	case "sin":
		return func(fr *frame) float64 { return math.Sin(args[0](fr)) }, nil
	case "cos":
		return func(fr *frame) float64 { return math.Cos(args[0](fr)) }, nil
	case "min":
		return func(fr *frame) float64 { return math.Min(args[0](fr), args[1](fr)) }, nil
	case "max":
		return func(fr *frame) float64 { return math.Max(args[0](fr), args[1](fr)) }, nil
	case "pow":
		return func(fr *frame) float64 { return math.Pow(args[0](fr), args[1](fr)) }, nil
	case "cond":
		return func(fr *frame) float64 {
			c, a, b := args[0](fr), args[1](fr), args[2](fr)
			if c != 0 {
				return a
			}
			return b
		}, nil
	}
	return nil, errAt(ex.Pos, "unknown function %q", ex.Name)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
