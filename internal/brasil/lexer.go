package brasil

import (
	"strings"
	"unicode"
)

// lexer turns BRASIL source into tokens. It supports //-line and /* */
// block comments, decimal and scientific number literals, and the #range
// constraint tag syntax of §4.1.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
	toks []Token
}

// Lex tokenizes a whole source file.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := Token{Line: l.line, Col: l.col}
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-char operators, longest first.
var multiOps = []string{"<-", "<=", ">=", "==", "!=", "&&", "||"}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	t := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		t.Kind = TokEOF
		return t, nil
	}
	r := l.peek()
	switch {
	case r == '#':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek())) {
			b.WriteRune(l.advance())
		}
		if b.Len() == 0 {
			return Token{}, errAt(t, "stray '#'")
		}
		t.Kind = TokHashTag
		t.Text = "#" + b.String()
		return t, nil

	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			b.WriteRune(l.advance())
		}
		t.Text = b.String()
		if keywords[t.Text] {
			t.Kind = TokKeyword
		} else {
			t.Kind = TokIdent
		}
		return t, nil

	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peek2())):
		var b strings.Builder
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			c := l.peek()
			switch {
			case unicode.IsDigit(c):
				b.WriteRune(l.advance())
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				b.WriteRune(l.advance())
			case (c == 'e' || c == 'E') && !seenExp && b.Len() > 0:
				seenExp = true
				b.WriteRune(l.advance())
				if l.peek() == '+' || l.peek() == '-' {
					b.WriteRune(l.advance())
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		t.Kind = TokNumber
		t.Text = b.String()
		return t, nil

	default:
		// Multi-char operators first.
		rest := string(l.src[l.pos:min(l.pos+2, len(l.src))])
		for _, op := range multiOps {
			if strings.HasPrefix(rest, op) {
				l.advance()
				l.advance()
				t.Kind = TokPunct
				t.Text = op
				return t, nil
			}
		}
		switch r {
		case '{', '}', '(', ')', '[', ']', ';', ':', ',', '.',
			'+', '-', '*', '/', '%', '<', '>', '=', '!':
			l.advance()
			t.Kind = TokPunct
			t.Text = string(r)
			return t, nil
		}
		return Token{}, errAt(t, "unexpected character %q", string(r))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
