package brasil

import (
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// Additional language-surface coverage: cond(), %, boolean combinators,
// nested foreach, update-rule edge cases, and error positions.

func compileOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOne(t *testing.T, p *Program, init func(*agent.Agent)) *agent.Agent {
	t.Helper()
	a := agent.New(p.Schema(), 1)
	if init != nil {
		init(a)
	}
	e, err := engine.NewSequential(p, []*agent.Agent{a}, spatial.KindScan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	return e.Agents()[0]
}

func TestCondBuiltin(t *testing.T) {
	p := compileOK(t, `
class F { public state float x : cond(x > 5, 100, x + 1);
  public state float y : y;
  public effect float e : sum;
  public void run() {} }`)
	a := runOne(t, p, func(a *agent.Agent) { a.State[0] = 3 })
	if a.State[0] != 4 {
		t.Errorf("cond false arm: x = %v, want 4", a.State[0])
	}
	a2 := runOne(t, p, func(a *agent.Agent) { a.State[0] = 7 })
	if a2.State[0] != 100 {
		t.Errorf("cond true arm: x = %v, want 100", a2.State[0])
	}
}

func TestModuloAndUnaryOps(t *testing.T) {
	p := compileOK(t, `
class F { public state float x : (x + 3) % 5;
  public state float y : -y;
  public effect float e : sum;
  public void run() {} }`)
	a := runOne(t, p, func(a *agent.Agent) {
		a.State[0] = 4
		a.State[1] = 2
	})
	if a.State[0] != 2 { // (4+3)%5
		t.Errorf("modulo: x = %v, want 2", a.State[0])
	}
	if a.State[1] != -2 {
		t.Errorf("negation: y = %v, want -2", a.State[1])
	}
}

func TestBooleanCombinators(t *testing.T) {
	// or-combined effect: any visible neighbor sets the flag.
	src := `
class F { public state float x : x; public state float y : y; #range[-5,5];
  public state float seen : crowded;
  public effect float crowded : or;
  public void run() {
    foreach (F p : Extent<F>) {
      if (p != this) {
        crowded <- 1;
      }
    }
  } }`
	p := compileOK(t, src)
	a := agent.New(p.Schema(), 1)
	b := agent.New(p.Schema(), 2)
	b.State[0] = 1 // within range of a
	lone := agent.New(p.Schema(), 3)
	lone.State[0] = 1000
	e, err := engine.NewSequential(p, []*agent.Agent{a, b, lone}, spatial.KindKDTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()
	seenIdx := p.Schema().StateIndex("seen")
	if got[0].State[seenIdx] != 1 || got[1].State[seenIdx] != 1 {
		t.Error("neighbors did not set the or-flag")
	}
	if got[2].State[seenIdx] != 0 {
		t.Error("lone agent set the or-flag")
	}
}

func TestMinMaxCombinatorsInScript(t *testing.T) {
	src := `
class F { public state float x : x; public state float y : y; #range[-50,50];
  public state float nearest : closest;
  public effect float closest : min;
  public void run() {
    foreach (F p : Extent<F>) {
      if (p != this) {
        closest <- dist(this, p);
      }
    }
  } }`
	p := compileOK(t, src)
	a := agent.New(p.Schema(), 1)
	b := agent.New(p.Schema(), 2)
	b.State[0] = 3
	c := agent.New(p.Schema(), 3)
	c.State[0] = 10
	e, err := engine.NewSequential(p, []*agent.Agent{a, b, c}, spatial.KindKDTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	ni := p.Schema().StateIndex("nearest")
	if got := e.Agents()[0].State[ni]; got != 3 {
		t.Errorf("min effect = %v, want 3", got)
	}
}

func TestNestedForeachCompilesAndRuns(t *testing.T) {
	// Count pairs of distinct visible neighbors (quadratic per agent) —
	// exercises the agent-variable slot stack.
	src := `
class F { public state float x : x; public state float y : y; #range[-50,50];
  public state float pairs : np;
  public effect float np : sum;
  public void run() {
    foreach (F p : Extent<F>) {
      foreach (F q : Extent<F>) {
        if (p != q) {
          if (p != this) {
            if (q != this) {
              np <- 1;
            }
          }
        }
      }
    }
  } }`
	p := compileOK(t, src)
	agents := make([]*agent.Agent, 4)
	for i := range agents {
		agents[i] = agent.New(p.Schema(), agent.ID(i+1))
		agents[i].State[0] = float64(i)
	}
	e, err := engine.NewSequential(p, agents, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	// 3 other agents → 3·2 ordered distinct pairs.
	pi := p.Schema().StateIndex("pairs")
	for _, a := range e.Agents() {
		if a.State[pi] != 6 {
			t.Errorf("agent %d pairs = %v, want 6", a.ID, a.State[pi])
		}
	}
}

func TestLocalConstInsideLoop(t *testing.T) {
	src := `
class F { public state float x : x; public state float y : y; #range[-50,50];
  public state float acc : total;
  public effect float total : sum;
  public void run() {
    foreach (F p : Extent<F>) {
      if (p != this) {
        const float d2 = (x - p.x) * (x - p.x);
        total <- d2;
      }
    }
  } }`
	p := compileOK(t, src)
	a := agent.New(p.Schema(), 1)
	b := agent.New(p.Schema(), 2)
	b.State[0] = 3
	e, err := engine.NewSequential(p, []*agent.Agent{a, b}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	ai := p.Schema().StateIndex("acc")
	if got := e.Agents()[0].State[ai]; got != 9 {
		t.Errorf("const-in-loop total = %v, want 9", got)
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Compile(`
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { e <- zig(); } }`, CompileOptions{})
	if err == nil {
		t.Fatal("unknown function accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "brasil:4:") {
		t.Errorf("error lacks position: %q", msg)
	}
}

// Distributed inversion: compile the same non-local script both ways and
// run both on the 4-worker engine; the inverted program must use a single
// reduce pass and agree with the two-pass original up to FP reassociation.
func TestInversionDistributedAgreement(t *testing.T) {
	orig, err := Compile(pushSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Compile(pushSrc, CompileOptions{Invert: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s *agent.Schema) []*agent.Agent {
		pop := make([]*agent.Agent, 60)
		for i := range pop {
			id := agent.ID(i + 1)
			rng := agent.NewRNG(31, 0, id)
			a := agent.New(s, id)
			a.State[0] = rng.Range(0, 25)
			a.State[1] = rng.Range(0, 25)
			a.State[2] = rng.Range(0.5, 1.5)
			pop[i] = a
		}
		return pop
	}
	e1, err := engine.NewDistributed(orig, mk(orig.Schema()), engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewDistributed(inv, mk(inv.Schema()), engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 10
	if err := e1.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := e1.Agents(), e2.Agents()
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		for j := range a[i].State {
			d := a[i].State[j] - b[i].State[j]
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("agent %d state[%d] differs by %g", a[i].ID, j, d)
			}
		}
	}
}

func TestDescribeAndProgramAccessors(t *testing.T) {
	p := compileOK(t, fishSrc)
	if p.Checked() == nil {
		t.Error("Checked nil")
	}
	if p.Inverted() {
		t.Error("fish marked inverted")
	}
	d := p.Checked().Describe()
	if !strings.Contains(d, "visibility 10") {
		t.Errorf("Describe = %q", d)
	}
}
