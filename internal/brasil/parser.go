package brasil

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses one BRASIL class file.
func Parse(src string) (*Class, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.parseClass()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, errAt(p.cur(), "trailing input after class declaration")
	}
	return c, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[TokKind]string{TokIdent: "identifier", TokNumber: "number"}[kind]
	}
	return Token{}, errAt(p.cur(), "expected %s, found %s", want, p.cur())
}

func (p *parser) parseClass() (*Class, error) {
	start, err := p.expect(TokKeyword, "class")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	c := &Class{Name: name.Text, Pos: start}
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errAt(p.cur(), "unterminated class body")
		}
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if c.Run == nil {
		return nil, errAt(start, "class %s has no run() method", c.Name)
	}
	return c, nil
}

func (p *parser) parseMember(c *Class) error {
	public := true
	switch {
	case p.accept(TokKeyword, "public"):
	case p.accept(TokKeyword, "private"):
		public = false
	}
	switch {
	case p.at(TokKeyword, "state") || p.at(TokKeyword, "effect"):
		f, err := p.parseField(public)
		if err != nil {
			return err
		}
		c.Fields = append(c.Fields, f)
		return nil
	case p.at(TokKeyword, "void"):
		m, err := p.parseMethod(public)
		if err != nil {
			return err
		}
		if m.Name == "run" {
			if c.Run != nil {
				return errAt(m.Pos, "duplicate run() method")
			}
			c.Run = m
		} else {
			return errAt(m.Pos, "only run() is supported; found method %q", m.Name)
		}
		return nil
	default:
		return errAt(p.cur(), "expected field or method declaration, found %s", p.cur())
	}
}

func (p *parser) parseField(public bool) (*FieldDecl, error) {
	kindTok := p.next() // state | effect
	isState := kindTok.Text == "state"
	typTok := p.cur()
	if !p.accept(TokKeyword, "float") && !p.accept(TokKeyword, "int") && !p.accept(TokKeyword, "bool") {
		return nil, errAt(typTok, "expected field type (float/int/bool), found %s", typTok)
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	f := &FieldDecl{
		Name: name.Text, Public: public, IsState: isState,
		Type: typTok.Text, Pos: kindTok,
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	if isState {
		// Update rule expression.
		f.Update, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	} else {
		comb, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, errAt(p.cur(), "effect %s needs a combinator name", f.Name)
		}
		f.Comb = comb.Text
	}
	// Optional constraint tags before the terminating semicolon, in the
	// paper's Fig. 2 style: `...: (x+vx); #range[-1,1];`. Accept the tag
	// either before or after the first semicolon.
	if err := p.parseTags(f); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if err := p.parseTags(f); err != nil {
		return nil, err
	}
	if f.Range != nil {
		p.accept(TokPunct, ";")
	}
	return f, nil
}

func (p *parser) parseTags(f *FieldDecl) error {
	for p.at(TokHashTag, "") {
		tag := p.next()
		switch tag.Text {
		case "#range":
			if _, err := p.expect(TokPunct, "["); err != nil {
				return err
			}
			lo, err := p.parseSignedNumber()
			if err != nil {
				return err
			}
			if _, err := p.expect(TokPunct, ","); err != nil {
				return err
			}
			hi, err := p.parseSignedNumber()
			if err != nil {
				return err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return err
			}
			if hi < lo {
				return errAt(tag, "#range bounds inverted: [%g,%g]", lo, hi)
			}
			f.Range = &RangeTag{Lo: lo, Hi: hi}
		default:
			return errAt(tag, "unknown constraint tag %s", tag.Text)
		}
	}
	return nil
}

func (p *parser) parseSignedNumber() (float64, error) {
	neg := p.accept(TokPunct, "-")
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, errAt(t, "bad number %q", t.Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseMethod(public bool) (*MethodDecl, error) {
	start := p.next() // void
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &MethodDecl{Name: name.Text, Public: public, Body: body, Pos: start}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errAt(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(TokPunct, ";"):
		return nil, nil

	case p.at(TokKeyword, "if"):
		start := p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: start}, nil

	case p.at(TokKeyword, "foreach"):
		start := p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		typ, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "Extent"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "<"); err != nil {
			return nil, err
		}
		ext, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if ext.Text != typ.Text {
			return nil, errAt(ext, "extent class %s does not match loop type %s", ext.Text, typ.Text)
		}
		if _, err := p.expect(TokPunct, ">"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &Foreach{VarName: name.Text, VarType: typ.Text, Body: body, Pos: start}, nil

	case p.accept(TokKeyword, "const") ||
		p.at(TokKeyword, "float") || p.at(TokKeyword, "int") || p.at(TokKeyword, "bool"):
		typTok := p.cur()
		if !p.accept(TokKeyword, "float") && !p.accept(TokKeyword, "int") && !p.accept(TokKeyword, "bool") {
			return nil, errAt(typTok, "expected type after const")
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Type: typTok.Text, Init: init, Pos: typTok}, nil

	default:
		// Effect assignment: `name <- expr;` or `agentExpr.name <- expr;`.
		start := p.cur()
		lhs, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "<-"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		switch l := lhs.(type) {
		case *Ref:
			return &AssignEffect{Field: l.Name, Value: val, Pos: start}, nil
		case *FieldRef:
			if _, isThis := l.On.(*This); isThis {
				return &AssignEffect{Field: l.Field, Value: val, Pos: start}, nil
			}
			return &AssignEffect{On: l.On, Field: l.Field, Value: val, Pos: start}, nil
		default:
			return nil, errAt(start, "invalid effect assignment target")
		}
	}
}

// Expression grammar, precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "||") {
		op := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "&&") {
		op := p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r, Pos: op}
	}
	return l, nil
}

var cmpOps = map[string]bool{"<": true, ">": true, "<=": true, ">=": true, "==": true, "!=": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct && cmpOps[p.cur().Text] {
		op := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op.Text, L: l, R: r, Pos: op}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "+") || p.at(TokPunct, "-") {
		op := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.Text, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "*") || p.at(TokPunct, "/") || p.at(TokPunct, "%") {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.Text, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(TokPunct, "-") || p.at(TokPunct, "!") {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op.Text, X: x, Pos: op}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, ".") {
		dot := p.next()
		f, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		e = &FieldRef{On: e, Field: f.Text, Pos: dot}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t, "bad number %q", t.Text)
		}
		return &Num{Val: v, Pos: t}, nil

	case p.accept(TokKeyword, "true"):
		return &Num{Val: 1, Pos: t}, nil
	case p.accept(TokKeyword, "false"):
		return &Num{Val: 0, Pos: t}, nil
	case p.accept(TokKeyword, "this"):
		return &This{Pos: t}, nil

	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			var args []Expr
			if !p.at(TokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args, Pos: t}, nil
		}
		return &Ref{Name: t.Text, Pos: t}, nil

	case p.accept(TokPunct, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errAt(t, "expected expression, found %s", t)
}
