package brasil

import (
	"math"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// fishSrc is the Fig. 2 fish script adapted to this dialect: fish repel
// each other within the tagged range.
const fishSrc = `
// Simple fish behavior, after Fig. 2 of the paper.
class Fish {
  public state float x : x + vx; #range[-10,10];
  public state float y : y + vy; #range[-10,10];
  public state float vx : 0.5 * vx + avoidx / max(count, 1);
  public state float vy : 0.5 * vy + avoidy / max(count, 1);
  private effect float avoidx : sum;
  private effect float avoidy : sum;
  private effect int count : sum;

  /* query phase */
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      if (p != this) {
        avoidx <- (x - p.x) / (dist(this, p) + 0.01);
        avoidy <- (y - p.y) / (dist(this, p) + 0.01);
        count <- 1;
      }
    }
  }
}
`

// pushSrc has a non-local assignment (the inversion target).
const pushSrc = `
class P {
  public state float x : x + pushx * 0.1;
  public state float y : y + pushy * 0.1;
  public state float m : m;
  public effect float pushx : sum;
  public effect float pushy : sum;
  public void run() {
    foreach (P p : Extent<P>) {
      if (p != this) {
        if (dist(this, p) < 3) {
          p.pushx <- (p.x - x) * m;
          p.pushy <- (p.y - y) * m;
        }
      }
    }
  }
}
`

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("class F { public state float x : 1.5e2; #range[-1,1]; }")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Text)
	}
	want := []string{"class", "F", "{", "public", "state", "float", "x", ":",
		"1.5e2", ";", "#range", "[", "-", "1", ",", "1", "]", ";", "}"}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Lex("a // line\n /* block\nmore */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("tokens = %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
	if _, err := Lex("a $ b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("stray # accepted")
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := Lex("a <- b <= c != d && e")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<-", "<=", "!=", "&&"}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v", ops)
		}
	}
}

func TestParseFish(t *testing.T) {
	c, err := Parse(fishSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Fish" {
		t.Errorf("class name %q", c.Name)
	}
	if len(c.Fields) != 7 {
		t.Fatalf("fields = %d", len(c.Fields))
	}
	if c.Fields[0].Range == nil || c.Fields[0].Range.Lo != -10 || c.Fields[0].Range.Hi != 10 {
		t.Errorf("range tag = %+v", c.Fields[0].Range)
	}
	if c.Fields[4].IsState || c.Fields[4].Comb != "sum" {
		t.Errorf("effect decl = %+v", c.Fields[4])
	}
	if c.Run == nil || len(c.Run.Body) != 1 {
		t.Fatal("run body missing")
	}
	fe, ok := c.Run.Body[0].(*Foreach)
	if !ok {
		t.Fatalf("body[0] = %T", c.Run.Body[0])
	}
	if fe.VarName != "p" || fe.VarType != "Fish" {
		t.Errorf("foreach = %+v", fe)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class F {",                             // unterminated
		"class F { public state float x : 1; }", // no run, no y
		"class F { public void walk() {} public void run() {} }",  // extra method: walk
		"class F { public state float x 1; }",                     // missing colon
		"class F { void run() { foreach (G p : Extent<F>) {} } }", // extent mismatch
		"class F { void run() { x <- ; } }",                       // missing expr
		"class F { public state float x : #range[2,1]; }",         // inverted range + missing rule
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid source: %s", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"missing position fields": `
class F { public state float a : a;
  public void run() {} }`,
		"unknown combinator": `
class F { public state float x : x; public state float y : y;
  public effect float e : median;
  public void run() {} }`,
		"effect read inside foreach": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { foreach (F p : Extent<F>) { e <- e + 1; } } }`,
		"rand in query": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { e <- rand(); } }`,
		"read another agent's effect": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { foreach (F p : Extent<F>) { e <- p.e; } } }`,
		"assign to state": `
class F { public state float x : x; public state float y : y;
  public void run() { x <- 1; } }`,
		"agent compared to number": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { foreach (F p : Extent<F>) { if (p == 1) { e <- 1; } } } }`,
		"unknown function": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { e <- frob(1); } }`,
		"update rule uses agents": `
class F { public state float x : this.x; public state float y : y;
  public void run() {} }`,
		"undefined name": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() { e <- zap; } }`,
		"nonlocal plus effect read": `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() {
    foreach (F p : Extent<F>) { p.e <- 1; }
    e <- e + 1;
  } }`,
	}
	for name, src := range cases {
		cl, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := Check(cl); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckedMetadata(t *testing.T) {
	cl, err := Parse(fishSrc)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Check(cl)
	if err != nil {
		t.Fatal(err)
	}
	if ck.HasNonLocal {
		t.Error("fish marked non-local")
	}
	if ck.Visibility != 10 || ck.Reach != 10 {
		t.Errorf("vis/reach = %g/%g", ck.Visibility, ck.Reach)
	}
	if len(ck.StateIdx) != 4 || len(ck.EffectIdx) != 3 {
		t.Errorf("field counts = %d/%d", len(ck.StateIdx), len(ck.EffectIdx))
	}
	if !strings.Contains(ck.Describe(), "class Fish") {
		t.Error("Describe format")
	}

	cl2, err := Parse(pushSrc)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := Check(cl2)
	if err != nil {
		t.Fatal(err)
	}
	if !ck2.HasNonLocal {
		t.Error("push not marked non-local")
	}
}

// handFish mirrors fishSrc exactly in Go, validating the compiler against
// a hand-coded model (the parity claim of §5.2).
type handFish struct {
	s             *agent.Schema
	x, y, vx, vy  int
	avx, avy, cnt int
}

func newHandFish() *handFish {
	m := &handFish{}
	s := agent.NewSchema("Fish")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.vx = s.AddState("vx", true)
	m.vy = s.AddState("vy", true)
	m.avx = s.AddEffect("avoidx", false, agent.Sum)
	m.avy = s.AddEffect("avoidy", false, agent.Sum)
	m.cnt = s.AddEffect("count", false, agent.Sum)
	s.SetPosition("x", "y").SetVisibility(10).SetReach(10)
	return m
}

func (m *handFish) Schema() *agent.Schema { return m.s }

func (m *handFish) Query(self *agent.Agent, env engine.Env) {
	env.ForEachVisible(func(p *agent.Agent) {
		if p.ID == self.ID {
			return
		}
		d := math.Hypot(self.State[m.x]-p.State[m.x], self.State[m.y]-p.State[m.y])
		env.Assign(self, m.avx, (self.State[m.x]-p.State[m.x])/(d+0.01))
		env.Assign(self, m.avy, (self.State[m.y]-p.State[m.y])/(d+0.01))
		env.Assign(self, m.cnt, 1)
	})
}

func (m *handFish) Update(self *agent.Agent, u *engine.UpdateCtx) {
	nx := self.State[m.x] + self.State[m.vx]
	ny := self.State[m.y] + self.State[m.vy]
	nvx := 0.5*self.State[m.vx] + self.Effect[m.avx]/math.Max(self.Effect[m.cnt], 1)
	nvy := 0.5*self.State[m.vy] + self.Effect[m.avy]/math.Max(self.Effect[m.cnt], 1)
	// #range crop on x,y (±10 — here never binding since |v| stays small).
	self.State[m.x] = nx
	self.State[m.y] = ny
	self.State[m.vx] = nvx
	self.State[m.vy] = nvy
}

func seedPop(s *agent.Schema, n int, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	for i := range pop {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(s, id)
		a.State[0] = rng.Range(0, 40)
		a.State[1] = rng.Range(0, 40)
		a.State[2] = rng.Range(-0.5, 0.5)
		a.State[3] = rng.Range(-0.5, 0.5)
		pop[i] = a
	}
	return pop
}

func TestCompiledFishMatchesHandCoded(t *testing.T) {
	prog, err := Compile(fishSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.HasNonLocalEffects() {
		t.Fatal("fish program claims non-local effects")
	}
	hand := newHandFish()

	popA := seedPop(prog.Schema(), 60, 5)
	popB := seedPop(hand.Schema(), 60, 5)

	ea, err := engine.NewSequential(prog, popA, spatial.KindKDTree, 9)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := engine.NewSequential(hand, popB, spatial.KindKDTree, 9)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 10
	if err := ea.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := eb.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := ea.Agents(), eb.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("compiled vs hand-coded diverged at agent %d:\n%v\n%v", a[i].ID, a[i], b[i])
		}
	}
}

func TestCompiledProgramOnDistributedEngine(t *testing.T) {
	prog, err := Compile(fishSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pop := seedPop(prog.Schema(), 80, 6)
	seqPop := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		seqPop[i] = a.Clone()
	}
	dist, err := engine.NewDistributed(prog, pop, engine.Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := engine.NewSequential(prog, seqPop, spatial.KindKDTree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	a, b := seq.Agents(), dist.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("distributed BRASIL run diverged at agent %d", a[i].ID)
		}
	}
}

func TestEffectInversionExactEquivalence(t *testing.T) {
	orig, err := Compile(pushSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Compile(pushSrc, CompileOptions{Invert: true})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.HasNonLocalEffects() {
		t.Fatal("original should be non-local")
	}
	if inv.HasNonLocalEffects() || !inv.Inverted() {
		t.Fatal("inverted program should be local")
	}

	mkpop := func(s *agent.Schema) []*agent.Agent {
		pop := make([]*agent.Agent, 50)
		for i := range pop {
			id := agent.ID(i + 1)
			rng := agent.NewRNG(11, 0, id)
			a := agent.New(s, id)
			a.State[0] = rng.Range(0, 20)
			a.State[1] = rng.Range(0, 20)
			a.State[2] = rng.Range(0.5, 1.5) // mass m
			pop[i] = a
		}
		return pop
	}
	ea, err := engine.NewSequential(orig, mkpop(orig.Schema()), spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := engine.NewSequential(inv, mkpop(inv.Schema()), spatial.KindKDTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 12
	if err := ea.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := eb.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := ea.Agents(), eb.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("inversion changed semantics at agent %d:\n%v\n%v", a[i].ID, a[i], b[i])
		}
	}
}

func TestInversionRejectsNonInvertible(t *testing.T) {
	src := `
class F { public state float x : x; public state float y : y;
  public effect float e : sum;
  public void run() {
    const float k = x * 2;
    foreach (F p : Extent<F>) { p.e <- k; }
  } }`
	if _, err := Compile(src, CompileOptions{Invert: true}); err == nil {
		t.Error("inverted a script whose assignment depends on an outer local")
	}
	// Without inversion it still compiles (two-reduce dataflow).
	if _, err := Compile(src, CompileOptions{}); err != nil {
		t.Errorf("plain compile failed: %v", err)
	}
}

func TestIndexSelection(t *testing.T) {
	src := `
class F { public state float x : x; public state float y : y; #range[-50,50];
  public effect float near : sum;
  public void run() {
    foreach (F p : Extent<F>) {
      if (dist(this, p) < 3) {
        near <- 1;
      }
    }
  } }`
	cl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Check(cl)
	if err != nil {
		t.Fatal(err)
	}
	selectIndexes(ck)
	fe := ck.Class.Run.Body[0].(*Foreach)
	if fe.Radius == nil {
		t.Fatal("distance guard not recognized")
	}
	if n, ok := fe.Radius.(*Num); !ok || n.Val != 3 {
		t.Fatalf("radius = %#v", fe.Radius)
	}

	// Optimized and unoptimized programs agree exactly.
	p1, err := Compile(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(src, CompileOptions{NoIndexSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s *agent.Schema) []*agent.Agent {
		pop := make([]*agent.Agent, 80)
		for i := range pop {
			id := agent.ID(i + 1)
			rng := agent.NewRNG(3, 0, id)
			a := agent.New(s, id)
			a.State[0] = rng.Range(0, 30)
			a.State[1] = rng.Range(0, 30)
			pop[i] = a
		}
		return pop
	}
	// Uncached engines: the visited-count assertion below measures the
	// optimizer's probe-radius narrowing against the raw index, which the
	// Verlet query cache deliberately blurs (its candidate lists are sized
	// by the visibility bound, not the probe radius).
	e1, _ := engine.NewSequentialCache(p1, mk(p1.Schema()), spatial.KindKDTree, 1, -1)
	e2, _ := engine.NewSequentialCache(p2, mk(p2.Schema()), spatial.KindKDTree, 1, -1)
	if err := e1.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	a, b := e1.Agents(), e2.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("index selection changed results at agent %d", a[i].ID)
		}
	}
	// And it must visit far fewer candidates.
	if v1, v2 := e1.Visited(), e2.Visited(); v1*2 >= v2 {
		t.Errorf("index selection visited %d vs %d; expected >2x reduction", v1, v2)
	}
}

func TestIndexSelectionDoesNotFireOnLoopDependentRadius(t *testing.T) {
	src := `
class F { public state float x : x; public state float y : y;
  public state float r : r;
  public effect float near : sum;
  public void run() {
    foreach (F p : Extent<F>) {
      if (dist(this, p) < p.r) {
        near <- 1;
      }
    }
  } }`
	cl, _ := Parse(src)
	ck, err := Check(cl)
	if err != nil {
		t.Fatal(err)
	}
	selectIndexes(ck)
	if ck.Class.Run.Body[0].(*Foreach).Radius != nil {
		t.Error("radius depends on loop var; must not be indexed")
	}
}

func TestConstFolding(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":           7,
		"abs(-4) + min(2,9)":  6,
		"(1 < 2) && (3 != 3)": 0,
		"pow(2, 10)":          1024,
		"-(-5)":               5,
		"!0":                  1,
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		p := &parser{toks: toks}
		e, err := p.parseExpr()
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		folded := fold(e)
		n, ok := folded.(*Num)
		if !ok {
			t.Errorf("%s did not fold: %#v", src, folded)
			continue
		}
		if n.Val != want {
			t.Errorf("%s folded to %v, want %v", src, n.Val, want)
		}
	}
	// Identities.
	toks, _ := Lex("x * 1 + 0")
	p := &parser{toks: toks}
	e, _ := p.parseExpr()
	if r, ok := fold(e).(*Ref); !ok || r.Name != "x" {
		t.Errorf("x*1+0 did not simplify to x")
	}
	// rand() must not fold.
	toks, _ = Lex("rand() + 0")
	p = &parser{toks: toks}
	e, _ = p.parseExpr()
	if _, ok := fold(e).(*Num); ok {
		t.Error("rand() was folded")
	}
}

func TestRangeCropEnforced(t *testing.T) {
	src := `
class F { public state float x : x + 100; #range[-1,1];
  public state float y : y;
  public effect float e : sum;
  public void run() {} }`
	prog, err := Compile(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(prog.Schema(), 1)
	e, err := engine.NewSequential(prog, []*agent.Agent{a}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(3); err != nil {
		t.Fatal(err)
	}
	if got := e.Agents()[0].State[0]; got != 3 {
		t.Errorf("x = %v, want 3 (crop to +1 per tick)", got)
	}
}

func TestUpdateRuleSimultaneity(t *testing.T) {
	// Classic swap: x : y, y : x must exchange the values, not copy one.
	src := `
class F { public state float x : y;
  public state float y : x;
  public effect float e : sum;
  public void run() {} }`
	prog, err := Compile(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(prog.Schema(), 1)
	a.State[0] = 1
	a.State[1] = 2
	e, err := engine.NewSequential(prog, []*agent.Agent{a}, spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	got := e.Agents()[0]
	if got.State[0] != 2 || got.State[1] != 1 {
		t.Errorf("swap = (%v,%v), want (2,1)", got.State[0], got.State[1])
	}
}

func TestRandInUpdateRuleIsDeterministic(t *testing.T) {
	src := `
class F { public state float x : x + rand();
  public state float y : y;
  public effect float e : sum;
  public void run() {} }`
	run := func() float64 {
		prog, err := Compile(src, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a := agent.New(prog.Schema(), 7)
		e, err := engine.NewSequential(prog, []*agent.Agent{a}, spatial.KindScan, 99)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(5); err != nil {
			t.Fatal(err)
		}
		return e.Agents()[0].State[0]
	}
	v1, v2 := run(), run()
	if v1 != v2 {
		t.Errorf("rand() streams diverged: %v vs %v", v1, v2)
	}
	if v1 <= 0 || v1 >= 5 {
		t.Errorf("x = %v out of (0,5)", v1)
	}
}
