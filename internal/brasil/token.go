// Package brasil implements BRASIL, the Big Red Agent SImulation Language
// (paper §4): an object-oriented scripting language for agent behavior with
// explicit support for the state-effect pattern. Scripts compile to an
// executable dataflow plan that runs on the BRACE engine; the compiler
// enforces the pattern's read/write restrictions and applies the algebraic
// optimizations of §4.2 — automatic spatial-index selection and effect
// inversion (Theorems 2 and 3).
package brasil

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokPunct   // single/multi-char punctuation and operators
	TokKeyword // reserved words
	TokHashTag // #range and friends
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"class": true, "public": true, "private": true,
	"state": true, "effect": true, "const": true,
	"float": true, "int": true, "bool": true, "void": true,
	"if": true, "else": true, "foreach": true, "this": true,
	"true": true, "false": true,
	// Extent is contextual but reserving it avoids shadowing confusion.
	"Extent": true,
}

// Error is a positioned compilation error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("brasil:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t Token, format string, args ...any) *Error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}
