package brasil

// The BRASIL abstract syntax tree. One source file declares one agent
// class (multiple classes are a straightforward extension the paper also
// defers: "we assume that our simulation has only one class of agents",
// App. B.1).

// Class is a parsed BRASIL class.
type Class struct {
	Name   string
	Fields []*FieldDecl
	Run    *MethodDecl // the query-phase script
	Pos    Token
}

// FieldDecl declares a state or effect field.
type FieldDecl struct {
	Name    string
	Public  bool
	IsState bool
	Type    string // "float", "int", "bool"
	// Update is the state field's update rule (nil for effects).
	Update Expr
	// Comb is the effect field's combinator name (empty for states).
	Comb string
	// Range holds the #range[lo,hi] constraint when present.
	Range *RangeTag
	Pos   Token
}

// RangeTag is the visibility/reachability constraint of §4.1: the tagged
// spatial state field may be inspected and moved within [Lo, Hi] relative
// to the agent per tick.
type RangeTag struct {
	Lo, Hi float64
}

// MethodDecl is a method; only run() has meaning to the compiler.
type MethodDecl struct {
	Name   string
	Public bool
	Body   []Stmt
	Pos    Token
}

// Stmt is a statement in run().
type Stmt interface{ stmtNode() }

// VarDecl declares a local constant: `const float d = expr;` (the `const`
// keyword is optional, matching the paper's examples which use both).
type VarDecl struct {
	Name string
	Type string
	Init Expr
	Pos  Token
}

// AssignEffect is an effect assignment `target <- expr;`. Target names an
// effect field of the acting agent (local) or of another agent via a
// reference `p.f <- expr` (non-local).
type AssignEffect struct {
	// On is nil for a local assignment to this agent, or the agent-typed
	// expression being assigned through (the foreach variable).
	On    Expr
	Field string
	Value Expr
	Pos   Token
}

// If is a conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Token
}

// Foreach iterates the class extent: `foreach (Fish p : Extent<Fish>)`.
// Iteration is always visibility-bounded (§4.1: the loop "will therefore
// only be able to affect fish within this range").
type Foreach struct {
	VarName string
	VarType string
	Body    []Stmt
	Pos     Token

	// Radius, when non-nil, restricts iteration to agents within the given
	// distance — installed by the optimizer's index-selection pass when it
	// recognizes a distance guard, never written by the parser.
	Radius Expr
}

func (*VarDecl) stmtNode()      {}
func (*AssignEffect) stmtNode() {}
func (*If) stmtNode()           {}
func (*Foreach) stmtNode()      {}

// Expr is an expression.
type Expr interface{ exprNode() }

// Num is a numeric literal (bools lower to 0/1).
type Num struct {
	Val float64
	Pos Token
}

// Ref reads a field or local: bare `x` resolves (in order) to a local
// variable, then a field of the acting agent. `This` refers to the acting
// agent itself (agent-typed).
type Ref struct {
	Name string
	Pos  Token
}

// FieldRef reads a field through an agent expression: `p.x`, `this.x`.
type FieldRef struct {
	On    Expr
	Field string
	Pos   Token
}

// This is the acting agent reference.
type This struct{ Pos Token }

// Unary is -x or !x.
type Unary struct {
	Op  string
	X   Expr
	Pos Token
}

// Binary is a binary operation; comparisons yield 0/1.
type Binary struct {
	Op   string
	L, R Expr
	Pos  Token
}

// Call invokes a builtin: abs, sqrt, min, max, floor, exp, log, sin, cos,
// pow, rand (update rules only), dist (agent, agent).
type Call struct {
	Name string
	Args []Expr
	Pos  Token
}

func (*Num) exprNode()      {}
func (*Ref) exprNode()      {}
func (*FieldRef) exprNode() {}
func (*This) exprNode()     {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}
