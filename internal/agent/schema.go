package agent

import (
	"fmt"

	"github.com/bigreddata/brace/internal/geom"
)

// FieldKind distinguishes state fields (public attributes updated only at
// tick boundaries) from effect fields (intermediate accumulators written
// during the query phase), as in §2.1 of the paper.
type FieldKind int

const (
	State FieldKind = iota
	Effect
)

// String implements fmt.Stringer.
func (k FieldKind) String() string {
	if k == State {
		return "state"
	}
	return "effect"
}

// Field describes one attribute of an agent class.
type Field struct {
	Name   string
	Kind   FieldKind
	Public bool
	// Comb is the effect combinator; nil for state fields.
	Comb Combinator
	// Index is the position of the field inside the agent's State or
	// Effect vector, assigned by the schema builder.
	Index int
}

// Schema describes an agent class: its fields and the spatial constraints
// the paper attaches to location state fields (visibility ρ and
// reachability, §2.1/§4.1). One Schema is shared by all agents of a class.
type Schema struct {
	// Name of the agent class, e.g. "Fish".
	Name string

	fields  []Field
	byName  map[string]int // index into fields
	nState  int
	nEffect int

	// PosX, PosY are the State indices of the spatial location. Every
	// BRACE schema must designate a position: the neighborhood property is
	// what makes the iterated spatial join tractable.
	PosX, PosY int

	// Visibility is the distance bound ρ on the visible region: an agent
	// can read from or assign effects to agents within ρ of its position.
	// Zero or negative means unbounded (the engine then replicates
	// everything everywhere, which is correct but slow).
	Visibility float64

	// ProbeRadius optionally bounds the radius the model's query phase
	// probes at (0 = up to Visibility). A performance hint for the
	// engine's query cache; see SetProbeRadius.
	ProbeRadius float64

	// Reach bounds how far the position may move in one update phase; the
	// engine crops updates to it, mirroring the #range tag semantics. Zero
	// or negative means unbounded.
	Reach float64
}

// NewSchema starts building a schema for the named class. Call AddState /
// AddEffect, then Finalize.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, byName: make(map[string]int), PosX: -1, PosY: -1}
}

// AddState appends a state field and returns its index in the State vector.
func (s *Schema) AddState(name string, public bool) int {
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("agent: duplicate field %q in schema %s", name, s.Name))
	}
	idx := s.nState
	s.byName[name] = len(s.fields)
	s.fields = append(s.fields, Field{Name: name, Kind: State, Public: public, Index: idx})
	s.nState++
	return idx
}

// AddEffect appends an effect field with the given combinator and returns
// its index in the Effect vector.
func (s *Schema) AddEffect(name string, public bool, c Combinator) int {
	if c == nil {
		panic(fmt.Sprintf("agent: effect %q needs a combinator", name))
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("agent: duplicate field %q in schema %s", name, s.Name))
	}
	idx := s.nEffect
	s.byName[name] = len(s.fields)
	s.fields = append(s.fields, Field{Name: name, Kind: Effect, Public: public, Comb: c, Index: idx})
	s.nEffect++
	return idx
}

// SetPosition designates which state fields hold the agent's location.
func (s *Schema) SetPosition(xField, yField string) *Schema {
	fx, ok := s.FieldByName(xField)
	if !ok || fx.Kind != State {
		panic(fmt.Sprintf("agent: position x field %q is not a state field", xField))
	}
	fy, ok := s.FieldByName(yField)
	if !ok || fy.Kind != State {
		panic(fmt.Sprintf("agent: position y field %q is not a state field", yField))
	}
	s.PosX, s.PosY = fx.Index, fy.Index
	return s
}

// SetVisibility sets the distance bound ρ (<=0 for unbounded).
func (s *Schema) SetVisibility(rho float64) *Schema { s.Visibility = rho; return s }

// SetReach sets the per-tick movement bound (<=0 for unbounded).
func (s *Schema) SetReach(d float64) *Schema { s.Reach = d; return s }

// SetProbeRadius declares the largest radius the model's query phase
// actually probes (Nearby arguments), when it is smaller than the
// visibility bound — e.g. the predator bites within 2 but sees within 5.
// It is a performance hint only: the engine sizes its cached candidate
// lists to it, and probes beyond it fall back to an exact index query.
// Zero (the default) means probes may use the full visibility.
func (s *Schema) SetProbeRadius(r float64) *Schema { s.ProbeRadius = r; return s }

// Validate checks that the schema is usable by the engine.
func (s *Schema) Validate() error {
	if s.PosX < 0 || s.PosY < 0 {
		return fmt.Errorf("agent: schema %s has no position fields", s.Name)
	}
	if s.nState == 0 {
		return fmt.Errorf("agent: schema %s has no state fields", s.Name)
	}
	return nil
}

// Fields returns the declared fields in declaration order.
func (s *Schema) Fields() []Field { return s.fields }

// FieldByName looks a field up by its BRASIL-level name.
func (s *Schema) FieldByName(name string) (Field, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// StateIndex returns the State-vector index of the named state field,
// panicking if absent — schema lookups happen at model construction time,
// where a typo is a programming error.
func (s *Schema) StateIndex(name string) int {
	f, ok := s.FieldByName(name)
	if !ok || f.Kind != State {
		panic(fmt.Sprintf("agent: no state field %q in schema %s", name, s.Name))
	}
	return f.Index
}

// EffectIndex returns the Effect-vector index of the named effect field.
func (s *Schema) EffectIndex(name string) int {
	f, ok := s.FieldByName(name)
	if !ok || f.Kind != Effect {
		panic(fmt.Sprintf("agent: no effect field %q in schema %s", name, s.Name))
	}
	return f.Index
}

// NumState returns the length of the State vector.
func (s *Schema) NumState() int { return s.nState }

// NumEffect returns the length of the Effect vector.
func (s *Schema) NumEffect() int { return s.nEffect }

// EffectCombinator returns the combinator of effect index i.
func (s *Schema) EffectCombinator(i int) Combinator {
	for _, f := range s.fields {
		if f.Kind == Effect && f.Index == i {
			return f.Comb
		}
	}
	panic(fmt.Sprintf("agent: no effect index %d in schema %s", i, s.Name))
}

// ResetEffects overwrites eff with the identity vector θ (App. A: "effect
// attributes ... need to be reset at the end of every tick").
func (s *Schema) ResetEffects(eff []float64) {
	for _, f := range s.fields {
		if f.Kind == Effect {
			eff[f.Index] = f.Comb.Identity()
		}
	}
}

// IdentityEffects allocates a fresh θ vector.
func (s *Schema) IdentityEffects() []float64 {
	eff := make([]float64, s.nEffect)
	s.ResetEffects(eff)
	return eff
}

// VisibleRegion returns the visible region VR(l) of an agent at position l:
// the circumscribing square of the visibility disc, or the whole plane when
// visibility is unbounded.
func (s *Schema) VisibleRegion(l geom.Vec) geom.Rect {
	if s.Visibility <= 0 {
		return geom.Infinite()
	}
	return geom.Square(l, s.Visibility)
}

// ByteSize estimates the serialized size of one agent of this schema, used
// by the cluster cost model to charge network transfer for replicas.
func (s *Schema) ByteSize() int {
	const idBytes = 8
	return idBytes + 8*(s.nState+s.nEffect)
}
