package agent

import "math"

// RNG is a small counter-based pseudo-random generator (SplitMix64 core).
// BRACE needs per-agent, per-tick randomness that is *independent of
// processing order*: the same agent must draw the same sequence whether its
// partition runs on worker 3 of 36 or inside the sequential reference
// engine. Seeding a stream from (simulation seed, tick, agent ID) gives
// exactly that, which is what makes the determinism tests exact.
type RNG struct {
	state uint64
}

// NewRNG derives a stream from the simulation seed, tick number and agent
// ID. Mixing through splitmix steps decorrelates nearby (tick, id) pairs.
func NewRNG(seed uint64, tick uint64, id ID) *RNG {
	r := SeedRNG(seed, tick, id)
	return &r
}

// SeedRNG is NewRNG by value: the engines re-seed one reused RNG per
// update instead of heap-allocating a fresh generator for every agent on
// every tick. The stream is identical to NewRNG's.
func SeedRNG(seed uint64, tick uint64, id ID) RNG {
	s := mix(seed ^ mix(tick+0x9e3779b97f4a7c15))
	s = mix(s ^ mix(uint64(id)+0xbf58476d1ce4e5b9))
	return RNG{state: s}
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("agent: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box–Muller; one value per call,
// the spare is discarded to keep the stream layout simple and stable).
func (r *RNG) Norm() float64 {
	// Guard against log(0).
	u := 1 - r.Float64()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// HashID derives a deterministic child agent ID from a parent and a per-tick
// sequence number, for spawning without a global (order-dependent) counter.
func HashID(parent ID, tick uint64, seq int) ID {
	h := mix(uint64(parent) ^ mix(tick) ^ mix(uint64(seq)+0x94d049bb133111eb))
	// Keep the high bit set so spawned IDs never collide with the dense
	// low-numbered IDs assigned at initialization.
	return ID(h | 1<<63)
}
