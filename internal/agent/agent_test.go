package agent

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/bigreddata/brace/internal/geom"
)

func fishSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema("Fish")
	s.AddState("x", true)
	s.AddState("y", true)
	s.AddState("vx", true)
	s.AddState("vy", true)
	s.AddEffect("avoidx", false, Sum)
	s.AddEffect("avoidy", false, Sum)
	s.AddEffect("count", false, Sum)
	s.SetPosition("x", "y").SetVisibility(10).SetReach(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := fishSchema(t)
	if s.NumState() != 4 || s.NumEffect() != 3 {
		t.Fatalf("NumState/NumEffect = %d/%d", s.NumState(), s.NumEffect())
	}
	if s.StateIndex("vx") != 2 {
		t.Errorf("StateIndex(vx) = %d", s.StateIndex("vx"))
	}
	if s.EffectIndex("count") != 2 {
		t.Errorf("EffectIndex(count) = %d", s.EffectIndex("count"))
	}
	f, ok := s.FieldByName("avoidy")
	if !ok || f.Kind != Effect || f.Comb.Name() != "sum" {
		t.Errorf("FieldByName(avoidy) = %+v ok=%v", f, ok)
	}
	if _, ok := s.FieldByName("nope"); ok {
		t.Error("FieldByName found missing field")
	}
	if s.EffectCombinator(0).Name() != "sum" {
		t.Error("EffectCombinator(0)")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema("Empty")
	if err := s.Validate(); err == nil {
		t.Error("schema without position should not validate")
	}
	s.AddState("x", true)
	s.AddState("y", true)
	s.SetPosition("x", "y")
	if err := s.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestSchemaPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := fishSchema(t)
	mustPanic("duplicate field", func() { s.AddState("x", true) })
	mustPanic("nil combinator", func() { s.AddEffect("bad", true, nil) })
	mustPanic("missing state index", func() { s.StateIndex("avoidx") })
	mustPanic("missing effect index", func() { s.EffectIndex("x") })
	mustPanic("position on effect", func() { s.SetPosition("avoidx", "y") })
}

func TestAgentPosClone(t *testing.T) {
	s := fishSchema(t)
	a := New(s, 42)
	a.SetPos(s, geom.V(3, 4))
	if a.Pos(s) != geom.V(3, 4) {
		t.Errorf("Pos = %v", a.Pos(s))
	}
	a.Effect[0] = 5
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.State[0] = 99
	if a.State[0] == 99 {
		t.Error("clone shares state storage")
	}
	var c Agent
	a.CloneInto(&c)
	if !a.Equal(&c) {
		t.Error("CloneInto not equal")
	}
}

func TestAgentEqual(t *testing.T) {
	s := fishSchema(t)
	a, b := New(s, 1), New(s, 1)
	if !a.Equal(b) {
		t.Error("fresh identical agents unequal")
	}
	b.Dead = true
	if a.Equal(b) {
		t.Error("dead flag ignored")
	}
	b.Dead = false
	b.State[3] = 1e-300
	if a.Equal(b) {
		t.Error("state difference ignored")
	}
}

func TestResetEffects(t *testing.T) {
	s := NewSchema("M")
	s.AddState("x", true)
	s.AddState("y", true)
	s.SetPosition("x", "y")
	s.AddEffect("a", true, Sum)
	s.AddEffect("b", true, Min)
	s.AddEffect("c", true, Max)
	s.AddEffect("d", true, Mul)
	eff := []float64{9, 9, 9, 9}
	s.ResetEffects(eff)
	want := []float64{0, math.Inf(1), math.Inf(-1), 1}
	for i := range want {
		if eff[i] != want[i] {
			t.Errorf("ResetEffects[%d] = %v, want %v", i, eff[i], want[i])
		}
	}
}

func TestCombineEffects(t *testing.T) {
	s := NewSchema("M")
	s.AddState("x", true)
	s.AddState("y", true)
	s.SetPosition("x", "y")
	s.AddEffect("sum", true, Sum)
	s.AddEffect("min", true, Min)
	dst := []float64{1, 5}
	src := []float64{2, 3}
	CombineEffects(s, dst, src)
	if dst[0] != 3 || dst[1] != 3 {
		t.Errorf("CombineEffects = %v", dst)
	}
}

func TestVisibleRegion(t *testing.T) {
	s := fishSchema(t)
	vr := s.VisibleRegion(geom.V(0, 0))
	if vr != geom.R(-10, -10, 10, 10) {
		t.Errorf("VisibleRegion = %v", vr)
	}
	s.SetVisibility(0)
	if !s.VisibleRegion(geom.V(0, 0)).Contains(geom.V(1e12, -1e12)) {
		t.Error("unbounded visibility should cover the plane")
	}
}

func TestCombinatorByName(t *testing.T) {
	for _, name := range []string{"sum", "min", "max", "mul", "or", "and", "count"} {
		if _, err := CombinatorByName(name); err != nil {
			t.Errorf("CombinatorByName(%q): %v", name, err)
		}
	}
	if _, err := CombinatorByName("median"); err == nil {
		t.Error("median should be rejected (not order-independent decomposable)")
	}
}

// Property test: every builtin combinator satisfies the algebraic laws the
// map-reduce-reduce aggregation depends on.
func TestCombinatorLawsQuick(t *testing.T) {
	combs := []Combinator{Sum, Min, Max, Or, And}
	f := func(a, b, c float64) bool {
		vals := []float64{a, b, c, 0, 1, -1}
		for _, cb := range combs {
			if err := CheckLaws(cb, vals); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Mul is checked on a bounded domain: float multiplication loses exact
	// associativity under overflow, which is outside simulation use.
	if err := CheckLaws(Mul, []float64{0.5, -2, 1, 3, 0}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministicByKey(t *testing.T) {
	a := NewRNG(7, 3, 99)
	b := NewRNG(7, 3, 99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same key produced different streams")
		}
	}
	c := NewRNG(7, 4, 99)
	if a.Uint64() == c.Uint64() {
		t.Error("different tick should change the stream (very likely)")
	}
	d := NewRNG(7, 3, 100)
	e := NewRNG(7, 3, 99)
	if d.Uint64() == e.Uint64() {
		t.Error("different agent should change the stream (very likely)")
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(1, 1, 1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGRangeAndIntn(t *testing.T) {
	r := NewRNG(2, 2, 2)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
		n := r.Intn(7)
		if n < 0 || n >= 7 {
			t.Fatalf("Intn out of bounds: %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(3, 3, 3)
	const n = 100000
	var mean float64
	for i := 0; i < n; i++ {
		mean += r.Float64()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(4, 4, 4)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestHashIDProperties(t *testing.T) {
	seen := make(map[ID]bool)
	for tick := uint64(0); tick < 50; tick++ {
		for seq := 0; seq < 20; seq++ {
			id := HashID(123, tick, seq)
			if id < 1<<63 {
				t.Fatalf("HashID %d missing high bit", id)
			}
			if seen[id] {
				t.Fatalf("HashID collision at tick=%d seq=%d", tick, seq)
			}
			seen[id] = true
		}
	}
	if HashID(1, 1, 1) != HashID(1, 1, 1) {
		t.Error("HashID not deterministic")
	}
}

func TestPopulationSortCloneEqual(t *testing.T) {
	s := fishSchema(t)
	p := Population{New(s, 3), New(s, 1), New(s, 2)}
	sort.Sort(p)
	if p[0].ID != 1 || p[2].ID != 3 {
		t.Errorf("sort order: %v %v %v", p[0].ID, p[1].ID, p[2].ID)
	}
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone unequal")
	}
	q[1].State[0] = 42
	if p.Equal(q) {
		t.Error("Equal ignored state change")
	}
	if p.Equal(q[:2]) {
		t.Error("Equal ignored length change")
	}
}

func TestSchemaByteSize(t *testing.T) {
	s := fishSchema(t)
	if got := s.ByteSize(); got != 8+8*(4+3) {
		t.Errorf("ByteSize = %d", got)
	}
}

func TestFieldKindString(t *testing.T) {
	if State.String() != "state" || Effect.String() != "effect" {
		t.Error("FieldKind.String broken")
	}
}
