package agent

import (
	"fmt"

	"github.com/bigreddata/brace/internal/geom"
)

// ID uniquely identifies an agent for its whole lifetime. The engine never
// reuses IDs; spawned agents receive IDs derived deterministically from
// their parent so that distributed and sequential runs agree (see Spawn in
// the engine package).
type ID uint64

// Agent is one simulated individual: a= ⟨oid, s, e⟩ in the notation of
// Appendix A. The State and Effect slices are indexed by the schema.
//
// Agent is a plain value container; all behavior lives in the Model
// implementations. It is exported across packages (engine, brasil, sims) and
// serialized by checkpointing, so it holds no unexported machinery.
type Agent struct {
	ID     ID
	State  []float64
	Effect []float64
	// Dead marks the agent for removal at the next tick boundary (used by
	// the predator simulation's bite/starve dynamics).
	Dead bool
}

// New allocates an agent of the given schema with zero state and identity
// effects.
func New(s *Schema, id ID) *Agent {
	return &Agent{
		ID:     id,
		State:  make([]float64, s.NumState()),
		Effect: s.IdentityEffects(),
	}
}

// Pos returns the agent's location per the schema's position fields.
func (a *Agent) Pos(s *Schema) geom.Vec {
	return geom.Vec{X: a.State[s.PosX], Y: a.State[s.PosY]}
}

// SetPos writes the agent's location.
func (a *Agent) SetPos(s *Schema, p geom.Vec) {
	a.State[s.PosX] = p.X
	a.State[s.PosY] = p.Y
}

// Clone returns a deep copy; used when replicating agents to the partitions
// whose visible region contains them.
func (a *Agent) Clone() *Agent {
	c := &Agent{ID: a.ID, Dead: a.Dead}
	c.State = append([]float64(nil), a.State...)
	c.Effect = append([]float64(nil), a.Effect...)
	return c
}

// CloneInto copies a into dst, reusing dst's slices when capacities allow.
func (a *Agent) CloneInto(dst *Agent) {
	dst.ID = a.ID
	dst.Dead = a.Dead
	dst.State = append(dst.State[:0], a.State...)
	dst.Effect = append(dst.Effect[:0], a.Effect...)
}

// CombineEffects folds src's effect vector into dst's using the schema's
// combinators — the global ⊕ of reduce₂ (App. A, Fig. 10).
func CombineEffects(s *Schema, dst, src []float64) {
	for _, f := range s.Fields() {
		if f.Kind == Effect {
			dst[f.Index] = f.Comb.Combine(dst[f.Index], src[f.Index])
		}
	}
}

// Equal reports whether two agents have identical ID, liveness and vectors.
// It is exact (no tolerance): the determinism tests require bit-equality
// between sequential and distributed runs.
func (a *Agent) Equal(b *Agent) bool {
	if a.ID != b.ID || a.Dead != b.Dead ||
		len(a.State) != len(b.State) || len(a.Effect) != len(b.Effect) {
		return false
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			return false
		}
	}
	for i := range a.Effect {
		if a.Effect[i] != b.Effect[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for debugging.
func (a *Agent) String() string {
	return fmt.Sprintf("agent(%d s=%v e=%v dead=%v)", a.ID, a.State, a.Effect, a.Dead)
}

// Population is an ordered collection of agents, sorted by ID where order
// matters (checkpoints, determinism comparisons).
type Population []*Agent

// Len, Less, Swap implement sort.Interface over IDs.
func (p Population) Len() int           { return len(p) }
func (p Population) Less(i, j int) bool { return p[i].ID < p[j].ID }
func (p Population) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

// Clone deep-copies the population.
func (p Population) Clone() Population {
	out := make(Population, len(p))
	for i, a := range p {
		out[i] = a.Clone()
	}
	return out
}

// Equal reports exact equality of two ID-sorted populations.
func (p Population) Equal(q Population) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Equal(q[i]) {
			return false
		}
	}
	return true
}
