package agent

import "sort"

// PackMorton repacks the population's State and Effect vectors into a
// single shared arena laid out in Morton (Z-order) sequence of the agents'
// current positions. The population slice itself is untouched — it keeps
// its ID-ascending order, and every vector keeps its exact values — only
// the backing memory moves, so spatially adjacent agents become adjacent
// in memory and the query phase's neighbor walks stop striding the heap.
//
// Each arena segment is handed out with a full three-index slice
// expression, so an append through one agent's slice can never spill into
// its neighbor's segment.
//
// Packing is safe at any tick boundary: it is a pure relayout with no
// value change, so determinism suites and checkpoint diffs see identical
// populations whether or not (and however often) it runs.
func PackMorton(s *Schema, pop []*Agent) {
	n := len(pop)
	if n == 0 {
		return
	}
	ns, ne := s.NumState(), s.NumEffect()

	// Quantize positions to 16 bits per axis over the population's bounding
	// box and interleave into a 32-bit Morton code.
	minX, minY := pop[0].State[s.PosX], pop[0].State[s.PosY]
	maxX, maxY := minX, minY
	for _, a := range pop[1:] {
		x, y := a.State[s.PosX], a.State[s.PosY]
		if x < minX {
			minX = x
		} else if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		} else if y > maxY {
			maxY = y
		}
	}
	sx, sy := 0.0, 0.0
	if maxX > minX {
		sx = 65535 / (maxX - minX)
	}
	if maxY > minY {
		sy = 65535 / (maxY - minY)
	}
	codes := make([]uint64, n)
	for i, a := range pop {
		qx := uint32((a.State[s.PosX] - minX) * sx)
		qy := uint32((a.State[s.PosY] - minY) * sy)
		codes[i] = spread16(qx) | spread16(qy)<<1
	}

	// Arena slots in Morton order; ties (same cell) break by ID so the
	// layout itself is deterministic.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if codes[perm[a]] != codes[perm[b]] {
			return codes[perm[a]] < codes[perm[b]]
		}
		return pop[perm[a]].ID < pop[perm[b]].ID
	})

	stride := ns + ne
	arena := make([]float64, n*stride)
	for rank, idx := range perm {
		a := pop[idx]
		off := rank * stride
		st := arena[off : off+ns : off+ns]
		ef := arena[off+ns : off+stride : off+stride]
		copy(st, a.State)
		copy(ef, a.Effect)
		a.State, a.Effect = st, ef
	}
}

// spread16 interleaves zeros between the low 16 bits of v.
func spread16(v uint32) uint64 {
	x := uint64(v & 0xffff)
	x = (x | x<<8) & 0x00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f
	x = (x | x<<2) & 0x33333333
	x = (x | x<<1) & 0x55555555
	return x
}
