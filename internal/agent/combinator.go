// Package agent implements the state-effect pattern of the paper (§2.1):
// agents whose attributes are split into public *state* fields, updated only
// at tick boundaries, and *effect* fields, write-only accumulators combined
// by decomposable, order-independent combinator functions during the query
// phase. Order independence is what lets BRACE process effect assignments
// in any order — and on any node — without synchronization.
package agent

import (
	"fmt"
	"math"
)

// Combinator folds effect assignments into an accumulator. Implementations
// must be commutative and associative with the declared identity, so that
// assignments can be partially aggregated at one reducer and globally merged
// at another (the ⊕ operator of Appendix A). CheckLaws verifies this and
// the package tests enforce it with testing/quick.
type Combinator interface {
	// Name returns the BRASIL-level name of the combinator ("sum", "min"...).
	Name() string
	// Identity returns the idempotent initial value θ the effect field is
	// reset to at the start of every tick.
	Identity() float64
	// Combine folds a newly assigned value into the accumulator.
	Combine(acc, v float64) float64
}

type sumComb struct{}

func (sumComb) Name() string                   { return "sum" }
func (sumComb) Identity() float64              { return 0 }
func (sumComb) Combine(acc, v float64) float64 { return acc + v }

type minComb struct{}

func (minComb) Name() string                   { return "min" }
func (minComb) Identity() float64              { return math.Inf(1) }
func (minComb) Combine(acc, v float64) float64 { return math.Min(acc, v) }

type maxComb struct{}

func (maxComb) Name() string                   { return "max" }
func (maxComb) Identity() float64              { return math.Inf(-1) }
func (maxComb) Combine(acc, v float64) float64 { return math.Max(acc, v) }

type mulComb struct{}

func (mulComb) Name() string                   { return "mul" }
func (mulComb) Identity() float64              { return 1 }
func (mulComb) Combine(acc, v float64) float64 { return acc * v }

// orComb treats values as booleans (non-zero = true) and ORs them; it is
// how BRASIL scripts accumulate "was I attacked this tick" style flags.
type orComb struct{}

func (orComb) Name() string      { return "or" }
func (orComb) Identity() float64 { return 0 }
func (orComb) Combine(acc, v float64) float64 {
	if acc != 0 || v != 0 {
		return 1
	}
	return 0
}

type andComb struct{}

func (andComb) Name() string      { return "and" }
func (andComb) Identity() float64 { return 1 }
func (andComb) Combine(acc, v float64) float64 {
	if acc != 0 && v != 0 {
		return 1
	}
	return 0
}

// Exported combinator singletons.
var (
	Sum Combinator = sumComb{}
	Min Combinator = minComb{}
	Max Combinator = maxComb{}
	Mul Combinator = mulComb{}
	Or  Combinator = orComb{}
	And Combinator = andComb{}
)

var combinators = map[string]Combinator{
	"sum": Sum, "min": Min, "max": Max, "mul": Mul, "or": Or, "and": And,
	// "count" is the paper's idiom `count <- 1` with a sum combinator
	// (Fig. 2 declares `effect int count : sum`); accept it as an alias.
	"count": Sum,
}

// CombinatorByName resolves a BRASIL combinator name.
func CombinatorByName(name string) (Combinator, error) {
	c, ok := combinators[name]
	if !ok {
		return nil, fmt.Errorf("agent: unknown effect combinator %q", name)
	}
	return c, nil
}

// CheckLaws verifies commutativity, associativity and the identity law of c
// on the given sample values, returning a descriptive error on the first
// violation. The engine calls this when registering schemas in debug mode.
func CheckLaws(c Combinator, samples []float64) error {
	const tol = 1e-9
	eq := func(a, b float64) bool {
		if math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1) {
			return true
		}
		return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
	}
	id := c.Identity()
	boolean := c.Name() == "or" || c.Name() == "and"
	for _, v := range samples {
		if boolean {
			// Boolean combinators normalize values into {0,1}; the identity
			// law only holds on that domain, which the loop below covers via
			// commutativity/associativity.
			continue
		}
		if got := c.Combine(id, v); !eq(got, v) {
			return fmt.Errorf("agent: %s violates left identity on %v: got %v", c.Name(), v, got)
		}
		if got := c.Combine(v, id); !eq(got, v) {
			return fmt.Errorf("agent: %s violates right identity on %v: got %v", c.Name(), v, got)
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			if !eq(c.Combine(a, b), c.Combine(b, a)) {
				return fmt.Errorf("agent: %s not commutative on (%v,%v)", c.Name(), a, b)
			}
			for _, d := range samples {
				if !eq(c.Combine(c.Combine(a, b), d), c.Combine(a, c.Combine(b, d))) {
					return fmt.Errorf("agent: %s not associative on (%v,%v,%v)", c.Name(), a, b, d)
				}
			}
		}
	}
	return nil
}
