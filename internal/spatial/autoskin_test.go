package spatial

import (
	"math"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
)

func TestSetSkin(t *testing.T) {
	c := NewCached(12, 3)
	c.SetSkin(5)
	if c.Skin() != 5 {
		t.Fatalf("Skin = %v, want 5", c.Skin())
	}
	c.SetSkin(-1)
	if c.Skin() != 0 {
		t.Fatalf("negative skin must clamp to 0, got %v", c.Skin())
	}
}

// SetSkin invalidates: a keyed build after a skin change must rebuild
// (the old candidate lists cover the old skin's safety margin).
func TestSetSkinInvalidates(t *testing.T) {
	c := NewCached(12, 3)
	pts := []Point{{Pos: geom.V(0, 0), ID: 0}, {Pos: geom.V(1, 1), ID: 1}, {Pos: geom.V(4, 2), ID: 2}}
	keys := keysFor(pts)
	c.BuildKeyed(pts, keys, nil)
	if rebuilt := c.BuildKeyed(pts, keys, nil); rebuilt {
		t.Fatal("unchanged build should reuse")
	}
	c.SetSkin(6)
	if rebuilt := c.BuildKeyed(pts, keys, nil); !rebuilt {
		t.Fatal("build after SetSkin must not reuse the old tree")
	}
}

// Step tracking observes the max per-tick displacement across keyed
// builds of the same population, and resets with the cache.
func TestStepTracking(t *testing.T) {
	c := NewCached(12, 3)
	c.SetStepTracking(true)
	pts := []Point{{Pos: geom.V(0, 0), ID: 0}, {Pos: geom.V(10, 0), ID: 1}, {Pos: geom.V(0, 10), ID: 2}}
	keys := keysFor(pts)
	c.BuildKeyed(clonePts(pts), keys, nil)
	if n, s := c.StepStats(); n != 0 || s != 0 {
		t.Fatalf("stats before any step: %d/%v", n, s)
	}

	pts[1].Pos = geom.V(10.3, 0.4) // displacement 0.5
	c.BuildKeyed(clonePts(pts), keys, nil)
	if n, s := c.StepStats(); n != 1 || math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("after one step: samples=%d max=%v, want 1/0.5", n, s)
	}

	pts[2].Pos = geom.V(0, 10.2) // displacement 0.2: max stays 0.5
	c.BuildKeyed(clonePts(pts), keys, nil)
	if n, s := c.StepStats(); n != 2 || math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("smaller step must not lower the max: samples=%d max=%v", n, s)
	}

	c.Invalidate()
	if n, s := c.StepStats(); n != 0 || s != 0 {
		t.Fatalf("Invalidate must reset step stats, got %d/%v", n, s)
	}
}

// A changed key set (births, deaths, migration) is not a step — there is
// no meaningful per-agent displacement to observe.
func TestStepTrackingSkipsKeyChanges(t *testing.T) {
	c := NewCached(12, 3)
	c.SetStepTracking(true)
	pts := []Point{{Pos: geom.V(0, 0), ID: 0}, {Pos: geom.V(10, 0), ID: 1}}
	c.BuildKeyed(clonePts(pts), []int64{7, 8}, nil)
	pts[0].Pos = geom.V(50, 50)
	c.BuildKeyed(clonePts(pts), []int64{7, 9}, nil)
	if n, s := c.StepStats(); n != 0 || s != 0 {
		t.Fatalf("key change observed as a step: %d/%v", n, s)
	}
}

func clonePts(pts []Point) []Point {
	return append([]Point(nil), pts...)
}
