package spatial

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// A raise after a low-parallelism start must actually widen the pool: the
// resize retires the old queue and workers and rebuilds at the new size
// (queue capacity 4×max) instead of leaving the first-submit capacity in
// place forever.
func TestSetParallelismResizesPool(t *testing.T) {
	defer SetParallelism(runtime.GOMAXPROCS(0))

	SetParallelism(2)
	ParallelFor(64, 1, func(chunk, lo, hi int) {})
	queryPool.mu.Lock()
	if c := cap(queryPool.tasks); c != 8 {
		t.Errorf("queue capacity at parallelism 2 = %d, want 8", c)
	}
	if queryPool.workers != 1 {
		t.Errorf("workers at parallelism 2 = %d, want 1", queryPool.workers)
	}
	queryPool.mu.Unlock()

	// The raise must retire the 8-slot queue and its lone worker.
	SetParallelism(8)
	queryPool.mu.Lock()
	if queryPool.tasks != nil || queryPool.workers != 0 {
		t.Errorf("resize kept old queue/workers: queued=%v workers=%d",
			queryPool.tasks != nil, queryPool.workers)
	}
	queryPool.mu.Unlock()

	ParallelFor(64, 1, func(chunk, lo, hi int) {})
	queryPool.mu.Lock()
	if c := cap(queryPool.tasks); c != 32 {
		t.Errorf("queue capacity after raise to 8 = %d, want 32", c)
	}
	if queryPool.workers != 7 {
		t.Errorf("workers after raise to 8 = %d, want 7", queryPool.workers)
	}
	queryPool.mu.Unlock()

	// Setting the same size again is a no-op: the live queue survives.
	SetParallelism(8)
	queryPool.mu.Lock()
	if queryPool.tasks == nil || queryPool.workers != 7 {
		t.Errorf("no-op resize retired the pool: queued=%v workers=%d",
			queryPool.tasks != nil, queryPool.workers)
	}
	queryPool.mu.Unlock()
}

// After a raise, every chunk of a ParallelFor can run simultaneously: the
// chunks rendezvous at a barrier that only clears once all of them have
// started, which is impossible if the effective fan-out stayed at the old
// setting.
func TestRaisedParallelismFanOut(t *testing.T) {
	defer SetParallelism(runtime.GOMAXPROCS(0))

	SetParallelism(2)
	ParallelFor(64, 1, func(chunk, lo, hi int) {}) // prime the undersized pool
	SetParallelism(8)

	const chunks = 8
	var arrived atomic.Int32
	var late atomic.Bool
	deadline := time.Now().Add(10 * time.Second)
	ParallelFor(chunks, 1, func(chunk, lo, hi int) {
		arrived.Add(1)
		for arrived.Load() < chunks {
			if time.Now().After(deadline) {
				late.Store(true)
				return
			}
			runtime.Gosched()
		}
	})
	if late.Load() {
		t.Fatalf("fan-out after raise: only %d of %d chunks ran concurrently",
			arrived.Load(), chunks)
	}
}
