package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
)

func randomPoints(rng *rand.Rand, n int, span float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Pos: geom.V(rng.Float64()*span, rng.Float64()*span), ID: int32(i)}
	}
	return pts
}

func collectRange(ix Index, r geom.Rect) []int32 {
	var ids []int32
	ix.Range(r, func(p Point) { ids = append(ids, p.ID) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func collectCircle(ix Index, c geom.Vec, rad float64) []int32 {
	var ids []int32
	ix.RangeCircle(c, rad, func(p Point) { ids = append(ids, p.ID) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Every index must agree with the brute-force scan oracle on random range
// queries — the core correctness property for the Fig. 3/4 comparisons.
func TestIndexesMatchScanOracleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		ptsA := randomPoints(rng, n, 100)
		ptsB := append([]Point(nil), ptsA...)
		ptsC := append([]Point(nil), ptsA...)

		oracle := NewScan()
		oracle.Build(ptsA)
		kd := NewKDTree()
		kd.Build(ptsB)
		grid := NewGrid(5)
		grid.Build(ptsC)

		for q := 0; q < 20; q++ {
			r := geom.R(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
			want := collectRange(oracle, r)
			if got := collectRange(kd, r); !idsEqual(got, want) {
				t.Fatalf("kdtree Range mismatch: n=%d r=%v got=%v want=%v", n, r, got, want)
			}
			if got := collectRange(grid, r); !idsEqual(got, want) {
				t.Fatalf("grid Range mismatch: n=%d r=%v got=%v want=%v", n, r, got, want)
			}
		}
	}
}

func TestIndexesMatchScanOracleCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		base := randomPoints(rng, n, 50)
		oracle := NewScan()
		oracle.Build(append([]Point(nil), base...))
		kd := NewKDTree()
		kd.Build(append([]Point(nil), base...))
		grid := NewGrid(3)
		grid.Build(append([]Point(nil), base...))

		for q := 0; q < 20; q++ {
			c := geom.V(rng.Float64()*50, rng.Float64()*50)
			rad := rng.Float64() * 15
			want := collectCircle(oracle, c, rad)
			if got := collectCircle(kd, c, rad); !idsEqual(got, want) {
				t.Fatalf("kdtree RangeCircle mismatch: got=%v want=%v", got, want)
			}
			if got := collectCircle(grid, c, rad); !idsEqual(got, want) {
				t.Fatalf("grid RangeCircle mismatch: got=%v want=%v", got, want)
			}
		}
	}
}

func TestNearestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		base := randomPoints(rng, n, 50)
		oracle := NewScan()
		oracle.Build(append([]Point(nil), base...))
		kd := NewKDTree()
		kd.Build(append([]Point(nil), base...))
		grid := NewGrid(4)
		grid.Build(append([]Point(nil), base...))

		for q := 0; q < 10; q++ {
			c := geom.V(rng.Float64()*60-5, rng.Float64()*60-5)
			k := 1 + rng.Intn(8)
			want := oracle.Nearest(c, k, nil)
			for name, ix := range map[string]Index{"kdtree": kd, "grid": grid} {
				got := ix.Nearest(c, k, nil)
				if len(got) != len(want) {
					t.Fatalf("%s Nearest count = %d, want %d", name, len(got), len(want))
				}
				// Distances must match even if equidistant points tie.
				for i := range got {
					dg, dw := got[i].Pos.Dist2(c), want[i].Pos.Dist2(c)
					if dg != dw {
						t.Fatalf("%s Nearest[%d] dist2 = %v, want %v", name, i, dg, dw)
					}
				}
			}
		}
	}
}

func TestNearestOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 200, 30)
	kd := NewKDTree()
	kd.Build(pts)
	c := geom.V(15, 15)
	got := kd.Nearest(c, 10, nil)
	for i := 1; i < len(got); i++ {
		if got[i-1].Pos.Dist2(c) > got[i].Pos.Dist2(c) {
			t.Fatalf("Nearest not sorted at %d", i)
		}
	}
}

func TestEmptyIndexes(t *testing.T) {
	for _, kind := range []Kind{KindScan, KindKDTree, KindGrid} {
		ix := New(kind, 1)
		ix.Build(nil)
		if ix.Len() != 0 {
			t.Errorf("%v Len = %d", kind, ix.Len())
		}
		called := false
		ix.Range(geom.R(0, 0, 1, 1), func(Point) { called = true })
		ix.RangeCircle(geom.V(0, 0), 5, func(Point) { called = true })
		if called {
			t.Errorf("%v produced results on empty index", kind)
		}
		if got := ix.Nearest(geom.V(0, 0), 3, nil); len(got) != 0 {
			t.Errorf("%v Nearest on empty = %v", kind, got)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	for _, kind := range []Kind{KindScan, KindKDTree, KindGrid} {
		ix := New(kind, 1)
		ix.Build([]Point{{Pos: geom.V(2, 3), ID: 7}})
		var got []int32
		ix.RangeCircle(geom.V(2, 3), 0, func(p Point) { got = append(got, p.ID) })
		if len(got) != 1 || got[0] != 7 {
			t.Errorf("%v zero-radius self query = %v", kind, got)
		}
		nn := ix.Nearest(geom.V(100, 100), 5, nil)
		if len(nn) != 1 || nn[0].ID != 7 {
			t.Errorf("%v Nearest = %v", kind, nn)
		}
	}
}

func TestDuplicatePositions(t *testing.T) {
	pts := []Point{
		{Pos: geom.V(1, 1), ID: 0},
		{Pos: geom.V(1, 1), ID: 1},
		{Pos: geom.V(1, 1), ID: 2},
		{Pos: geom.V(5, 5), ID: 3},
	}
	for _, kind := range []Kind{KindScan, KindKDTree, KindGrid} {
		ix := New(kind, 1)
		ix.Build(append([]Point(nil), pts...))
		got := collectCircle(ix, geom.V(1, 1), 0.5)
		if !idsEqual(got, []int32{0, 1, 2}) {
			t.Errorf("%v duplicates = %v", kind, got)
		}
	}
}

// The KD-tree must visit asymptotically fewer points than the scan for
// small-range queries — this is the mechanism behind Fig. 3's quadratic vs
// log-linear curves.
func TestKDTreeVisitsFewerThanScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 20000, 1000)
	kd := NewKDTree()
	kd.Build(append([]Point(nil), pts...))
	sc := NewScan()
	sc.Build(append([]Point(nil), pts...))
	for i := 0; i < 100; i++ {
		c := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		kd.RangeCircle(c, 5, func(Point) {})
		sc.RangeCircle(c, 5, func(Point) {})
	}
	kv, sv := kd.Stats().Visited, sc.Stats().Visited
	if kv*10 >= sv {
		t.Errorf("kdtree visited %d vs scan %d; expected >10x reduction", kv, sv)
	}
}

func TestGridDegenerateCellSize(t *testing.T) {
	g := NewGrid(-1) // defaults to 1
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 100, 10)
	g.Build(pts)
	if g.Len() != 100 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Tiny cell over huge span must not explode memory.
	g2 := NewGrid(1e-9)
	g2.Build([]Point{{Pos: geom.V(0, 0)}, {Pos: geom.V(1e6, 1e6), ID: 1}})
	got := collectRange(g2, geom.R(-1, -1, 1e7, 1e7))
	if !idsEqual(got, []int32{0, 1}) {
		t.Errorf("degenerate grid range = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if KindScan.String() != "scan" || KindKDTree.String() != "kdtree" || KindGrid.String() != "grid" {
		t.Error("Kind.String broken")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestStatsCounting(t *testing.T) {
	kd := NewKDTree()
	kd.Build(randomPoints(rand.New(rand.NewSource(8)), 100, 10))
	if kd.Stats().Probes != 0 {
		t.Error("fresh build should reset stats")
	}
	kd.Range(geom.R(0, 0, 10, 10), func(Point) {})
	kd.RangeCircle(geom.V(5, 5), 2, func(Point) {})
	kd.Nearest(geom.V(5, 5), 3, nil)
	s := kd.Stats()
	if s.Probes != 3 {
		t.Errorf("Probes = %d, want 3", s.Probes)
	}
	if s.Visited == 0 {
		t.Error("Visited = 0")
	}
}

func BenchmarkKDTreeBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 10000, 1000)
	kd := NewKDTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]Point(nil), pts...)
		kd.Build(buf)
	}
}

func BenchmarkKDTreeRangeCircle10k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pts := randomPoints(rng, 10000, 1000)
	kd := NewKDTree()
	kd.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kd.RangeCircle(geom.V(500, 500), 10, func(Point) {})
	}
}

func BenchmarkScanRangeCircle10k(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 10000, 1000)
	sc := NewScan()
	sc.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.RangeCircle(geom.V(500, 500), 10, func(Point) {})
	}
}
