// Package spatial provides the spatial indexes BRACE uses to turn the
// query phase of a tick into an orthogonal range query instead of a
// quadratic all-pairs scan (paper §5.2, Fig. 3–4).
//
// Four implementations of Index are provided:
//
//   - Scan: the no-index baseline ("BRACE - no indexing" in the figures);
//     every probe enumerates all points.
//   - KDTree: the paper's "generic KD-tree based spatial index capability"
//     [Bentley, 3], rebuilt each tick over the agents visible at a reducer.
//   - Grid: a uniform bucket grid, an alternative index used for ablations.
//   - CachedIndex: a KD-tree wrapped in Verlet candidate-list reuse (see
//     cached.go) — the engines' incremental fast path, which skips the
//     per-tick rebuild while agents stay within half a skin radius of
//     their build positions.
//
// The base indexes are built over immutable point sets: behavioral
// simulations rebuild at every tick because every agent may move, so they
// favor fast bulk construction and cheap queries over dynamic updates.
// CachedIndex layers exact cross-tick reuse on top of that model.
package spatial

import (
	"fmt"

	"github.com/bigreddata/brace/internal/geom"
)

// Point is an indexed element: a location plus the caller's identifier
// (BRACE stores the index of the agent in the reducer's replica slice).
type Point struct {
	Pos geom.Vec
	ID  int32
}

// Index answers orthogonal range and nearest-neighbor queries over a point
// set fixed at Build time.
type Index interface {
	// Build replaces the index contents with pts. Implementations may
	// retain pts.
	Build(pts []Point)

	// Len returns the number of indexed points.
	Len() int

	// Range calls fn for every point inside the closed rectangle r.
	// Iteration order is unspecified. fn must not call back into the index.
	Range(r geom.Rect, fn func(Point))

	// RangeCircle calls fn for every point within Euclidean distance rad
	// of c (closed ball).
	RangeCircle(c geom.Vec, rad float64, fn func(Point))

	// Nearest returns the k points closest to c in nondecreasing
	// (distance, ID) order — equidistant points tie-break by ascending
	// ID, so the result is a deterministic function of the point set.
	// Fewer than k are returned if the index holds fewer points. Used by
	// the MITSIM-style nearest lead/rear vehicle probes.
	Nearest(c geom.Vec, k int, dst []Point) []Point

	// Stats returns counters accumulated since Build (probes, nodes
	// visited). Used by the experiment harness's cost model.
	Stats() Stats
}

// Stats counts index work; Visited is the number of candidate points
// examined, the quantity that separates log-linear from quadratic behavior
// in Fig. 3.
type Stats struct {
	Probes  int64 // queries issued
	Visited int64 // points examined (including rejected candidates)
}

// Kind selects an index implementation by name; it is the value of the
// engine's "indexing" switch in the experiments.
type Kind int

const (
	KindScan Kind = iota // brute force, no indexing
	KindKDTree
	KindGrid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindKDTree:
		return "kdtree"
	case KindGrid:
		return "grid"
	default:
		return "unknown"
	}
}

// ParseKind resolves a CLI/wire index name ("" defaults to the KD-tree,
// the paper's choice). It is the single source of truth for the index
// vocabulary: bracesim flags, the distributed handshake and the public
// API all validate through it.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", "kd":
		return KindKDTree, nil
	case "scan":
		return KindScan, nil
	case "grid":
		return KindGrid, nil
	default:
		return 0, fmt.Errorf("unknown index %q (kd, scan, grid)", name)
	}
}

// New returns a fresh, empty index of the given kind. Grid indexes use the
// given cell size hint; others ignore it.
func New(kind Kind, cellSize float64) Index {
	switch kind {
	case KindKDTree:
		return NewKDTree()
	case KindGrid:
		return NewGrid(cellSize)
	default:
		return NewScan()
	}
}
