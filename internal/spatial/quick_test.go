package spatial

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/bigreddata/brace/internal/geom"
)

// pointSet generates random point sets for testing/quick.
type pointSet struct {
	Pts []Point
}

// Generate implements quick.Generator.
func (pointSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size*8 + 1)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Pos: geom.V(rng.Float64()*100-50, rng.Float64()*100-50),
			ID:  int32(i),
		}
	}
	return reflect.ValueOf(pointSet{pts})
}

// Property: for any point set and any query circle, the KD-tree returns
// exactly the brute-force answer.
func TestQuickKDTreeRangeCircleMatchesOracle(t *testing.T) {
	f := func(ps pointSet, cx, cy, r float64) bool {
		cx = clampF(cx, -60, 60)
		cy = clampF(cy, -60, 60)
		r = clampF(absF(r), 0, 80)
		kd := NewKDTree()
		kd.Build(append([]Point(nil), ps.Pts...))
		sc := NewScan()
		sc.Build(append([]Point(nil), ps.Pts...))
		return idsEqual(
			collectCircle(kd, geom.V(cx, cy), r),
			collectCircle(sc, geom.V(cx, cy), r),
		)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the KD-tree's Nearest distances match the oracle's for any k.
func TestQuickKDTreeNearestMatchesOracle(t *testing.T) {
	f := func(ps pointSet, cx, cy float64, k uint8) bool {
		if len(ps.Pts) == 0 {
			return true
		}
		cx = clampF(cx, -60, 60)
		cy = clampF(cy, -60, 60)
		kk := int(k%12) + 1
		kd := NewKDTree()
		kd.Build(append([]Point(nil), ps.Pts...))
		sc := NewScan()
		sc.Build(append([]Point(nil), ps.Pts...))
		c := geom.V(cx, cy)
		a := kd.Nearest(c, kk, nil)
		b := sc.Nearest(c, kk, nil)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Pos.Dist2(c) != b[i].Pos.Dist2(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Build preserves the point multiset (reordering only).
func TestQuickKDTreeBuildPreservesPoints(t *testing.T) {
	f := func(ps pointSet) bool {
		buf := append([]Point(nil), ps.Pts...)
		kd := NewKDTree()
		kd.Build(buf)
		if kd.Len() != len(ps.Pts) {
			return false
		}
		got := make([]int32, len(buf))
		for i, p := range buf {
			got[i] = p.ID
		}
		want := make([]int32, len(ps.Pts))
		for i, p := range ps.Pts {
			want[i] = p.ID
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return idsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a range query over the whole plane returns every point.
func TestQuickRangeEverythingReturnsAll(t *testing.T) {
	f := func(ps pointSet) bool {
		for _, kind := range []Kind{KindKDTree, KindGrid} {
			ix := New(kind, 5)
			ix.Build(append([]Point(nil), ps.Pts...))
			n := 0
			ix.Range(geom.R(-1000, -1000, 1000, 1000), func(Point) { n++ })
			if n != len(ps.Pts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clampF(x, lo, hi float64) float64 {
	if x != x { // NaN
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
