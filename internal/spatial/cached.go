// The incremental query layer: a CachedIndex wraps the KD-tree with the
// molecular-dynamics Verlet-list technique. Behavioral simulations probe
// the same (slowly moving) point set every tick, so instead of rebuilding
// the tree and re-running every traversal per tick, the cache builds each
// agent's candidate list once with an inflated radius ρ+s ("skin" s) and
// reuses the lists — a filtered linear scan, no tree walk, no sort —
// until some point has drifted more than s/2 from its build position.
//
// Correctness invariant: if every point has moved at most s/2 since the
// lists were built, then for any probe radius r ≤ ρ centered at a point's
// *current* position, every point currently within r was within r+s ≤ ρ+s
// of the probing point's *build* position (triangle inequality, two moves
// of ≤ s/2), i.e. it is in the candidate list. All inequalities are
// closed, so reuse is exact at a displacement of exactly s/2.
package spatial

import (
	"math"
	"sort"
	"sync/atomic"

	"github.com/bigreddata/brace/internal/geom"
)

// CacheStats counts how BuildKeyed calls resolved: Builds is full rebuilds
// (tree + candidate lists), Reuses is ticks served from cached lists.
// Unlike Index.Stats on the base indexes, these counters — and the cached
// index's Stats — accumulate across Build calls; callers take deltas.
type CacheStats struct {
	Builds int64
	Reuses int64
}

// CachedIndex is a KD-tree with Verlet candidate-list reuse. It implements
// Index (generic probes answer against the *current* positions, even when
// the underlying tree holds stale build positions), plus the keyed build
// and per-slot batched probe API the engines use.
//
// Concurrency: BuildKeyed/Build/Invalidate must be called from one
// goroutine at a time, with no queries in flight. Between builds, all
// queries are safe to run concurrently: SlotCandidates (the parallel
// query phase's hot path) and RangeCircleInto are read-only on build
// state, and the generic Index queries allocate their own scratch and
// touch only atomic counters — the engines' probe fallback relies on
// this during a parallel query phase.
type CachedIndex struct {
	tree     *KDTree
	probeRad float64 // max slot-probe radius the lists must cover (ρ)
	skin     float64 // list inflation s; reuse while max displacement ≤ s/2

	valid bool
	keyed bool // last build carried caller keys (reuse is possible)
	n     int

	// Adaptive candidate-list gate. Workloads whose per-tick motion
	// exceeds skin/2 never reuse, so list construction would be pure
	// overhead every tick; after one full build-reuse-miss cycle the cache
	// stops building lists and degrades to plain per-tick rebuilds.
	// Invalidate resets the gate, so in the distributed engine the state
	// machine restarts at every epoch barrier — keeping a recovered run's
	// adaptation (and therefore its index work) identical to an unfailed
	// one's.
	listsOn    bool
	listsBuilt bool  // the current build carries lists
	buildSeen  bool  // a rebuild happened since the last Invalidate
	reuseRun   int   // reuses since the last rebuild
	buildCost  int64 // tree candidates visited by the last list build
	listWork   int64 // candidate-list entries of the last build (per-tick scan cost)

	keys     []int64    // per-slot identity at build
	probeSet []int32    // slots that probe (nil = all); must match to reuse
	hasProbe bool       // probeSet was provided
	built    []geom.Vec // positions at build, slot order
	cur      []geom.Vec // current positions, slot order
	ids      []int32    // caller Point.IDs, slot order
	treePts  []Point    // tree's copy (reordered by its Build); ID = slot
	pad      float64    // max displacement since build (generic inflation)

	lists [][]int32 // per-slot candidate slots, ascending; nil w/o probeRad
	mask  []bool    // probe-set membership scratch

	// Per-tick displacement tracking for skin auto-tuning. When enabled,
	// every BuildKeyed whose keyed slot sequence matches the previous call
	// records the max distance any point moved since that call. Reset by
	// Invalidate, so the observations — like the adaptive list gate — are a
	// pure function of forward execution from the last barrier.
	track       bool
	stepSamples int
	stepMax     float64

	// Per-chunk scratch for the parallel list build.
	pairs [][]int64
	hits  [][]int32
	vis   []int64

	// Uniform-grid scratch for the list build (see buildListsGrid).
	cellStart []int32
	cellCur   []int32
	cellPts   []int32
	cellXs    []float64
	cellYs    []float64

	// Point scratch for BuildKeyedCols (column-fed builds).
	colPts []Point

	stats Stats // probe/visited counters; atomic (see Stats)
	cs    CacheStats
}

// NewCached returns a cached KD-tree whose candidate lists cover slot
// probes up to radius probeRad, with the given skin. probeRad ≤ 0 disables
// candidate lists (generic queries still work, against the stale tree with
// displacement-padded traversals); skin ≤ 0 disables reuse entirely,
// making every BuildKeyed a rebuild.
func NewCached(probeRad, skin float64) *CachedIndex {
	if probeRad < 0 {
		probeRad = 0
	}
	if skin < 0 {
		skin = 0
	}
	return &CachedIndex{tree: NewKDTree(), probeRad: probeRad, skin: skin, listsOn: true}
}

// DefaultSkin picks a skin for a visibility bound and per-tick reachability
// r (0 = unknown): wide enough to amortize rebuilds over a few ticks of
// full-speed motion, narrow enough that candidate lists stay close to the
// true neighborhood. Exposed so engines and experiments share one policy.
func DefaultSkin(probeRad, reach float64) float64 {
	if probeRad <= 0 {
		return 0
	}
	s := probeRad / 2
	if reach > 0 {
		// Reuse window ≈ s/2 / step ≈ 2 ticks at full speed; agents rarely
		// move at full reach every tick, so the realized window is longer.
		if r := 4 * reach; r < s {
			s = r
		}
	}
	return s
}

// Skin returns the configured skin radius s.
func (c *CachedIndex) Skin() float64 { return c.skin }

// SetSkin replaces the skin radius and invalidates the cached build: the
// existing candidate lists were constructed at ρ+oldSkin and their reuse
// bound is oldSkin/2, so they cannot be kept. Negative skins clamp to 0
// (reuse disabled), matching NewCached.
func (c *CachedIndex) SetSkin(s float64) {
	if s < 0 {
		s = 0
	}
	c.skin = s
	c.Invalidate()
}

// SetStepTracking enables (or disables) per-tick displacement observation
// for skin auto-tuning. Off by default: explicit-skin runs skip the extra
// per-build scan entirely.
func (c *CachedIndex) SetStepTracking(on bool) { c.track = on }

// StepStats returns the number of same-population BuildKeyed calls observed
// since the last Invalidate and the maximum per-call displacement among
// them. Zero-displacement duplicate builds (the overlapped path's barrier
// prebuilds) contribute samples but never raise the max, so the max is
// identical whether or not the overlapped tick is active.
func (c *CachedIndex) StepStats() (samples int, maxStep float64) {
	return c.stepSamples, c.stepMax
}

// CacheStats returns cumulative build/reuse counters.
func (c *CachedIndex) CacheStats() CacheStats { return c.cs }

// Invalidate drops the cached build, forcing the next BuildKeyed to
// rebuild, and re-arms the adaptive list gate. Engines call it at epoch
// barriers and after migrations, restores and rebalances so that runs
// reaching the same state through different histories (e.g. a recovered
// vs an unfailed run) also make identical per-tick work — keeping
// cost-driven decisions such as load balancing, and therefore distributed
// runs, bit-identical.
func (c *CachedIndex) Invalidate() {
	c.valid = false
	c.listsOn = true
	c.buildSeen = false
	c.reuseRun = 0
	c.stepSamples = 0
	c.stepMax = 0
}

// HasLists reports whether the current build carries candidate lists —
// the precondition for SlotCandidates.
func (c *CachedIndex) HasLists() bool { return c.listsBuilt }

// ProbeRadius returns the radius the candidate lists cover.
func (c *CachedIndex) ProbeRadius() float64 { return c.probeRad }

// BuildKeyed installs the tick's point set. keys[i] is a stable identity
// for slot i (the engines pass agent IDs): when the keyed slot sequence is
// unchanged since the last build, the probe set is the same, and no point
// has moved more than s/2 from its build position, the cached tree and
// candidate lists are reused and only current positions are refreshed.
// Otherwise the tree is rebuilt and, when probeRad > 0, candidate lists
// with radius probeRad+s are rebuilt for every probe slot (probe == nil
// means every slot probes). Returns whether a rebuild happened.
//
// The caller's pts slice is copied, not retained or reordered.
func (c *CachedIndex) BuildKeyed(pts []Point, keys []int64, probe []int32) bool {
	if c.track {
		c.observeStep(pts, keys)
	}
	if c.listsOn && c.tryReuse(pts, keys, probe) {
		c.cs.Reuses++
		c.reuseRun++
		return false
	}
	// Adaptive gate. Lists pay for themselves two ways: reuse across
	// ticks, and cheaper probes within a tick (a sorted flat scan instead
	// of a tree walk + sort). A build whose lists were never reused AND
	// whose construction cost dwarfed the per-tick scan work means the
	// workload outruns the skin every tick with neighborhoods too small
	// to amortize construction (e.g. a fast random walk with a tiny
	// infection radius) — stop paying for lists. The 3/2 threshold tracks
	// the grid build's interior visit-to-entry ratio of 6.25/π ≈ 2: a
	// same-order build is tolerable (it replaces the tick's tree walks),
	// a clearly costlier one is not.
	if c.listsOn && c.buildSeen && c.reuseRun == 0 && 2*c.buildCost > 3*c.listWork {
		c.listsOn = false
	}
	c.rebuild(pts, keys, probe)
	c.cs.Builds++
	c.buildSeen = true
	c.reuseRun = 0
	return true
}

// BuildKeyedCols is BuildKeyed fed straight from state columns: point i is
// (xs[i], ys[i]) with slot ID i. The engines' columnar path hands its
// position columns to the index without materializing a caller-side point
// slice; the values are the same float64s an agent-side build would read,
// so the resulting tree and lists are identical.
func (c *CachedIndex) BuildKeyedCols(xs, ys []float64, keys []int64, probe []int32) bool {
	c.colPts = grow(c.colPts, len(xs))
	for i := range xs {
		c.colPts[i] = Point{Pos: geom.Vec{X: xs[i], Y: ys[i]}, ID: int32(i)}
	}
	return c.BuildKeyed(c.colPts, keys, probe)
}

// Build implements Index: an unkeyed build always rebuilds (without
// identity, reuse cannot be proven safe). The slice is not retained.
func (c *CachedIndex) Build(pts []Point) {
	c.rebuild(pts, nil, nil)
	c.cs.Builds++
}

// observeStep records the displacement since the previous BuildKeyed call
// when the keyed slot sequence is unchanged: pts[i] then corresponds to
// c.cur[i], the position the same agent held at the previous call. Runs
// before reuse/rebuild overwrite c.cur.
func (c *CachedIndex) observeStep(pts []Point, keys []int64) {
	if !c.valid || !c.keyed || keys == nil || len(pts) != c.n || len(keys) != c.n {
		return
	}
	for i, k := range keys {
		if c.keys[i] != k {
			return
		}
	}
	maxD2 := 0.0
	for i := range pts {
		if d2 := pts[i].Pos.Dist2(c.cur[i]); d2 > maxD2 {
			maxD2 = d2
		}
	}
	c.stepSamples++
	if s := math.Sqrt(maxD2); s > c.stepMax {
		c.stepMax = s
	}
}

// tryReuse checks the reuse conditions and, when they hold, refreshes
// current positions and the displacement pad.
func (c *CachedIndex) tryReuse(pts []Point, keys []int64, probe []int32) bool {
	if !c.valid || !c.keyed || c.skin <= 0 || keys == nil ||
		len(pts) != c.n || len(keys) != c.n {
		return false
	}
	for i, k := range keys {
		if c.keys[i] != k {
			return false
		}
	}
	if (probe == nil) != !c.hasProbe || len(probe) != len(c.probeSet) {
		return false
	}
	for i, s := range probe {
		if c.probeSet[i] != s {
			return false
		}
	}
	lim := (c.skin / 2) * (c.skin / 2)
	maxD2 := 0.0
	for i := range pts {
		if d2 := pts[i].Pos.Dist2(c.built[i]); d2 > maxD2 {
			if d2 > lim {
				return false
			}
			maxD2 = d2
		}
	}
	for i := range pts {
		c.cur[i] = pts[i].Pos
		c.ids[i] = pts[i].ID
	}
	if maxD2 > 0 {
		c.pad = math.Sqrt(maxD2)
	} else {
		c.pad = 0
	}
	return true
}

func (c *CachedIndex) rebuild(pts []Point, keys []int64, probe []int32) {
	n := len(pts)
	c.n = n
	c.valid = true
	c.keyed = keys != nil
	c.pad = 0
	c.keys = append(c.keys[:0], keys...)
	c.probeSet = append(c.probeSet[:0], probe...)
	c.hasProbe = probe != nil
	c.built = grow(c.built, n)
	c.cur = grow(c.cur, n)
	c.ids = grow(c.ids, n)
	c.treePts = grow(c.treePts, n)
	for i, p := range pts {
		c.built[i] = p.Pos
		c.cur[i] = p.Pos
		c.ids[i] = p.ID
		c.treePts[i] = Point{Pos: p.Pos, ID: int32(i)}
	}
	c.tree.Build(c.treePts)
	c.listsBuilt = c.listsOn && c.probeRad > 0
	if c.listsBuilt {
		c.buildLists()
	}
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// listBuildGrain is the minimum number of probe sweeps per parallel chunk.
const listBuildGrain = 64

// buildLists constructs the per-slot candidate lists with radius ρ+s.
// It sweeps candidates j in ascending slot order and appends j to the list
// of every probe slot i within range — the pair relation is symmetric, so
// one tree probe per candidate discovers all its list memberships, and the
// ascending sweep leaves every list sorted by slot (= ascending agent ID
// in the engines) with no per-probe sort ever needed again.
func (c *CachedIndex) buildLists() {
	n := c.n
	if cap(c.lists) < n {
		old := c.lists
		c.lists = make([][]int32, n)
		copy(c.lists, old)
	}
	c.lists = c.lists[:n]
	for i := range c.lists {
		c.lists[i] = c.lists[i][:0]
	}
	c.mask = grow(c.mask, n)
	for i := range c.mask {
		c.mask[i] = !c.hasProbe
	}
	for _, s := range c.probeSet {
		c.mask[s] = true
	}

	R := c.probeRad + c.skin
	if c.buildListsGrid(R) {
		return
	}
	chunks := Parallelism()
	if m := n / listBuildGrain; m < chunks {
		chunks = m
	}
	for len(c.hits) < chunks || len(c.hits) == 0 {
		c.hits = append(c.hits, nil)
	}
	if chunks <= 1 {
		// Serial: append directly.
		hits := c.hits[0]
		var visited, entries int64
		for j := 0; j < n; j++ {
			var v int64
			hits, v = c.tree.rangeCircleSlots(c.built[j], R, hits[:0])
			visited += v
			for _, i := range hits {
				if c.mask[i] {
					c.lists[i] = append(c.lists[i], int32(j))
					entries++
				}
			}
		}
		c.hits[0] = hits
		c.buildCost, c.listWork = visited, entries
		c.charge(int64(n), visited)
		return
	}

	// Parallel: chunks of the j-sweep record (i, j) pairs into private
	// buffers; the merge appends them chunk-by-chunk, preserving ascending
	// j — identical lists to the serial path, regardless of chunking.
	for len(c.pairs) < chunks {
		c.pairs = append(c.pairs, nil)
	}
	c.vis = grow(c.vis, chunks)
	ParallelFor(n, listBuildGrain, func(chunk, lo, hi int) {
		pairs := c.pairs[chunk][:0]
		hits := c.hits[chunk]
		var visited int64
		for j := lo; j < hi; j++ {
			var v int64
			hits, v = c.tree.rangeCircleSlots(c.built[j], R, hits[:0])
			visited += v
			for _, i := range hits {
				if c.mask[i] {
					pairs = append(pairs, int64(i)<<32|int64(j))
				}
			}
		}
		c.pairs[chunk] = pairs
		c.hits[chunk] = hits
		c.vis[chunk] = visited
	})
	var visited, entries int64
	for chunk := 0; chunk < chunks; chunk++ {
		for _, pr := range c.pairs[chunk] {
			c.lists[pr>>32] = append(c.lists[pr>>32], int32(pr&0xffffffff))
		}
		visited += c.vis[chunk]
		entries += int64(len(c.pairs[chunk]))
	}
	c.buildCost, c.listWork = visited, entries
	c.charge(int64(n), visited)
}

// buildListsGrid is the dense-layout list construction: a uniform grid
// with cell edge R/2 replaces the per-point tree probe. Binning is a
// counting sort (stable, so cell membership ascends by slot) that also
// copies the coordinates into bin order, so the pair sweep streams
// contiguous columns instead of gathering points by slot. Each point
// sweeps its 5×5 cell neighborhood — a pair within R spans at most two
// cells per axis at edge R/2, and the finer cells shrink the tested area
// from 9R² (3×3 at edge R) to 6.25R². Cells of one window row are
// adjacent in the bin layout, so each row is a single contiguous span.
// The candidate sweep runs j ascending exactly like the tree path, and
// the order in which a given j tests its i-candidates never reaches the
// output (each hit appends j to a distinct lists[i]), so the lists hold
// the identical entries in the identical order; only the construction
// cost (and its Visited accounting, which counts bin members examined
// instead of tree candidates) changes. Returns false for layouts so
// sparse that cells would far outnumber points — there the tree's pruning
// wins and the caller keeps the tree sweep.
func (c *CachedIndex) buildListsGrid(R float64) bool {
	n := c.n
	if n == 0 || R <= 0 {
		return false
	}
	h := R / 2
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range c.built[:n] {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	fx := math.Floor((maxX-minX)/h) + 1
	fy := math.Floor((maxY-minY)/h) + 1
	if !(fx > 0 && fy > 0) || fx*fy > float64(16*n+64) {
		return false
	}
	nx, ny := int(fx), int(fy)
	ncells := nx * ny

	cellOf := func(p geom.Vec) (int, int) {
		cx, cy := int((p.X-minX)/h), int((p.Y-minY)/h)
		if cx >= nx {
			cx = nx - 1
		}
		if cy >= ny {
			cy = ny - 1
		}
		return cx, cy
	}
	c.cellStart = grow(c.cellStart, ncells+1)
	for i := range c.cellStart {
		c.cellStart[i] = 0
	}
	for _, p := range c.built[:n] {
		cx, cy := cellOf(p)
		c.cellStart[cy*nx+cx+1]++
	}
	for i := 1; i <= ncells; i++ {
		c.cellStart[i] += c.cellStart[i-1]
	}
	c.cellCur = grow(c.cellCur, ncells)
	copy(c.cellCur, c.cellStart[:ncells])
	c.cellPts = grow(c.cellPts, n)
	c.cellXs = grow(c.cellXs, n)
	c.cellYs = grow(c.cellYs, n)
	for i := 0; i < n; i++ {
		p := c.built[i]
		cx, cy := cellOf(p)
		k := c.cellCur[cy*nx+cx]
		c.cellPts[k] = int32(i)
		c.cellXs[k] = p.X
		c.cellYs[k] = p.Y
		c.cellCur[cy*nx+cx]++
	}

	R2 := R * R
	// cellWindow returns the clamped 5×5 cell neighborhood of p.
	cellWindow := func(p geom.Vec) (xlo, xhi, ylo, yhi int) {
		cx, cy := cellOf(p)
		ylo, yhi = cy-2, cy+2
		if ylo < 0 {
			ylo = 0
		}
		if yhi >= ny {
			yhi = ny - 1
		}
		xlo, xhi = cx-2, cx+2
		if xlo < 0 {
			xlo = 0
		}
		if xhi >= nx {
			xhi = nx - 1
		}
		return
	}
	sweep := func(lo, hi int, emit func(i int32, j int)) int64 {
		var visited int64
		for j := lo; j < hi; j++ {
			p := c.built[j]
			xlo, xhi, ylo, yhi := cellWindow(p)
			for yy := ylo; yy <= yhi; yy++ {
				base := yy * nx
				s, e := c.cellStart[base+xlo], c.cellStart[base+xhi+1]
				xs, ys := c.cellXs[s:e], c.cellYs[s:e]
				visited += int64(e - s)
				for k, x := range xs {
					dx, dy := x-p.X, ys[k]-p.Y
					if dx*dx+dy*dy <= R2 {
						if i := c.cellPts[int(s)+k]; c.mask[i] {
							emit(i, j)
						}
					}
				}
			}
		}
		return visited
	}

	chunks := Parallelism()
	if m := n / listBuildGrain; m < chunks {
		chunks = m
	}
	if chunks <= 1 {
		// Serial sweep, written out rather than routed through sweep's emit
		// closure: the indirect call per list entry is measurable (~15% of
		// the build) and the serial path is the common one on small hosts.
		// The all-slots-probe case (every sequential tick) additionally
		// drops the per-candidate mask load.
		var visited, entries int64
		lists := c.lists
		maskAll := !c.hasProbe
		for j := 0; j < n; j++ {
			p := c.built[j]
			xlo, xhi, ylo, yhi := cellWindow(p)
			for yy := ylo; yy <= yhi; yy++ {
				base := yy * nx
				s, e := c.cellStart[base+xlo], c.cellStart[base+xhi+1]
				xs, ys := c.cellXs[s:e], c.cellYs[s:e]
				visited += int64(e - s)
				if maskAll {
					for k, x := range xs {
						dx, dy := x-p.X, ys[k]-p.Y
						if dx*dx+dy*dy <= R2 {
							i := c.cellPts[int(s)+k]
							lists[i] = append(lists[i], int32(j))
							entries++
						}
					}
				} else {
					for k, x := range xs {
						dx, dy := x-p.X, ys[k]-p.Y
						if dx*dx+dy*dy <= R2 {
							if i := c.cellPts[int(s)+k]; c.mask[i] {
								lists[i] = append(lists[i], int32(j))
								entries++
							}
						}
					}
				}
			}
		}
		c.buildCost, c.listWork = visited, entries
		c.charge(int64(n), visited)
		return true
	}

	// Parallel: private (i, j) pair buffers per j-chunk, merged in chunk
	// order — ascending j, identical lists to the serial sweep.
	for len(c.pairs) < chunks {
		c.pairs = append(c.pairs, nil)
	}
	c.vis = grow(c.vis, chunks)
	ParallelFor(n, listBuildGrain, func(chunk, lo, hi int) {
		pairs := c.pairs[chunk][:0]
		c.vis[chunk] = sweep(lo, hi, func(i int32, j int) {
			pairs = append(pairs, int64(i)<<32|int64(j))
		})
		c.pairs[chunk] = pairs
	})
	var visited, entries int64
	for chunk := 0; chunk < chunks; chunk++ {
		for _, pr := range c.pairs[chunk] {
			c.lists[pr>>32] = append(c.lists[pr>>32], int32(pr&0xffffffff))
		}
		visited += c.vis[chunk]
		entries += int64(len(c.pairs[chunk]))
	}
	c.buildCost, c.listWork = visited, entries
	c.charge(int64(n), visited)
	return true
}

// SlotCandidates returns slot's sorted candidate list and the shared
// current-position array: every point within probeRad of cur[slot] is in
// the list (plus near-misses within the skin); the caller filters by exact
// current distance. Read-only and safe for concurrent calls. Only valid
// after a BuildKeyed with probeRad > 0 and slot in the probe set.
func (c *CachedIndex) SlotCandidates(slot int32) ([]int32, []geom.Vec) {
	return c.lists[slot], c.cur
}

// Current returns the current position of slot i (for callers that track
// slots but not positions).
func (c *CachedIndex) Current(i int32) geom.Vec { return c.cur[i] }

// Len implements Index.
func (c *CachedIndex) Len() int { return c.n }

// Stats implements Index. Counters accumulate across builds (see
// CacheStats); list-construction probes are included. Generic queries may
// run concurrently with each other (their counters are atomic), so Stats
// reads atomically too.
func (c *CachedIndex) Stats() Stats {
	return Stats{
		Probes:  atomic.LoadInt64(&c.stats.Probes),
		Visited: atomic.LoadInt64(&c.stats.Visited),
	}
}

func (c *CachedIndex) charge(probes, visited int64) {
	atomic.AddInt64(&c.stats.Probes, probes)
	atomic.AddInt64(&c.stats.Visited, visited)
}

// The generic Index queries below answer against *current* positions even
// when the underlying tree holds stale build positions: the tree is probed
// with the region grown by the maximum displacement since build, then
// candidates filter by where they are now. They allocate their own scratch
// and touch only read-shared build state plus atomic counters, so they are
// safe to call concurrently — they are the queryEnv fallback when a probe
// exceeds the candidate lists' radius during a parallel query phase.

// Range implements Index against current positions.
func (c *CachedIndex) Range(r geom.Rect, fn func(Point)) {
	slots, visited := c.tree.rangeRectSlots(r.Expand(c.pad), nil)
	c.charge(1, visited)
	for _, i := range slots {
		if r.Contains(c.cur[i]) {
			fn(Point{Pos: c.cur[i], ID: c.ids[i]})
		}
	}
}

// RangeCircle implements Index against current positions.
func (c *CachedIndex) RangeCircle(cen geom.Vec, rad float64, fn func(Point)) {
	slots, visited := c.RangeCircleInto(cen, rad, nil)
	c.charge(1, visited)
	for _, i := range slots {
		fn(Point{Pos: c.cur[i], ID: c.ids[i]})
	}
}

// RangeCircleInto appends the slots currently within rad of cen to the
// caller-owned dst and returns (dst, candidates visited). It is the
// engines' fallback when a probe is not served by the candidate lists:
// stats-free and touching only read-shared build state, it is safe during
// a parallel query phase, and reuses the caller's buffer. Right after a
// rebuild (pad 0) the tree's filter is already exact; on reuse ticks the
// padded traversal re-filters by current position.
func (c *CachedIndex) RangeCircleInto(cen geom.Vec, rad float64, dst []int32) ([]int32, int64) {
	if c.pad == 0 {
		return c.tree.rangeCircleSlots(cen, rad, dst)
	}
	start := len(dst)
	dst, visited := c.tree.rangeCircleSlots(cen, rad+c.pad, dst)
	r2 := rad * rad
	kept := start
	for _, i := range dst[start:] {
		if c.cur[i].Dist2(cen) <= r2 {
			dst[kept] = i
			kept++
		}
	}
	return dst[:kept], visited
}

// Nearest implements Index against current positions. The k nearest build
// positions bound the answer: any point among the current k nearest has a
// build distance within twice the displacement pad of the build k-th
// distance, so one padded range collects an exact candidate superset.
func (c *CachedIndex) Nearest(cen geom.Vec, k int, dst []Point) []Point {
	if k <= 0 || c.n == 0 {
		c.charge(1, 0)
		return dst
	}
	var slots []int32
	if k >= c.n {
		slots = make([]int32, c.n)
		for i := range slots {
			slots[i] = int32(i)
		}
		c.charge(1, int64(c.n))
	} else {
		nn, visited := c.tree.nearestInto(cen, k, nil)
		dk := math.Sqrt(nn[len(nn)-1].Pos.Dist2(cen))
		// Inflate past rounding: a too-wide candidate circle is harmless
		// (candidates are re-ranked by exact current distance below), a
		// too-narrow one drops a boundary point.
		r := dk + 2*c.pad
		r += r*1e-9 + 1e-12
		var v2 int64
		slots, v2 = c.tree.rangeCircleSlots(cen, r, nil)
		c.charge(1, visited+v2)
	}
	sort.Slice(slots, func(a, b int) bool {
		da, db := c.cur[slots[a]].Dist2(cen), c.cur[slots[b]].Dist2(cen)
		if da != db {
			return da < db
		}
		return c.ids[slots[a]] < c.ids[slots[b]]
	})
	if len(slots) > k {
		slots = slots[:k]
	}
	for _, i := range slots {
		dst = append(dst, Point{Pos: c.cur[i], ID: c.ids[i]})
	}
	return dst
}

var _ Index = (*CachedIndex)(nil)
