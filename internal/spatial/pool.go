package spatial

import (
	"runtime"
	"sync"
)

// The query-phase worker pool. Index construction and batched probes are
// embarrassingly parallel — every agent's candidate filter touches only
// read-shared build state and its own output buffers — so the package runs
// them across a small pool of persistent goroutines. All parallel paths are
// value-deterministic: chunking changes scheduling, never results, so a
// simulation is bit-identical at any parallelism (including 1).
var queryPool = &pool{}

// pool is a lazily started set of persistent workers draining a task queue.
// Tasks never spawn or wait on other pool tasks (ParallelFor runs chunk 0 on
// the submitting goroutine), so a saturated pool cannot deadlock.
type pool struct {
	mu      sync.Mutex
	workers int // goroutines started so far
	max     int // target size; 0 = not yet initialized
	tasks   chan func()
}

// Parallelism returns the worker count ParallelFor fans out to.
func Parallelism() int {
	queryPool.mu.Lock()
	defer queryPool.mu.Unlock()
	if queryPool.max == 0 {
		queryPool.max = runtime.GOMAXPROCS(0)
	}
	return queryPool.max
}

// SetParallelism overrides the pool size (default GOMAXPROCS). n < 1 means
// 1: all spatial work runs on the calling goroutine. Changing the size
// retires the current queue and its workers — in-flight tasks drain, and
// the next submit rebuilds the queue at the new capacity (4×max) with a
// fresh worker set — so a raise after a low-parallelism start actually
// widens the fan-out instead of leaving the old undersized queue degrading
// submissions to inline runs. Intended for tests and embedders that must
// bound BRACE's CPU use; safe to call between ticks.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	queryPool.mu.Lock()
	if n != queryPool.max {
		queryPool.max = n
		if queryPool.tasks != nil {
			// Workers exit once the closed channel drains; submit re-creates
			// the queue sized to the new max and respawns on demand.
			close(queryPool.tasks)
			queryPool.tasks = nil
			queryPool.workers = 0
		}
	}
	queryPool.mu.Unlock()
}

// submit queues fn on the pool, starting workers up to the target size.
// The enqueue happens under the lock so a concurrent SetParallelism can
// never close the channel between the capacity check and the send.
func (p *pool) submit(fn func()) {
	p.mu.Lock()
	if p.max == 0 {
		p.max = runtime.GOMAXPROCS(0)
	}
	if p.tasks == nil {
		p.tasks = make(chan func(), 4*p.max)
	}
	// Workers beyond chunk 0 of any ParallelFor; one fewer than max because
	// the submitting goroutine always contributes its own chunk.
	for p.workers < p.max-1 {
		p.workers++
		go func(tasks chan func()) {
			for fn := range tasks {
				fn()
			}
		}(p.tasks)
	}
	select {
	case p.tasks <- fn:
		p.mu.Unlock()
	default:
		// Queue full (heavily nested fan-out): run inline rather than block.
		p.mu.Unlock()
		fn()
	}
}

// ParallelFor splits [0, n) into at most Parallelism() contiguous chunks of
// at least minGrain items and runs fn(chunk, lo, hi) for each, returning when
// all chunks are done. Chunk 0 runs on the calling goroutine. fn must not
// call back into ParallelFor. With one chunk (small n or parallelism 1) this
// is a plain loop with zero synchronization.
func ParallelFor(n, minGrain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	chunks := Parallelism()
	if c := n / minGrain; c < chunks {
		chunks = c
	}
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		c := c
		lo, hi := c*n/chunks, (c+1)*n/chunks
		queryPool.submit(func() {
			defer wg.Done()
			fn(c, lo, hi)
		})
	}
	fn(0, 0, n/chunks)
	wg.Wait()
}
