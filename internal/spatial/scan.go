package spatial

import (
	"sort"

	"github.com/bigreddata/brace/internal/geom"
)

// Scan is the no-index baseline: every query enumerates and tests every
// point, giving the quadratic per-tick behavior the paper reports for
// "BRACE - no indexing" (Fig. 3: "without indexing every vehicle enumerates
// and tests every other vehicle during each tick").
type Scan struct {
	pts   []Point
	stats Stats
}

// NewScan returns an empty brute-force index.
func NewScan() *Scan { return &Scan{} }

// Build implements Index.
func (s *Scan) Build(pts []Point) {
	s.pts = pts
	s.stats = Stats{}
}

// Len implements Index.
func (s *Scan) Len() int { return len(s.pts) }

// Range implements Index.
func (s *Scan) Range(r geom.Rect, fn func(Point)) {
	s.stats.Probes++
	s.stats.Visited += int64(len(s.pts))
	for _, p := range s.pts {
		if r.Contains(p.Pos) {
			fn(p)
		}
	}
}

// RangeCircle implements Index.
func (s *Scan) RangeCircle(c geom.Vec, rad float64, fn func(Point)) {
	s.stats.Probes++
	s.stats.Visited += int64(len(s.pts))
	r2 := rad * rad
	for _, p := range s.pts {
		if p.Pos.Dist2(c) <= r2 {
			fn(p)
		}
	}
}

// Nearest implements Index.
func (s *Scan) Nearest(c geom.Vec, k int, dst []Point) []Point {
	s.stats.Probes++
	s.stats.Visited += int64(len(s.pts))
	if k <= 0 || len(s.pts) == 0 {
		return dst
	}
	// Copy, sort by (distance, ID) — the Index tie rule. The scan baseline
	// is not meant to be fast; clarity wins.
	cand := make([]Point, len(s.pts))
	copy(cand, s.pts)
	sort.Slice(cand, func(i, j int) bool {
		di, dj := cand[i].Pos.Dist2(c), cand[j].Pos.Dist2(c)
		if di != dj {
			return di < dj
		}
		return cand[i].ID < cand[j].ID
	})
	if k > len(cand) {
		k = len(cand)
	}
	return append(dst, cand[:k]...)
}

// Stats implements Index.
func (s *Scan) Stats() Stats { return s.stats }

var _ Index = (*Scan)(nil)
