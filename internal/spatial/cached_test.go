package spatial

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
)

// collectNearest gathers (ID...) from Nearest in order.
func collectNearest(ix Index, c geom.Vec, k int) []int32 {
	var ids []int32
	for _, p := range ix.Nearest(c, k, nil) {
		ids = append(ids, p.ID)
	}
	return ids
}

// slotCircle answers a slot probe the way the engines do: filter the
// cached candidate list by exact current distance. The list is sorted by
// slot, so the result needs no sort.
func slotCircle(c *CachedIndex, slot int32, rad float64) []int32 {
	cand, cur := c.SlotCandidates(slot)
	pos := cur[slot]
	r2 := rad * rad
	var ids []int32
	for _, j := range cand {
		if cur[j].Dist2(pos) <= r2 {
			ids = append(ids, j)
		}
	}
	return ids
}

func keysFor(pts []Point) []int64 {
	keys := make([]int64, len(pts))
	for i := range pts {
		keys[i] = int64(1000 + i)
	}
	return keys
}

// TestCachedGenericMatchesOracle: after a plain (unkeyed) Build, the
// cached index is just another Index and must agree with every other
// implementation on random probes.
func TestCachedGenericMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(300)
		base := randomPoints(rng, n, 60)
		oracle := NewScan()
		oracle.Build(append([]Point(nil), base...))
		cached := NewCached(12, 3)
		cached.Build(append([]Point(nil), base...))

		for q := 0; q < 15; q++ {
			c := geom.V(rng.Float64()*70-5, rng.Float64()*70-5)
			rad := rng.Float64() * 20
			if got, want := collectCircle(cached, c, rad), collectCircle(oracle, c, rad); !idsEqual(got, want) {
				t.Fatalf("RangeCircle mismatch: got=%v want=%v", got, want)
			}
			r := geom.R(rng.Float64()*60, rng.Float64()*60, rng.Float64()*60, rng.Float64()*60)
			if got, want := collectRange(cached, r), collectRange(oracle, r); !idsEqual(got, want) {
				t.Fatalf("Range mismatch: got=%v want=%v", got, want)
			}
			k := 1 + rng.Intn(8)
			if got, want := collectNearest(cached, c, k), collectNearest(oracle, c, k); !idsEqual(got, want) {
				t.Fatalf("Nearest mismatch: got=%v want=%v", got, want)
			}
		}
	}
}

// TestNearestTieBreakDeterministic: equidistant points must come back in
// ascending-ID order from every implementation — the Index tie rule that
// makes cached and uncached runs bit-identical.
func TestNearestTieBreakDeterministic(t *testing.T) {
	// Four points on a circle of radius 5 around the origin plus two
	// farther; IDs deliberately unsorted relative to angle.
	pts := []Point{
		{Pos: geom.V(5, 0), ID: 31},
		{Pos: geom.V(-5, 0), ID: 2},
		{Pos: geom.V(0, 5), ID: 17},
		{Pos: geom.V(0, -5), ID: 8},
		{Pos: geom.V(9, 0), ID: 1},
		{Pos: geom.V(0, 9), ID: 40},
	}
	want := []int32{2, 8, 17} // three nearest: all at d=5, ascending ID
	for _, tc := range []struct {
		name string
		ix   Index
	}{
		{"scan", NewScan()},
		{"kdtree", NewKDTree()},
		{"grid", NewGrid(3)},
		{"cached", NewCached(10, 2)},
	} {
		tc.ix.Build(append([]Point(nil), pts...))
		got := collectNearest(tc.ix, geom.V(0, 0), 3)
		if !idsEqual(got, want) {
			t.Errorf("%s: Nearest ties = %v, want %v", tc.name, got, want)
		}
	}
}

// TestCachedReuseRandomWalk drives the keyed build through a random walk
// with steps below the reuse threshold and checks, at every tick, that
// generic and slot probes agree with a fresh scan over the *current*
// positions — stale tree and cached lists included.
func TestCachedReuseRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const skin = 2.0
	const probeRad = 8.0
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(200)
		pts := randomPoints(rng, n, 40)
		keys := keysFor(pts)
		cached := NewCached(probeRad, skin)
		cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)

		for tick := 0; tick < 12; tick++ {
			// Step each point by at most skin/5 so several ticks reuse.
			for i := range pts {
				pts[i].Pos.X += rng.Float64()*skin/5 - skin/10
				pts[i].Pos.Y += rng.Float64()*skin/5 - skin/10
			}
			cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
			oracle := NewScan()
			oracle.Build(append([]Point(nil), pts...))

			c := geom.V(rng.Float64()*50-5, rng.Float64()*50-5)
			rad := rng.Float64() * 12
			if got, want := collectCircle(cached, c, rad), collectCircle(oracle, c, rad); !idsEqual(got, want) {
				t.Fatalf("tick %d: generic RangeCircle mismatch: got=%v want=%v", tick, got, want)
			}
			k := 1 + rng.Intn(6)
			if got, want := collectNearest(cached, c, k), collectNearest(oracle, c, k); !idsEqual(got, want) {
				t.Fatalf("tick %d: Nearest mismatch: got=%v want=%v", tick, got, want)
			}
			slot := int32(rng.Intn(n))
			srad := rng.Float64() * probeRad
			want := collectCircle(oracle, pts[slot].Pos, srad)
			if got := slotCircle(cached, slot, srad); !idsEqual(got, want) {
				t.Fatalf("tick %d: slot probe mismatch: got=%v want=%v", tick, got, want)
			}
		}
		cs := cached.CacheStats()
		if cs.Reuses == 0 {
			t.Fatalf("random walk with small steps never reused (builds=%d)", cs.Builds)
		}
	}
}

// TestCachedStaleBoundary pins the exactly-s/2 edge: a displacement of
// exactly skin/2 must REUSE the cached lists and still answer exactly
// (the invariant's inequalities are closed); any displacement beyond must
// rebuild.
func TestCachedStaleBoundary(t *testing.T) {
	const skin = 2.0
	pts := []Point{
		{Pos: geom.V(0, 0), ID: 0},
		{Pos: geom.V(5, 0), ID: 1},
		{Pos: geom.V(10, 0), ID: 2},
		{Pos: geom.V(0, 7), ID: 3},
	}
	keys := keysFor(pts)
	cached := NewCached(6, skin)
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if got := cached.CacheStats(); got.Builds != 1 || got.Reuses != 0 {
		t.Fatalf("initial build: %+v", got)
	}

	// Move point 1 by exactly s/2 toward point 0; everyone else still.
	moved := append([]Point(nil), pts...)
	moved[1].Pos.X -= skin / 2
	cached.BuildKeyed(append([]Point(nil), moved...), keys, nil)
	if got := cached.CacheStats(); got.Builds != 1 || got.Reuses != 1 {
		t.Fatalf("exact s/2 displacement should reuse: %+v", got)
	}
	oracle := NewScan()
	oracle.Build(append([]Point(nil), moved...))
	for slot := int32(0); slot < 4; slot++ {
		for _, rad := range []float64{0, 1, 4, 4.5, 6} {
			want := collectCircle(oracle, moved[slot].Pos, rad)
			if got := slotCircle(cached, slot, rad); !idsEqual(got, want) {
				t.Fatalf("slot %d rad %g after exact s/2 move: got=%v want=%v", slot, rad, got, want)
			}
		}
	}

	// One nanometer past s/2: must rebuild.
	past := append([]Point(nil), moved...)
	past[3].Pos.Y += skin/2 + 1e-9
	cached.BuildKeyed(append([]Point(nil), past...), keys, nil)
	if got := cached.CacheStats(); got.Builds != 2 {
		t.Fatalf("displacement past s/2 should rebuild: %+v", got)
	}

	// Membership change: same length, one key swapped — must rebuild.
	swapped := append([]Point(nil), past...)
	keys2 := append([]int64(nil), keys...)
	keys2[2] = 999
	cached.BuildKeyed(swapped, keys2, nil)
	if got := cached.CacheStats(); got.Builds != 3 {
		t.Fatalf("key change should rebuild: %+v", got)
	}

	// Invalidate forces a rebuild even with zero displacement.
	cached.Invalidate()
	cached.BuildKeyed(append([]Point(nil), swapped...), keys2, nil)
	if got := cached.CacheStats(); got.Builds != 4 {
		t.Fatalf("Invalidate should force rebuild: %+v", got)
	}
}

// TestCachedProbeSet: lists restricted to a probe set answer exactly for
// probe slots, and a probe-set change forces a rebuild (ownership flips in
// the distributed engine must not reuse stale list coverage).
func TestCachedProbeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 120
	pts := randomPoints(rng, n, 30)
	keys := keysFor(pts)
	probe := []int32{3, 7, 40, 99}
	cached := NewCached(6, 2)
	cached.BuildKeyed(append([]Point(nil), pts...), keys, probe)
	oracle := NewScan()
	oracle.Build(append([]Point(nil), pts...))
	for _, slot := range probe {
		want := collectCircle(oracle, pts[slot].Pos, 5)
		if got := slotCircle(cached, slot, 5); !idsEqual(got, want) {
			t.Fatalf("probe slot %d: got=%v want=%v", slot, got, want)
		}
	}
	cached.BuildKeyed(append([]Point(nil), pts...), keys, probe)
	if got := cached.CacheStats(); got.Reuses != 1 {
		t.Fatalf("identical probe set should reuse: %+v", got)
	}
	cached.BuildKeyed(append([]Point(nil), pts...), keys, []int32{3, 7, 40, 98})
	if got := cached.CacheStats(); got.Builds != 2 {
		t.Fatalf("probe-set change should rebuild: %+v", got)
	}
}

// TestCachedParallelMatchesSerial forces the pool through both paths —
// parallel KD-tree construction and the two-pass parallel list build —
// and requires bit-identical lists and probe answers.
func TestCachedParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 3000 // above parallelBuildMin so the tree build forks too
	pts := randomPoints(rng, n, 200)
	keys := keysFor(pts)

	build := func(par int) *CachedIndex {
		SetParallelism(par)
		c := NewCached(10, 3)
		c.BuildKeyed(append([]Point(nil), pts...), keys, nil)
		return c
	}
	defer SetParallelism(runtime.GOMAXPROCS(0))
	serial := build(1)
	parallel := build(6)

	for slot := int32(0); slot < int32(n); slot += 17 {
		a, _ := serial.SlotCandidates(slot)
		b, _ := parallel.SlotCandidates(slot)
		if !idsEqual(a, b) {
			t.Fatalf("slot %d candidate lists differ: serial=%d parallel=%d entries", slot, len(a), len(b))
		}
	}
	for q := 0; q < 50; q++ {
		c := geom.V(rng.Float64()*200, rng.Float64()*200)
		rad := rng.Float64() * 15
		if got, want := collectCircle(parallel, c, rad), collectCircle(serial, c, rad); !idsEqual(got, want) {
			t.Fatalf("parallel RangeCircle diverges from serial")
		}
	}
}

// FuzzIndexConformance drives all four index implementations through a
// fuzzer-chosen point set, a displacement step, and a probe, requiring
// identical answers everywhere — including the cached index's stale-tree
// reuse path when the step stays within the skin.
func FuzzIndexConformance(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), false)
	f.Add(int64(7), uint8(200), uint8(0), true)
	f.Add(int64(42), uint8(1), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, stepN uint8, bigStep bool) {
		rng := rand.New(rand.NewSource(seed))
		const skin = 2.0
		pts := randomPoints(rng, int(n)+1, 50)
		keys := keysFor(pts)
		cached := NewCached(10, skin)
		cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)

		// One displacement step per point: within s/2 normally; one point
		// jumps far when bigStep, which must trigger a rebuild.
		step := skin / 2 * float64(stepN%10) / 10
		for i := range pts {
			th := rng.Float64() * 2 * 3.141592653589793
			pts[i].Pos.X += step * cos(th)
			pts[i].Pos.Y += step * sin(th)
		}
		if bigStep {
			pts[0].Pos.X += 3 * skin
		}
		cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)

		oracle := NewScan()
		oracle.Build(append([]Point(nil), pts...))
		kd := NewKDTree()
		kd.Build(append([]Point(nil), pts...))
		grid := NewGrid(4)
		grid.Build(append([]Point(nil), pts...))

		c := geom.V(rng.Float64()*60-5, rng.Float64()*60-5)
		rad := rng.Float64() * 15
		k := 1 + rng.Intn(6)
		want := collectCircle(oracle, c, rad)
		wantNN := collectNearest(oracle, c, k)
		for name, ix := range map[string]Index{"kd": kd, "grid": grid, "cached": cached} {
			if got := collectCircle(ix, c, rad); !idsEqual(got, want) {
				t.Fatalf("%s RangeCircle: got=%v want=%v", name, got, want)
			}
			if got := collectNearest(ix, c, k); !idsEqual(got, wantNN) {
				t.Fatalf("%s Nearest: got=%v want=%v", name, got, wantNN)
			}
		}
		// Slot probes are only served while the adaptive gate keeps lists
		// on (a reuse-miss cycle turns them off); the engines check
		// HasLists the same way.
		if cached.HasLists() {
			slot := int32(rng.Intn(len(pts)))
			srad := rng.Float64() * 10
			if got, want := slotCircle(cached, slot, srad), collectCircle(oracle, pts[slot].Pos, srad); !idsEqual(got, want) {
				t.Fatalf("cached slot probe: got=%v want=%v", got, want)
			}
		}
	})
}

// TestCachedAdaptiveGate: a workload that outruns the skin every tick must
// stop paying for candidate lists after one build-miss cycle, and
// Invalidate must re-arm the gate (the epoch-barrier reset that keeps
// recovered runs' index work identical to unfailed ones).
func TestCachedAdaptiveGate(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := randomPoints(rng, 150, 40)
	keys := keysFor(pts)
	const skin = 1.0
	cached := NewCached(8, skin)
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if !cached.HasLists() {
		t.Fatal("first build should carry lists")
	}
	jump := func() {
		for i := range pts {
			pts[i].Pos.X += 2 * skin // every point outruns skin/2
		}
	}
	jump()
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if cached.HasLists() {
		t.Fatal("gate should disable lists after a zero-reuse build cycle")
	}
	// Generic probes stay exact with the gate off.
	oracle := NewScan()
	oracle.Build(append([]Point(nil), pts...))
	c := geom.V(20, 20)
	if got, want := collectCircle(cached, c, 9), collectCircle(oracle, c, 9); !idsEqual(got, want) {
		t.Fatalf("gate-off RangeCircle: got=%v want=%v", got, want)
	}
	jump()
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if cached.HasLists() {
		t.Fatal("gate must stay off while disabled")
	}
	cached.Invalidate()
	jump()
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if !cached.HasLists() {
		t.Fatal("Invalidate should re-arm the adaptive gate")
	}
}

func cos(x float64) float64 { return geom.V(1, 0).Rotate(x).X }
func sin(x float64) float64 { return geom.V(1, 0).Rotate(x).Y }

// TestCachedStatsAccumulate: unlike the base indexes, the cached index's
// counters survive Build — the engines take deltas, and the cache layer
// additionally reports builds vs reuses (the §5.2 cost-model split).
func TestCachedStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randomPoints(rng, 100, 30)
	keys := keysFor(pts)
	cached := NewCached(8, 2)
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	v1 := cached.Stats().Visited
	if v1 == 0 {
		t.Fatal("list construction should count visited candidates")
	}
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil) // reuse
	if v := cached.Stats().Visited; v != v1 {
		t.Fatalf("reuse tick should not re-visit; %d -> %d", v1, v)
	}
	cached.Invalidate()
	cached.BuildKeyed(append([]Point(nil), pts...), keys, nil)
	if v := cached.Stats().Visited; v <= v1 {
		t.Fatalf("rebuild should accumulate, not reset: %d -> %d", v1, v)
	}
	cs := cached.CacheStats()
	if cs.Builds != 2 || cs.Reuses != 1 {
		t.Fatalf("cache stats = %+v, want 2 builds / 1 reuse", cs)
	}
}
