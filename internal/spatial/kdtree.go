package spatial

import (
	"sync"

	"github.com/bigreddata/brace/internal/geom"
)

// KDTree is a bucketed 2-d tree over points [Bentley, SGC 1990], the index
// the BRACE prototype uses (paper §5.1: "a generic KD-tree based spatial
// index capability"). It is rebuilt in bulk each tick by median splitting;
// leaves hold up to leafSize points scanned linearly, which keeps the
// traversal constant small while preserving O(√n + k) range queries.
//
// Nodes are laid out in preorder (a node's left child immediately follows
// it; the right child follows the whole left subtree). Because splits are
// by count, the tree *shape* is a function of len(pts) alone, so every
// subtree's node range is known before it is built — large builds fork
// subtrees onto the package worker pool writing disjoint slice regions,
// producing the bit-identical layout of a serial build.
type KDTree struct {
	pts   []Point // reordered during build; leaves reference spans
	nodes []kdNode
	root  int32
	stats Stats
}

const (
	leafSize = 16
	// parallelBuildMin is the smallest subtree worth forking to the pool.
	parallelBuildMin = 1024
)

type kdNode struct {
	split       float64 // splitting coordinate (internal nodes)
	left, right int32   // children (internal nodes)
	start, end  int32   // point span (leaf nodes)
	axis        int8    // 0 = X, 1 = Y, leafAxis = leaf
}

const (
	kdNil    = int32(-1)
	leafAxis = int8(2)
)

// NewKDTree returns an empty KD-tree.
func NewKDTree() *KDTree { return &KDTree{root: kdNil} }

// Build implements Index. It takes ownership of pts (the slice is
// reordered in place during median partitioning).
func (t *KDTree) Build(pts []Point) {
	t.stats = Stats{}
	t.pts = pts
	if len(pts) == 0 {
		t.root = kdNil
		t.nodes = t.nodes[:0]
		return
	}
	need := int(nodeCount(int32(len(pts))))
	if cap(t.nodes) < need {
		t.nodes = make([]kdNode, need)
	} else {
		t.nodes = t.nodes[:need]
	}
	t.root = 0
	if len(pts) >= parallelBuildMin && Parallelism() > 1 {
		var wg sync.WaitGroup
		t.buildAt(0, 0, int32(len(pts)), 0, &wg)
		wg.Wait()
	} else {
		t.buildAt(0, 0, int32(len(pts)), 0, nil)
	}
}

// nodeCount returns the number of nodes a (sub)tree over n points uses.
// It mirrors buildAt's count-based split exactly: left gets ⌊n/2⌋ points.
func nodeCount(n int32) int32 {
	if n <= leafSize {
		return 1
	}
	l := n / 2
	return 1 + nodeCount(l) + nodeCount(n-l)
}

// buildAt writes the subtree over pts[lo:hi] into the preorder node range
// starting at ni. When wg is non-nil, large right subtrees fork onto the
// worker pool; the regions they write are disjoint by construction.
func (t *KDTree) buildAt(ni, lo, hi int32, depth int, wg *sync.WaitGroup) {
	for {
		if hi-lo <= leafSize {
			t.nodes[ni] = kdNode{axis: leafAxis, start: lo, end: hi}
			return
		}
		axis := int8(depth & 1)
		mid := (lo + hi) / 2
		selectMedian(t.pts[lo:hi], int(mid-lo), axis)
		left := ni + 1
		right := ni + 1 + nodeCount(mid-lo)
		t.nodes[ni] = kdNode{axis: axis, split: key(t.pts[mid], axis), left: left, right: right}
		if wg != nil && hi-mid >= parallelBuildMin {
			wg.Add(1)
			ni, lo, hi := right, mid, hi
			depth := depth + 1
			queryPool.submit(func() {
				defer wg.Done()
				t.buildAt(ni, lo, hi, depth, wg)
			})
		} else {
			t.buildAt(right, mid, hi, depth+1, wg)
		}
		ni, hi = left, mid
		depth++
	}
}

func key(p Point, axis int8) float64 {
	if axis == 0 {
		return p.Pos.X
	}
	return p.Pos.Y
}

// selectMedian partially sorts pts so pts[k] is the k-th point by the given
// axis (quickselect with median-of-three pivoting, falling back to full
// sort for tiny slices). Points left of k end up ≤ pts[k] on the axis.
func selectMedian(pts []Point, k int, axis int8) {
	lo, hi := 0, len(pts)-1
	for hi > lo {
		if hi-lo < 12 {
			// Insertion sort: sort.Slice's reflection-based swapper
			// allocates, and this fallback runs once per leaf per rebuild —
			// it was the tree build's only steady-state allocation.
			for i := lo + 1; i <= hi; i++ {
				p := pts[i]
				kp := key(p, axis)
				j := i - 1
				for j >= lo && key(pts[j], axis) > kp {
					pts[j+1] = pts[j]
					j--
				}
				pts[j+1] = p
			}
			return
		}
		// Median-of-three pivot.
		m := (lo + hi) / 2
		if key(pts[m], axis) < key(pts[lo], axis) {
			pts[m], pts[lo] = pts[lo], pts[m]
		}
		if key(pts[hi], axis) < key(pts[lo], axis) {
			pts[hi], pts[lo] = pts[lo], pts[hi]
		}
		if key(pts[hi], axis) < key(pts[m], axis) {
			pts[hi], pts[m] = pts[m], pts[hi]
		}
		pivot := key(pts[m], axis)
		i, j := lo, hi
		for i <= j {
			for key(pts[i], axis) < pivot {
				i++
			}
			for key(pts[j], axis) > pivot {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len implements Index.
func (t *KDTree) Len() int { return len(t.pts) }

// Range implements Index using an explicit stack (no recursion overhead).
func (t *KDTree) Range(r geom.Rect, fn func(Point)) {
	t.stats.Probes++
	if t.root == kdNil {
		return
	}
	var stack [64]int32
	sp := 0
	stack[sp] = t.root
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if n.axis == leafAxis {
			t.stats.Visited += int64(n.end - n.start)
			for _, p := range t.pts[n.start:n.end] {
				if r.Contains(p.Pos) {
					fn(p)
				}
			}
			continue
		}
		var lo, hi float64
		if n.axis == 0 {
			lo, hi = r.Min.X, r.Max.X
		} else {
			lo, hi = r.Min.Y, r.Max.Y
		}
		if lo <= n.split {
			stack[sp] = n.left
			sp++
		}
		if hi >= n.split {
			stack[sp] = n.right
			sp++
		}
	}
}

// RangeCircle implements Index: prune by the circumscribing square, filter
// candidates by exact distance.
func (t *KDTree) RangeCircle(c geom.Vec, rad float64, fn func(Point)) {
	t.stats.Probes++
	if t.root == kdNil {
		return
	}
	r := geom.Square(c, rad)
	r2 := rad * rad
	var stack [64]int32
	sp := 0
	stack[sp] = t.root
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if n.axis == leafAxis {
			t.stats.Visited += int64(n.end - n.start)
			for _, p := range t.pts[n.start:n.end] {
				if p.Pos.Dist2(c) <= r2 {
					fn(p)
				}
			}
			continue
		}
		var lo, hi float64
		if n.axis == 0 {
			lo, hi = r.Min.X, r.Max.X
		} else {
			lo, hi = r.Min.Y, r.Max.Y
		}
		if lo <= n.split {
			stack[sp] = n.left
			sp++
		}
		if hi >= n.split {
			stack[sp] = n.right
			sp++
		}
	}
}

// rangeRectSlots appends the IDs of points inside r to dst and returns
// (dst, candidates visited). Stats-free and read-only, like
// rangeCircleSlots.
func (t *KDTree) rangeRectSlots(r geom.Rect, dst []int32) ([]int32, int64) {
	if t.root == kdNil {
		return dst, 0
	}
	var visited int64
	var stack [64]int32
	sp := 0
	stack[sp] = t.root
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if n.axis == leafAxis {
			visited += int64(n.end - n.start)
			for _, p := range t.pts[n.start:n.end] {
				if r.Contains(p.Pos) {
					dst = append(dst, p.ID)
				}
			}
			continue
		}
		var lo, hi float64
		if n.axis == 0 {
			lo, hi = r.Min.X, r.Max.X
		} else {
			lo, hi = r.Min.Y, r.Max.Y
		}
		if lo <= n.split {
			stack[sp] = n.left
			sp++
		}
		if hi >= n.split {
			stack[sp] = n.right
			sp++
		}
	}
	return dst, visited
}

// rangeCircleSlots appends the IDs of points within rad of c to dst and
// returns (dst, candidates visited). Stats-free and read-only: the cached
// index's parallel candidate-list construction calls it concurrently.
func (t *KDTree) rangeCircleSlots(c geom.Vec, rad float64, dst []int32) ([]int32, int64) {
	if t.root == kdNil {
		return dst, 0
	}
	r := geom.Square(c, rad)
	r2 := rad * rad
	var visited int64
	var stack [64]int32
	sp := 0
	stack[sp] = t.root
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if n.axis == leafAxis {
			visited += int64(n.end - n.start)
			for _, p := range t.pts[n.start:n.end] {
				if p.Pos.Dist2(c) <= r2 {
					dst = append(dst, p.ID)
				}
			}
			continue
		}
		var lo, hi float64
		if n.axis == 0 {
			lo, hi = r.Min.X, r.Max.X
		} else {
			lo, hi = r.Min.Y, r.Max.Y
		}
		if lo <= n.split {
			stack[sp] = n.left
			sp++
		}
		if hi >= n.split {
			stack[sp] = n.right
			sp++
		}
	}
	return dst, visited
}

// Nearest implements Index: best-first descent with a bounded max-heap of
// candidates, pruning subtrees whose slab cannot beat the k-th best. Ties
// in distance are broken by ascending ID (the Index contract), so the
// result is a deterministic function of the point set alone.
func (t *KDTree) Nearest(c geom.Vec, k int, dst []Point) []Point {
	t.stats.Probes++
	var visited int64
	dst, visited = t.nearestInto(c, k, dst)
	t.stats.Visited += visited
	return dst
}

// nearestInto is Nearest without stats mutation (returns the visited count
// instead), safe for concurrent read-only use.
func (t *KDTree) nearestInto(c geom.Vec, k int, dst []Point) ([]Point, int64) {
	if k <= 0 || t.root == kdNil {
		return dst, 0
	}
	h := &kdHeap{}
	var visited int64
	t.nearestRec(t.root, c, k, h, geom.Infinite(), &visited)
	out := make([]Point, len(h.pts))
	// Extract in increasing (distance, ID) order.
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popMax()
	}
	return append(dst, out...), visited
}

func (t *KDTree) nearestRec(ni int32, c geom.Vec, k int, h *kdHeap, bounds geom.Rect, visited *int64) {
	n := &t.nodes[ni]
	if h.len() == k && bounds.Dist2(c) > h.d2[0] {
		return
	}
	if n.axis == leafAxis {
		*visited += int64(n.end - n.start)
		for _, p := range t.pts[n.start:n.end] {
			d2 := p.Pos.Dist2(c)
			if h.len() < k {
				h.push(p, d2)
			} else if d2 < h.d2[0] || (d2 == h.d2[0] && p.ID < h.pts[0].ID) {
				h.replaceMax(p, d2)
			}
		}
		return
	}
	var leftB, rightB geom.Rect
	var goLeftFirst bool
	if n.axis == 0 {
		leftB, rightB = bounds.SplitX(n.split)
		goLeftFirst = c.X <= n.split
	} else {
		leftB, rightB = bounds.SplitY(n.split)
		goLeftFirst = c.Y <= n.split
	}
	if goLeftFirst {
		t.nearestRec(n.left, c, k, h, leftB, visited)
		t.nearestRec(n.right, c, k, h, rightB, visited)
	} else {
		t.nearestRec(n.right, c, k, h, rightB, visited)
		t.nearestRec(n.left, c, k, h, leftB, visited)
	}
}

// Stats implements Index.
func (t *KDTree) Stats() Stats { return t.stats }

var _ Index = (*KDTree)(nil)

// kdHeap is a small max-heap of candidate nearest points keyed by
// (squared distance, ID) lexicographically; the worst candidate sits at
// index 0.
type kdHeap struct {
	pts []Point
	d2  []float64
}

func (h *kdHeap) len() int { return len(h.pts) }

// worse reports whether candidate i orders after candidate j in the
// (distance, ID) total order.
func (h *kdHeap) worse(i, j int) bool {
	if h.d2[i] != h.d2[j] {
		return h.d2[i] > h.d2[j]
	}
	return h.pts[i].ID > h.pts[j].ID
}

func (h *kdHeap) push(p Point, d2 float64) {
	h.pts = append(h.pts, p)
	h.d2 = append(h.d2, d2)
	i := len(h.pts) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *kdHeap) replaceMax(p Point, d2 float64) {
	h.pts[0], h.d2[0] = p, d2
	h.siftDown(0)
}

func (h *kdHeap) popMax() Point {
	top := h.pts[0]
	n := len(h.pts) - 1
	h.pts[0], h.d2[0] = h.pts[n], h.d2[n]
	h.pts = h.pts[:n]
	h.d2 = h.d2[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *kdHeap) siftDown(i int) {
	n := len(h.pts)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.worse(l, big) {
			big = l
		}
		if r < n && h.worse(r, big) {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

func (h *kdHeap) swap(i, j int) {
	h.pts[i], h.pts[j] = h.pts[j], h.pts[i]
	h.d2[i], h.d2[j] = h.d2[j], h.d2[i]
}
