package spatial

import (
	"math"
	"sort"

	"github.com/bigreddata/brace/internal/geom"
)

// Grid is a uniform bucket grid index. With cell size close to the query
// radius it answers range-circle probes in O(k) expected time for uniform
// data; it degrades under skew, which is why the paper's prototype uses a
// KD-tree. It is kept here as an ablation alternative.
type Grid struct {
	cell   float64
	origin geom.Vec
	nx, ny int
	cells  [][]Point
	pts    []Point
	stats  Stats
}

// NewGrid returns a grid index with the given cell size. A non-positive
// cell size defaults to 1.
func NewGrid(cell float64) *Grid {
	if cell <= 0 {
		cell = 1
	}
	return &Grid{cell: cell}
}

// Build implements Index.
func (g *Grid) Build(pts []Point) {
	g.stats = Stats{}
	g.pts = pts
	if len(pts) == 0 {
		g.nx, g.ny = 0, 0
		g.cells = nil
		return
	}
	// Bounding box of the data.
	min, max := pts[0].Pos, pts[0].Pos
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.Pos.X)
		min.Y = math.Min(min.Y, p.Pos.Y)
		max.X = math.Max(max.X, p.Pos.X)
		max.Y = math.Max(max.Y, p.Pos.Y)
	}
	g.origin = min
	// Cap the grid so degenerate cell sizes cannot exhaust memory. Use float
	// arithmetic first: the raw cell counts can overflow int.
	const maxCells = 1 << 22
	for {
		fx := math.Floor((max.X-min.X)/g.cell) + 1
		fy := math.Floor((max.Y-min.Y)/g.cell) + 1
		if fx*fy <= maxCells {
			g.nx, g.ny = int(fx), int(fy)
			break
		}
		g.cell *= 2
	}
	g.cells = make([][]Point, g.nx*g.ny)
	for _, p := range pts {
		i := g.cellIndex(p.Pos)
		g.cells[i] = append(g.cells[i], p)
	}
}

func (g *Grid) cellIndex(p geom.Vec) int {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.pts) }

// cellRange iterates over the grid cells overlapping rectangle r.
func (g *Grid) cellRange(r geom.Rect, fn func(cell []Point)) {
	if len(g.pts) == 0 {
		return
	}
	x0 := int(math.Floor((r.Min.X - g.origin.X) / g.cell))
	y0 := int(math.Floor((r.Min.Y - g.origin.Y) / g.cell))
	x1 := int(math.Floor((r.Max.X - g.origin.X) / g.cell))
	y1 := int(math.Floor((r.Max.Y - g.origin.Y) / g.cell))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= g.nx {
		x1 = g.nx - 1
	}
	if y1 >= g.ny {
		y1 = g.ny - 1
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			fn(g.cells[cy*g.nx+cx])
		}
	}
}

// Range implements Index.
func (g *Grid) Range(r geom.Rect, fn func(Point)) {
	g.stats.Probes++
	g.cellRange(r, func(cell []Point) {
		g.stats.Visited += int64(len(cell))
		for _, p := range cell {
			if r.Contains(p.Pos) {
				fn(p)
			}
		}
	})
}

// RangeCircle implements Index.
func (g *Grid) RangeCircle(c geom.Vec, rad float64, fn func(Point)) {
	g.stats.Probes++
	r2 := rad * rad
	g.cellRange(geom.Square(c, rad), func(cell []Point) {
		g.stats.Visited += int64(len(cell))
		for _, p := range cell {
			if p.Pos.Dist2(c) <= r2 {
				fn(p)
			}
		}
	})
}

// Nearest implements Index. It searches rings of cells of increasing radius
// until k candidates are confirmed.
func (g *Grid) Nearest(c geom.Vec, k int, dst []Point) []Point {
	g.stats.Probes++
	if k <= 0 || len(g.pts) == 0 {
		return dst
	}
	if k > len(g.pts) {
		k = len(g.pts)
	}
	var cand []Point
	rad := g.cell
	for {
		cand = cand[:0]
		r2 := rad * rad
		g.cellRange(geom.Square(c, rad), func(cell []Point) {
			g.stats.Visited += int64(len(cell))
			for _, p := range cell {
				if p.Pos.Dist2(c) <= r2 {
					cand = append(cand, p)
				}
			}
		})
		if len(cand) >= k || rad > g.maxRadius() {
			break
		}
		rad *= 2
	}
	if len(cand) < k {
		// Fall back to all points (data may be far from c).
		cand = append(cand[:0], g.pts...)
		g.stats.Visited += int64(len(g.pts))
	}
	sort.Slice(cand, func(i, j int) bool {
		di, dj := cand[i].Pos.Dist2(c), cand[j].Pos.Dist2(c)
		if di != dj {
			return di < dj
		}
		return cand[i].ID < cand[j].ID
	})
	if k > len(cand) {
		k = len(cand)
	}
	return append(dst, cand[:k]...)
}

func (g *Grid) maxRadius() float64 {
	return g.cell * float64(g.nx+g.ny+2)
}

// Stats implements Index.
func (g *Grid) Stats() Stats { return g.stats }

var _ Index = (*Grid)(nil)
