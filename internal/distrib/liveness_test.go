package distrib

import (
	"reflect"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

// The detector takes explicit clocks, so these tests never sleep.

func TestLivenessHeartbeatWindow(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(3, 500*time.Millisecond, 0, false, base)
	live := []bool{true, true, true}

	if got := l.silent(live, base.Add(400*time.Millisecond)); got != nil {
		t.Errorf("silent before the window = %v, want none", got)
	}
	l.pong(1, base.Add(600*time.Millisecond))
	if got := l.silent(live, base.Add(700*time.Millisecond)); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("silent = %v, want [0 2] (1 ponged)", got)
	}
	// Dead workers are not re-reported.
	live[0] = false
	if got := l.silent(live, base.Add(700*time.Millisecond)); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("silent = %v, want [2]", got)
	}
	// A re-admitted worker gets a fresh grace period.
	l.admit(2, base.Add(700*time.Millisecond))
	live[2] = true
	if got := l.silent(live, base.Add(1100*time.Millisecond)); got != nil {
		t.Errorf("silent right after admit = %v, want none", got)
	}
}

func TestLivenessHeartbeatDisabled(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(2, 0, time.Second, false, base)
	if got := l.silent([]bool{true, true}, base.Add(time.Hour)); got != nil {
		t.Errorf("silent with heartbeat disabled = %v, want none", got)
	}
}

func TestLivenessOverdueRounds(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(2, 0, 2*time.Second, false, base)
	if l.overdue(time.Time{}, base.Add(time.Hour)) {
		t.Error("an inactive round (zero start) can never be overdue")
	}
	if l.overdue(base, base.Add(1900*time.Millisecond)) {
		t.Error("round within the deadline reported overdue")
	}
	if !l.overdue(base, base.Add(2100*time.Millisecond)) {
		t.Error("round past the deadline not reported overdue")
	}
	off := newLiveness(2, 0, 0, false, base)
	if off.overdue(base, base.Add(time.Hour)) {
		t.Error("deadline disabled but round reported overdue")
	}
}

func TestLivenessLaggards(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(3, 0, 2*time.Second, false, base)
	live := []bool{true, true, true}
	even := []transport.ProcProgress{{Gen: 1, Phase: 4}, {Gen: 1, Phase: 4}, {Gen: 1, Phase: 4}}
	behind := []transport.ProcProgress{{Gen: 1, Phase: 4}, {Gen: 1, Phase: 3}, {Gen: 1, Phase: 4}}

	// First observation is itself an advance: clock resets, nobody blamed.
	if got := l.laggards(live, behind, base.Add(time.Second)); got != nil {
		t.Errorf("laggards on first advance = %v, want none", got)
	}
	// Still within the deadline: nothing.
	if got := l.laggards(live, behind, base.Add(2500*time.Millisecond)); got != nil {
		t.Errorf("laggards within deadline = %v, want none", got)
	}
	// Past the deadline with no advance: the strictly-behind worker.
	if got := l.laggards(live, behind, base.Add(3500*time.Millisecond)); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("laggards = %v, want [1]", got)
	}
	// All even and stuck: no laggard to blame (heartbeat/rounds cover it).
	l2 := newLiveness(3, 0, 2*time.Second, false, base)
	l2.laggards(live, even, base.Add(time.Second))
	if got := l2.laggards(live, even, base.Add(time.Hour)); got != nil {
		t.Errorf("laggards with even progress = %v, want none", got)
	}
	// A dead worker's stale progress never makes it a laggard.
	l3 := newLiveness(3, 0, 2*time.Second, false, base)
	l3.laggards(live, behind, base.Add(time.Second))
	dead := []bool{true, false, true}
	if got := l3.laggards(dead, behind, base.Add(time.Hour)); got != nil {
		t.Errorf("laggards among dead = %v, want none", got)
	}
	// An older generation counts as strictly behind.
	l4 := newLiveness(2, 0, 2*time.Second, false, base)
	oldGen := []transport.ProcProgress{{Gen: 2, Phase: 1}, {Gen: 1, Phase: 9}}
	l4.laggards([]bool{true, true}, oldGen, base.Add(time.Second))
	if got := l4.laggards([]bool{true, true}, oldGen, base.Add(time.Hour)); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("laggards across generations = %v, want [1]", got)
	}
}

// Adaptive deadlines only ever rise above the configured bases: with no
// cadence observed they equal the bases exactly, and a slow observed
// barrier cadence lifts them in proportion.
func TestLivenessAdaptiveDeadlines(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(2, time.Second, 10*time.Second, true, base)

	// No rounds observed yet: the fixed bases are in force.
	if got := l.epochDeadline(); got != 10*time.Second {
		t.Errorf("epochDeadline before any round = %v, want 10s", got)
	}
	if got := l.pongWindow(); got != time.Second {
		t.Errorf("pongWindow before any round = %v, want 1s", got)
	}

	// Fast rounds (1s cadence): deadlines stay at their floors.
	for i := 1; i <= 8; i++ {
		l.roundReset(base.Add(time.Duration(i) * time.Second))
	}
	if got := l.epochDeadline(); got != 10*time.Second {
		t.Errorf("epochDeadline under fast cadence = %v, want the 10s floor", got)
	}

	// Slow rounds (30s cadence): both deadlines rise with the EWMA.
	at := base.Add(8 * time.Second)
	for i := 1; i <= 16; i++ {
		at = at.Add(30 * time.Second)
		l.roundReset(at)
	}
	if got := l.epochDeadline(); got <= 10*time.Second {
		t.Errorf("epochDeadline under slow cadence = %v, want > 10s", got)
	}
	if got := l.pongWindow(); got <= time.Second {
		t.Errorf("pongWindow under slow cadence = %v, want > 1s", got)
	}
	if l.overdue(at, at.Add(11*time.Second)) {
		t.Errorf("round 11s old under ~30s cadence must not be overdue")
	}

	// A fixed (non-adaptive) detector ignores cadence entirely.
	f := newLiveness(2, time.Second, 10*time.Second, false, base)
	for i := 1; i <= 16; i++ {
		f.roundReset(base.Add(time.Duration(30*i) * time.Second))
	}
	if got := f.epochDeadline(); got != 10*time.Second {
		t.Errorf("fixed epochDeadline = %v, want 10s", got)
	}
}

// Any observed marker advance resets the barrier clock — a slow but
// moving cluster is never force-dropped.
func TestLivenessAdvanceResetsClock(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newLiveness(2, 0, 2*time.Second, false, base)
	live := []bool{true, true}
	at := func(sec int, p0, p1 uint64) []int {
		return l.laggards(live, []transport.ProcProgress{{Gen: 1, Phase: p0}, {Gen: 1, Phase: p1}},
			base.Add(time.Duration(sec)*time.Second))
	}
	if got := at(1, 1, 1); got != nil {
		t.Errorf("t=1: %v", got)
	}
	// Progress keeps advancing every check: clock keeps resetting even
	// though proc 1 trails by one marker the whole time.
	for sec := 2; sec <= 20; sec++ {
		if got := at(sec, uint64(sec), uint64(sec-1)); got != nil {
			t.Fatalf("t=%d: slow-but-moving cluster blamed: %v", sec, got)
		}
	}
	// Then it truly stops: after the deadline the trailing proc is named.
	if got := at(21, 20, 19); got != nil {
		t.Fatalf("t=21 (within deadline): %v", got)
	}
	if got := at(23, 20, 19); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("t=23: laggards = %v, want [1]", got)
	}
}
