package distrib

import (
	"fmt"
	"io"
	"net"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// Serve runs the worker daemon's accept loop: one coordinator session at a
// time, each a complete simulation. With once set it returns after the
// first session (tests and one-shot jobs); otherwise it serves until the
// listener closes. Session errors are logged to logw and do not stop the
// daemon — a failed run must not take the worker down with it.
func Serve(lis net.Listener, logw io.Writer, once bool) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		err = ServeConn(conn, logw)
		if once {
			return err // the caller reports it; logging here would duplicate
		}
		if err != nil && logw != nil {
			fmt.Fprintf(logw, "bracesim-worker: session: %v\n", err)
		}
	}
}

// ServeConn runs one coordinator session: handshake, rebuild the scenario
// locally, tick this process's partition block over the TCP transport, and
// report the final owned envelopes.
func ServeConn(conn net.Conn, logw io.Writer) error {
	fc := transport.NewConn(conn)
	defer fc.Close()

	f, err := fc.Recv()
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if f.Kind != transport.FrameHello || f.Hello == nil {
		fc.Send(&transport.Frame{Kind: transport.FrameAck, Err: "expected hello"})
		return fmt.Errorf("handshake: unexpected frame kind %d", f.Kind)
	}
	h := f.Hello

	reject := func(err error) error {
		fc.Send(&transport.Frame{Kind: transport.FrameAck, Err: err.Error()})
		return fmt.Errorf("rejected run: %w", err)
	}
	sp, kind, err := checkHello(h)
	if err != nil {
		return reject(err)
	}
	m, pop, err := sp.New(scenario.Config{Agents: h.Agents, Seed: h.Seed, Extent: h.Extent})
	if err != nil {
		return reject(err)
	}
	if err := fc.Send(&transport.Frame{Kind: transport.FrameAck}); err != nil {
		return err
	}
	if logw != nil {
		fmt.Fprintf(logw, "bracesim-worker: proc %d/%d: %s, %d agents, partitions %v, %d ticks\n",
			h.Proc, h.NumProcs, h.Scenario, len(pop), transport.PartsOf(h.Proc, h.Partitions, h.NumProcs), h.Ticks)
	}

	// The transport must exist before the engine: peers may start sending
	// as soon as their own handshakes complete.
	tr := transport.NewTCP(fc, h.Proc, h.NumProcs, h.Partitions)
	eng, err := engine.NewDistributed(m, pop, engine.Options{
		Workers:    h.Partitions,
		Index:      kind,
		Seed:       h.Seed,
		EpochTicks: h.EpochTicks,
		Sequential: h.Sequential,
		Transport:  tr,
		LocalParts: transport.PartsOf(h.Proc, h.Partitions, h.NumProcs),
	})
	if err == nil {
		err = eng.RunTicks(h.Ticks)
	}
	if err != nil {
		fc.Send(&transport.Frame{Kind: transport.FrameError, Src: h.Proc, Err: err.Error()})
		return err
	}
	return fc.Send(&transport.Frame{Kind: transport.FrameFinal, Src: h.Proc, Final: &transport.FinalReport{
		Proc:   h.Proc,
		Ticks:  eng.Tick(),
		Values: eng.Runtime().AllValues(),
		Net:    tr.Metrics().Totals(),
	}})
}

// checkHello validates a coordinator's handshake against this binary.
func checkHello(h *transport.Hello) (scenario.Spec, spatial.Kind, error) {
	var none scenario.Spec
	if h.Proto != transport.ProtoVersion {
		return none, 0, fmt.Errorf("protocol %d, this worker speaks %d", h.Proto, transport.ProtoVersion)
	}
	if h.NumProcs < 1 || h.Proc < 0 || h.Proc >= h.NumProcs {
		return none, 0, fmt.Errorf("bad process index %d of %d", h.Proc, h.NumProcs)
	}
	if h.Partitions < h.NumProcs {
		return none, 0, fmt.Errorf("%d partitions cannot cover %d processes", h.Partitions, h.NumProcs)
	}
	if h.Ticks < 0 {
		return none, 0, fmt.Errorf("negative tick count")
	}
	sp, ok := scenario.Lookup(h.Scenario)
	if !ok {
		return none, 0, scenario.ErrUnknown(h.Scenario)
	}
	kind, err := spatial.ParseKind(h.Index)
	if err != nil {
		return none, 0, err
	}
	return sp, kind, nil
}
