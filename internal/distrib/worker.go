package distrib

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// ServeOptions tunes a worker daemon's accept loop.
type ServeOptions struct {
	// Log receives session banners and errors (nil: silent).
	Log io.Writer
	// Once makes the daemon exit after its first coordinator session
	// (tests and one-shot jobs).
	Once bool
	// Wrap, when non-nil, wraps each session's transport before the
	// engine sees it. Fault-injection tests use it (transport.SeverAt,
	// transport.StallAt) to kill or freeze a worker at a chosen phase;
	// production passes nothing.
	Wrap func(tr transport.Transport, h *transport.Hello) transport.Transport
	// CoordTimeout is the worker-side liveness watchdog: a session whose
	// coordinator has been completely silent for this long is aborted,
	// freeing the daemon for the next coordinator. With heartbeats on
	// (the coordinator default) a healthy coordinator is never silent
	// for more than the ping interval, so set this to a comfortable
	// multiple of it. 0 disables the watchdog — a worker then waits on a
	// dead coordinator forever, as before v3.
	CoordTimeout time.Duration
	// Register, when non-empty, is a registry address (see Registry) the
	// daemon announces itself to instead of being pre-wired into a
	// coordinator's -worker-addrs: it dials the registry, announces the
	// address it serves sessions on, and keeps the connection open
	// streaming load updates (active sessions, open peer links). The
	// registry drops the entry when the connection dies; the daemon
	// redials with backoff, so a restarted registry re-learns its fleet.
	Register string
	// Advertise is the session address announced to the registry.
	// Defaults to the listener's address — right for loopback tests,
	// wrong for a daemon bound to a wildcard, which must say what the
	// rest of the fleet can actually dial.
	Advertise string
	// Drain, when non-nil and closed, shuts the daemon down gracefully:
	// the accept loop stops, and every active session exits at its next
	// epoch barrier — after the barrier round completes (stats shipped,
	// directive applied, checkpoint delivered), so the coordinator holds
	// the freshest possible rollback state — by closing its connection
	// *without* a FrameError. To the coordinator that exit is a crash, not
	// a deterministic failure, so it recovers the run on the surviving
	// fleet instead of aborting it. A session parked after its final
	// report drains when the coordinator closes the run (or its watchdog
	// trips).
	Drain <-chan struct{}

	// sessions routes incoming peer-link dials (FramePeerHello) to the
	// coordinator session they belong to. ServeWith installs one per
	// daemon; a bare ServeConn has none and rejects peer links.
	sessions *sessionSet
}

// sessionKey names one coordinator session within a daemon: peer links
// address sessions by (run, process).
func sessionKey(runID string, proc int) string {
	return fmt.Sprintf("%s/%d", runID, proc)
}

// peerAwaitTimeout bounds how long an incoming peer link waits for its
// session: peers dial as soon as their own handshakes complete, possibly
// before this daemon's session for the same run has finished its
// handshake, so arrival-before-registration is a race to absorb, not an
// error — but a peer link for a run this daemon will never host must not
// hold a connection forever.
const peerAwaitTimeout = 10 * time.Second

// sessionSet is a daemon's live coordinator sessions, keyed by
// sessionKey. It exists for two consumers: incoming peer links await the
// session they belong to, and the registration loop reports session and
// peer-link counts as the daemon's load.
type sessionSet struct {
	mu   sync.Mutex
	cond *sync.Cond
	m    map[string]*transport.TCP
}

func newSessionSet() *sessionSet {
	s := &sessionSet{m: make(map[string]*transport.TCP)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sessionSet) put(key string, t *transport.TCP) {
	s.mu.Lock()
	s.m[key] = t
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drop removes the session only if it still owns the key — a rejoined
// session for the same (run, process) replaces the dead one, and the dead
// session's deferred drop must not evict its replacement.
func (s *sessionSet) drop(key string, t *transport.TCP) {
	s.mu.Lock()
	if s.m[key] == t {
		delete(s.m, key)
	}
	s.mu.Unlock()
}

// await blocks until the keyed session exists or the timeout elapses.
func (s *sessionSet) await(key string, timeout time.Duration) (*transport.TCP, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.m[key] == nil && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	if t := s.m[key]; t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("distrib: no session %s on this daemon", key)
}

// load snapshots the daemon's self-reported registry load.
func (s *sessionSet) load() (sessions, peerLinks int) {
	s.mu.Lock()
	tcps := make([]*transport.TCP, 0, len(s.m))
	for _, t := range s.m { //bracevet:allow maporder commutative sum of per-session load figures; order unobservable
		tcps = append(tcps, t)
	}
	s.mu.Unlock()
	for _, t := range tcps {
		peerLinks += t.PeerLinks()
	}
	return len(tcps), peerLinks
}

// Serve runs the worker daemon's accept loop. Each accepted connection is
// one coordinator session — a complete simulation, or a re-admission into
// a recovering one — and sessions run concurrently: a fleet daemon hosts
// partitions of many runs at once, each session its own framed stream.
// With once set it serves a single session serially and returns its error;
// otherwise it serves until the listener closes. Session errors are logged
// and do not stop the daemon — a failed run must not take the worker down
// with it, and a coordinator recovering from this worker's death re-dials
// the same daemon to re-admit it.
func Serve(lis net.Listener, logw io.Writer, once bool) error {
	return ServeWith(lis, ServeOptions{Log: logw, Once: once})
}

// ServeWith is Serve with full options. When ServeOptions.Drain closes,
// ServeWith stops accepting, waits for every active session to drain, and
// returns nil.
func ServeWith(lis net.Listener, so ServeOptions) error {
	if so.sessions == nil {
		so.sessions = newSessionSet()
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	if so.Register != "" {
		adv := so.Advertise
		if adv == "" {
			adv = lis.Addr().String()
		}
		regStop := make(chan struct{})
		defer close(regStop)
		go register(so.Register, adv, so.sessions, regStop)
	}
	if so.Drain != nil {
		drainDone := make(chan struct{})
		defer close(drainDone)
		go func() {
			select {
			case <-so.Drain:
				lis.Close() // unblocks Accept; sessions exit at their barriers
			case <-drainDone:
			}
		}()
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			if draining(so.Drain) {
				return nil // deliberate shutdown; wg wait covers the sessions
			}
			return err
		}
		if so.Once {
			return serveConn(conn, so) // the caller reports it; logging here would duplicate
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveConn(conn, so); err != nil && so.Log != nil {
				fmt.Fprintf(so.Log, "bracesim-worker: session: %v\n", err)
			}
		}()
	}
}

// registerInterval paces the daemon's load updates to its registry.
const registerInterval = time.Second

// register maintains the daemon's registry connection: announce the
// session address, then stream load updates until stop closes; any
// failure redials with capped backoff.
func register(registry, advertise string, ss *sessionSet, stop <-chan struct{}) {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", registry, 5*time.Second)
		if err != nil {
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		fc := transport.NewConn(conn)
		announce(fc, advertise, ss, stop)
		fc.Close()
	}
}

// announce streams Registration frames on one registry connection until
// it fails or the daemon stops.
func announce(fc *transport.Conn, advertise string, ss *sessionSet, stop <-chan struct{}) {
	t := time.NewTicker(registerInterval)
	defer t.Stop()
	for {
		sessions, links := ss.load()
		if err := fc.Send(&transport.Frame{Kind: transport.FrameRegister, Reg: &transport.Registration{
			Addr:      advertise,
			Caps:      transport.SupportedCaps(),
			Sessions:  sessions,
			PeerLinks: links,
		}}); err != nil {
			return
		}
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// errDraining is the sentinel a draining session's barrier hook returns:
// the epoch round just completed and the daemon wants out.
var errDraining = errors.New("distrib: worker draining")

// draining reports whether the drain channel (possibly nil) has closed.
func draining(d <-chan struct{}) bool {
	select {
	case <-d:
		return true
	default:
		return false
	}
}

// ServeConn runs one coordinator session on an accepted connection.
func ServeConn(conn net.Conn, logw io.Writer) error {
	return serveConn(conn, ServeOptions{Log: logw})
}

// serveConn runs one coordinator session: handshake, rebuild the scenario
// locally, tick the partitions the coordinator assigned over the TCP
// transport — re-winding to coordinator checkpoints whenever a Restore
// arrives — and report the final owned envelopes.
func serveConn(conn net.Conn, so ServeOptions) error {
	fc := transport.NewConn(conn)

	f, err := fc.Recv()
	if err != nil {
		fc.Close()
		return fmt.Errorf("handshake: %w", err)
	}
	if f.Kind == transport.FramePeerHello && f.Peer != nil {
		// Not a coordinator session: a fleet peer dialing one of this
		// daemon's sessions for direct neighbor exchange. On success the
		// session's transport owns the connection.
		return servePeer(fc, f.Peer, so)
	}
	defer fc.Close()
	if f.Kind != transport.FrameHello || f.Hello == nil {
		fc.Send(&transport.Frame{Kind: transport.FrameAck, Err: "expected hello"})
		return fmt.Errorf("handshake: unexpected frame kind %d", f.Kind)
	}
	h := f.Hello

	reject := func(err error) error {
		fc.Send(&transport.Frame{Kind: transport.FrameAck, Err: err.Error()})
		return fmt.Errorf("rejected run: %w", err)
	}
	sp, kind, err := checkHello(h)
	if err != nil {
		return reject(err)
	}
	m, pop, err := sp.New(scenario.Config{Agents: h.Agents, Seed: h.Seed, Extent: h.Extent})
	if err != nil {
		return reject(err)
	}
	ipart, err := initialPartition(h.Part, m, pop, h.Partitions)
	if err != nil {
		return reject(err)
	}
	if err := fc.Send(&transport.Frame{Kind: transport.FrameAck, Caps: transport.SupportedCaps()}); err != nil {
		return err
	}
	local := ownedParts(h.Assign, h.Proc)
	if so.Log != nil {
		fmt.Fprintf(so.Log, "bracesim-worker: proc %d/%d gen %d: %s, %d agents, partitions %v, %d ticks\n",
			h.Proc, h.NumProcs, h.Gen, h.Scenario, len(pop), local, h.Ticks)
	}

	// The transport must exist before the engine: peers may start sending
	// as soon as their own handshakes complete. A re-admitted worker
	// (Gen > 1) joins one generation behind so the recovering generation's
	// early traffic buffers until its Restore applies.
	tGen := h.Gen
	rejoining := h.Gen > 1
	if rejoining {
		tGen = h.Gen - 1
	}
	tcp := transport.NewTCP(fc, h.Proc, h.NumProcs, h.Partitions, h.Assign, tGen)
	if len(h.Peers) > 0 {
		tcp.EnableMesh(h.RunID, h.Peers)
	}
	if so.sessions != nil && h.RunID != "" {
		key := sessionKey(h.RunID, h.Proc)
		so.sessions.put(key, tcp)
		defer so.sessions.drop(key, tcp)
	}
	var tr transport.Transport = tcp
	if so.Wrap != nil {
		tr = so.Wrap(tcp, h)
	}
	if so.CoordTimeout > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go watchCoordinator(tcp, fc, so.CoordTimeout, stop)
	}
	ckpts := newCkptTracker()

	// The barrier hook closes over the engine pointer, which is assigned
	// right after construction; the hook only fires inside RunTicks.
	var eng *engine.Distributed
	eng, err = engine.NewDistributed(m, pop, engine.Options{
		Workers:          h.Partitions,
		Index:            kind,
		Seed:             h.Seed,
		Tunables:         Tunables{EpochTicks: h.EpochTicks, CacheSkin: h.CacheSkin},
		Sequential:       h.Sequential,
		Transport:        tr,
		LocalParts:       local,
		InitialPartition: ipart,
		EpochBarrier: func(tick uint64) error {
			return workerBarrier(eng, tcp, h, ckpts, tick, so.Drain)
		},
	})
	if err != nil {
		fc.Send(&transport.Frame{Kind: transport.FrameError, Src: h.Proc, Gen: tGen, Err: err.Error()})
		return err
	}
	if rejoining {
		// Joined mid-run: the initial population load is placeholder
		// state; wait for the coordinator's Restore before ticking.
		if err := awaitAndApplyRestore(eng, tcp, h, ckpts); err != nil {
			return err
		}
	}

	for {
		err := eng.RunTicks(h.Ticks - int(eng.Tick()))
		switch {
		case err == nil:
			if err := tcp.Control(&transport.Frame{Kind: transport.FrameFinal, Final: &transport.FinalReport{
				Proc:   h.Proc,
				Ticks:  eng.Tick(),
				Values: eng.Runtime().AllValues(),
				Net:    tcp.Metrics().Totals(),
			}}); err != nil {
				return err
			}
			// Park until the coordinator closes the run — or a late
			// failure elsewhere rewinds this worker back into the loop.
			r, err := tcp.AwaitRestore()
			if err != nil {
				return nil // connection closed: run complete
			}
			if err := applyRestore(eng, tcp, h, ckpts, r); err != nil {
				return err
			}
		case errors.Is(err, errDraining):
			// Graceful drain: exit with the connection simply closed, no
			// FrameError — an application error aborts the whole run
			// deterministically, while a bare close reads as a crash the
			// coordinator recovers from on the surviving fleet.
			return nil
		case errors.Is(err, transport.ErrRestore):
			if err := awaitAndApplyRestore(eng, tcp, h, ckpts); err != nil {
				return err
			}
		default:
			fc.Send(&transport.Frame{Kind: transport.FrameError, Src: h.Proc, Err: err.Error()})
			return err
		}
	}
}

// servePeer attaches an incoming peer-link connection to the session it
// addresses. The dialing peer learned this daemon's address from the
// coordinator's roster, so the session normally exists — but peers dial
// as soon as their own handshakes complete, so a short wait absorbs the
// race with this daemon's handshake for the same run. On success the
// session transport owns the connection and reads it until it dies.
func servePeer(fc *transport.Conn, ph *transport.PeerHello, so ServeOptions) error {
	reject := func(err error) error {
		_ = fc.Send(&transport.Frame{Kind: transport.FrameAck, Err: err.Error()})
		_ = fc.Close()
		return fmt.Errorf("peer link: %w", err)
	}
	if so.sessions == nil {
		return reject(errors.New("distrib: this daemon does not route peer links"))
	}
	tcp, err := so.sessions.await(sessionKey(ph.RunID, ph.To), peerAwaitTimeout)
	if err != nil {
		return reject(err)
	}
	return tcp.AcceptPeer(fc, ph)
}

// watchCoordinator is the worker-side liveness watchdog: it closes the
// session connection once the coordinator has been silent past the
// timeout, unwinding whatever the session is blocked on. Heartbeat pings
// count as traffic, so with the coordinator defaults only a dead or
// frozen coordinator ever trips it.
func watchCoordinator(tcp *transport.TCP, fc *transport.Conn, timeout time.Duration, stop <-chan struct{}) {
	poll := timeout / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			if now.Sub(tcp.LastRecv()) > timeout {
				_ = fc.Close()
				return
			}
		}
	}
}

// awaitAndApplyRestore blocks for the coordinator's Restore, rewinds the
// engine to the checkpoint it carries, and re-fences the transport onto
// the new generation.
func awaitAndApplyRestore(eng *engine.Distributed, tcp *transport.TCP, h *transport.Hello, ckpts *ckptTracker) error {
	r, err := tcp.AwaitRestore()
	if err != nil {
		return err
	}
	return applyRestore(eng, tcp, h, ckpts, r)
}

// applyRestore rewinds the engine to the checkpoint a Restore carries,
// re-fences the transport onto the new generation, and re-baselines the
// incremental-checkpoint tracker on the restored state (both sides now
// hold it bit for bit, so the next checkpoint can delta immediately).
func applyRestore(eng *engine.Distributed, tcp *transport.TCP, h *transport.Hello, ckpts *ckptTracker, r *transport.Restore) error {
	states := make([]engine.PartitionState, 0, len(r.Parts))
	for _, ps := range r.Parts {
		envs, ok := ps.Values.([]*engine.Envelope)
		if !ok && ps.Values != nil {
			return fmt.Errorf("distrib: restore carried %T, want []*engine.Envelope", ps.Values)
		}
		states = append(states, engine.PartitionState{Part: ps.Part, Visited: ps.Visited, Envs: envs})
	}
	if err := eng.Restore(r.Tick, r.Cuts, ownedParts(r.Assign, h.Proc), states); err != nil {
		return err
	}
	ckpts.reset(r.CkptSeq, r.Parts)
	tcp.Reset(r)
	return nil
}

// workerBarrier is the epoch-boundary round-trip: statistics up, directive
// down, directive applied (checkpoint state shipped with the cuts still in
// pre-rebalance force, then new cuts installed — the same order the
// in-memory master uses).
func workerBarrier(eng *engine.Distributed, tcp *transport.TCP, h *transport.Hello, ckpts *ckptTracker, tick uint64, drain <-chan struct{}) error {
	local := eng.LocalPartitions()
	stats := &transport.EpochStats{Proc: h.Proc, Tick: tick, Parts: make([]transport.PartStats, 0, len(local))}
	for _, p := range local {
		ps := transport.PartStats{Part: p, Visited: eng.PartitionVisited(p)}
		if h.LoadBalance {
			ps.Xs = eng.PartitionXs(p)
		}
		stats.Parts = append(stats.Parts, ps)
	}
	if err := tcp.Control(&transport.Frame{Kind: transport.FrameStats, Stats: stats}); err != nil {
		return err
	}
	// Pipeline the next tick's index build behind the coordinator
	// round-trip: the barrier's cache invalidation and core prebuild run
	// on a goroutine while this worker waits for the directive (and ships
	// its checkpoint). The join must land before InstallCuts — its
	// invalidation has to follow the build, exactly as on the in-memory
	// master — and before the barrier returns.
	join := eng.StartBarrierPrebuild(tick)
	d, err := tcp.AwaitDirective()
	if err != nil {
		join()
		return err
	}
	if d.Tick != tick {
		join()
		return fmt.Errorf("distrib: directive for tick %d at barrier %d", d.Tick, tick)
	}
	if d.Checkpoint {
		ck := ckpts.snapshot(eng, h.Proc, tick, d.CkptSeq, d.CkptFull)
		if err := tcp.Control(&transport.Frame{Kind: transport.FrameCheckpoint, Ckpt: ck}); err != nil {
			join()
			return err
		}
	}
	join()
	if d.NewCuts != nil {
		if err := eng.InstallCuts(d.NewCuts); err != nil {
			return err
		}
	}
	if draining(drain) {
		// The round is complete — the coordinator holds this barrier's
		// checkpoint if it ordered one — so this is the graceful exit
		// point: abandon the run here rather than mid-epoch.
		return errDraining
	}
	return nil
}

// checkHello validates a coordinator's handshake against this binary.
func checkHello(h *transport.Hello) (scenario.Spec, spatial.Kind, error) {
	var none scenario.Spec
	if h.Proto != transport.ProtoVersion {
		return none, 0, &transport.VersionError{Got: h.Proto, Want: transport.ProtoVersion}
	}
	if missing := transport.MissingCaps(h.Caps, transport.SupportedCaps()); len(missing) > 0 {
		return none, 0, &transport.CapabilityError{Missing: missing}
	}
	if h.NumProcs < 1 || h.Proc < 0 || h.Proc >= h.NumProcs {
		return none, 0, fmt.Errorf("bad process index %d of %d", h.Proc, h.NumProcs)
	}
	if h.Partitions < 1 {
		return none, 0, fmt.Errorf("no partitions")
	}
	if len(h.Assign) != h.Partitions {
		return none, 0, fmt.Errorf("assignment covers %d partitions, want %d", len(h.Assign), h.Partitions)
	}
	for p, pr := range h.Assign {
		if pr < 0 || pr >= h.NumProcs {
			return none, 0, fmt.Errorf("partition %d assigned to unknown process %d", p, pr)
		}
	}
	if h.Gen < 1 {
		return none, 0, fmt.Errorf("bad generation %d", h.Gen)
	}
	if h.Ticks < 0 {
		return none, 0, fmt.Errorf("negative tick count")
	}
	sp, ok := scenario.Lookup(h.Scenario)
	if !ok {
		return none, 0, scenario.ErrUnknown(h.Scenario)
	}
	kind, err := spatial.ParseKind(h.Index)
	if err != nil {
		return none, 0, err
	}
	switch h.Part {
	case "", "strips", "kd2d":
	default:
		return none, 0, fmt.Errorf("unknown partitioning %q", h.Part)
	}
	if h.Part == "kd2d" && h.LoadBalance {
		return none, 0, fmt.Errorf("load balancing is incompatible with kd2d partitioning")
	}
	return sp, kind, nil
}
