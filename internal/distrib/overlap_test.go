package distrib

import (
	"testing"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/transport"
)

// Chaos for the overlapped tick's new failure window: the fault lands
// *between* the interior pass and the boundary drain — the worker's phase
// marker and envelopes are already out, its interior agents are already
// computed, but it never collects the peers' envelopes. Peers sail through
// the current barrier on the frozen worker's marker and only the next one
// hangs, so detection and recovery must not depend on the barrier the
// fault actually occurred in.

// stallProcInWindow freezes the given worker's first-generation session
// between the n-th phase's flush and its await — a SIGSTOP in the overlap
// window. Re-admitted sessions run unharmed.
func stallProcInWindow(proc, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.StallAt{Transport: tr, Phase: phase, Await: true}
		}
		return tr
	}
}

// severProcInWindow is the SIGKILL twin: the connection dies between the
// n-th phase's flush and its await.
func severProcInWindow(proc, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.SeverAt{Transport: tr, Phase: phase, Await: true}
		}
		return tr
	}
}

// A silent freeze in the overlap window: no socket error ever surfaces and
// the barrier the stall belongs to *completes* — only liveness can break
// the hang at the next one. The recovered run must be bit-identical to the
// unfailed in-memory reference.
func TestStallBetweenInteriorAndBoundary(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(7)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed, Tunables: Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	// Phase 15 is the map barrier of a mid-run tick, after the tick-3 and
	// tick-6 checkpoints have committed; Await lands the freeze after the
	// interior pass, before the boundary drain.
	o := Options{
		Addrs:    startChaosWorkers(t, 2, stallProcInWindow(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1 (no socket error ever happened)", res.StallDrops)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	assertSamePopulation(t, "stall in overlap window", ref.Agents(), res.Agents)
}

// A crash in the overlap window, with load balancing on: the worker died
// after exporting its envelopes, so its partial tick must be fully
// discarded by the checkpoint restore even though peers consumed its data.
func TestSeverBetweenInteriorAndBoundary(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(13)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed, Tunables: Tunables{EpochTicks: epoch}, LoadBalance: true,
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severProcInWindow(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables:    Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		LoadBalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	assertSamePopulation(t, "sever in overlap window", ref.Agents(), res.Agents)
}

// The stall window composed with absorption: re-admission disabled, the
// survivors take over the frozen worker's partitions mid-epoch.
func TestStallInWindowAbsorbed(t *testing.T) {
	const (
		agents = 90
		extent = 30.0
		seed   = uint64(23)
		parts  = 5
		ticks  = 10
		epoch  = 2
	)
	ref := memEngine(t, "evacuate", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed, Tunables: Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	o := Options{
		Addrs:    startChaosWorkers(t, 3, stallProcInWindow(1, 9)), // map barrier mid tick 5
		Scenario: "evacuate",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		NoRejoin: true,
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1", res.StallDrops)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 survivors", res.Procs)
	}
	assertSamePopulation(t, "stall in window, absorbed", ref.Agents(), res.Agents)
}
