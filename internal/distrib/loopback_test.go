package distrib

import (
	"io"
	"net"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
)

// startWorkers launches n single-session worker daemons on loopback TCP
// listeners and returns their addresses. Each runs the exact code path of
// cmd/bracesim-worker (distrib.Serve), just inside this process so the
// suite stays fast and race-instrumented; the real multi-OS-process run is
// exercised by cmd/bracesim's distributed test.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr().String()
		go Serve(lis, io.Discard, true)
	}
	return addrs
}

// memReference runs the same configuration fully in-process on the
// in-memory transport.
func memReference(t *testing.T, name string, agents int, extent float64, seed uint64, parts, ticks int) agent.Population {
	t.Helper()
	sp, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	m, pop, err := sp.New(scenario.Config{Agents: agents, Seed: seed, Extent: extent})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewDistributed(m, pop, engine.Options{
		Workers: parts, Index: spatial.KindKDTree, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	return eng.Agents()
}

// TestLoopbackTCPBitIdentical is the tentpole's acceptance oracle: a run
// across real sockets, with the partitions split over ≥ 2 worker
// processes, must end in bit-identical state to the in-memory transport
// at the same seed and partition count for local-effect scenarios.
func TestLoopbackTCPBitIdentical(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 8
	)
	for _, name := range []string{"epidemic", "evacuate", "fish"} {
		name := name
		t.Run(name, func(t *testing.T) {
			want := memReference(t, name, agents, extent, seed, parts, ticks)
			res, err := Run(Options{
				Addrs:    startWorkers(t, 2),
				Scenario: name,
				Agents:   agents, Extent: extent, Seed: seed,
				Partitions: parts, Ticks: ticks, Index: "kd",
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ticks != ticks || res.Procs != 2 {
				t.Fatalf("ticks=%d procs=%d", res.Ticks, res.Procs)
			}
			if len(res.Agents) != len(want) {
				t.Fatalf("population sizes differ: tcp %d vs mem %d", len(res.Agents), len(want))
			}
			for i := range want {
				if !want[i].Equal(res.Agents[i]) {
					t.Fatalf("agent %d differs:\n  mem: %v\n  tcp: %v", want[i].ID, want[i], res.Agents[i])
				}
			}
			if res.Net.SentMsgs == 0 {
				t.Error("no traffic crossed the wire; the run was not actually distributed")
			}
		})
	}
}

// Three processes with an uneven partition split must agree too — the
// block assignment, not just the halves, is semantics-free.
func TestLoopbackTCPUnevenBlocks(t *testing.T) {
	want := memReference(t, "epidemic", 90, 30, 11, 5, 6)
	res, err := Run(Options{
		Addrs:    startWorkers(t, 3),
		Scenario: "epidemic",
		Agents:   90, Extent: 30, Seed: 11,
		Partitions: 5, Ticks: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: %d vs %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs", want[i].ID)
		}
	}
}

// The cross-transport load-balancing oracle: `-lb` over loopback TCP must
// make the *same migration decisions* as the in-memory engine — same
// rebalanced-or-not verdict at every epoch, same final strip cuts — and
// end in bit-identical state, for every registered local-effect scenario
// in the suite. This is what "the coordinator runs the engine's decision
// procedure" buys: PlanRebalance on worker statistics ≡ rebalance() on
// in-process state.
func TestLoopbackTCPLoadBalanceEquivalence(t *testing.T) {
	const (
		agents = 96
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 4
	)
	// An eager balancer so the runs actually rebalance within 12 ticks.
	bal := partition.Balancer{MigrateCostPerAgent: 1e-9, HorizonTicks: 1000, MinRelativeGain: 0.01}
	for _, sp := range scenario.All() {
		if !sp.LocalOnly {
			continue // non-local effects are not bit-stable across partitionings
		}
		name := sp.Name
		extent := 30.0
		if name == "traffic" {
			extent = 1800 // traffic derives its population from Extent
		}
		t.Run(name, func(t *testing.T) {
			mem := memEngine(t, name, agents, extent, seed, engine.Options{
				Workers: parts, Seed: seed,
				Tunables:    engine.Tunables{EpochTicks: epoch},
				LoadBalance: true, Balancer: bal,
			})
			if err := mem.RunTicks(ticks); err != nil {
				t.Fatal(err)
			}
			res, err := Run(Options{
				Addrs:    startWorkers(t, 2),
				Scenario: name,
				Agents:   agents, Extent: extent, Seed: seed,
				Partitions: parts, Ticks: ticks,
				Tunables:    Tunables{EpochTicks: epoch},
				LoadBalance: true, Balancer: bal,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Identical migration decisions, epoch by epoch.
			memEpochs := mem.Epochs()
			if len(memEpochs) != len(res.Epochs) {
				t.Fatalf("epoch counts differ: mem %d vs tcp %d", len(memEpochs), len(res.Epochs))
			}
			for i, me := range memEpochs {
				te := res.Epochs[i]
				if me.Tick != te.Tick || me.Rebalanced != te.Rebalanced {
					t.Errorf("epoch %d: mem (tick %d, rebalanced %v) vs tcp (tick %d, rebalanced %v)",
						i, me.Tick, me.Rebalanced, te.Tick, te.Rebalanced)
				}
			}
			if res.Rebalances == 0 {
				t.Error("no rebalances happened; the equivalence was not exercised")
			}

			// Identical final cuts.
			memCuts := mem.Partition().(*partition.Strips).Cuts()
			tcpCuts := res.Epochs[len(res.Epochs)-1].Cuts
			if len(memCuts) != len(tcpCuts) {
				t.Fatalf("cut counts differ: mem %v vs tcp %v", memCuts, tcpCuts)
			}
			for i := range memCuts {
				if memCuts[i] != tcpCuts[i] {
					t.Fatalf("cut %d differs: mem %v vs tcp %v", i, memCuts[i], tcpCuts[i])
				}
			}

			// Identical final state.
			assertSamePopulation(t, name+"/lb-equivalence", mem.Agents(), res.Agents)
		})
	}
}

// A kd2d run across real sockets. Regression: before the overlap gate
// admitted 2-D partitionings there was no way to request one over the
// wire, and the two-pass tick's boundary classifier panicked on the
// unchecked *partition.Strips assertion the moment a KD2D engine
// overlapped. The run must complete and match the in-memory KD2D engine
// bit for bit.
func TestLoopbackTCPKD2D(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(7)
		parts  = 4
		ticks  = 8
	)
	sp, ok := scenario.Lookup("fish")
	if !ok {
		t.Fatal("fish not registered")
	}
	m, pop, err := sp.New(scenario.Config{Agents: agents, Seed: seed, Extent: extent})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Vec, len(pop))
	for i, a := range pop {
		pts[i] = a.Pos(m.Schema())
	}
	eng, err := engine.NewDistributed(m, pop, engine.Options{
		Workers: parts, Index: spatial.KindKDTree, Seed: seed,
		InitialPartition: partition.NewKD2D(pts, parts),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	want := eng.Agents()

	res, err := Run(Options{
		Addrs:    startWorkers(t, 2),
		Scenario: "fish",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks, Index: "kd",
		Part: "kd2d",
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePopulation(t, "kd2d tcp vs mem", want, res.Agents)
	if res.Net.SentMsgs == 0 {
		t.Error("no traffic crossed the wire; the run was not actually distributed")
	}

	// Misconfigurations are rejected up front, not mid-run.
	if _, err := Run(Options{
		Addrs: []string{"x"}, Scenario: "fish", Partitions: 2, Ticks: 1,
		Part: "kd2d", LoadBalance: true,
	}); err == nil || !strings.Contains(err.Error(), "kd2d") {
		t.Errorf("kd2d + load balancing: %v", err)
	}
	if _, err := Run(Options{
		Addrs: []string{"x"}, Scenario: "fish", Partitions: 2, Ticks: 1,
		Part: "hexgrid",
	}); err == nil || !strings.Contains(err.Error(), "hexgrid") {
		t.Errorf("unknown partitioning: %v", err)
	}
}

// A worker that rejects the handshake must fail the coordinator with the
// worker's reason, not a hang.
func TestHandshakeRejection(t *testing.T) {
	_, err := Run(Options{
		Addrs:      startWorkers(t, 2),
		Scenario:   "epidemic",
		Partitions: 1, // cannot cover 2 procs: coordinator-side validation
		Ticks:      1,
	})
	if err == nil || !strings.Contains(err.Error(), "cannot cover") {
		t.Fatalf("err = %v", err)
	}

	_, err = Run(Options{
		Addrs:      []string{"127.0.0.1:1"}, // nothing listens on port 1
		Scenario:   "epidemic",
		Partitions: 2,
		Ticks:      1,
	})
	if err == nil {
		t.Fatal("dialing a dead worker succeeded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Scenario: "epidemic"}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := Run(Options{Addrs: []string{"x"}, Scenario: "no-such", Partitions: 1}); err == nil ||
		!strings.Contains(err.Error(), "no-such") {
		t.Errorf("unknown scenario: %v", err)
	}
	if _, err := Run(Options{Addrs: []string{"x"}, Scenario: "epidemic", Partitions: 1, Index: "btree"}); err == nil ||
		!strings.Contains(err.Error(), "btree") {
		t.Errorf("unknown index: %v", err)
	}
}
