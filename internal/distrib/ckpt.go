package distrib

import (
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/transport"
)

// ckptTracker is the worker side of incremental checkpoints. It remembers,
// per owned partition, a deep clone of the state shipped at the last
// checkpoint — which is exactly what the coordinator holds once that
// checkpoint completes — and encodes the next checkpoint as a field-level
// delta against it (engine.DiffPartition). The invariant that makes plain
// "diff against last shipped" sound: an interrupted checkpoint round is
// always followed by a recovery (the coordinator discards the
// half-assembled round only in recoverFrom), and every recovery carries a
// Restore that re-baselines this tracker on the coordinator's actual
// rollback state.
type ckptTracker struct {
	seq  uint64 // checkpoint sequence the baselines correspond to
	base map[int][]*engine.Envelope
}

func newCkptTracker() *ckptTracker {
	return &ckptTracker{base: make(map[int][]*engine.Envelope)}
}

// snapshot builds the CheckpointMsg answering a checkpoint directive and
// advances the baselines to the current state. A partition ships full
// state when the directive orders a keyframe, when no baseline exists
// (first checkpoint, or state acquired outside a checkpoint), or when the
// codec cannot delta-encode it; otherwise it ships a delta stamped with
// the base sequence the coordinator must apply it to.
func (t *ckptTracker) snapshot(eng *engine.Distributed, proc int, tick, seq uint64, full bool) *transport.CheckpointMsg {
	local := eng.LocalPartitions()
	ck := &transport.CheckpointMsg{Proc: proc, Tick: tick, Parts: make([]transport.PartState, 0, len(local))}
	newBase := make(map[int][]*engine.Envelope, len(local))
	for _, p := range local {
		cur := eng.ExportPartition(p)
		ps := transport.PartState{Part: p, Visited: eng.PartitionVisited(p)}
		base, haveBase := t.base[p]
		if delta, ok := diffIfPossible(base, cur, haveBase && !full); ok {
			ps.Base, ps.Delta = t.seq, delta
		} else {
			ps.Full, ps.Values = true, cur
		}
		ck.Parts = append(ck.Parts, ps)
		newBase[p] = engine.CloneEnvelopes(cur)
	}
	t.base, t.seq = newBase, seq
	return ck
}

func diffIfPossible(base, cur []*engine.Envelope, try bool) ([]byte, bool) {
	if !try {
		return nil, false
	}
	return engine.DiffPartition(base, cur)
}

// reset re-baselines the tracker on restored state: after a Restore both
// sides hold the same partitions bit for bit, so the next checkpoint can
// delta against it immediately — no forced keyframe after recovery.
func (t *ckptTracker) reset(seq uint64, parts []transport.PartState) {
	t.seq = seq
	t.base = make(map[int][]*engine.Envelope, len(parts))
	for _, ps := range parts {
		envs, ok := ps.Values.([]*engine.Envelope)
		if !ok {
			continue // non-envelope payloads cannot be baselines; ship full next time
		}
		t.base[ps.Part] = engine.CloneEnvelopes(envs)
	}
}
