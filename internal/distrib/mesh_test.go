package distrib

import (
	"net"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/transport"
)

// startMeshWorkers launches n multi-session worker daemons that route
// peer links: exactly what startChaosWorkers builds, minus the fault
// wrapper. Mesh runs need multi-session daemons because a peer dial is a
// second connection to the same listener.
func startMeshWorkers(t *testing.T, n int) []string {
	t.Helper()
	return startChaosWorkers(t, n, nil)
}

// TestMeshBitIdenticalRegistryWide is the tentpole's equivalence oracle:
// with the peer mesh carrying the data plane, every registered
// local-effect scenario — load balancing on, so cuts move mid-run — must
// end bit-identical to the in-memory engine, and the coordinator must
// relay zero data frames in steady state (the star carried them all
// before this PR).
func TestMeshBitIdenticalRegistryWide(t *testing.T) {
	const (
		agents = 96
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 4
	)
	bal := partition.Balancer{MigrateCostPerAgent: 1e-9, HorizonTicks: 1000, MinRelativeGain: 0.01}
	for _, sp := range scenario.All() {
		if !sp.LocalOnly {
			continue // non-local effects are not bit-stable across partitionings
		}
		name := sp.Name
		extent := 30.0
		if name == "traffic" {
			extent = 1800 // traffic derives its population from Extent
		}
		t.Run(name, func(t *testing.T) {
			mem := memEngine(t, name, agents, extent, seed, engine.Options{
				Workers: parts, Seed: seed,
				Tunables:    engine.Tunables{EpochTicks: epoch},
				LoadBalance: true, Balancer: bal,
			})
			if err := mem.RunTicks(ticks); err != nil {
				t.Fatal(err)
			}
			res, err := Run(Options{
				Addrs:    startMeshWorkers(t, 2),
				Scenario: name,
				Agents:   agents, Extent: extent, Seed: seed,
				Partitions: parts, Ticks: ticks,
				Tunables:    Tunables{EpochTicks: epoch, Mesh: true},
				LoadBalance: true, Balancer: bal,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSamePopulation(t, name+"/mesh", mem.Agents(), res.Agents)
			if res.Net.SentMsgs == 0 {
				t.Error("no traffic crossed the wire; the run was not distributed")
			}
			if res.RelayedDataFrames != 0 {
				t.Errorf("coordinator relayed %d data frames (%d bytes); a healthy mesh carries its own data plane",
					res.RelayedDataFrames, res.RelayedDataBytes)
			}
		})
	}
}

// A kd2d-partitioned mesh run: 2-D neighbor sets mean every proc pair
// exchanges envelopes, so the directed peer links form a full mesh.
func TestMeshKD2D(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(7)
		parts  = 4
		ticks  = 8
	)
	ref := memReference(t, "fish", agents, extent, seed, parts, ticks)
	res, err := Run(Options{
		Addrs:    startMeshWorkers(t, 2),
		Scenario: "fish",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks, Index: "kd",
		Tunables: Tunables{Mesh: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePopulation(t, "mesh kd", ref, res.Agents)
	if res.RelayedDataFrames != 0 {
		t.Errorf("relayed %d data frames in a healthy mesh run", res.RelayedDataFrames)
	}
}

// SIGKILL-style chaos with the mesh on: a worker session severed mid-run
// must recover exactly as on the star path — re-placed from the last
// coordinated checkpoint, re-admitted at the next generation with a fresh
// peer roster — and end bit-identical to the unfailed reference.
func TestMeshRecoveryBitIdentical(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severProcAt(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.Rejoins < 1 {
		t.Errorf("rejoins = %d, want ≥ 1 (daemon was alive to re-dial)", res.Rejoins)
	}
	assertSamePopulation(t, "mesh recovery", ref.Agents(), res.Agents)
}

// SIGSTOP-style chaos with the mesh on: the frozen worker raises no
// socket error anywhere — including on its peer links — so only the
// coordinator's heartbeat can break the barrier.
func TestMeshStallBitIdentical(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	o := Options{
		Addrs:    startChaosWorkers(t, 2, stallProcAt(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1 (no socket error ever happened)", res.StallDrops)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	assertSamePopulation(t, "mesh stall", ref.Agents(), res.Agents)
}

// Chaos in the overlapped tick's failure window, mesh on: the fault lands
// between the interior pass and the boundary drain, so the victim's
// envelopes and count markers are already out on the peer links when it
// dies. The count-based barrier must stay exact through the recovery.
func TestMeshSeverInOverlapWindow(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(7)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	o := Options{
		Addrs:    startChaosWorkers(t, 2, severProcInWindow(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	assertSamePopulation(t, "mesh sever in window", ref.Agents(), res.Agents)
}

// severPeerLink cuts proc's outgoing peer link to dst right before its
// n-th phase barrier; the session itself stays healthy.
func severPeerLink(proc, dst, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.SeverPeerAt{Transport: tr, Peer: dst, Phase: phase}
		}
		return tr
	}
}

// stallPeerLink degrades proc's outgoing peer link to dst at the n-th
// barrier: the next write reaches the socket but reports failure, leaving
// a maybe-delivered frame for the relay to re-send.
func stallPeerLink(proc, dst, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.StallPeerAt{Transport: tr, Peer: dst, Phase: phase}
		}
		return tr
	}
}

// A single peer link cut mid-epoch must not cost the run anything: the
// sender falls back to the coordinator relay for that destination, no
// recovery triggers, and the final state is bit-identical. The relay
// counters prove the fallback actually carried traffic.
func TestMeshPeerLinkSeverRelaysAndMatches(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severPeerLink(0, 1, 9)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0: a dead peer link is not a dead worker", res.Recoveries)
	}
	if res.RelayedDataFrames == 0 {
		t.Error("no data frames were relayed; the severed link was never exercised")
	}
	assertSamePopulation(t, "peer-link sever", ref.Agents(), res.Agents)
}

// The silent variant: the write "succeeds" on the wire before the sender
// sees failure, so the same envelope can arrive twice — once direct, once
// through the relay re-send. The receiver's per-source sequence dedup
// must keep exactly one copy, which bit-identity proves.
func TestMeshPeerLinkStallDedupsAndMatches(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, stallPeerLink(1, 0, 9)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0", res.Recoveries)
	}
	if res.RelayedDataFrames == 0 {
		t.Error("no data frames were relayed; the stalled link was never exercised")
	}
	assertSamePopulation(t, "peer-link stall dedup", ref.Agents(), res.Agents)
}

// hookAt fires fn once, right before the n-th phase barrier — a way to
// trigger external events at a deterministic point of the run.
type hookAt struct {
	transport.Transport
	phase int
	fn    func()
	n     int
}

func (h *hookAt) FlushPhase() error {
	h.n++
	if h.n == h.phase {
		h.fn()
	}
	return h.Transport.FlushPhase()
}

func (h *hookAt) EndPhase() error {
	if err := h.FlushPhase(); err != nil {
		return err
	}
	return h.AwaitPhase()
}

// A worker that registers mid-run joins the fleet through the same
// restore machinery recovery uses: the coordinator admits it at the next
// generation, grows the placement, and rewinds the run from the last
// coordinated checkpoint onto the larger fleet. Local-effect state is
// partition-independent, so the end state must still be bit-identical.
func TestMeshMidRunRegistrationJoins(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 24
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(rlis)
	t.Cleanup(reg.Close)

	// The initial fleet is named directly; the only registration the
	// registry ever sees is the newcomer, fired from inside proc 0's 9th
	// phase barrier — deterministically mid-run.
	register := func() {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Error(err)
			return
		}
		t.Cleanup(func() { lis.Close() })
		go ServeWith(lis, ServeOptions{Register: reg.Addr()})
		// Hold the barrier until the registration lands so the join
		// event is in flight before the run resumes ticking.
		deadline := time.Now().Add(10 * time.Second)
		for len(reg.Workers()) == 0 {
			if time.Now().After(deadline) {
				t.Error("newcomer never registered")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	joinOnce := func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == 0 && h.Gen == 1 {
			return &hookAt{Transport: tr, phase: 9, fn: register}
		}
		return tr
	}
	o := Options{
		Addrs:    startChaosWorkers(t, 2, joinOnce),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, Mesh: true},
		Registry: reg,
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins != 1 {
		t.Errorf("joins = %d, want 1", res.Joins)
	}
	if res.Procs != 3 {
		t.Errorf("procs = %d, want 3 after the join", res.Procs)
	}
	assertSamePopulation(t, "mid-run join", ref.Agents(), res.Agents)
}
