package distrib

import (
	"reflect"
	"testing"

	"github.com/bigreddata/brace/internal/transport"
)

// The initial placement must reproduce the legacy contiguous-block scheme
// exactly, so a failure-free v2 run routes identically to a v1 run.
func TestPlacementInitialBlocks(t *testing.T) {
	cases := []struct {
		parts, procs int
		want         []int
	}{
		{parts: 4, procs: 2, want: []int{0, 0, 1, 1}},
		{parts: 5, procs: 3, want: []int{0, 1, 1, 2, 2}},
		{parts: 6, procs: 1, want: []int{0, 0, 0, 0, 0, 0}},
		{parts: 3, procs: 3, want: []int{0, 1, 2}},
		// More processes than partitions: trailing/interior processes may
		// own nothing but the table stays valid.
		{parts: 2, procs: 4, want: []int{1, 3}},
	}
	for _, c := range cases {
		pl := NewPlacement(c.parts, c.procs)
		if got := pl.Assign(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("NewPlacement(%d,%d) = %v, want %v", c.parts, c.procs, got, c.want)
		}
		// Parity with the legacy block arithmetic both ways.
		for proc := 0; proc < c.procs; proc++ {
			want := transport.PartsOf(proc, c.parts, c.procs)
			got := pl.Owned(proc)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("(%d,%d) Owned(%d) = %v, want PartsOf %v", c.parts, c.procs, proc, got, want)
			}
		}
	}
}

// Reassign must spread a dead worker's partitions over the fewest-loaded
// survivors, deterministically (ties to the lowest process index).
func TestPlacementReassign(t *testing.T) {
	cases := []struct {
		name         string
		parts, procs int
		dead         int
		live         []bool
		want         []int
		wantMoved    []int
	}{
		{
			name:  "middle worker of three, uneven blocks",
			parts: 5, procs: 3, dead: 1, live: []bool{true, false, true},
			// [0 1 1 2 2]: part1 → proc0 (1 owned < proc2's 2), part2 →
			// proc0 again (tie 2-2 breaks low).
			want:      []int{0, 0, 0, 2, 2},
			wantMoved: []int{1, 2},
		},
		{
			name:  "first worker dies, survivors balanced",
			parts: 6, procs: 3, dead: 0, live: []bool{false, true, true},
			// [0 0 1 1 2 2]: part0 → proc1 (tie 2-2), part1 → proc2.
			want:      []int{1, 2, 1, 1, 2, 2},
			wantMoved: []int{0, 1},
		},
		{
			name:  "more procs than parts",
			parts: 2, procs: 4, dead: 3, live: []bool{true, true, true, false},
			// [1 3]: part1 → proc0 (owns nothing; tie with proc2 breaks low).
			want:      []int{1, 0},
			wantMoved: []int{1},
		},
		{
			name:  "no survivors",
			parts: 2, procs: 1, dead: 0, live: []bool{false},
			want:      []int{0, 0},
			wantMoved: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPlacement(c.parts, c.procs)
			moved := pl.Reassign(c.dead, c.live)
			if !reflect.DeepEqual(pl.Assign(), c.want) {
				t.Errorf("assign = %v, want %v", pl.Assign(), c.want)
			}
			if !reflect.DeepEqual(moved, c.wantMoved) {
				t.Errorf("moved = %v, want %v", moved, c.wantMoved)
			}
		})
	}
}

// Two workers dying in the same epoch — the second during recovery from
// the first — must leave every partition on the remaining survivor.
func TestPlacementDoubleDeath(t *testing.T) {
	pl := NewPlacement(6, 3) // [0 0 1 1 2 2]
	live := []bool{true, false, true}
	pl.Reassign(1, live)
	live[2] = false // second death while recovering from the first
	pl.Reassign(2, live)
	want := []int{0, 0, 0, 0, 0, 0}
	if !reflect.DeepEqual(pl.Assign(), want) {
		t.Fatalf("assign after double death = %v, want %v", pl.Assign(), want)
	}
	// Nobody left: the assignment must survive untouched for the error path.
	live[0] = false
	if moved := pl.Reassign(0, live); moved != nil {
		t.Fatalf("reassign with no survivors moved %v", moved)
	}
}

// A worker joining mid-run takes its fair share from the most-loaded
// processes, highest partition index first, without creating new imbalance.
func TestPlacementJoin(t *testing.T) {
	cases := []struct {
		name      string
		setup     func() (*Placement, []bool)
		join      int
		want      []int
		wantMoved []int
	}{
		{
			name: "rejoin after absorb",
			setup: func() (*Placement, []bool) {
				pl := NewPlacement(5, 3) // [0 1 1 2 2]
				live := []bool{true, false, true}
				pl.Reassign(1, live) // → [0 0 0 2 2]
				live[1] = true
				return pl, live
			},
			join: 1,
			// target 5/3 = 1: proc0 (3 owned) donates its highest part.
			want:      []int{0, 0, 1, 2, 2},
			wantMoved: []int{2},
		},
		{
			name: "join when nothing to spare",
			setup: func() (*Placement, []bool) {
				pl := NewPlacement(2, 4) // [1 3]
				live := []bool{true, true, true, true}
				return pl, live
			},
			join:      2,
			want:      []int{1, 3}, // target 2/4 = 0: no move
			wantMoved: nil,
		},
		{
			name: "fresh worker absorbs from a hot node",
			setup: func() (*Placement, []bool) {
				pl := NewPlacement(8, 2) // [0 0 0 0 1 1 1 1]
				live := []bool{true, true, true}
				return pl, live
			},
			join: 2,
			// target 8/3 = 2: donors alternate 0 (4), then whoever is max.
			want:      []int{0, 0, 0, 2, 1, 1, 1, 2},
			wantMoved: []int{3, 7},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl, live := c.setup()
			moved := pl.Join(c.join, live)
			if !reflect.DeepEqual(pl.Assign(), c.want) {
				t.Errorf("assign = %v, want %v", pl.Assign(), c.want)
			}
			if !reflect.DeepEqual(moved, c.wantMoved) {
				t.Errorf("moved = %v, want %v", moved, c.wantMoved)
			}
		})
	}
}
