// Package distrib runs a BRACE simulation across real OS processes: a
// coordinator (bracesim -distribute tcp) dials one or more worker daemons
// (bracesim-worker), hands each a Hello naming a registry scenario and the
// coordinator-owned partition assignment, and relays the per-phase
// envelope traffic between them over the TCP transport.
//
// The design exploits what makes BRACE's dataflow distributable in the
// first place: behavior is *code*, reconstructible anywhere from the
// scenario registry plus (name, agents, extent, seed), so only data —
// agent envelopes — ever crosses the wire. Every process computes the
// partitions assigned to it through the same lockstep tick loop, and the
// transport's end-of-phase markers substitute for shared-memory barriers.
//
// The coordinator is the master of the paper's §3.3, owning the control
// plane: at every epoch barrier workers ship statistics up and wait for a
// directive down. The coordinator runs the 1-D load balancer on those
// statistics (the same decision procedure as the in-memory engine, so
// `-lb` is bit-identical across transports), orders coordinated
// checkpoints whose state it holds itself, and — when a worker connection
// dies — re-places the dead worker's partitions (re-admitting the worker
// if its daemon still answers), bumps the protocol generation, and
// restores every survivor from the last checkpoint so the run continues
// bit-identically to an unfailed one. For local-effect scenarios the
// result is bit-identical to an in-memory run at the same seed and
// partition count; the loopback tests assert exactly that, with and
// without injected failures.
package distrib

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/detutil"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// Options configures a coordinator-side distributed run.
type Options struct {
	// Addrs are the worker daemons' listen addresses; worker process i is
	// Addrs[i]. The coordinator computes the partition placement.
	Addrs []string
	// RunID scopes the run's worker sessions when the daemons serve many
	// concurrent coordinators (the bracesimd fleet). Purely diagnostic on
	// the wire; empty for single-run CLI coordinators.
	RunID string
	// Scenario is the registry name every process rebuilds locally.
	Scenario string
	// Agents, Extent, Seed size the scenario exactly as scenario.Config.
	Agents int
	Extent float64
	Seed   uint64
	// Partitions is the total mapreduce worker count (≥ len(Addrs)).
	Partitions int
	// Ticks to simulate.
	Ticks int
	// Tunables carries the shared knob set — epoch cadence, checkpoint
	// cadence and keyframe interval, cache skin, liveness timeouts,
	// recovery bounds, and the mesh switch. See cluster.Tunables for the
	// per-field contracts; zero values select the Default* constants.
	Tunables
	// Index selects the spatial index: kd (default when empty), scan, grid.
	Index string
	// Sequential makes each worker process tick its partitions one at a
	// time (debugging/determinism).
	Sequential bool
	// Part selects the partitioning scheme: "" or "strips" for quantile
	// x-strips, "kd2d" for 2-D recursive median splits over the initial
	// population. kd2d is static, so it is incompatible with LoadBalance.
	Part string
	// LoadBalance enables the coordinator-driven 1-D load balancer: the
	// same decision procedure as the in-memory engine, computed from the
	// workers' epoch statistics, with new strip cuts broadcast at epoch
	// barriers. Migrated agents travel through the ordinary data plane at
	// the next tick's map phase.
	LoadBalance bool
	// Balancer tunes load balancing; zero value means DefaultBalancer.
	Balancer partition.Balancer
	// NoRejoin disables re-dialing a dead worker's address before its
	// partitions are re-placed on the survivors. By default the
	// coordinator tries once: a daemon that only lost its connection (not
	// its process) is re-admitted with its old partitions.
	NoRejoin bool
	// Registry, when non-nil, is the coordinator-side worker registry:
	// Addrs may be left empty and are filled from registered workers, and
	// a worker that registers mid-run is admitted into the running
	// placement through the rejoin path.
	Registry *Registry

	// The fields below make the coordinator embeddable as a library — the
	// bracesimd service runs one coordinator per admitted run, each wired
	// to its own slice of a shared worker fleet.

	// Cancel, when non-nil, aborts the run as soon as it is closed: the
	// coordinator stops its event loop and drops every worker connection.
	// Workers unwind through their coordinator watchdogs.
	Cancel <-chan struct{}
	// OnEpoch, when non-nil, observes every control-plane barrier decision
	// as it is made (the same records Result.Epochs accumulates). Called
	// from the coordinator loop; it must not block.
	OnEpoch func(EpochDecision)
	// OnCheckpoint, when non-nil, observes every checkpoint the
	// coordinator installs — including the tick-0 initial state — as the
	// run's full live population: non-replica, non-dead envelopes,
	// ID-sorted. The slice and its envelopes alias coordinator-held
	// checkpoint state: the callback must encode or copy what it keeps and
	// must never mutate them. Called from the coordinator loop; it must
	// not block. This is the observation-stream tap: with
	// CheckpointEveryEpochs=1 and EpochTicks=1 it fires every tick.
	OnCheckpoint func(tick uint64, envs []*engine.Envelope)
	// OnWorkerDown, when non-nil, reports a worker that left the run for
	// good: its connection died (or it stalled) and the rejoin dial did
	// not bring it back, so its partitions moved to the survivors. A fleet
	// scheduler uses it to steer future placements away from the address.
	OnWorkerDown func(proc int, addr string, cause error)
	// Dial, when non-nil, replaces the TCP dial+handshake used to reach
	// workers (tests inject in-process pipes or fault injectors).
	Dial func(addr string, h *transport.Hello, timeout time.Duration) (*transport.Conn, error)
}

// Tunables is the shared knob set embedded by Options, engine.Options and
// the service run config; aliased here so coordinator callers need not
// import internal/cluster.
type Tunables = cluster.Tunables

// Defaults for the coordinator's tunable options, re-exported from the
// shared cluster.Tunables home so every CLI (bracesim, bracesim-worker,
// bracesimd) derives its flag help from the values actually in force, and
// tests assert against them.
const (
	DefaultHeartbeat           = cluster.DefaultHeartbeat
	DefaultHeartbeatMisses     = cluster.DefaultHeartbeatMisses
	DefaultEpochTimeout        = cluster.DefaultEpochTimeout
	DefaultDialTimeout         = cluster.DefaultDialTimeout
	DefaultCheckpointFullEvery = cluster.DefaultCheckpointFullEvery
	DefaultMaxRecoveries       = cluster.DefaultMaxRecoveries
)

// ErrCanceled reports a run deliberately aborted through Options.Cancel.
var ErrCanceled = errors.New("distrib: run canceled")

// EpochDecision records what the control plane decided at one epoch
// barrier.
type EpochDecision struct {
	Tick       uint64
	Rebalanced bool
	// Cuts are the strip boundaries in force after the barrier.
	Cuts []float64
}

// Result is what a distributed run yields on the coordinator.
type Result struct {
	// Agents is the final live population, ID-sorted, assembled from the
	// workers' final reports.
	Agents agent.Population
	// Ticks is the tick count every worker completed.
	Ticks uint64
	// Net sums traffic totals across the surviving worker processes: each
	// delivery is metered once, by its sender, in an unfailed run. After
	// a recovery the counters report what the survivors *actually* put on
	// the wire — re-executed epochs count again, and whatever a dead
	// worker sent before dying is lost with it.
	Net cluster.NodeMetrics
	// Procs is the number of worker processes still in the run at the end.
	Procs int
	// Recoveries counts failure recoveries the coordinator performed.
	Recoveries int
	// Rejoins counts dead workers re-admitted after a re-dial.
	Rejoins int
	// Rebalances counts applied load-balancing repartitions.
	Rebalances int
	// StallDrops counts workers force-dropped by the liveness machinery
	// (missed heartbeats or a blown epoch-round deadline) rather than by
	// a socket error.
	StallDrops int
	// Joins counts workers admitted into the run after it started (a
	// mid-run registration placed through the join path).
	Joins int
	// RelayedDataFrames/RelayedDataBytes count the data-plane envelope
	// frames the coordinator relayed. In a star run that is all of them;
	// in a healthy mesh run both stay zero — the chaos suite's evidence
	// that envelopes really traveled peer-to-peer — and any nonzero count
	// under an injected peer-link fault is the relay fallback working.
	RelayedDataFrames int64
	RelayedDataBytes  int64
	// CheckpointBytes is the wire size of every checkpoint frame workers
	// shipped; CheckpointFullParts and CheckpointDeltaParts split the
	// received partition snapshots by kind. Together they measure what
	// incremental checkpoints save over full-state shipping.
	CheckpointBytes      int64
	CheckpointFullParts  int
	CheckpointDeltaParts int
	// Epochs records the control plane's per-barrier decisions.
	Epochs []EpochDecision
}

func (o *Options) validate() error {
	if len(o.Addrs) == 0 {
		return fmt.Errorf("distrib: no worker addresses")
	}
	if o.Partitions < len(o.Addrs) {
		return fmt.Errorf("distrib: %d partitions cannot cover %d worker processes", o.Partitions, len(o.Addrs))
	}
	if o.Ticks < 0 {
		return fmt.Errorf("distrib: negative tick count")
	}
	if _, ok := scenario.Lookup(o.Scenario); !ok {
		return scenario.ErrUnknown(o.Scenario)
	}
	if _, err := spatial.ParseKind(o.Index); err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	switch o.Part {
	case "", "strips":
	case "kd2d":
		if o.LoadBalance {
			return fmt.Errorf("distrib: load balancing adjusts strip cuts; incompatible with -part kd2d")
		}
	default:
		return fmt.Errorf("distrib: unknown partitioning %q (want strips or kd2d)", o.Part)
	}
	return nil
}

// initialPartition builds the partitioning override a Part name selects,
// from the run's initial population — the same derivation on coordinator
// and every worker, so all processes agree on ownership without shipping
// the function itself. Returns nil for the default strip partitioning.
func initialPartition(part string, m engine.Model, pop []*agent.Agent, workers int) (partition.Func, error) {
	switch part {
	case "", "strips":
		return nil, nil
	case "kd2d":
		s := m.Schema()
		pts := make([]geom.Vec, len(pop))
		for i, a := range pop {
			pts[i] = a.Pos(s)
		}
		return partition.NewKD2D(pts, workers), nil
	default:
		return nil, fmt.Errorf("distrib: unknown partitioning %q (want strips or kd2d)", part)
	}
}

// hello builds worker proc's handshake for the given generation and
// placement.
func (o *Options) hello(proc, gen int, assign []int) *transport.Hello {
	h := &transport.Hello{
		Proto:       transport.ProtoVersion,
		Caps:        o.caps(),
		RunID:       o.RunID,
		Proc:        proc,
		NumProcs:    len(o.Addrs),
		Partitions:  o.Partitions,
		Assign:      assign,
		Gen:         gen,
		LoadBalance: o.LoadBalance,
		Scenario:    o.Scenario,
		Agents:      o.Agents,
		Extent:      o.Extent,
		Seed:        o.Seed,
		Ticks:       o.Ticks,
		EpochTicks:  o.EpochTicks,
		CacheSkin:   o.CacheSkin,
		Index:       o.Index,
		Sequential:  o.Sequential,
		Part:        o.Part,
	}
	if o.Mesh {
		// The peer roster: Peers[i] is process i's daemon address, which
		// the worker's transport dials lazily for direct neighbor
		// exchange. Its presence is what switches a session into mesh mode.
		h.Peers = append([]string(nil), o.Addrs...)
	}
	return h
}

// caps is the capability set this coordinator requires of its workers.
// Incremental checkpoints and the split FlushPhase/AwaitPhase barrier are
// baseline in v5; the mesh capability is demanded only when the run
// actually uses the peer-to-peer data plane.
func (o *Options) caps() []string {
	caps := []string{transport.CapIncrCkpt, transport.CapOverlapAwait}
	if o.Mesh {
		caps = append(caps, transport.CapMesh)
	}
	return caps
}

// initialState derives the run's tick-0 checkpoint on the coordinator: the
// initial strip cuts and per-partition envelopes, computed by the same
// engine constructor every worker runs, so recovery can always rewind to
// the exact start even when no periodic checkpoint has completed yet.
func initialState(o Options) (cuts []float64, parts []transport.PartState, err error) {
	sp, ok := scenario.Lookup(o.Scenario)
	if !ok {
		return nil, nil, scenario.ErrUnknown(o.Scenario)
	}
	m, pop, err := sp.New(scenario.Config{Agents: o.Agents, Seed: o.Seed, Extent: o.Extent})
	if err != nil {
		return nil, nil, err
	}
	kind, err := spatial.ParseKind(o.Index)
	if err != nil {
		return nil, nil, err
	}
	ipart, err := initialPartition(o.Part, m, pop, o.Partitions)
	if err != nil {
		return nil, nil, err
	}
	eng, err := engine.NewDistributed(m, pop, engine.Options{
		Workers:          o.Partitions,
		Index:            kind,
		Seed:             o.Seed,
		Tunables:         Tunables{EpochTicks: o.EpochTicks, CacheSkin: o.CacheSkin},
		InitialPartition: ipart,
	})
	if err != nil {
		return nil, nil, err
	}
	if s, ok := eng.Partition().(*partition.Strips); ok {
		cuts = s.Cuts()
	}
	parts = make([]transport.PartState, o.Partitions)
	for p := 0; p < o.Partitions; p++ {
		parts[p] = transport.PartState{Part: p, Full: true, Values: eng.ExportPartition(p)}
	}
	return cuts, parts, nil
}

// livePopulation flattens an assembled (all-Full) checkpoint into the
// run's live population: non-replica, non-dead envelopes across all
// partitions, ID-sorted. The result aliases the checkpoint's envelopes —
// OnCheckpoint observers get exactly this view.
func livePopulation(parts []transport.PartState) []*engine.Envelope {
	var out []*engine.Envelope
	for _, ps := range parts {
		envs, _ := ps.Values.([]*engine.Envelope)
		for _, env := range envs {
			if env != nil && !env.Replica && !env.A.Dead {
				out = append(out, env)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].A.ID < out[j].A.ID })
	return out
}

// ownedParts returns the partitions assign maps to proc, ascending. The
// result is non-nil even when empty: a worker that owns nothing must tick
// nothing, and the engine/runtime interpret a *nil* LocalParts as "all
// partitions" — the opposite meaning.
func ownedParts(assign []int, proc int) []int {
	out := make([]int, 0, len(assign))
	for p, pr := range assign {
		if pr == proc {
			out = append(out, p)
		}
	}
	return out
}

// assemble turns the live workers' final reports into a Result.
func assemble(finals map[int]*transport.FinalReport) (*Result, error) {
	res := &Result{Procs: len(finals)}
	first := true
	for _, proc := range detutil.SortedKeys(finals) {
		f := finals[proc]
		if first {
			res.Ticks = f.Ticks
			first = false
		} else if f.Ticks != res.Ticks {
			return nil, fmt.Errorf("distrib: worker %d stopped at tick %d, others at %d", proc, f.Ticks, res.Ticks)
		}
		envs, ok := f.Values.([]*engine.Envelope)
		if !ok && f.Values != nil {
			return nil, fmt.Errorf("distrib: worker %d reported %T, want []*engine.Envelope", proc, f.Values)
		}
		for _, env := range envs {
			if !env.Replica && !env.A.Dead {
				res.Agents = append(res.Agents, env.A)
			}
		}
		n := f.Net
		res.Net.SentMsgs += n.SentMsgs
		res.Net.SentBytes += n.SentBytes
		res.Net.RecvMsgs += n.RecvMsgs
		res.Net.RecvBytes += n.RecvBytes
		res.Net.LocalMsgs += n.LocalMsgs
		res.Net.LocalBytes += n.LocalBytes
	}
	sort.Sort(res.Agents)
	return res, nil
}
