// Package distrib runs a BRACE simulation across real OS processes: a
// coordinator (bracesim -distribute tcp) dials one or more worker daemons
// (bracesim-worker), hands each a Hello naming a registry scenario and its
// partition block, and relays the per-phase envelope traffic between them
// over the TCP transport.
//
// The design exploits what makes BRACE's dataflow distributable in the
// first place: behavior is *code*, reconstructible anywhere from the
// scenario registry plus (name, agents, extent, seed), so only data —
// agent envelopes — ever crosses the wire. Every process derives the same
// initial population and partitioning, computes its own contiguous block
// of partitions through the same lockstep tick loop, and the transport's
// end-of-phase markers substitute for shared-memory barriers. For
// local-effect scenarios the result is bit-identical to an in-memory run
// at the same seed and partition count; the loopback tests assert exactly
// that.
package distrib

import (
	"fmt"
	"sort"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// Options configures a coordinator-side distributed run.
type Options struct {
	// Addrs are the worker daemons' listen addresses; worker process i is
	// Addrs[i] and owns partition block PartsOf(i, Partitions, len(Addrs)).
	Addrs []string
	// Scenario is the registry name every process rebuilds locally.
	Scenario string
	// Agents, Extent, Seed size the scenario exactly as scenario.Config.
	Agents int
	Extent float64
	Seed   uint64
	// Partitions is the total mapreduce worker count (≥ len(Addrs)).
	Partitions int
	// Ticks to simulate.
	Ticks int
	// EpochTicks is the master interaction interval (0 = engine default).
	EpochTicks int
	// Index selects the spatial index: kd (default when empty), scan, grid.
	Index string
	// Sequential makes each worker process tick its partitions one at a
	// time (debugging/determinism).
	Sequential bool
	// DialTimeout bounds dialing + handshaking each worker (default 10s).
	DialTimeout time.Duration
}

// Result is what a distributed run yields on the coordinator.
type Result struct {
	// Agents is the final live population, ID-sorted, assembled from the
	// workers' final reports.
	Agents agent.Population
	// Ticks is the tick count every worker completed.
	Ticks uint64
	// Net sums traffic totals across worker processes (each delivery
	// metered once, by its sender).
	Net cluster.NodeMetrics
	// Procs is the number of worker processes that took part.
	Procs int
}

func (o *Options) validate() error {
	if len(o.Addrs) == 0 {
		return fmt.Errorf("distrib: no worker addresses")
	}
	if o.Partitions < len(o.Addrs) {
		return fmt.Errorf("distrib: %d partitions cannot cover %d worker processes", o.Partitions, len(o.Addrs))
	}
	if o.Ticks < 0 {
		return fmt.Errorf("distrib: negative tick count")
	}
	if _, ok := scenario.Lookup(o.Scenario); !ok {
		return scenario.ErrUnknown(o.Scenario)
	}
	if _, err := spatial.ParseKind(o.Index); err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	return nil
}

// hello builds worker proc's handshake.
func (o *Options) hello(proc int) *transport.Hello {
	return &transport.Hello{
		Proto:      transport.ProtoVersion,
		Proc:       proc,
		NumProcs:   len(o.Addrs),
		Partitions: o.Partitions,
		Scenario:   o.Scenario,
		Agents:     o.Agents,
		Extent:     o.Extent,
		Seed:       o.Seed,
		Ticks:      o.Ticks,
		EpochTicks: o.EpochTicks,
		Index:      o.Index,
		Sequential: o.Sequential,
	}
}

// assemble turns the workers' final reports into a Result.
func assemble(finals []*transport.FinalReport) (*Result, error) {
	res := &Result{Procs: len(finals)}
	for i, f := range finals {
		if i == 0 {
			res.Ticks = f.Ticks
		} else if f.Ticks != res.Ticks {
			return nil, fmt.Errorf("distrib: worker %d stopped at tick %d, worker 0 at %d", i, f.Ticks, res.Ticks)
		}
		envs, ok := f.Values.([]*engine.Envelope)
		if !ok && f.Values != nil {
			return nil, fmt.Errorf("distrib: worker %d reported %T, want []*engine.Envelope", i, f.Values)
		}
		for _, env := range envs {
			if !env.Replica && !env.A.Dead {
				res.Agents = append(res.Agents, env.A)
			}
		}
		n := f.Net
		res.Net.SentMsgs += n.SentMsgs
		res.Net.SentBytes += n.SentBytes
		res.Net.RecvMsgs += n.RecvMsgs
		res.Net.RecvBytes += n.RecvBytes
		res.Net.LocalMsgs += n.LocalMsgs
		res.Net.LocalBytes += n.LocalBytes
	}
	sort.Sort(res.Agents)
	return res, nil
}
