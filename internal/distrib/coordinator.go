package distrib

import (
	"fmt"
	"net"
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

// Run executes a distributed simulation from the coordinator: dial every
// worker daemon, handshake, relay the run through a transport.Hub, and
// assemble the workers' final reports into the run's result. The
// coordinator does no simulation compute — it is the master of §3.3,
// reduced to wiring: partitioning is derived identically by every worker,
// and failure recovery in multi-process mode is a ROADMAP follow-up.
func Run(o Options) (*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}

	conns := make([]*transport.Conn, len(o.Addrs))
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for i, addr := range o.Addrs {
		c, err := dialWorker(addr, o.hello(i), o.DialTimeout)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("distrib: worker %d (%s): %w", i, addr, err)
		}
		conns[i] = c
	}
	defer closeAll()

	finals, err := transport.NewHub(conns, o.Partitions).Run()
	if err != nil {
		return nil, err
	}
	return assemble(finals)
}

// dialWorker connects to one worker daemon and completes the handshake:
// Hello out, Ack back, with the deadline covering both.
func dialWorker(addr string, h *transport.Hello, timeout time.Duration) (*transport.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(timeout))
	c := transport.NewConn(nc)
	if err := c.Send(&transport.Frame{Kind: transport.FrameHello, Hello: h}); err != nil {
		c.Close()
		return nil, err
	}
	ack, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	if ack.Kind != transport.FrameAck {
		c.Close()
		return nil, fmt.Errorf("handshake: unexpected frame kind %d", ack.Kind)
	}
	if ack.Err != "" {
		c.Close()
		return nil, fmt.Errorf("worker rejected run: %s", ack.Err)
	}
	nc.SetDeadline(time.Time{}) // the run itself is unbounded
	return c, nil
}
