package distrib

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"time"

	"github.com/bigreddata/brace/internal/detutil"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/transport"
)

// Run executes a distributed simulation from the coordinator: dial every
// worker daemon, handshake, then run the control loop — relay the data
// plane through a transport.Hub while owning the control plane (placement,
// load balancing, checkpoints, failure recovery) — until every live worker
// reports its final state. The coordinator does no simulation compute: it
// is the master of §3.3, interacting with workers only at epoch
// boundaries.
func Run(o Options) (*Result, error) {
	if o.Registry != nil && len(o.Addrs) == 0 {
		for _, w := range o.Registry.Workers() {
			o.Addrs = append(o.Addrs, w.Addr)
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Mesh && o.RunID == "" {
		// Peer links address sessions by (run, process) on the target
		// daemon, so a mesh run must have a distinguishable identity even
		// when the caller did not name one.
		o.RunID = randomRunID()
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.Dial == nil {
		o.Dial = dialWorker
	}
	if o.RejoinTimeout <= 0 {
		// Unified with DialTimeout: a daemon worth waiting 10s for at
		// startup is worth the same wait when it rejoins after a restart.
		o.RejoinTimeout = o.DialTimeout
	}
	switch {
	case o.Heartbeat == 0:
		o.Heartbeat = DefaultHeartbeat
	case o.Heartbeat < 0:
		o.Heartbeat = 0 // disabled
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = DefaultHeartbeatMisses
	}
	adaptive := false
	switch {
	case o.EpochTimeout == 0:
		// No explicit deadline: auto-tune from the observed barrier
		// cadence, with the old fixed default as the floor.
		o.EpochTimeout = DefaultEpochTimeout
		adaptive = true
	case o.EpochTimeout < 0:
		o.EpochTimeout = 0 // disabled
	}
	if o.CheckpointFullEvery <= 0 {
		o.CheckpointFullEvery = DefaultCheckpointFullEvery
	}
	if o.Balancer == (partition.Balancer{}) {
		o.Balancer = partition.DefaultBalancer()
	}

	// The tick-0 checkpoint: recovery can always rewind to the start.
	cuts, parts, err := initialState(o)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	c := &coordinator{
		o:      o,
		place:  NewPlacement(o.Partitions, len(o.Addrs)),
		live:   make([]bool, len(o.Addrs)),
		seqs:   make([]int, len(o.Addrs)),
		gen:    1,
		cuts:   cuts,
		ckpt:   &ckptState{tick: 0, cuts: append([]float64(nil), cuts...), parts: parts},
		stats:  make(map[int]*transport.EpochStats),
		finals: make(map[int]*transport.FinalReport),
		lv:     newLiveness(len(o.Addrs), o.Heartbeat*time.Duration(o.HeartbeatMisses), o.EpochTimeout, adaptive, now),
	}
	c.hub = transport.NewHub(o.Partitions, len(o.Addrs), c.place.Assign())
	defer c.hub.Close()

	// Dial and handshake every worker before attaching any to the hub:
	// a worker whose handshake completes early starts ticking and sending
	// immediately, and those frames must wait in its socket until every
	// relay destination exists.
	conns := make([]*transport.Conn, len(o.Addrs))
	for i, addr := range o.Addrs {
		conn, err := o.Dial(addr, o.hello(i, c.gen, c.place.Assign()), o.DialTimeout)
		if err != nil {
			for _, open := range conns[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("distrib: worker %d (%s): %w", i, addr, err)
		}
		conn.SetWriteTimeout(c.writeTimeout())
		conns[i] = conn
	}
	now = time.Now()
	for i, conn := range conns {
		c.live[i] = true
		c.seqs[i] = c.hub.Attach(i, conn)
		c.lv.admit(i, now)
	}
	// The tick-0 checkpoint is the first observable state of the run.
	if o.OnCheckpoint != nil {
		o.OnCheckpoint(0, livePopulation(c.ckpt.parts))
	}
	return c.run()
}

// writeTimeout bounds coordinator → worker sends. A stalled worker stops
// draining its socket; once the kernel buffers fill, an unbounded write
// would freeze the control loop — the very hang this machinery exists to
// break. The bound is generous: the full liveness window, floored so
// large restore frames always have time to flush.
func (c *coordinator) writeTimeout() time.Duration {
	wt := c.o.Heartbeat * time.Duration(c.o.HeartbeatMisses)
	if c.o.EpochTimeout > wt {
		wt = c.o.EpochTimeout
	}
	if wt <= 0 {
		return 0
	}
	if floor := 5 * time.Second; wt < floor {
		wt = floor
	}
	return wt
}

// ckptState is one coordinated checkpoint held on the coordinator — the
// piece of the design that makes multi-process recovery possible at all:
// a dead worker's memory dies with it, so the rollback state must live
// with the master.
type ckptState struct {
	tick  uint64
	seq   uint64 // checkpoint sequence; deltas name the base they build on
	cuts  []float64
	parts []transport.PartState // indexed by partition, always Full
	have  map[int]bool          // procs whose pieces arrived (while assembling)
}

// coordinator is the control-plane state machine. It runs single-threaded
// over the hub's event stream: the hub's relay goroutines move the data
// plane without ever entering this loop.
type coordinator struct {
	o     Options
	hub   *transport.Hub
	place *Placement
	live  []bool
	seqs  []int // attach sequence per proc; fences stale disconnect events
	gen   int
	cuts  []float64 // strip cuts currently in force (nil: non-strip)

	epoch        int    // barrier counter, for the checkpoint cadence
	lastBoundary uint64 // last barrier tick; rebalance only moves forward

	ckpt    *ckptState // last complete checkpoint
	pending *ckptState // checkpoint being assembled
	stats   map[int]*transport.EpochStats
	finals  map[int]*transport.FinalReport

	// Liveness: the detector itself plus the start times of the rounds
	// currently in flight (zero = round inactive).
	lv          *liveness
	statsSince  time.Time
	ckptSince   time.Time
	finalsSince time.Time

	ckptSeq     uint64 // sequence of the last *ordered* checkpoint
	ckptOrdered int    // periodic checkpoints ordered (keyframe cadence)

	recoveries, rejoins, rebalances, stallDrops, joins int

	ckptBytes                     int64
	ckptFullParts, ckptDeltaParts int
	epochs                        []EpochDecision
}

func (c *coordinator) liveCount() int {
	n := 0
	for _, l := range c.live {
		if l {
			n++
		}
	}
	return n
}

// run consumes hub events until every live worker has reported its final
// state (success) or the run is unrecoverable, waking on the liveness
// interval to ping workers and enforce the stall deadlines.
func (c *coordinator) run() (*Result, error) {
	var timer <-chan time.Time
	if every := c.checkEvery(); every > 0 {
		t := time.NewTicker(every)
		defer t.Stop()
		timer = t.C
	}
	var joins <-chan RegisteredWorker
	if c.o.Registry != nil {
		joins = c.o.Registry.Events() // nil channel otherwise: the case never fires
	}
	for {
		select {
		case w := <-joins:
			if err := c.admit(w); err != nil {
				return nil, err
			}
		case <-c.o.Cancel:
			// Deliberate abort: drop every worker connection (the deferred
			// hub close does it) and report the cancellation. Workers
			// unwind through conn errors or their coordinator watchdogs.
			return nil, ErrCanceled
		case ev, ok := <-c.hub.Events():
			if !ok {
				return nil, fmt.Errorf("distrib: hub closed unexpectedly")
			}
			res, err := c.onEvent(ev)
			if res != nil || err != nil {
				return res, err
			}
		case now := <-timer:
			if err := c.onTimer(now); err != nil {
				return nil, err
			}
		}
	}
}

// checkEvery is the liveness wake-up period: the heartbeat interval when
// pinging, otherwise often enough to enforce the epoch deadline.
func (c *coordinator) checkEvery() time.Duration {
	if c.o.Heartbeat > 0 {
		return c.o.Heartbeat
	}
	if c.o.EpochTimeout > 0 {
		return c.o.EpochTimeout / 4
	}
	return 0
}

// onEvent handles one hub event. A non-nil Result ends the run.
func (c *coordinator) onEvent(ev transport.HubEvent) (*Result, error) {
	if ev.Frame == nil {
		if ev.Seq != 0 && ev.Seq < c.seqs[ev.Src] {
			return nil, nil // a connection we already replaced; the rejoined worker is fine
		}
		return nil, c.recoverFrom(ev.Src, ev.Err)
	}
	f := ev.Frame
	if f.Kind == transport.FrameError {
		// An application failure (bad handshake state, engine error) is
		// deterministic: recovery would just replay it. Abort.
		c.hub.Broadcast(&transport.Frame{Kind: transport.FrameError, Gen: c.gen, Err: f.Err})
		return nil, fmt.Errorf("distrib: worker %d failed: %s", ev.Src, f.Err)
	}
	if f.Kind == transport.FramePong {
		// Liveness evidence regardless of generation: a worker applying a
		// restore pongs from the old one, and it is no less alive for it.
		c.lv.pong(ev.Src, time.Now())
		return nil, nil
	}
	if f.Gen != c.gen || !c.live[ev.Src] {
		return nil, nil // stale generation or a zombie; fenced off
	}
	var err error
	switch f.Kind {
	case transport.FrameStats:
		err = c.onStats(ev.Src, f.Stats)
	case transport.FrameCheckpoint:
		err = c.onCheckpoint(ev.Src, f.Ckpt, ev.Bytes)
	case transport.FrameFinal:
		if f.Final == nil || f.Final.Proc != ev.Src {
			err = fmt.Errorf("distrib: worker %d sent a malformed final report", ev.Src)
			break
		}
		if len(c.finals) == 0 {
			c.finalsSince = time.Now()
		}
		c.finals[ev.Src] = f.Final
		if len(c.finals) == c.liveCount() {
			return c.finish()
		}
	default:
		err = &transport.ProtocolError{Kind: f.Kind, Where: fmt.Sprintf("coordinator control loop (worker %d)", ev.Src)}
	}
	return nil, err
}

// onTimer is the liveness beat: ping every live worker, then force-drop
// whoever the detector has declared stalled — missed heartbeat window,
// an overdue control-plane round, or a between-barriers laggard — into
// the ordinary recovery path. To the rest of the run a stall-drop is
// indistinguishable from a crash.
func (c *coordinator) onTimer(now time.Time) error {
	var dead []int
	if c.o.Heartbeat > 0 {
		ping := &transport.Frame{Kind: transport.FramePing, Gen: c.gen}
		for p := range c.live {
			if c.live[p] && c.hub.Send(p, ping) != nil {
				dead = append(dead, p)
			}
		}
	}
	stalled := map[int]string{}
	for _, p := range c.lv.silent(c.live, now) {
		stalled[p] = "missed heartbeat window"
	}
	if c.lv.overdue(c.statsSince, now) {
		for p := range c.live {
			if c.live[p] && c.stats[p] == nil {
				stalled[p] = "stats round overdue"
			}
		}
	}
	if c.pending != nil && c.lv.overdue(c.ckptSince, now) {
		for p := range c.live {
			if c.live[p] && !c.pending.have[p] {
				stalled[p] = "checkpoint round overdue"
			}
		}
	}
	if c.lv.overdue(c.finalsSince, now) {
		for p := range c.live {
			if c.live[p] && c.finals[p] == nil {
				stalled[p] = "final report overdue"
			}
		}
	}
	for _, p := range c.lv.laggards(c.live, c.hub.Progress(), now) {
		if _, dup := stalled[p]; !dup && c.live[p] {
			stalled[p] = "phase barrier overdue"
		}
	}
	// Sorted: with several simultaneous stalls the recovery order decides
	// survivor-absorb placement, which must not depend on map iteration.
	for _, p := range detutil.SortedKeys(stalled) {
		why := stalled[p]
		if !c.live[p] {
			continue // a recovery below may have rejoined or absorbed it
		}
		c.stallDrops++
		if err := c.recoverFrom(p, fmt.Errorf("distrib: worker %d stalled: %s", p, why)); err != nil {
			return err
		}
	}
	for _, p := range dead {
		if !c.live[p] {
			continue
		}
		if err := c.recoverFrom(p, fmt.Errorf("distrib: worker %d unreachable at heartbeat", p)); err != nil {
			return err
		}
	}
	return nil
}

func (c *coordinator) finish() (*Result, error) {
	res, err := assemble(c.finals)
	if err != nil {
		return nil, err
	}
	res.Recoveries = c.recoveries
	res.Rejoins = c.rejoins
	res.Rebalances = c.rebalances
	res.StallDrops = c.stallDrops
	res.Joins = c.joins
	traffic := c.hub.Traffic()
	res.RelayedDataFrames = traffic.DataFrames
	res.RelayedDataBytes = traffic.DataBytes
	res.CheckpointBytes = c.ckptBytes
	res.CheckpointFullParts = c.ckptFullParts
	res.CheckpointDeltaParts = c.ckptDeltaParts
	res.Epochs = c.epochs
	return res, nil
}

// onStats records one worker's barrier statistics; when the round is
// complete it makes the master's decisions — rebalance? checkpoint? — and
// answers every live worker with the directive.
func (c *coordinator) onStats(src int, s *transport.EpochStats) error {
	if s == nil {
		return fmt.Errorf("distrib: worker %d sent empty stats", src)
	}
	for _, p := range detutil.SortedKeys(c.stats) {
		if prev := c.stats[p]; prev.Tick != s.Tick {
			return fmt.Errorf("distrib: lockstep violation: worker %d at tick %d, worker %d at %d",
				src, s.Tick, prev.Proc, prev.Tick)
		}
	}
	if len(c.stats) == 0 {
		c.statsSince = time.Now() // the round's deadline starts at its first frame
	}
	c.stats[src] = s
	if len(c.stats) < c.liveCount() {
		return nil
	}
	c.statsSince = time.Time{}
	c.lv.roundReset(time.Now())

	tick := s.Tick
	c.epoch++
	d := &transport.Directive{Tick: tick}
	if c.o.CheckpointEveryEpochs > 0 && c.epoch%c.o.CheckpointEveryEpochs == 0 {
		c.ckptOrdered++
		c.ckptSeq++
		d.Checkpoint = true
		d.CkptSeq = c.ckptSeq
		// Keyframe cadence: the first periodic checkpoint and every Nth
		// after it ship full state; the rest ship deltas the coordinator
		// reassembles on arrival.
		d.CkptFull = c.o.CheckpointFullEvery <= 1 || (c.ckptOrdered-1)%c.o.CheckpointFullEvery == 0
		// The checkpoint captures the cuts in force *before* any rebalance
		// decided at this same barrier — exactly when the in-memory
		// runtime snapshots master state.
		c.pending = &ckptState{
			tick:  tick,
			seq:   c.ckptSeq,
			cuts:  append([]float64(nil), c.cuts...),
			parts: make([]transport.PartState, c.o.Partitions),
			have:  make(map[int]bool),
		}
		for p := range c.pending.parts {
			c.pending.parts[p].Part = -1 // piece not yet received
		}
		c.ckptSince = time.Now()
	}
	if c.o.LoadBalance && tick > c.lastBoundary && c.cuts != nil {
		if cuts, ok := c.planRebalance(); ok {
			d.NewCuts = cuts
			c.cuts = cuts
			c.rebalances++
		}
	}
	c.lastBoundary = tick
	dec := EpochDecision{
		Tick:       tick,
		Rebalanced: d.NewCuts != nil,
		Cuts:       append([]float64(nil), c.cuts...),
	}
	c.epochs = append(c.epochs, dec)
	if c.o.OnEpoch != nil {
		c.o.OnEpoch(dec)
	}
	c.stats = make(map[int]*transport.EpochStats)

	frame := &transport.Frame{Kind: transport.FrameDirective, Gen: c.gen, Dir: d}
	var dead []int
	for p := range c.live {
		if !c.live[p] {
			continue
		}
		if err := c.hub.Send(p, frame); err != nil {
			dead = append(dead, p)
		}
	}
	for _, p := range dead {
		if err := c.recoverFrom(p, fmt.Errorf("distrib: worker %d unreachable at barrier", p)); err != nil {
			return err
		}
	}
	return nil
}

// planRebalance assembles the per-partition balancer inputs from the
// collected statistics and runs the engine's decision procedure.
func (c *coordinator) planRebalance() ([]float64, bool) {
	strips, err := partition.NewStripsFromCuts(c.cuts)
	if err != nil || strips.N() != c.o.Partitions {
		return nil, false
	}
	xs := make([][]float64, c.o.Partitions)
	visited := make([]int64, c.o.Partitions)
	for _, p := range detutil.SortedKeys(c.stats) {
		for _, ps := range c.stats[p].Parts {
			if ps.Part < 0 || ps.Part >= c.o.Partitions {
				continue
			}
			xs[ps.Part] = ps.Xs
			visited[ps.Part] = ps.Visited
		}
	}
	d := engine.PlanRebalance(c.o.Balancer, strips, xs, visited)
	if !d.Apply {
		return nil, false
	}
	return d.NewCuts, true
}

// onCheckpoint files one worker's checkpoint pieces — reassembling delta
// pieces into full state against the previous checkpoint as they arrive —
// and, once every live worker has reported, installs the assembled state
// as the rollback point. Holding only full state coordinator-side keeps
// Restore frames and recovery identical whether the pieces came in whole
// or as deltas.
func (c *coordinator) onCheckpoint(src int, ck *transport.CheckpointMsg, bytes int) error {
	if ck == nil || c.pending == nil || ck.Tick != c.pending.tick {
		return nil // stale piece from an interrupted checkpoint round
	}
	c.ckptBytes += int64(bytes)
	for _, ps := range ck.Parts {
		if ps.Part < 0 || ps.Part >= len(c.pending.parts) {
			return fmt.Errorf("distrib: worker %d checkpointed unknown partition %d", src, ps.Part)
		}
		if ps.Full {
			c.ckptFullParts++
			c.pending.parts[ps.Part] = transport.PartState{
				Part: ps.Part, Visited: ps.Visited, Full: true, Values: ps.Values,
			}
			continue
		}
		// A delta names the base it was computed against; it must be the
		// checkpoint this coordinator actually holds. A mismatch is a
		// protocol bug, not a recoverable condition — replaying would
		// reproduce it.
		if ps.Base != c.ckpt.seq {
			return fmt.Errorf("distrib: worker %d sent a delta against checkpoint %d, coordinator holds %d",
				src, ps.Base, c.ckpt.seq)
		}
		base, ok := c.ckpt.parts[ps.Part].Values.([]*engine.Envelope)
		if !ok && c.ckpt.parts[ps.Part].Values != nil {
			return fmt.Errorf("distrib: checkpoint base for partition %d holds %T", ps.Part, c.ckpt.parts[ps.Part].Values)
		}
		vals, err := engine.ApplyDelta(base, ps.Delta)
		if err != nil {
			return fmt.Errorf("distrib: worker %d partition %d: %w", src, ps.Part, err)
		}
		c.ckptDeltaParts++
		c.pending.parts[ps.Part] = transport.PartState{
			Part: ps.Part, Visited: ps.Visited, Full: true, Values: vals,
		}
	}
	c.pending.have[src] = true
	if len(c.pending.have) < c.liveCount() {
		return nil
	}
	for p, ps := range c.pending.parts {
		if ps.Part != p {
			return fmt.Errorf("distrib: checkpoint at tick %d is missing partition %d", c.pending.tick, p)
		}
	}
	c.pending.have = nil
	c.ckpt, c.pending = c.pending, nil
	c.ckptSince = time.Time{}
	c.lv.roundReset(time.Now())
	if c.o.OnCheckpoint != nil {
		c.o.OnCheckpoint(c.ckpt.tick, livePopulation(c.ckpt.parts))
	}
	return nil
}

// recoverFrom handles a worker connection death: re-admit the worker if
// its daemon still answers (its partitions stay put), otherwise re-place
// its partitions on the survivors; then bump the generation and restore
// every live worker from the last complete checkpoint. A failure while
// broadcasting restores feeds back into another round.
func (c *coordinator) recoverFrom(src int, cause error) error {
	maxRecoveries := c.o.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = DefaultMaxRecoveries
	}
	dead := []int{src}
	for len(dead) > 0 {
		next := dead[:0:0]
		changed := false
		for _, p := range dead {
			if !c.live[p] {
				continue // already handled (e.g. hub event raced a send error)
			}
			if c.recoveries >= maxRecoveries {
				return fmt.Errorf("distrib: giving up after %d recoveries (worker %d: %v)", c.recoveries, p, cause)
			}
			c.live[p] = false
			changed = true
			// Close the old connection before re-dialing. For a
			// socket-error death it is already gone; for a stall-drop it
			// is still open, and closing it both silences the zombie and
			// unwinds the stalled session so the daemon can accept the
			// rejoin dial.
			c.hub.Kill(p)
			newGen := c.gen + 1
			if !c.o.NoRejoin {
				conn, err := c.o.Dial(c.o.Addrs[p], c.o.hello(p, newGen, c.place.Assign()), c.o.RejoinTimeout)
				if err == nil {
					conn.SetWriteTimeout(c.writeTimeout())
					c.live[p] = true
					c.seqs[p] = c.hub.Attach(p, conn)
					c.lv.admit(p, time.Now())
					c.rejoins++
				}
			}
			if !c.live[p] {
				c.place.Reassign(p, c.live)
				if c.o.OnWorkerDown != nil {
					c.o.OnWorkerDown(p, c.o.Addrs[p], cause)
				}
			}
		}
		if !changed {
			return nil
		}
		if c.liveCount() == 0 {
			return fmt.Errorf("distrib: all workers lost (last: %v)", cause)
		}

		// New generation: fence off every in-flight frame of the old one,
		// discard half-assembled barrier state, rewind to the checkpoint.
		c.gen++
		c.recoveries++
		dead = append(next, c.rewind()...)
		cause = fmt.Errorf("distrib: worker lost while broadcasting restore")
	}
	// The rejoin dial above can block this single-threaded loop for the
	// full RejoinTimeout with pongs queued but unprocessed; survivors
	// must not be judged by their pre-recovery timestamps when the timer
	// fires next.
	c.lv.graceAll(c.live, time.Now())
	return nil
}

// rewind restores the fleet onto the current placement from the last
// complete checkpoint under the (already bumped) generation: half-
// assembled barrier state is discarded, the decision log is truncated to
// the restored tick, and every live worker gets a Restore carrying its
// partitions — plus the peer roster in mesh runs, so transports re-fence
// their peer links alongside their generation. Workers whose Restore
// could not be sent are returned for the caller's recovery loop.
func (c *coordinator) rewind() []int {
	c.hub.SetAssign(c.place.Assign())
	c.cuts = append([]float64(nil), c.ckpt.cuts...)
	c.stats = make(map[int]*transport.EpochStats)
	c.finals = make(map[int]*transport.FinalReport)
	c.pending = nil
	c.statsSince, c.ckptSince, c.finalsSince = time.Time{}, time.Time{}, time.Time{}
	c.lv.roundReset(time.Now())
	// The rewind also rolls back decisions made after the checkpoint:
	// truncate the decision log to the restored tick and recount, so
	// Result.Epochs/Rebalances describe what is actually in force.
	kept := c.epochs[:0]
	rebalances := 0
	for _, e := range c.epochs {
		if e.Tick <= c.ckpt.tick {
			kept = append(kept, e)
			if e.Rebalanced {
				rebalances++
			}
		}
	}
	c.epochs = kept
	c.rebalances = rebalances

	assign := c.place.Assign()
	var failed []int
	for p := range c.live {
		if !c.live[p] {
			continue
		}
		rest := &transport.Restore{
			Gen:     c.gen,
			Tick:    c.ckpt.tick,
			Cuts:    append([]float64(nil), c.ckpt.cuts...),
			Assign:  assign,
			Live:    append([]bool(nil), c.live...),
			CkptSeq: c.ckpt.seq,
		}
		if c.o.Mesh {
			rest.Peers = append([]string(nil), c.o.Addrs...)
		}
		for _, q := range c.place.Owned(p) {
			rest.Parts = append(rest.Parts, c.ckpt.parts[q])
		}
		if err := c.hub.Send(p, &transport.Frame{Kind: transport.FrameRestore, Gen: c.gen, Rest: rest}); err != nil {
			failed = append(failed, p)
		}
	}
	return failed
}

// admit places a worker that registered mid-run into the running fleet:
// the coordinator grows its tables, dials the newcomer one generation
// ahead — exactly a rejoin handshake, so the session parks for a Restore
// instead of ticking placeholder state — hands it its fair share of
// partitions through the same Join path a re-admitted worker uses, and
// rewinds everyone onto the grown placement from the last checkpoint.
func (c *coordinator) admit(w RegisteredWorker) error {
	for _, a := range c.o.Addrs {
		if a == w.Addr {
			return nil // already placed, or the initial registration's event
		}
	}
	proc := len(c.o.Addrs)
	c.o.Addrs = append(c.o.Addrs, w.Addr)
	c.live = append(c.live, false)
	c.seqs = append(c.seqs, 0)
	c.hub.Grow(proc + 1)
	c.lv.grow(proc+1, time.Now())

	conn, err := c.o.Dial(w.Addr, c.o.hello(proc, c.gen+1, c.place.Assign()), c.o.DialTimeout)
	if err != nil {
		// Vanished between registering and the dial: forget the slot ever
		// existed so a later registration can try again cleanly.
		c.o.Addrs = c.o.Addrs[:proc]
		c.live = c.live[:proc]
		c.seqs = c.seqs[:proc]
		return nil
	}
	conn.SetWriteTimeout(c.writeTimeout())
	c.live[proc] = true
	c.seqs[proc] = c.hub.Attach(proc, conn)
	c.lv.admit(proc, time.Now())
	c.place.Join(proc, c.live)
	c.joins++

	c.gen++
	failed := c.rewind()
	c.lv.graceAll(c.live, time.Now()) // the dial blocked the loop; see recoverFrom
	for _, p := range failed {
		if err := c.recoverFrom(p, fmt.Errorf("distrib: worker %d lost while admitting worker %d", p, proc)); err != nil {
			return err
		}
	}
	return nil
}

// randomRunID names an anonymous mesh run. Collisions only matter within
// one daemon fleet at one moment, so 64 random bits are plenty.
func randomRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("run-%d", time.Now().UnixNano())
	}
	return "run-" + hex.EncodeToString(b[:])
}

// dialWorker connects to one worker daemon and completes the handshake:
// Hello out, Ack back, with the deadline covering both.
func dialWorker(addr string, h *transport.Hello, timeout time.Duration) (*transport.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(timeout))
	c := transport.NewConn(nc)
	if err := c.Send(&transport.Frame{Kind: transport.FrameHello, Hello: h}); err != nil {
		c.Close()
		return nil, err
	}
	ack, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	if ack.Kind != transport.FrameAck {
		c.Close()
		return nil, fmt.Errorf("handshake: unexpected frame kind %d", ack.Kind)
	}
	if ack.Err != "" {
		c.Close()
		return nil, fmt.Errorf("worker rejected run: %s", ack.Err)
	}
	nc.SetDeadline(time.Time{}) // the run itself is unbounded
	return c, nil
}
