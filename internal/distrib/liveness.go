package distrib

import (
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

// liveness is the coordinator's stall detector. Failure detection used to
// be socket-error-driven only: a worker that died cleanly reset its
// connection and recovery kicked in, but a SIGSTOPped or silently
// partitioned worker kept its socket open and hung the stats→directive
// barrier forever. liveness closes that hole with two clocks:
//
//   - Heartbeat: the coordinator pings every live worker each interval;
//     the worker's transport reader answers with a Pong even mid-phase.
//     A worker silent past the window is declared dead — this catches
//     frozen processes and one-way partitions.
//
//   - Epoch-round deadline: every control-plane round (stats collection,
//     checkpoint assembly, final reports) must complete within the
//     timeout of its first frame; the workers still missing are dropped.
//     For a stall *between* barriers — where no round ever starts because
//     every peer blocks on the laggard's phase marker — the hub's
//     observed marker progress identifies the laggard: it is strictly
//     behind, because the barrier protocol keeps healthy peers within one
//     marker of each other.
//
// With adaptive set (the default when the caller did not pick an explicit
// epoch timeout), the detector auto-tunes both deadlines from the observed
// control-round cadence: an EWMA over the intervals between roundReset
// calls. Tuning only ever *raises* a deadline above its configured base —
// a slow box whose barriers legitimately take tens of seconds (overlapped
// ticks hide compute behind the exchange, so a barrier can carry a whole
// interior pass plus a checkpoint) must not trip a timeout sized for a
// fast one, while the fixed bases keep today's behavior as the floor.
//
// All methods take the current time explicitly, so the bookkeeping is a
// pure function of its inputs and unit-testable without sleeping.
type liveness struct {
	window       time.Duration // max pong silence (0 = heartbeat disabled)
	epochTimeout time.Duration // max round/barrier age (0 = disabled)
	adaptive     bool          // raise deadlines with the observed cadence

	lastPong []time.Time

	// lastAdvance is the last time the data plane provably moved:
	// a marker progress change, a completed round, or a recovery.
	lastAdvance time.Time
	progress    []transport.ProcProgress

	// Observed control-round cadence (EWMA, adaptive mode only).
	cadence   time.Duration
	lastRound time.Time
}

// Deadline multipliers on the observed cadence (adaptive mode). A barrier
// round normally completes within one cadence; epochScale rounds of total
// silence is decisively stuck. The pong window scales gentler: pongs are
// answered mid-phase by the transport reader, and only the coordinator's
// single-threaded loop chewing a big round delays their processing.
const (
	epochScale = 8
	pongScale  = 2
)

func newLiveness(procs int, window, epochTimeout time.Duration, adaptive bool, now time.Time) *liveness {
	l := &liveness{
		window:       window,
		epochTimeout: epochTimeout,
		adaptive:     adaptive,
		lastPong:     make([]time.Time, procs),
		lastAdvance:  now,
		progress:     make([]transport.ProcProgress, procs),
	}
	for i := range l.lastPong {
		l.lastPong[i] = now
	}
	return l
}

// epochDeadline is the effective round/barrier deadline: the configured
// base, raised (never lowered) to epochScale observed cadences.
func (l *liveness) epochDeadline() time.Duration {
	if l.adaptive {
		if d := epochScale * l.cadence; d > l.epochTimeout {
			return d
		}
	}
	return l.epochTimeout
}

// pongWindow is the effective heartbeat-silence window: the configured
// base, raised (never lowered) to pongScale observed cadences.
func (l *liveness) pongWindow() time.Duration {
	if l.adaptive {
		if d := pongScale * l.cadence; d > l.window {
			return d
		}
	}
	return l.window
}

// grow widens the detector to procs worker slots (a mid-run join); new
// slots start with fresh clocks.
func (l *liveness) grow(procs int, now time.Time) {
	for len(l.lastPong) < procs {
		l.lastPong = append(l.lastPong, now)
		l.progress = append(l.progress, transport.ProcProgress{})
	}
}

// admit resets a worker's clocks when it (re)joins: a fresh connection
// earns a fresh grace period.
func (l *liveness) admit(p int, now time.Time) {
	l.lastPong[p] = now
	l.progress[p] = transport.ProcProgress{}
	l.lastAdvance = now
}

// pong records heartbeat evidence from worker p.
func (l *liveness) pong(p int, now time.Time) {
	l.lastPong[p] = now
}

// graceAll restarts every live worker's heartbeat clock. The control
// loop is single-threaded: a long synchronous step — the rejoin dial
// during a recovery can block for the full RejoinTimeout — stops pings
// and pong processing alike, so judging survivors by pre-blockage
// timestamps right after it would stall-drop healthy workers. Call it
// whenever the loop resumes from such a step.
func (l *liveness) graceAll(live []bool, now time.Time) {
	for p, alive := range live {
		if alive {
			l.lastPong[p] = now
		}
	}
	l.lastAdvance = now
}

// roundReset marks control-plane progress (a completed round, a recovery,
// a directive answered): the barrier clock starts over, and adaptive mode
// folds the interval since the previous round into the cadence EWMA. A
// recovery's round inflates one sample (it includes the rejoin dial);
// the 1/4-weight EWMA washes it out within a few ordinary rounds, and in
// the meantime the deadlines are merely more forgiving.
func (l *liveness) roundReset(now time.Time) {
	if l.adaptive && !l.lastRound.IsZero() {
		if iv := now.Sub(l.lastRound); iv > 0 {
			if l.cadence == 0 {
				l.cadence = iv
			} else {
				l.cadence = (3*l.cadence + iv) / 4
			}
		}
	}
	l.lastRound = now
	l.lastAdvance = now
}

// silent returns the live workers whose last Pong is older than the
// (effective) heartbeat window.
func (l *liveness) silent(live []bool, now time.Time) []int {
	if l.window <= 0 {
		return nil
	}
	w := l.pongWindow()
	var out []int
	for p, alive := range live {
		if alive && now.Sub(l.lastPong[p]) > w {
			out = append(out, p)
		}
	}
	return out
}

// overdue reports whether a round that started at since has blown the
// (effective) epoch timeout.
func (l *liveness) overdue(since time.Time, now time.Time) bool {
	return l.epochTimeout > 0 && !since.IsZero() && now.Sub(since) > l.epochDeadline()
}

// laggards checks the between-barriers stall case against a fresh marker
// progress snapshot. Any observed advance resets the clock; once the
// timeout passes with no advance at all, the live workers strictly behind
// the most advanced live worker are the stall suspects. When every live
// worker sits at the same marker there is no laggard to blame and nothing
// is returned — the heartbeat and the round deadlines cover those states.
func (l *liveness) laggards(live []bool, cur []transport.ProcProgress, now time.Time) []int {
	if l.epochTimeout <= 0 {
		return nil
	}
	advanced := false
	for p := range cur {
		if l.progress[p] != cur[p] {
			advanced = true
		}
	}
	copy(l.progress, cur)
	if advanced {
		l.lastAdvance = now
		return nil
	}
	if now.Sub(l.lastAdvance) <= l.epochDeadline() {
		return nil
	}
	var max transport.ProcProgress
	first := true
	for p, alive := range live {
		if !alive {
			continue
		}
		if first || max.Before(cur[p]) {
			max = cur[p]
			first = false
		}
	}
	var out []int
	for p, alive := range live {
		if alive && cur[p].Before(max) {
			out = append(out, p)
		}
	}
	return out
}
