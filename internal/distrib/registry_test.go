package distrib

import (
	"net"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(lis)
	t.Cleanup(reg.Close)
	return reg
}

// registerFake dials the registry like a daemon would and announces addr;
// closing the returned connection unregisters it.
func registerFake(t *testing.T, reg *Registry, addr string, sessions int) *transport.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fc := transport.NewConn(nc)
	t.Cleanup(func() { fc.Close() })
	err = fc.Send(&transport.Frame{Kind: transport.FrameRegister, Reg: &transport.Registration{
		Addr: addr, Caps: transport.SupportedCaps(), Sessions: sessions,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return fc
}

func waitWorkers(t *testing.T, reg *Registry, n int) []RegisteredWorker {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := reg.Workers()
		if len(ws) == n {
			return ws
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never settled at %d workers: %v", n, ws)
		}
		time.Sleep(time.Millisecond)
	}
}

// Await gates on fleet width and returns addresses in announcement order;
// a dropped registration connection unregisters its worker.
func TestRegistryAwaitAndUnregister(t *testing.T) {
	reg := newTestRegistry(t)

	done := make(chan []string, 1)
	go func() {
		addrs, err := reg.Await(2, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- addrs
	}()

	registerFake(t, reg, "10.0.0.1:7101", 0)
	waitWorkers(t, reg, 1) // announcement order is arrival order, so serialize
	c2 := registerFake(t, reg, "10.0.0.2:7101", 0)

	select {
	case addrs := <-done:
		if len(addrs) != 2 || addrs[0] != "10.0.0.1:7101" || addrs[1] != "10.0.0.2:7101" {
			t.Fatalf("await returned %v", addrs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Await never returned")
	}

	// Dropping a daemon's registration connection unregisters it: a dead
	// daemon must not be handed to the next run.
	c2.Close()
	ws := waitWorkers(t, reg, 1)
	if ws[0].Addr != "10.0.0.1:7101" {
		t.Fatalf("survivor = %v", ws[0])
	}
}

// Await times out with a sized error instead of hanging when the fleet
// never reaches the requested width.
func TestRegistryAwaitTimeout(t *testing.T) {
	reg := newTestRegistry(t)
	registerFake(t, reg, "10.0.0.1:7101", 0)
	if _, err := reg.Await(2, 100*time.Millisecond); err == nil {
		t.Fatal("Await(2) succeeded with one worker")
	}
}

// Load updates streamed on the registration connection show up in
// Workers(); Events surfaces each *new* registration exactly once.
func TestRegistryLoadUpdatesAndEvents(t *testing.T) {
	reg := newTestRegistry(t)
	fc := registerFake(t, reg, "10.0.0.1:7101", 1)

	select {
	case ev := <-reg.Events():
		if ev.Addr != "10.0.0.1:7101" {
			t.Fatalf("event for %q", ev.Addr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no registration event")
	}

	// A load update must not re-announce the worker.
	err := fc.Send(&transport.Frame{Kind: transport.FrameRegister, Reg: &transport.Registration{
		Addr: "10.0.0.1:7101", Sessions: 3, PeerLinks: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := reg.Workers()
		if len(ws) == 1 && ws[0].Sessions == 3 && ws[0].PeerLinks == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load update never landed: %v", ws)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case ev := <-reg.Events():
		t.Fatalf("load update produced a spurious event: %v", ev)
	default:
	}
}

// The real daemon loop end to end: ServeWith with Register announces the
// listener's own address and keeps the registration alive until the
// daemon stops.
func TestRegistryDaemonAnnounces(t *testing.T) {
	reg := newTestRegistry(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeWith(lis, ServeOptions{Register: reg.Addr()})

	addrs, err := reg.Await(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != lis.Addr().String() {
		t.Fatalf("announced %q, listening on %q", addrs[0], lis.Addr())
	}
	ws := reg.Workers()
	if len(ws[0].Caps) == 0 {
		t.Error("daemon announced no capabilities")
	}

	// Stopping the daemon closes its registration connection, which
	// unregisters it.
	lis.Close()
	waitWorkers(t, reg, 0)
}
