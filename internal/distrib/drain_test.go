package distrib

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

// drainWorker is one in-process worker daemon whose Drain channel the test
// controls. joined closes when the worker's first session attaches, so the
// test can drain it provably mid-run.
type drainWorker struct {
	addr   string
	drain  chan struct{}
	served chan error // ServeWith's return value
	joined chan struct{}
}

func startDrainWorker(t *testing.T) *drainWorker {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	w := &drainWorker{
		addr:   lis.Addr().String(),
		drain:  make(chan struct{}),
		served: make(chan error, 1),
		joined: make(chan struct{}),
	}
	var once sync.Once
	go func() {
		w.served <- ServeWith(lis, ServeOptions{
			Drain: w.drain,
			Wrap: func(tr transport.Transport, h *transport.Hello) transport.Transport {
				once.Do(func() { close(w.joined) })
				return tr
			},
		})
	}()
	return w
}

// The graceful-shutdown satellite: draining a worker mid-run must (1)
// finish the in-flight epoch through its barrier and return nil from
// ServeWith — a clean daemon exit — and (2) read as a death at an epoch
// boundary to the coordinator, which recovers the run on the survivor
// bit-identically to an undrained run.
func TestWorkerDrainMidRunRecovers(t *testing.T) {
	const (
		agents = 120
		seed   = uint64(31)
		parts  = 4
		ticks  = 300
		epoch  = 5
	)
	victim := startDrainWorker(t)
	addrs := []string{startWorkers(t, 1)[0], victim.addr}

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(Options{
			Addrs:    addrs,
			Scenario: "epidemic",
			Agents:   agents, Seed: seed,
			Partitions: parts, Ticks: ticks,
			Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, RejoinTimeout: 500 * time.Millisecond},
		})
		done <- outcome{res, err}
	}()

	select {
	case <-victim.joined:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never joined the run")
	}
	time.Sleep(20 * time.Millisecond)
	close(victim.drain)

	select {
	case err := <-victim.served:
		if err != nil {
			t.Fatalf("draining worker exited with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drained worker never exited: the epoch barrier did not release it")
	}

	var got outcome
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish after the drain")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	res := got.res
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1 (was the drain too late?)", res.Recoveries)
	}
	if res.Procs != 1 {
		t.Errorf("procs = %d, want the 1 survivor", res.Procs)
	}

	want := memReference(t, "epidemic", agents, 0, seed, parts, ticks)
	if len(res.Agents) != len(want) {
		t.Fatalf("population sizes differ: drained %d vs mem %d", len(res.Agents), len(want))
	}
	for i := range want {
		if !want[i].Equal(res.Agents[i]) {
			t.Fatalf("agent %d differs after drain recovery:\n  mem: %v\n  got: %v",
				want[i].ID, want[i], res.Agents[i])
		}
	}
}

// A multi-run worker drains every session it hosts: two concurrent runs
// share the draining worker, and both coordinators must recover their own
// run on the survivor, each bit-identical to its unfailed reference. This
// is the shared-worker failure domain of the bracesimd fleet, driven
// through the graceful path.
func TestWorkerDrainSharedByTwoRuns(t *testing.T) {
	const (
		parts = 4
		ticks = 200
		epoch = 5
	)
	victim := startDrainWorker(t)
	survivor := startWorkers(t, 1)[0] // single-session: serves run A only
	survivorB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { survivorB.Close() })
	go ServeWith(survivorB, ServeOptions{})

	type job struct {
		scenario string
		agents   int
		seed     uint64
		addrs    []string
	}
	jobs := []job{
		{"epidemic", 120, 31, []string{survivor, victim.addr}},
		{"fish", 100, 77, []string{survivorB.Addr().String(), victim.addr}},
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make([]chan outcome, len(jobs))
	for i, j := range jobs {
		done[i] = make(chan outcome, 1)
		i, j := i, j
		go func() {
			res, err := Run(Options{
				Addrs:    j.addrs,
				RunID:    j.scenario,
				Scenario: j.scenario,
				Agents:   j.agents, Seed: j.seed,
				Partitions: parts, Ticks: ticks,
				Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, RejoinTimeout: 500 * time.Millisecond},
			})
			done[i] <- outcome{res, err}
		}()
	}

	select {
	case <-victim.joined:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never joined")
	}
	time.Sleep(30 * time.Millisecond)
	close(victim.drain)

	select {
	case err := <-victim.served:
		if err != nil {
			t.Fatalf("draining worker exited with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("shared worker never finished draining both sessions")
	}

	for i, j := range jobs {
		var got outcome
		select {
		case got = <-done[i]:
		case <-time.After(120 * time.Second):
			t.Fatalf("run %s did not finish after the shared drain", j.scenario)
		}
		if got.err != nil {
			t.Fatalf("run %s: %v", j.scenario, got.err)
		}
		if got.res.Ticks != ticks {
			t.Fatalf("run %s ticks = %d, want %d", j.scenario, got.res.Ticks, ticks)
		}
		want := memReference(t, j.scenario, j.agents, 0, j.seed, parts, ticks)
		if len(got.res.Agents) != len(want) {
			t.Fatalf("run %s: population sizes differ: %d vs %d", j.scenario, len(got.res.Agents), len(want))
		}
		for k := range want {
			if !want[k].Equal(got.res.Agents[k]) {
				t.Fatalf("run %s agent %d differs after shared drain:\n  mem: %v\n  got: %v",
					j.scenario, want[k].ID, want[k], got.res.Agents[k])
			}
		}
	}
}

// Draining an idle worker (no sessions) exits immediately and cleanly.
func TestWorkerDrainIdle(t *testing.T) {
	w := startDrainWorker(t)
	close(w.drain)
	select {
	case err := <-w.served:
		if err != nil {
			t.Fatalf("idle drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle worker did not exit on drain")
	}
}
