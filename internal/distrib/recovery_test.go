package distrib

import (
	"net"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// startChaosWorkers launches n multi-session worker daemons (so a severed
// worker's daemon survives to accept a re-admission dial) whose session
// transports run through wrap.
func startChaosWorkers(t *testing.T, n int, wrap func(tr transport.Transport, h *transport.Hello) transport.Transport) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr().String()
		go ServeWith(lis, ServeOptions{Wrap: wrap})
	}
	return addrs
}

// severProcAt severs the given worker's first-generation session right
// before its n-th phase barrier; re-admitted sessions run unharmed.
func severProcAt(proc, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.SeverAt{Transport: tr, Phase: phase}
		}
		return tr
	}
}

// memEngine runs the in-memory reference with full engine options.
func memEngine(t *testing.T, name string, agents int, extent float64, seed uint64, opts engine.Options) *engine.Distributed {
	t.Helper()
	sp, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	m, pop, err := sp.New(scenario.Config{Agents: agents, Seed: seed, Extent: extent})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Index == 0 {
		opts.Index = spatial.KindKDTree
	}
	eng, err := engine.NewDistributed(m, pop, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func assertSamePopulation(t *testing.T, label string, want, got agent.Population) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: population sizes differ: want %d, got %d", label, len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("%s: agent %d differs:\n  want: %v\n  got:  %v", label, want[i].ID, want[i], got[i])
		}
	}
}

// The fault-injection acceptance oracle: a worker whose connection is
// severed mid-tick is re-admitted from the last coordinated checkpoint and
// the run ends bit-identical to an unfailed in-memory run.
func TestRecoverySeveredWorkerRejoins(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	// Sever proc 1 before phase 15 = mid tick 7, after the checkpoints at
	// ticks 3 and 6 have been committed.
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severProcAt(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.Rejoins < 1 {
		t.Errorf("rejoins = %d, want ≥ 1 (daemon was alive to re-dial)", res.Rejoins)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 after re-admission", res.Procs)
	}
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	assertSamePopulation(t, "severed+rejoined", ref.Agents(), res.Agents)
}

// With re-admission disabled the survivors absorb the dead worker's
// partitions — and the result is still bit-identical.
func TestRecoverySeveredWorkerAbsorbed(t *testing.T) {
	const (
		agents = 90
		extent = 30.0
		seed   = uint64(11)
		parts  = 5
		ticks  = 10
		epoch  = 2
	)
	ref := memEngine(t, "evacuate", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 3, severProcAt(1, 9)), // mid tick 4
		Scenario: "evacuate",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		NoRejoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.Rejoins != 0 {
		t.Errorf("rejoins = %d, want 0 with NoRejoin", res.Rejoins)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 survivors", res.Procs)
	}
	assertSamePopulation(t, "severed+absorbed", ref.Agents(), res.Agents)
}

// A failure with no periodic checkpoints rewinds all the way to tick 0 —
// the coordinator always holds the initial state.
func TestRecoveryFromInitialCheckpoint(t *testing.T) {
	ref := memEngine(t, "epidemic", 60, 30, 7, engine.Options{Workers: 3, Seed: 7, Tunables: Tunables{EpochTicks: 4}})
	if err := ref.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 3, severProcAt(2, 11)), // mid tick 5
		Scenario: "epidemic",
		Agents:   60, Extent: 30, Seed: 7,
		Partitions: 3, Ticks: 8,
		Tunables: Tunables{EpochTicks: 4},
		// CheckpointEveryEpochs: 0 — only the tick-0 state exists.
		NoRejoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	assertSamePopulation(t, "tick0-recovery", ref.Agents(), res.Agents)
}

// Failure recovery composes with coordinator-driven load balancing: the
// final state still matches the unfailed in-memory engine with the same
// balancer (the partitioning trajectory may differ — rebalances are not
// re-decided while re-executing, matching the in-memory master — but
// local-effect state is partition-independent).
func TestRecoveryWithLoadBalance(t *testing.T) {
	bal := partition.Balancer{MigrateCostPerAgent: 1e-9, HorizonTicks: 1000, MinRelativeGain: 0.01}
	ref := memEngine(t, "epidemic", 96, 30, 5, engine.Options{
		Workers: 4, Seed: 5, LoadBalance: true, Balancer: bal,
		Tunables: engine.Tunables{EpochTicks: 3},
	})
	if err := ref.RunTicks(12); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severProcAt(0, 15)),
		Scenario: "epidemic",
		Agents:   96, Extent: 30, Seed: 5,
		Partitions: 4, Ticks: 12,
		Tunables:    Tunables{EpochTicks: 3, CheckpointEveryEpochs: 1},
		LoadBalance: true, Balancer: bal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	assertSamePopulation(t, "lb+recovery", ref.Agents(), res.Agents)
}

// A worker that dies at the same replayed point every generation — a
// flapping link that re-severs after each re-admission — must fail the
// run after the recovery budget instead of looping forever.
func TestRecoveryGivesUpOnFlappingWorker(t *testing.T) {
	flappy := func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == 1 {
			return &transport.SeverAt{Transport: tr, Phase: 3} // every session
		}
		return tr
	}
	_, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, flappy),
		Scenario: "epidemic",
		Agents:   60, Extent: 30, Seed: 7,
		Partitions: 4, Ticks: 8,
		Tunables: Tunables{EpochTicks: 2, CheckpointEveryEpochs: 1, MaxRecoveries: 3},
	})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v, want recovery budget exhaustion", err)
	}
}

// Two workers dying — the second while the run is already recovering from
// the first — must still converge: each death triggers its own rollback,
// and the sole survivor finishes with the correct state.
func TestRecoveryDoubleDeath(t *testing.T) {
	wrap := func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Gen != 1 {
			return tr
		}
		switch h.Proc {
		case 1:
			return &transport.SeverAt{Transport: tr, Phase: 9}
		case 2:
			return &transport.SeverAt{Transport: tr, Phase: 13}
		}
		return tr
	}
	ref := memEngine(t, "epidemic", 90, 30, 13, engine.Options{Workers: 6, Seed: 13, Tunables: Tunables{EpochTicks: 2}})
	if err := ref.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 3, wrap),
		Scenario: "epidemic",
		Agents:   90, Extent: 30, Seed: 13,
		Partitions: 6, Ticks: 10,
		Tunables: Tunables{EpochTicks: 2, CheckpointEveryEpochs: 1},
		NoRejoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 2 {
		t.Errorf("recoveries = %d, want ≥ 2", res.Recoveries)
	}
	if res.Procs != 1 {
		t.Errorf("procs = %d, want 1 survivor", res.Procs)
	}
	assertSamePopulation(t, "double-death", ref.Agents(), res.Agents)
}
