package distrib

import (
	"net"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/transport"
)

// stallProcAt freezes the given worker's first-generation session right
// before its n-th phase barrier — the silent-hang failure mode (SIGSTOP,
// silent partition) the chaos suites could not reproduce before
// transport.StallAt existed. Re-admitted sessions run unharmed.
func stallProcAt(proc, phase int) func(tr transport.Transport, h *transport.Hello) transport.Transport {
	return func(tr transport.Transport, h *transport.Hello) transport.Transport {
		if h.Proc == proc && h.Gen == 1 {
			return &transport.StallAt{Transport: tr, Phase: phase}
		}
		return tr
	}
}

// fastLiveness are the detection knobs the stall suites run with: a
// 100ms×5 heartbeat window so a frozen worker is declared dead in well
// under a second, without being so tight that a loaded CI box trips it
// for healthy workers.
func fastLiveness(o *Options) {
	o.Heartbeat = 100 * time.Millisecond
	o.EpochTimeout = 10 * time.Second
}

// The liveness acceptance oracle: a worker frozen mid-tick — socket open,
// engine silent — used to hang the barrier forever. Now the missed
// heartbeats force-drop it, its daemon is re-admitted from the last
// coordinated checkpoint, and the run ends bit-identical to an unfailed
// in-memory run.
func TestStallDetectedAndRejoined(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(5)
		parts  = 4
		ticks  = 12
		epoch  = 3
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	// Freeze proc 1 before phase 15 = mid tick 7, after the checkpoints
	// at ticks 3 and 6 have been committed.
	o := Options{
		Addrs:    startChaosWorkers(t, 2, stallProcAt(1, 15)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1 (no socket error ever happened)", res.StallDrops)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.Rejoins < 1 {
		t.Errorf("rejoins = %d, want ≥ 1 (daemon was alive to re-dial)", res.Rejoins)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 after re-admission", res.Procs)
	}
	if res.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", res.Ticks, ticks)
	}
	assertSamePopulation(t, "stalled+rejoined", ref.Agents(), res.Agents)
}

// With re-admission disabled the survivors absorb the frozen worker's
// partitions — and the result is still bit-identical.
func TestStallDetectedAndAbsorbed(t *testing.T) {
	const (
		agents = 90
		extent = 30.0
		seed   = uint64(11)
		parts  = 5
		ticks  = 10
		epoch  = 2
	)
	ref := memEngine(t, "evacuate", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	o := Options{
		Addrs:    startChaosWorkers(t, 3, stallProcAt(1, 9)), // mid tick 4
		Scenario: "evacuate",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		NoRejoin: true,
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1", res.StallDrops)
	}
	if res.Procs != 2 {
		t.Errorf("procs = %d, want 2 survivors", res.Procs)
	}
	assertSamePopulation(t, "stalled+absorbed", ref.Agents(), res.Agents)
}

// A stall while the checkpoint round is assembling: the directive went
// out, one worker froze before shipping its pieces. The round deadline
// (not just the heartbeat) must break this — and the half-assembled
// checkpoint must be discarded, recovery restoring from the previous
// complete one.
func TestStallDuringCheckpointRound(t *testing.T) {
	const (
		agents = 80
		extent = 30.0
		seed   = uint64(9)
		parts  = 4
		ticks  = 10
		epoch  = 2
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	// Local-effect scenarios run 2 phases/tick: phase 8 ends tick 4 — the
	// barrier at the tick-4 epoch. The stall hits the 8th EndPhase, i.e.
	// the worker answers the barrier's stats but freezes at the next
	// phase… to freeze *inside* the checkpoint round we instead stall the
	// phase right after the directive is applied; either way no socket
	// error ever surfaces and liveness must end the hang.
	o := Options{
		Addrs:    startChaosWorkers(t, 2, stallProcAt(0, 8)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1},
		NoRejoin: true,
	}
	fastLiveness(&o)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallDrops < 1 {
		t.Errorf("stallDrops = %d, want ≥ 1", res.StallDrops)
	}
	assertSamePopulation(t, "stall-at-checkpoint", ref.Agents(), res.Agents)
}

// The worker-side watchdog: a session whose coordinator goes silent (no
// frames, no heartbeat pings) is aborted after CoordTimeout instead of
// holding the daemon hostage forever.
func TestWorkerCoordinatorWatchdog(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go ServeWith(lis, ServeOptions{CoordTimeout: 300 * time.Millisecond})

	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := transport.NewConn(nc)
	h := &transport.Hello{
		Proto: transport.ProtoVersion, Proc: 0, NumProcs: 1,
		Partitions: 1, Assign: []int{0}, Gen: 1,
		Scenario: "epidemic", Agents: 2000, Seed: 1, Ticks: 1 << 30,
		EpochTicks: 1 << 29,
		Index:      "kd",
	}
	if err := fc.Send(&transport.Frame{Kind: transport.FrameHello, Hello: h}); err != nil {
		t.Fatal(err)
	}
	ack, err := fc.Recv()
	if err != nil || ack.Kind != transport.FrameAck || ack.Err != "" {
		t.Fatalf("handshake: %+v, %v", ack, err)
	}
	// Go silent. The run is far too long to finish; only the watchdog can
	// end the session, which surfaces here as the connection dying.
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := fc.Recv(); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case <-done:
		// Session aborted: the daemon freed itself from a dead coordinator.
	case <-time.After(15 * time.Second):
		t.Fatal("worker session outlived a silent coordinator")
	}
}

// Incremental checkpoints ship measurably fewer bytes than full-state
// shipping on the fish workload, with identical final state — the
// tentpole's A/B oracle, logged through Result's checkpoint metrics.
func TestIncrementalCheckpointBytesOnFish(t *testing.T) {
	const (
		agents = 80
		seed   = uint64(3)
		parts  = 4
		ticks  = 12
		epoch  = 2
	)
	run := func(fullEvery int) *Result {
		t.Helper()
		res, err := Run(Options{
			Addrs:    startWorkers(t, 2),
			Scenario: "fish",
			Agents:   agents, Seed: seed,
			Partitions: parts, Ticks: ticks,
			Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, CheckpointFullEvery: fullEvery},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(1)
	delta := run(0) // default keyframe cadence: 1 keyframe, then deltas

	ref := memEngine(t, "fish", agents, 0, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	assertSamePopulation(t, "full-ckpt run", ref.Agents(), full.Agents)
	assertSamePopulation(t, "delta-ckpt run", ref.Agents(), delta.Agents)

	if full.CheckpointDeltaParts != 0 {
		t.Errorf("full run shipped %d delta parts, want 0", full.CheckpointDeltaParts)
	}
	if delta.CheckpointDeltaParts == 0 {
		t.Error("incremental run shipped no delta parts")
	}
	t.Logf("checkpoint bytes: full=%d incremental=%d (%.1f%%), parts full=%d delta=%d",
		full.CheckpointBytes, delta.CheckpointBytes,
		100*float64(delta.CheckpointBytes)/float64(full.CheckpointBytes),
		delta.CheckpointFullParts, delta.CheckpointDeltaParts)
	if delta.CheckpointBytes*100 >= full.CheckpointBytes*95 {
		t.Errorf("incremental checkpoints saved <5%%: full=%dB incremental=%dB",
			full.CheckpointBytes, delta.CheckpointBytes)
	}
}

// Incremental checkpoints compose with load balancing and recovery: a
// severed worker is restored from a delta-assembled checkpoint (the
// default keyframe cadence leaves every checkpoint after the first as a
// delta), and the run still ends bit-identical to the in-memory engine.
func TestRecoveryFromDeltaAssembledCheckpoint(t *testing.T) {
	const (
		agents = 96
		extent = 30.0
		seed   = uint64(19)
		parts  = 4
		ticks  = 14
		epoch  = 2
	)
	ref := memEngine(t, "epidemic", agents, extent, seed, engine.Options{
		Workers: parts, Seed: seed,
		Tunables: engine.Tunables{EpochTicks: epoch},
	})
	if err := ref.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	// Sever at phase 21 = mid tick 10: checkpoints at ticks 2..8 are all
	// deltas after the tick-2 keyframe, so the restore state is the
	// product of four delta applications.
	res, err := Run(Options{
		Addrs:    startChaosWorkers(t, 2, severProcAt(1, 21)),
		Scenario: "epidemic",
		Agents:   agents, Extent: extent, Seed: seed,
		Partitions: parts, Ticks: ticks,
		// keyframe only at the first checkpoint
		Tunables: Tunables{EpochTicks: epoch, CheckpointEveryEpochs: 1, CheckpointFullEvery: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥ 1", res.Recoveries)
	}
	if res.CheckpointDeltaParts == 0 {
		t.Error("run shipped no delta parts; the test is not exercising delta assembly")
	}
	assertSamePopulation(t, "delta-assembled recovery", ref.Agents(), res.Agents)
}
