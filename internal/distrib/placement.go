package distrib

import (
	"github.com/bigreddata/brace/internal/transport"
)

// Placement is the coordinator-owned partition→process assignment. It
// starts as the contiguous blocks every BRACE run used before the control
// plane existed (so a failure-free run is routed identically to the
// legacy scheme) and mutates as workers die, are re-admitted, or join:
// the coordinator re-places a dead worker's partitions on the survivors
// and hands a joining worker its fair share back. All decisions are
// deterministic — ties break toward the lowest process index — because
// the assignment is broadcast state that every process must agree on.
type Placement struct {
	assign []int
	procs  int
}

// NewPlacement builds the initial contiguous-block placement of parts
// partitions over procs processes. procs may exceed parts, in which case
// trailing processes own nothing (they still participate in barriers).
func NewPlacement(parts, procs int) *Placement {
	assign := make([]int, parts)
	for p := range assign {
		assign[p] = transport.OwnerProc(p, parts, procs)
	}
	return &Placement{assign: assign, procs: procs}
}

// Procs returns the process count the placement spans.
func (pl *Placement) Procs() int { return pl.procs }

// Assign returns a copy of the partition→process table.
func (pl *Placement) Assign() []int { return append([]int(nil), pl.assign...) }

// Owned returns the partitions assigned to proc, ascending (non-nil even
// when empty, matching ownedParts).
func (pl *Placement) Owned(proc int) []int {
	return ownedParts(pl.assign, proc)
}

// Counts returns the number of partitions per process.
func (pl *Placement) Counts() []int {
	counts := make([]int, pl.procs)
	for _, pr := range pl.assign {
		counts[pr]++
	}
	return counts
}

// Reassign moves every partition owned by the dead process onto the live
// ones, fewest-partitions-first (ties to the lowest process index), and
// returns the moved partitions. live[dead] must already be false. With no
// live process the assignment is left untouched (the run is lost; the
// caller errors out).
func (pl *Placement) Reassign(dead int, live []bool) []int {
	anyLive := false
	for pr, l := range live {
		if l && pr != dead {
			anyLive = true
		}
	}
	if !anyLive {
		return nil
	}
	counts := pl.Counts()
	var moved []int
	for p, pr := range pl.assign {
		if pr != dead {
			continue
		}
		to := -1
		for cand := 0; cand < pl.procs; cand++ {
			if cand == dead || !live[cand] {
				continue
			}
			if to < 0 || counts[cand] < counts[to] {
				to = cand
			}
		}
		pl.assign[p] = to
		counts[to]++
		moved = append(moved, p)
	}
	return moved
}

// Join hands a (re-)joining process its fair share: partitions migrate
// from the most-loaded live processes (ties to the lowest index, highest
// partition number first within a donor) until the joiner holds
// ⌊parts/live⌋ partitions or no donor can spare one. It returns the moved
// partitions. live[proc] must already be true. A proc index beyond the
// placement's current span grows it (a genuinely new worker).
func (pl *Placement) Join(proc int, live []bool) []int {
	if proc >= pl.procs {
		pl.procs = proc + 1
	}
	liveN := 0
	for _, l := range live {
		if l {
			liveN++
		}
	}
	if liveN == 0 {
		return nil
	}
	target := len(pl.assign) / liveN
	counts := pl.Counts()
	var moved []int
	for counts[proc] < target {
		from := -1
		for cand := 0; cand < pl.procs; cand++ {
			if cand == proc || !live[cand] || counts[cand] == 0 {
				continue
			}
			if from < 0 || counts[cand] > counts[from] {
				from = cand
			}
		}
		if from < 0 || counts[from] <= counts[proc]+1 {
			break // nothing to gain from another move
		}
		give := -1
		for p, pr := range pl.assign {
			if pr == from {
				give = p // highest partition index owned by the donor
			}
		}
		pl.assign[give] = proc
		counts[from]--
		counts[proc]++
		moved = append(moved, give)
	}
	return moved
}
