// Worker discovery: instead of pre-wiring -worker-addrs into every
// coordinator, worker daemons dial a registry socket and announce the
// address they serve sessions on (bracesim-worker -register). The
// coordinator (or the bracesimd daemon) owns the registry, waits for the
// fleet it needs, and keeps listening: a worker that registers mid-run is
// admitted into a running mesh through the same placement path a
// re-admitted worker uses.
package distrib

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/transport"
)

// RegisteredWorker is one announced worker daemon as the registry sees it.
type RegisteredWorker struct {
	// Addr is the address the daemon serves coordinator and peer sessions
	// on — what a coordinator dials and what peer rosters carry.
	Addr string
	// Caps is the daemon's capability set from its announcement.
	Caps []string
	// Sessions and PeerLinks are the daemon's self-reported load, updated
	// as long as its registration connection stays up.
	Sessions  int
	PeerLinks int
}

// Registry accepts worker registrations on a listener. Each daemon keeps
// its registration connection open and streams load updates on it; the
// connection dropping unregisters the worker (a dead daemon must not be
// handed to new runs). Await gates run start on fleet width, and Events
// surfaces each new registration exactly once to whoever owns the
// registry — the coordinator (mid-run admission) or the service manager
// (fleet growth), never both.
type Registry struct {
	lis net.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*RegisteredWorker
	order   []string
	events  chan RegisteredWorker
	closed  bool
}

// NewRegistry starts a registry on lis and returns it; Close stops the
// accept loop and drops every registration connection.
func NewRegistry(lis net.Listener) *Registry {
	r := &Registry{
		lis:     lis,
		workers: make(map[string]*RegisteredWorker),
		events:  make(chan RegisteredWorker, 64),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.acceptLoop()
	return r
}

// Addr is the registry's listen address — what workers pass to -register.
func (r *Registry) Addr() string { return r.lis.Addr().String() }

func (r *Registry) acceptLoop() {
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			return
		}
		go r.serve(conn)
	}
}

// serve handles one daemon's registration connection: an announcing
// Registration frame, then load updates until the connection dies.
func (r *Registry) serve(conn net.Conn) {
	fc := transport.NewConn(conn)
	defer fc.Close()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := fc.Recv()
	if err != nil || f.Kind != transport.FrameRegister || f.Reg == nil || f.Reg.Addr == "" {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	addr := f.Reg.Addr

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	w, known := r.workers[addr]
	if !known {
		w = &RegisteredWorker{Addr: addr}
		r.workers[addr] = w
		r.order = append(r.order, addr)
	}
	w.Caps = append([]string(nil), f.Reg.Caps...)
	w.Sessions, w.PeerLinks = f.Reg.Sessions, f.Reg.PeerLinks
	ev := *w
	r.cond.Broadcast()
	r.mu.Unlock()
	if !known {
		select {
		case r.events <- ev:
		default: // owner not listening; Await/Workers still see it
		}
	}

	for {
		f, err := fc.Recv()
		if err != nil {
			break
		}
		if f.Kind != transport.FrameRegister || f.Reg == nil {
			break
		}
		r.mu.Lock()
		w.Sessions, w.PeerLinks = f.Reg.Sessions, f.Reg.PeerLinks
		r.mu.Unlock()
	}

	// The daemon is gone: unregister so no new run is placed on it.
	// (Running coordinators notice through their own liveness machinery.)
	r.mu.Lock()
	if r.workers[addr] == w {
		delete(r.workers, addr)
		for i, a := range r.order {
			if a == addr {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
}

// Workers snapshots the currently registered daemons in announcement
// order.
func (r *Registry) Workers() []RegisteredWorker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RegisteredWorker, 0, len(r.order))
	for _, a := range r.order {
		out = append(out, *r.workers[a])
	}
	return out
}

// Events surfaces each new registration once, to the registry's single
// owner. The channel is buffered; Await/Workers remain the source of
// truth if the owner falls behind.
func (r *Registry) Events() <-chan RegisteredWorker { return r.events }

// Await blocks until n workers are registered (returning their addresses,
// announcement-ordered) or the timeout elapses.
func (r *Registry) Await(n int, timeout time.Duration) ([]string, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.order) < n && !r.closed && time.Now().Before(deadline) {
		r.cond.Wait()
	}
	if len(r.order) < n {
		return nil, fmt.Errorf("distrib: %d of %d workers registered within %v", len(r.order), n, timeout)
	}
	return append([]string(nil), r.order[:n]...), nil
}

// Close stops the registry.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	_ = r.lis.Close()
}
