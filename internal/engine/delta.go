// Differential partition state: the codec behind incremental checkpoints.
//
// A full checkpoint ships every partition's complete envelope set every k
// epochs; for large worlds most of those bytes re-describe state the
// coordinator already holds. DiffPartition instead encodes a partition
// against a baseline — the same partition at the previous checkpoint — at
// *field* granularity: an agent whose position moved but whose class and
// identity effects are untouched ships only the moved floats plus a
// bitmask. The encoding lists every current envelope in order (unchanged
// ones cost a couple of bytes), so ApplyDelta reconstructs not just the
// same multiset but the exact slice order — a restore from a
// delta-assembled checkpoint is bit-identical to one from a full
// checkpoint, which the recovery suites assert.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/bigreddata/brace/internal/agent"
)

// deltaVersion guards the blob layout; ApplyDelta rejects others.
const deltaVersion = 1

// Per-record kinds: the envelope is byte-identical to the baseline's, is
// patched field-by-field against it, or is shipped whole (new agent, or a
// shape the patch encoding cannot express).
const (
	deltaSame byte = iota
	deltaPatch
	deltaFresh
)

// deltaPatch flag bits.
const (
	patchDead    byte = 1 << 0 // Dead flag flipped
	patchReplica byte = 1 << 1 // Replica flag flipped
	patchSrcPart byte = 1 << 2 // SrcPart changed (uvarint follows)
)

// deltaFresh flag bits.
const (
	freshDead    byte = 1 << 0
	freshReplica byte = 1 << 1
)

// maxMaskFields bounds the per-vector change bitmask; schemas wider than
// 64 fields fall back to fresh records.
const maxMaskFields = 64

// CloneEnvelopes deep-copies a partition's envelopes — the baseline an
// incremental checkpoint diffs against must not alias live engine state.
func CloneEnvelopes(envs []*Envelope) []*Envelope {
	out := make([]*Envelope, len(envs))
	for i, e := range envs {
		out[i] = cloneEnvelope(e)
	}
	return out
}

// DiffPartition encodes cur as a delta against base. It returns ok=false
// when the pair cannot be delta-encoded at all (duplicate agent IDs make
// the baseline lookup ambiguous — replicas present mid-tick, say); the
// caller then ships full state. Envelopes absent from cur are implicitly
// removed: ApplyDelta rebuilds exactly the encoded records.
func DiffPartition(base, cur []*Envelope) (delta []byte, ok bool) {
	baseIdx := make(map[uint64]*Envelope, len(base))
	for _, e := range base {
		if e == nil {
			return nil, false
		}
		if _, dup := baseIdx[uint64(e.A.ID)]; dup {
			return nil, false
		}
		baseIdx[uint64(e.A.ID)] = e
	}
	seen := make(map[uint64]bool, len(cur))
	buf := make([]byte, 0, 64+32*len(cur))
	buf = append(buf, deltaVersion)
	buf = binary.AppendUvarint(buf, uint64(len(cur)))
	for _, e := range cur {
		if e == nil {
			return nil, false
		}
		id := uint64(e.A.ID)
		if seen[id] {
			return nil, false
		}
		seen[id] = true
		buf = binary.AppendUvarint(buf, id)
		b, exists := baseIdx[id]
		if !exists || !patchable(b, e) {
			buf = appendFresh(buf, e)
			continue
		}
		sMask := changedMask(b.A.State, e.A.State)
		eMask := changedMask(b.A.Effect, e.A.Effect)
		var flags byte
		if b.A.Dead != e.A.Dead {
			flags |= patchDead
		}
		if b.Replica != e.Replica {
			flags |= patchReplica
		}
		if b.SrcPart != e.SrcPart {
			flags |= patchSrcPart
		}
		if flags == 0 && sMask == 0 && eMask == 0 {
			buf = append(buf, deltaSame)
			continue
		}
		buf = append(buf, deltaPatch, flags)
		if flags&patchSrcPart != 0 {
			buf = binary.AppendUvarint(buf, uint64(uint32(e.SrcPart)))
		}
		buf = appendMasked(buf, sMask, e.A.State)
		buf = appendMasked(buf, eMask, e.A.Effect)
	}
	return buf, true
}

// ApplyDelta reconstructs the partition state a delta encodes on top of
// its baseline. The result shares nothing with base: patched and
// unchanged envelopes are cloned, so the baseline stays a valid rollback
// point even if the new checkpoint is later discarded.
func ApplyDelta(base []*Envelope, delta []byte) ([]*Envelope, error) {
	baseIdx := make(map[uint64]*Envelope, len(base))
	for _, e := range base {
		// The base may have arrived off the wire (a worker's earlier
		// full checkpoint frame): validate it like DiffPartition does
		// instead of trusting it — a nil or duplicate entry must be an
		// error, not a panic in the coordinator.
		if e == nil {
			return nil, fmt.Errorf("engine: delta base contains a nil envelope")
		}
		if _, dup := baseIdx[uint64(e.A.ID)]; dup {
			return nil, fmt.Errorf("engine: delta base has duplicate agent %d", e.A.ID)
		}
		baseIdx[uint64(e.A.ID)] = e
	}
	r := &deltaReader{buf: delta}
	if v := r.byte(); v != deltaVersion {
		return nil, fmt.Errorf("engine: delta version %d, want %d", v, deltaVersion)
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(delta)) { // a record costs ≥ 2 bytes; cheap sanity bound
		return nil, fmt.Errorf("engine: delta claims %d records in %d bytes", n, len(delta))
	}
	out := make([]*Envelope, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		id := r.uvarint()
		kind := r.byte()
		switch kind {
		case deltaSame, deltaPatch:
			b, ok := baseIdx[id]
			if !ok {
				return nil, fmt.Errorf("engine: delta references agent %d absent from base", id)
			}
			e := cloneEnvelope(b)
			if kind == deltaPatch {
				flags := r.byte()
				if flags&patchDead != 0 {
					e.A.Dead = !e.A.Dead
				}
				if flags&patchReplica != 0 {
					e.Replica = !e.Replica
				}
				if flags&patchSrcPart != 0 {
					e.SrcPart = int32(uint32(r.uvarint()))
				}
				r.masked(e.A.State)
				r.masked(e.A.Effect)
			}
			out = append(out, e)
		case deltaFresh:
			out = append(out, r.fresh(id))
		default:
			return nil, fmt.Errorf("engine: delta record kind %d unknown", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("engine: %d trailing delta bytes", len(r.buf)-r.off)
	}
	return out, nil
}

// patchable reports whether cur can be expressed as a field patch of b:
// vector shapes must match and fit the bitmask width.
func patchable(b, cur *Envelope) bool {
	return len(b.A.State) == len(cur.A.State) && len(b.A.Effect) == len(cur.A.Effect) &&
		len(cur.A.State) <= maxMaskFields && len(cur.A.Effect) <= maxMaskFields
}

// changedMask returns a bitmask of indices where cur differs from base.
// Comparison is on bit patterns (Float64bits), not ==: a checkpoint must
// round-trip -0 and NaN payloads exactly.
func changedMask(base, cur []float64) uint64 {
	var m uint64
	for i := range cur {
		if math.Float64bits(base[i]) != math.Float64bits(cur[i]) {
			m |= 1 << uint(i)
		}
	}
	return m
}

// appendMasked writes a change mask and the raw bits of each set field.
func appendMasked(buf []byte, mask uint64, vals []float64) []byte {
	buf = binary.AppendUvarint(buf, mask)
	for i := range vals {
		if mask&(1<<uint(i)) != 0 {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(vals[i]))
		}
	}
	return buf
}

// appendFresh writes a complete envelope record (ID already written).
func appendFresh(buf []byte, e *Envelope) []byte {
	var flags byte
	if e.A.Dead {
		flags |= freshDead
	}
	if e.Replica {
		flags |= freshReplica
	}
	buf = append(buf, deltaFresh, flags)
	buf = binary.AppendUvarint(buf, uint64(uint32(e.SrcPart)))
	buf = binary.AppendUvarint(buf, uint64(len(e.A.State)))
	for _, v := range e.A.State {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.A.Effect)))
	for _, v := range e.A.Effect {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// EnvelopeDiffer adapts the partition delta codec to the mapreduce
// checkpoint Differ interface, so incremental disk checkpoints use the
// exact codec the distributed control plane ships over the wire.
type EnvelopeDiffer struct{}

// Diff implements mapreduce.Differ.
func (EnvelopeDiffer) Diff(base, cur []*Envelope) ([]byte, bool) { return DiffPartition(base, cur) }

// Apply implements mapreduce.Differ.
func (EnvelopeDiffer) Apply(base []*Envelope, delta []byte) ([]*Envelope, error) {
	return ApplyDelta(base, delta)
}

// deltaReader decodes a delta blob with sticky error handling.
type deltaReader struct {
	buf []byte
	off int
	err error
}

func (r *deltaReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("engine: truncated delta at byte %d", r.off)
	}
}

func (r *deltaReader) byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *deltaReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *deltaReader) float() float64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// masked reads a change mask and overwrites the set fields in place.
func (r *deltaReader) masked(vals []float64) {
	mask := r.uvarint()
	if r.err != nil {
		return
	}
	if mask>>uint(len(vals)) != 0 {
		r.err = fmt.Errorf("engine: delta mask %#x exceeds %d fields", mask, len(vals))
		return
	}
	for i := range vals {
		if mask&(1<<uint(i)) != 0 {
			vals[i] = r.float()
		}
	}
}

// floats reads a length-prefixed float vector, bounds-checked against the
// remaining buffer so a corrupt length cannot force a huge allocation.
func (r *deltaReader) floats() []float64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		r.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float()
	}
	return out
}

// fresh reads a complete envelope record for the given agent ID.
func (r *deltaReader) fresh(id uint64) *Envelope {
	flags := r.byte()
	srcPart := int32(uint32(r.uvarint()))
	state := r.floats()
	effect := r.floats()
	if r.err != nil {
		return nil
	}
	return &Envelope{
		A:       &agent.Agent{ID: agent.ID(id), State: state, Effect: effect, Dead: flags&freshDead != 0},
		Replica: flags&freshReplica != 0,
		SrcPart: srcPart,
	}
}
