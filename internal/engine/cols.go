// Columnar query phase: struct-of-arrays state access for hot models.
//
// The classic Env hands the model one *agent.Agent at a time through a
// closure, so a query phase pays an indirect call plus two pointer
// dereferences per visible neighbor, and the accumulator lives in a
// heap-escaping closure frame. The columnar path instead exposes the
// reducer's ID-sorted copy set as contiguous per-field float64 columns:
// the model asks once for the visible row set and then streams the columns
// directly, with its accumulators in registers.
//
// Both paths share one probe machinery (Cols is a view over queryEnv), the
// same candidate arithmetic, the same ascending-agent-ID iteration order
// and the same probe accounting — a columnar query phase is bit-identical
// to the classic one, including the Visited counters the load balancer's
// cost model consumes.
package engine

import (
	"fmt"
	"slices"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/spatial"
)

// ColumnarModel is implemented by models whose query phase can run against
// column slices instead of per-agent callbacks. The engines use QueryCols
// in place of Query whenever the model implements it and has only local
// effects; the two must compute identical effect values (the equivalence
// suite enforces this bit-for-bit for every registered scenario).
type ColumnarModel interface {
	Model
	// QueryCols runs the query phase for the agent at row self. Rows index
	// the reducer's copy set: env.State(f)[row] is copies[row].State[f],
	// with any halo (peer-sent) copies appended after the core rows.
	QueryCols(env *Cols, self int32)
}

// Cols is the columnar query window: a view over the same queryEnv the
// classic Env path uses, so probes, scratch buffers and stats are shared.
// The defined type (rather than embedding) keeps the two method sets
// independent — Cols.Assign takes a row, Env.Assign takes an agent.
type Cols queryEnv

// State returns the column of the given state field, one entry per row
// (core copies in ascending agent-ID order, then halo copies).
func (c *Cols) State(field int) []float64 { return c.cols[field] }

// Rows returns the total row count (core + halo).
func (c *Cols) Rows() int { return len(c.cols[0]) }

// Visible returns the rows within the visibility bound of self's position,
// including self, in ascending agent-ID order — the columnar mirror of
// Env.ForEachVisible. The slice is valid until the next probe on this env.
func (c *Cols) Visible() []int32 {
	vis := c.schema.Visibility
	if vis <= 0 {
		// Unbounded visibility never coexists with a halo (the overlapped
		// path requires the cached index, which requires a bound), so all
		// rows are the core rows.
		q := (*queryEnv)(c)
		q.vbuf = q.vbuf[:0]
		for i := range q.copies {
			q.vbuf = append(q.vbuf, int32(i))
		}
		return q.vbuf
	}
	return c.rangeRows(vis)
}

// Nearby is Visible restricted to the given radius (cropped to the
// visibility bound) — the columnar mirror of Env.Nearby.
func (c *Cols) Nearby(radius float64) []int32 {
	vis := c.schema.Visibility
	if vis > 0 && radius > vis {
		radius = vis
	}
	return c.rangeRows(radius)
}

// rangeRows mirrors queryEnv.rangeSorted exactly — same candidate sources,
// same distance arithmetic, same stats — but collects row indices instead
// of invoking a callback per agent.
func (c *Cols) rangeRows(radius float64) []int32 {
	q := (*queryEnv)(c)
	if q.haloOn && len(q.halo.agents) > 0 {
		return c.rangeRowsHalo(radius)
	}
	if q.cached != nil && q.listsOK && q.slot >= 0 && radius <= q.cached.ProbeRadius() {
		cand, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(cand))
		pos := cur[q.slot]
		r2 := radius * radius
		// Pre-sized buffer with an unconditional store and a conditional
		// advance: the pass/fail branch is data-dependent (≈ the ratio of
		// the visibility disc to the list's ρ+skin disc), so keeping it
		// off the store's critical path is worth a few percent on the
		// hottest loop in the engine.
		vbuf := q.vbuf
		if cap(vbuf) < len(cand) {
			vbuf = make([]int32, len(cand))
		}
		vbuf = vbuf[:len(cand)]
		k := 0
		for _, j := range cand {
			p := cur[j]
			dx, dy := p.X-pos.X, p.Y-pos.Y
			vbuf[k] = j
			if dx*dx+dy*dy <= r2 {
				k++
			}
		}
		q.vbuf = vbuf[:0]
		return vbuf[:k]
	}
	q.scratch = q.scratch[:0]
	if q.cached != nil {
		var visited int64
		q.scratch, visited = q.cached.RangeCircleInto(q.self.Pos(q.schema), radius, q.scratch)
		q.stats.Probes++
		q.stats.Visited += visited
	} else {
		q.ix.RangeCircle(q.self.Pos(q.schema), radius, func(p spatial.Point) {
			q.scratch = append(q.scratch, p.ID)
		})
	}
	slices.Sort(q.scratch)
	return q.scratch
}

// rangeRowsHalo mirrors queryEnv.rangeSortedHalo: core candidates from the
// index, halo candidates from a linear scan, merged in ascending agent-ID
// order. Halo row j surfaces as len(copies)+j.
func (c *Cols) rangeRowsHalo(radius float64) []int32 {
	q := (*queryEnv)(c)
	pos := q.self.Pos(q.schema)
	r2 := radius * radius
	q.scratch = q.scratch[:0]
	if q.cached != nil && q.listsOK && q.slot >= 0 && radius <= q.cached.ProbeRadius() {
		cand, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(cand))
		at := cur[q.slot]
		for _, j := range cand {
			dx, dy := cur[j].X-at.X, cur[j].Y-at.Y
			if dx*dx+dy*dy <= r2 {
				q.scratch = append(q.scratch, j)
			}
		}
		// cand ascends by slot, so scratch is already ID-sorted.
	} else if q.cached != nil {
		var visited int64
		q.scratch, visited = q.cached.RangeCircleInto(pos, radius, q.scratch)
		q.stats.Probes++
		q.stats.Visited += visited
		slices.Sort(q.scratch)
	} else {
		q.ix.RangeCircle(pos, radius, func(p spatial.Point) {
			q.scratch = append(q.scratch, p.ID)
		})
		slices.Sort(q.scratch)
	}

	q.hscratch = q.hscratch[:0]
	q.stats.Visited += int64(len(q.halo.agents))
	for j, hp := range q.halo.pos {
		dx, dy := hp.X-pos.X, hp.Y-pos.Y
		if dx*dx+dy*dy <= r2 {
			q.hscratch = append(q.hscratch, int32(j))
		}
	}

	ncore := int32(len(q.copies))
	q.vbuf = q.vbuf[:0]
	core, halo := q.scratch, q.hscratch
	i, j := 0, 0
	for i < len(core) || j < len(halo) {
		if j >= len(halo) || (i < len(core) && q.copies[core[i]].ID < q.halo.agents[halo[j]].ID) {
			q.vbuf = append(q.vbuf, core[i])
			i++
		} else {
			q.vbuf = append(q.vbuf, ncore+halo[j])
			j++
		}
	}
	return q.vbuf
}

// Assign folds value into the row's effect field using the schema's
// combinator — the columnar mirror of Env.Assign. Effects stay in the
// per-agent vectors (the update phase and the wire format read them
// there), so this writes through to the row's agent.
func (c *Cols) Assign(row int32, effectIndex int, value float64) {
	q := (*queryEnv)(c)
	var target *agent.Agent
	if int(row) < len(q.copies) {
		target = q.copies[row]
	} else {
		target = q.halo.agents[int(row)-len(q.copies)]
	}
	if !q.nonLocal && target.ID != q.self.ID {
		panic(fmt.Sprintf(
			"engine: non-local effect assignment (agent %d -> agent %d) in a local-effects model; implement NonLocalModel",
			q.self.ID, target.ID))
	}
	if q.isSum[effectIndex] {
		target.Effect[effectIndex] += value
		return
	}
	cb := q.combs[effectIndex]
	target.Effect[effectIndex] = cb.Combine(target.Effect[effectIndex], value)
}

// columnarModel resolves the engines' columnar fast path: the model must
// opt in and have only local effects (the non-local dataflow ships and
// folds envelopes per partition; its query phases stay on the classic
// path).
func columnarModel(m Model) ColumnarModel {
	if cm, ok := m.(ColumnarModel); ok && !modelNonLocal(m) {
		return cm
	}
	return nil
}

// gatherCols (re)fills per-state-field columns from the ID-sorted copies.
func gatherCols(cols [][]float64, s *agent.Schema, copies []*agent.Agent) [][]float64 {
	nf := s.NumState()
	if cap(cols) < nf {
		cols = make([][]float64, nf)
	}
	cols = cols[:nf]
	n := len(copies)
	for f := 0; f < nf; f++ {
		col := resize(cols[f], n)
		for i, a := range copies {
			col[i] = a.State[f]
		}
		cols[f] = col
	}
	return cols
}

// appendHaloCols extends the columns with the halo copies' state, giving
// halo row j the global row index len(copies)+j.
func appendHaloCols(cols [][]float64, halo []*agent.Agent) [][]float64 {
	for f := range cols {
		col := cols[f]
		for _, a := range halo {
			col = append(col, a.State[f])
		}
		cols[f] = col
	}
	return cols
}
