package engine

import (
	"fmt"
	"slices"
	"sort"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/spatial"
)

// queryEnv implements Env over one reducer's local copies (owned agents +
// replicas). The copies slice is sorted by agent ID; iteration therefore
// yields visible agents in ascending ID order no matter which index
// implementation found them, making query phases deterministic across
// index kinds and partition layouts (and giving the BRASIL weak-reference
// visibility semantics of Theorem 1: agents outside the bound simply do
// not appear).
type queryEnv struct {
	schema   *agent.Schema
	combs    []agent.Combinator
	nonLocal bool

	copies []*agent.Agent // ID-sorted candidate set
	ix     spatial.Index  // built over copies (Point.ID = index into copies)

	self    *agent.Agent
	scratch []int32
	nnbuf   []spatial.Point
}

var _ Env = (*queryEnv)(nil)

// Self implements Env.
func (q *queryEnv) Self() *agent.Agent { return q.self }

// ForEachVisible implements Env.
func (q *queryEnv) ForEachVisible(fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis <= 0 {
		for _, a := range q.copies {
			fn(a)
		}
		return
	}
	q.rangeSorted(vis, fn)
}

// Nearby implements Env.
func (q *queryEnv) Nearby(radius float64, fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis > 0 && radius > vis {
		radius = vis
	}
	q.rangeSorted(radius, fn)
}

func (q *queryEnv) rangeSorted(radius float64, fn func(*agent.Agent)) {
	q.scratch = q.scratch[:0]
	q.ix.RangeCircle(q.self.Pos(q.schema), radius, func(p spatial.Point) {
		q.scratch = append(q.scratch, p.ID)
	})
	// copies is ID-sorted, so sorting candidate slice positions sorts by
	// agent ID. slices.Sort on int32 keeps this far cheaper than the
	// query work itself.
	slices.Sort(q.scratch)
	for _, i := range q.scratch {
		fn(q.copies[i])
	}
}

// Nearest implements Env.
func (q *queryEnv) Nearest(k int, buf []*agent.Agent) []*agent.Agent {
	if k <= 0 {
		return buf
	}
	pos := q.self.Pos(q.schema)
	q.nnbuf = q.ix.Nearest(pos, k+1, q.nnbuf[:0])
	vis := q.schema.Visibility
	cand := q.scratch[:0]
	for _, p := range q.nnbuf {
		a := q.copies[p.ID]
		if a.ID == q.self.ID {
			continue
		}
		if vis > 0 && p.Pos.Dist2(pos) > vis*vis {
			continue
		}
		cand = append(cand, p.ID)
	}
	// Canonical order: (distance, agent ID).
	sort.Slice(cand, func(i, j int) bool {
		di := q.copies[cand[i]].Pos(q.schema).Dist2(pos)
		dj := q.copies[cand[j]].Pos(q.schema).Dist2(pos)
		if di != dj {
			return di < dj
		}
		return q.copies[cand[i]].ID < q.copies[cand[j]].ID
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	for _, i := range cand {
		buf = append(buf, q.copies[i])
	}
	q.scratch = cand[:0]
	return buf
}

// Assign implements Env.
func (q *queryEnv) Assign(target *agent.Agent, effectIndex int, value float64) {
	if !q.nonLocal && target.ID != q.self.ID {
		panic(fmt.Sprintf(
			"engine: non-local effect assignment (agent %d -> agent %d) in a local-effects model; implement NonLocalModel",
			q.self.ID, target.ID))
	}
	c := q.combs[effectIndex]
	target.Effect[effectIndex] = c.Combine(target.Effect[effectIndex], value)
}

// effectCombs caches the per-index combinators of a schema.
func effectCombs(s *agent.Schema) []agent.Combinator {
	combs := make([]agent.Combinator, s.NumEffect())
	for _, f := range s.Fields() {
		if f.Kind == agent.Effect {
			combs[f.Index] = f.Comb
		}
	}
	return combs
}

// effectsAreIdentity reports whether eff equals the identity vector θ; the
// non-local reduce₁ only ships replicas whose effects were actually touched
// (App. A: "∀i s.t. fᵗᵢ ≠ θ").
func effectsAreIdentity(combs []agent.Combinator, eff []float64) bool {
	for i, c := range combs {
		if eff[i] != c.Identity() {
			return false
		}
	}
	return true
}
