package engine

import (
	"fmt"
	"slices"
	"sort"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

// queryEnv implements Env over one reducer's local copies (owned agents +
// replicas). The copies slice is sorted by agent ID; iteration therefore
// yields visible agents in ascending ID order no matter which index
// implementation found them, making query phases deterministic across
// index kinds and partition layouts (and giving the BRASIL weak-reference
// visibility semantics of Theorem 1: agents outside the bound simply do
// not appear).
//
// Two probe paths exist. The generic path runs RangeCircle/Nearest on the
// index and sorts the hits by slot. The cached fast path reads the slot's
// Verlet candidate list from a spatial.CachedIndex — the list is already
// slot-sorted (= ID-sorted), so a probe is a branch-predictable linear
// filter with no tree walk and no sort, and it is read-only, so the
// engines run one queryEnv per worker-pool chunk concurrently. Both paths
// produce identical iteration sequences.
type queryEnv struct {
	schema   *agent.Schema
	combs    []agent.Combinator
	isSum    []bool // devirtualized fast path for the ubiquitous sum fold
	nonLocal bool

	copies  []*agent.Agent       // ID-sorted candidate set
	ix      spatial.Index        // built over copies (Point.ID = index into copies)
	cached  *spatial.CachedIndex // non-nil: the engine runs the cached path
	listsOK bool                 // the tick's build carries candidate lists
	slot    int32                // self's index into copies (-1: self is halo-owned)
	stats   spatial.Stats        // per-env probe accounting (cached path)

	// Two-array mode for the overlapped late pass: the index covers only
	// the core (self-sent) copies, and probes merge in the halo — the
	// ID-sorted peer-sent copies — by linear scan.
	halo   haloArrays
	haloOn bool

	self     *agent.Agent
	scratch  []int32
	hscratch []int32
	nnbuf    []spatial.Point

	// Columnar mode (see cols.go): per-state-field columns over
	// copies+halo rows, shared read-only across a tick's probe envs, and
	// the per-env merged visible-row buffer.
	cols [][]float64
	vbuf []int32
}

// haloArrays is the probe-side view of a partition's peer-sent copies,
// ascending by agent ID.
type haloArrays struct {
	agents []*agent.Agent
	pos    []geom.Vec
}

var _ Env = (*queryEnv)(nil)

// Self implements Env.
func (q *queryEnv) Self() *agent.Agent { return q.self }

// ForEachVisible implements Env.
func (q *queryEnv) ForEachVisible(fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis <= 0 {
		for _, a := range q.copies {
			fn(a)
		}
		return
	}
	q.rangeSorted(vis, fn)
}

// Nearby implements Env.
func (q *queryEnv) Nearby(radius float64, fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis > 0 && radius > vis {
		radius = vis
	}
	q.rangeSorted(radius, fn)
}

func (q *queryEnv) rangeSorted(radius float64, fn func(*agent.Agent)) {
	if q.haloOn && len(q.halo.agents) > 0 {
		q.rangeSortedHalo(radius, fn)
		return
	}
	if q.cached != nil && q.listsOK && q.slot >= 0 && radius <= q.cached.ProbeRadius() {
		// Verlet fast path: the list covers every point within the
		// cache's probe radius of self's current position (cache
		// invariant), is sorted by slot, and slots ascend with agent ID.
		cand, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(cand))
		pos := cur[q.slot]
		r2 := radius * radius
		for _, j := range cand {
			dx, dy := cur[j].X-pos.X, cur[j].Y-pos.Y
			if dx*dx+dy*dy <= r2 {
				fn(q.copies[j])
			}
		}
		return
	}
	q.scratch = q.scratch[:0]
	if q.cached != nil {
		// No list covers this probe (adaptive gate off, or the radius
		// exceeds the model's SetProbeRadius hint): exact current-position
		// query against the cached index, caller-buffered and safe during
		// a parallel query phase.
		var visited int64
		q.scratch, visited = q.cached.RangeCircleInto(q.self.Pos(q.schema), radius, q.scratch)
		q.stats.Probes++
		q.stats.Visited += visited
	} else {
		q.ix.RangeCircle(q.self.Pos(q.schema), radius, func(p spatial.Point) {
			q.scratch = append(q.scratch, p.ID)
		})
	}
	// copies is ID-sorted, so sorting candidate slice positions sorts by
	// agent ID. slices.Sort on int32 keeps this far cheaper than the
	// query work itself.
	slices.Sort(q.scratch)
	for _, i := range q.scratch {
		fn(q.copies[i])
	}
}

// rangeSortedHalo is the two-array probe of the overlapped late pass:
// core candidates come from the index (candidate list or circle query),
// halo candidates from a linear distance scan — the halo is small, just
// the replicas in the visibility band plus any post-rebalance migrants,
// so a scan beats building a second index. Both sides ascend by agent ID
// and the merge emits their union in ascending ID order: the exact
// visible sequence a single combined index produces.
func (q *queryEnv) rangeSortedHalo(radius float64, fn func(*agent.Agent)) {
	pos := q.self.Pos(q.schema)
	r2 := radius * radius
	q.scratch = q.scratch[:0]
	if q.cached != nil && q.listsOK && q.slot >= 0 && radius <= q.cached.ProbeRadius() {
		cand, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(cand))
		at := cur[q.slot]
		for _, j := range cand {
			dx, dy := cur[j].X-at.X, cur[j].Y-at.Y
			if dx*dx+dy*dy <= r2 {
				q.scratch = append(q.scratch, j)
			}
		}
		// cand ascends by slot, so scratch is already ID-sorted.
	} else if q.cached != nil {
		var visited int64
		q.scratch, visited = q.cached.RangeCircleInto(pos, radius, q.scratch)
		q.stats.Probes++
		q.stats.Visited += visited
		slices.Sort(q.scratch)
	} else {
		q.ix.RangeCircle(pos, radius, func(p spatial.Point) {
			q.scratch = append(q.scratch, p.ID)
		})
		slices.Sort(q.scratch)
	}

	q.hscratch = q.hscratch[:0]
	q.stats.Visited += int64(len(q.halo.agents))
	for j, hp := range q.halo.pos {
		dx, dy := hp.X-pos.X, hp.Y-pos.Y
		if dx*dx+dy*dy <= r2 {
			q.hscratch = append(q.hscratch, int32(j))
		}
	}

	core, halo := q.scratch, q.hscratch
	i, j := 0, 0
	for i < len(core) || j < len(halo) {
		if j >= len(halo) || (i < len(core) && q.copies[core[i]].ID < q.halo.agents[halo[j]].ID) {
			fn(q.copies[core[i]])
			i++
		} else {
			fn(q.halo.agents[halo[j]])
			j++
		}
	}
}

// Nearest implements Env.
func (q *queryEnv) Nearest(k int, buf []*agent.Agent) []*agent.Agent {
	if k <= 0 {
		return buf
	}
	pos := q.self.Pos(q.schema)
	vis := q.schema.Visibility
	cand := q.scratch[:0]
	if q.cached != nil && q.listsOK && q.slot >= 0 && vis > 0 && vis <= q.cached.ProbeRadius() {
		// The candidate list covers the visibility disc, and Env.Nearest
		// never returns agents beyond it: every true k-nearest-in-vis is
		// in the list (see the cache invariant), so collecting in-vis
		// candidates and ranking below reproduces the index path exactly.
		list, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(list))
		vis2 := vis * vis
		for _, j := range list {
			if cur[j].Dist2(pos) <= vis2 && q.copies[j].ID != q.self.ID {
				cand = append(cand, j)
			}
		}
	} else {
		// k+1 core candidates suffice even in two-array mode: no core
		// agent outside the k+1 nearest (k after self-exclusion) can make
		// the combined top k, however many halo agents outrank it.
		q.nnbuf = q.ix.Nearest(pos, k+1, q.nnbuf[:0])
		for _, p := range q.nnbuf {
			a := q.copies[p.ID]
			if a.ID == q.self.ID {
				continue
			}
			if vis > 0 && p.Pos.Dist2(pos) > vis*vis {
				continue
			}
			cand = append(cand, p.ID)
		}
	}
	if q.haloOn && len(q.halo.agents) > 0 {
		q.stats.Visited += int64(len(q.halo.agents))
		vis2 := vis * vis
		for j := range q.halo.agents {
			if q.halo.agents[j].ID == q.self.ID {
				continue // a halo-owned probe finds itself in the halo
			}
			if vis > 0 && q.halo.pos[j].Dist2(pos) > vis2 {
				continue
			}
			cand = append(cand, ^int32(j))
		}
	}
	// Canonical order: (distance, agent ID).
	sort.Slice(cand, func(i, j int) bool {
		ai, aj := q.candAgent(cand[i]), q.candAgent(cand[j])
		di, dj := ai.Pos(q.schema).Dist2(pos), aj.Pos(q.schema).Dist2(pos)
		if di != dj {
			return di < dj
		}
		return ai.ID < aj.ID
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	for _, c := range cand {
		buf = append(buf, q.candAgent(c))
	}
	q.scratch = cand[:0]
	return buf
}

// candAgent resolves an encoded Nearest candidate: non-negative values
// are core slots, negative ones (bitwise complement) index the halo.
func (q *queryEnv) candAgent(c int32) *agent.Agent {
	if c >= 0 {
		return q.copies[c]
	}
	return q.halo.agents[^c]
}

// Assign implements Env.
func (q *queryEnv) Assign(target *agent.Agent, effectIndex int, value float64) {
	if !q.nonLocal && target.ID != q.self.ID {
		panic(fmt.Sprintf(
			"engine: non-local effect assignment (agent %d -> agent %d) in a local-effects model; implement NonLocalModel",
			q.self.ID, target.ID))
	}
	if q.isSum[effectIndex] {
		// Devirtualized sum fold: every hot model accumulates with sum,
		// and the interface dispatch per neighbor per field is measurable.
		target.Effect[effectIndex] += value
		return
	}
	c := q.combs[effectIndex]
	target.Effect[effectIndex] = c.Combine(target.Effect[effectIndex], value)
}

// takeStats returns and clears the env's probe accounting (cached path).
func (q *queryEnv) takeStats() spatial.Stats {
	s := q.stats
	q.stats = spatial.Stats{}
	return s
}

// newQueryEnv builds a probe env for one worker-pool chunk.
func newQueryEnv(s *agent.Schema, combs []agent.Combinator, isSum []bool, nonLocal bool) queryEnv {
	return queryEnv{schema: s, combs: combs, isSum: isSum, nonLocal: nonLocal}
}

// effectCombs caches the per-index combinators of a schema.
func effectCombs(s *agent.Schema) []agent.Combinator {
	combs := make([]agent.Combinator, s.NumEffect())
	for _, f := range s.Fields() {
		if f.Kind == agent.Effect {
			combs[f.Index] = f.Comb
		}
	}
	return combs
}

// sumMask marks the effect indexes folded by the plain sum combinator, the
// Assign fast path.
func sumMask(combs []agent.Combinator) []bool {
	mask := make([]bool, len(combs))
	for i, c := range combs {
		mask[i] = c == agent.Sum
	}
	return mask
}

// effectsAreIdentity reports whether eff equals the identity vector θ; the
// non-local reduce₁ only ships replicas whose effects were actually touched
// (App. A: "∀i s.t. fᵗᵢ ≠ θ").
func effectsAreIdentity(combs []agent.Combinator, eff []float64) bool {
	for i, c := range combs {
		if eff[i] != c.Identity() {
			return false
		}
	}
	return true
}
