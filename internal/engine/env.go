package engine

import (
	"fmt"
	"slices"
	"sort"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/spatial"
)

// queryEnv implements Env over one reducer's local copies (owned agents +
// replicas). The copies slice is sorted by agent ID; iteration therefore
// yields visible agents in ascending ID order no matter which index
// implementation found them, making query phases deterministic across
// index kinds and partition layouts (and giving the BRASIL weak-reference
// visibility semantics of Theorem 1: agents outside the bound simply do
// not appear).
//
// Two probe paths exist. The generic path runs RangeCircle/Nearest on the
// index and sorts the hits by slot. The cached fast path reads the slot's
// Verlet candidate list from a spatial.CachedIndex — the list is already
// slot-sorted (= ID-sorted), so a probe is a branch-predictable linear
// filter with no tree walk and no sort, and it is read-only, so the
// engines run one queryEnv per worker-pool chunk concurrently. Both paths
// produce identical iteration sequences.
type queryEnv struct {
	schema   *agent.Schema
	combs    []agent.Combinator
	isSum    []bool // devirtualized fast path for the ubiquitous sum fold
	nonLocal bool

	copies  []*agent.Agent       // ID-sorted candidate set
	ix      spatial.Index        // built over copies (Point.ID = index into copies)
	cached  *spatial.CachedIndex // non-nil: the engine runs the cached path
	listsOK bool                 // the tick's build carries candidate lists
	slot    int32                // self's index into copies (cached path)
	stats   spatial.Stats        // per-env probe accounting (cached path)

	self    *agent.Agent
	scratch []int32
	nnbuf   []spatial.Point
}

var _ Env = (*queryEnv)(nil)

// Self implements Env.
func (q *queryEnv) Self() *agent.Agent { return q.self }

// ForEachVisible implements Env.
func (q *queryEnv) ForEachVisible(fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis <= 0 {
		for _, a := range q.copies {
			fn(a)
		}
		return
	}
	q.rangeSorted(vis, fn)
}

// Nearby implements Env.
func (q *queryEnv) Nearby(radius float64, fn func(*agent.Agent)) {
	vis := q.schema.Visibility
	if vis > 0 && radius > vis {
		radius = vis
	}
	q.rangeSorted(radius, fn)
}

func (q *queryEnv) rangeSorted(radius float64, fn func(*agent.Agent)) {
	if q.cached != nil && q.listsOK && radius <= q.cached.ProbeRadius() {
		// Verlet fast path: the list covers every point within the
		// cache's probe radius of self's current position (cache
		// invariant), is sorted by slot, and slots ascend with agent ID.
		cand, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(cand))
		pos := cur[q.slot]
		r2 := radius * radius
		for _, j := range cand {
			dx, dy := cur[j].X-pos.X, cur[j].Y-pos.Y
			if dx*dx+dy*dy <= r2 {
				fn(q.copies[j])
			}
		}
		return
	}
	q.scratch = q.scratch[:0]
	if q.cached != nil {
		// No list covers this probe (adaptive gate off, or the radius
		// exceeds the model's SetProbeRadius hint): exact current-position
		// query against the cached index, caller-buffered and safe during
		// a parallel query phase.
		var visited int64
		q.scratch, visited = q.cached.RangeCircleInto(q.self.Pos(q.schema), radius, q.scratch)
		q.stats.Probes++
		q.stats.Visited += visited
	} else {
		q.ix.RangeCircle(q.self.Pos(q.schema), radius, func(p spatial.Point) {
			q.scratch = append(q.scratch, p.ID)
		})
	}
	// copies is ID-sorted, so sorting candidate slice positions sorts by
	// agent ID. slices.Sort on int32 keeps this far cheaper than the
	// query work itself.
	slices.Sort(q.scratch)
	for _, i := range q.scratch {
		fn(q.copies[i])
	}
}

// Nearest implements Env.
func (q *queryEnv) Nearest(k int, buf []*agent.Agent) []*agent.Agent {
	if k <= 0 {
		return buf
	}
	pos := q.self.Pos(q.schema)
	vis := q.schema.Visibility
	cand := q.scratch[:0]
	if q.cached != nil && q.listsOK && vis > 0 && vis <= q.cached.ProbeRadius() {
		// The candidate list covers the visibility disc, and Env.Nearest
		// never returns agents beyond it: every true k-nearest-in-vis is
		// in the list (see the cache invariant), so collecting in-vis
		// candidates and ranking below reproduces the index path exactly.
		list, cur := q.cached.SlotCandidates(q.slot)
		q.stats.Probes++
		q.stats.Visited += int64(len(list))
		vis2 := vis * vis
		for _, j := range list {
			if cur[j].Dist2(pos) <= vis2 && q.copies[j].ID != q.self.ID {
				cand = append(cand, j)
			}
		}
	} else {
		q.nnbuf = q.ix.Nearest(pos, k+1, q.nnbuf[:0])
		for _, p := range q.nnbuf {
			a := q.copies[p.ID]
			if a.ID == q.self.ID {
				continue
			}
			if vis > 0 && p.Pos.Dist2(pos) > vis*vis {
				continue
			}
			cand = append(cand, p.ID)
		}
	}
	// Canonical order: (distance, agent ID).
	sort.Slice(cand, func(i, j int) bool {
		di := q.copies[cand[i]].Pos(q.schema).Dist2(pos)
		dj := q.copies[cand[j]].Pos(q.schema).Dist2(pos)
		if di != dj {
			return di < dj
		}
		return q.copies[cand[i]].ID < q.copies[cand[j]].ID
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	for _, i := range cand {
		buf = append(buf, q.copies[i])
	}
	q.scratch = cand[:0]
	return buf
}

// Assign implements Env.
func (q *queryEnv) Assign(target *agent.Agent, effectIndex int, value float64) {
	if !q.nonLocal && target.ID != q.self.ID {
		panic(fmt.Sprintf(
			"engine: non-local effect assignment (agent %d -> agent %d) in a local-effects model; implement NonLocalModel",
			q.self.ID, target.ID))
	}
	if q.isSum[effectIndex] {
		// Devirtualized sum fold: every hot model accumulates with sum,
		// and the interface dispatch per neighbor per field is measurable.
		target.Effect[effectIndex] += value
		return
	}
	c := q.combs[effectIndex]
	target.Effect[effectIndex] = c.Combine(target.Effect[effectIndex], value)
}

// takeStats returns and clears the env's probe accounting (cached path).
func (q *queryEnv) takeStats() spatial.Stats {
	s := q.stats
	q.stats = spatial.Stats{}
	return s
}

// newQueryEnv builds a probe env for one worker-pool chunk.
func newQueryEnv(s *agent.Schema, combs []agent.Combinator, isSum []bool, nonLocal bool) queryEnv {
	return queryEnv{schema: s, combs: combs, isSum: isSum, nonLocal: nonLocal}
}

// effectCombs caches the per-index combinators of a schema.
func effectCombs(s *agent.Schema) []agent.Combinator {
	combs := make([]agent.Combinator, s.NumEffect())
	for _, f := range s.Fields() {
		if f.Kind == agent.Effect {
			combs[f.Index] = f.Comb
		}
	}
	return combs
}

// sumMask marks the effect indexes folded by the plain sum combinator, the
// Assign fast path.
func sumMask(combs []agent.Combinator) []bool {
	mask := make([]bool, len(combs))
	for i, c := range combs {
		mask[i] = c == agent.Sum
	}
	return mask
}

// effectsAreIdentity reports whether eff equals the identity vector θ; the
// non-local reduce₁ only ships replicas whose effects were actually touched
// (App. A: "∀i s.t. fᵗᵢ ≠ θ").
func effectsAreIdentity(combs []agent.Combinator, eff []float64) bool {
	for i, c := range combs {
		if eff[i] != c.Identity() {
			return false
		}
	}
	return true
}
