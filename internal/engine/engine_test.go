package engine

import (
	"math"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/spatial"
)

// flockModel is a minimal local-effects model: agents repel each other
// within the visibility radius (like the paper's Fig. 2 fish) and drift
// with a small random perturbation.
type flockModel struct {
	s            *agent.Schema
	x, y, vx, vy int
	ax, ay, cnt  int
}

func newFlockModel(vis float64) *flockModel {
	s := agent.NewSchema("Flock")
	m := &flockModel{s: s}
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.vx = s.AddState("vx", true)
	m.vy = s.AddState("vy", true)
	m.ax = s.AddEffect("avoidx", false, agent.Sum)
	m.ay = s.AddEffect("avoidy", false, agent.Sum)
	m.cnt = s.AddEffect("count", false, agent.Sum)
	s.SetPosition("x", "y").SetVisibility(vis).SetReach(1)
	return m
}

func (m *flockModel) Schema() *agent.Schema { return m.s }

func (m *flockModel) Query(self *agent.Agent, env Env) {
	sx, sy := self.State[m.x], self.State[m.y]
	env.ForEachVisible(func(p *agent.Agent) {
		if p.ID == self.ID {
			return
		}
		dx, dy := sx-p.State[m.x], sy-p.State[m.y]
		d2 := dx*dx + dy*dy
		if d2 == 0 {
			return
		}
		env.Assign(self, m.ax, dx/d2)
		env.Assign(self, m.ay, dy/d2)
		env.Assign(self, m.cnt, 1)
	})
}

func (m *flockModel) Update(self *agent.Agent, u *UpdateCtx) {
	n := self.Effect[m.cnt]
	if n > 0 {
		self.State[m.vx] = 0.5*self.State[m.vx] + 0.1*self.Effect[m.ax]/n
		self.State[m.vy] = 0.5*self.State[m.vy] + 0.1*self.Effect[m.ay]/n
	}
	self.State[m.vx] += 0.01 * (u.RNG.Float64() - 0.5)
	self.State[m.vy] += 0.01 * (u.RNG.Float64() - 0.5)
	self.State[m.x] += self.State[m.vx]
	self.State[m.y] += self.State[m.vy]
}

// pushModel is a minimal non-local model: every agent pushes its visible
// neighbors away by assigning to *their* effect fields.
type pushModel struct {
	s      *agent.Schema
	x, y   int
	px, py int
}

func newPushModel(vis float64) *pushModel {
	s := agent.NewSchema("Push")
	m := &pushModel{s: s}
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.px = s.AddEffect("pushx", true, agent.Sum)
	m.py = s.AddEffect("pushy", true, agent.Sum)
	s.SetPosition("x", "y").SetVisibility(vis).SetReach(2)
	return m
}

func (m *pushModel) Schema() *agent.Schema    { return m.s }
func (m *pushModel) HasNonLocalEffects() bool { return true }

func (m *pushModel) Query(self *agent.Agent, env Env) {
	sx, sy := self.State[m.x], self.State[m.y]
	env.ForEachVisible(func(p *agent.Agent) {
		if p.ID == self.ID {
			return
		}
		dx, dy := p.State[m.x]-sx, p.State[m.y]-sy
		d := math.Hypot(dx, dy)
		if d == 0 {
			return
		}
		env.Assign(p, m.px, 0.1*dx/d)
		env.Assign(p, m.py, 0.1*dy/d)
	})
}

func (m *pushModel) Update(self *agent.Agent, u *UpdateCtx) {
	self.State[m.x] += self.Effect[m.px]
	self.State[m.y] += self.Effect[m.py]
}

// lifeModel exercises spawning and death: an agent spawns one child every
// spawnEvery ticks and dies after lifespan ticks (tracked in state).
type lifeModel struct {
	s          *agent.Schema
	x, y, age  int
	spawnEvery uint64
	lifespan   float64
}

func newLifeModel() *lifeModel {
	s := agent.NewSchema("Life")
	m := &lifeModel{s: s, spawnEvery: 3, lifespan: 7}
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.age = s.AddState("age", false)
	s.SetPosition("x", "y").SetVisibility(5).SetReach(1)
	return m
}

func (m *lifeModel) Schema() *agent.Schema            { return m.s }
func (m *lifeModel) Query(self *agent.Agent, env Env) {}

func (m *lifeModel) Update(self *agent.Agent, u *UpdateCtx) {
	self.State[m.age]++
	if self.State[m.age] >= m.lifespan {
		u.Kill(self)
		return
	}
	if u.Tick%m.spawnEvery == 2 {
		c := u.Spawn()
		c.State[m.x] = self.State[m.x] + u.RNG.Range(-0.5, 0.5)
		c.State[m.y] = self.State[m.y] + u.RNG.Range(-0.5, 0.5)
	}
	self.State[m.x] += u.RNG.Range(-0.5, 0.5)
}

func makePop(s *agent.Schema, n int, span float64, seed uint64) []*agent.Agent {
	pop := make([]*agent.Agent, n)
	rng := agent.NewRNG(seed, 0, 0)
	for i := range pop {
		a := agent.New(s, agent.ID(i+1))
		a.SetPos(s, geom.V(rng.Float64()*span, rng.Float64()*span))
		pop[i] = a
	}
	return pop
}

func clonePop(pop []*agent.Agent) []*agent.Agent {
	out := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		out[i] = a.Clone()
	}
	return out
}

func popsExactlyEqual(t *testing.T, name string, a, b agent.Population) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: population sizes differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("%s: agent %d differs:\n  %v\n  %v", name, a[i].ID, a[i], b[i])
		}
	}
}

func popsApproxEqual(t *testing.T, name string, a, b agent.Population, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: population sizes differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("%s: agent ID mismatch at %d: %d vs %d", name, i, a[i].ID, b[i].ID)
		}
		for j := range a[i].State {
			if d := math.Abs(a[i].State[j] - b[i].State[j]); d > tol {
				t.Fatalf("%s: agent %d state[%d]: %v vs %v (Δ%g)",
					name, a[i].ID, j, a[i].State[j], b[i].State[j], d)
			}
		}
	}
}

const testTicks = 12

func TestSequentialMatchesDistributedLocal(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 120, 60, 1)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 7} {
		dist, err := NewDistributed(m, clonePop(base), Options{
			Workers: workers, Index: spatial.KindKDTree, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := dist.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}
		popsExactlyEqual(t, "seq vs dist", seq.Agents(), dist.Agents())
	}
}

func TestIndexKindsAgreeExactly(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 100, 50, 2)
	var ref agent.Population
	for i, kind := range []spatial.Kind{spatial.KindScan, spatial.KindKDTree, spatial.KindGrid} {
		e, err := NewDistributed(m, clonePop(base), Options{
			Workers: 3, Index: kind, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = e.Agents()
		} else {
			popsExactlyEqual(t, kind.String(), ref, e.Agents())
		}
	}
}

func TestDeterminismSameConfig(t *testing.T) {
	m := newPushModel(6)
	base := makePop(m.s, 80, 40, 3)
	run := func() agent.Population {
		e, err := NewDistributed(m, clonePop(base), Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}
		return e.Agents()
	}
	popsExactlyEqual(t, "repeat run", run(), run())
}

func TestNonLocalSequentialVsDistributed(t *testing.T) {
	m := newPushModel(6)
	base := makePop(m.s, 80, 40, 4)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}

	// One worker: a single partition folds effects exactly like the flat
	// sequential loop.
	one, err := NewDistributed(m, clonePop(base), Options{Workers: 1, Index: spatial.KindKDTree, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := one.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "nonlocal 1-worker", seq.Agents(), one.Agents())

	// Many workers: the global ⊕ folds per-partition partials, so agree
	// only up to floating-point reassociation.
	four, err := NewDistributed(m, clonePop(base), Options{Workers: 4, Index: spatial.KindKDTree, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := four.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}
	popsApproxEqual(t, "nonlocal 4-worker", seq.Agents(), four.Agents(), 1e-7)
}

func TestNonLocalAssignPanicsInLocalModel(t *testing.T) {
	// A flock model that (incorrectly) assigns to a neighbor.
	m := newFlockModel(8)
	bad := &badModel{flockModel: m}
	pop := makePop(m.s, 10, 5, 6)
	e, err := NewDistributed(bad, pop, Options{
		Workers: 1, Index: spatial.KindScan, Seed: 1,
		Sequential: true, // keep the panic on this goroutine so recover() sees it
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("undeclared non-local assignment did not panic")
		}
	}()
	_ = e.RunTicks(1)
}

type badModel struct{ *flockModel }

func (b *badModel) Query(self *agent.Agent, env Env) {
	env.ForEachVisible(func(p *agent.Agent) {
		if p.ID != self.ID {
			env.Assign(p, b.cnt, 1) // non-local, undeclared
		}
	})
}

func TestSpawnAndKillDeterministic(t *testing.T) {
	m := newLifeModel()
	base := makePop(m.s, 20, 20, 7)
	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	dist, err := NewDistributed(m, clonePop(base), Options{Workers: 3, Index: spatial.KindKDTree, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "life", seq.Agents(), dist.Agents())
	if len(seq.Agents()) == 0 {
		t.Fatal("population died out; test model mis-tuned")
	}
	// Originals (lifespan 7) must all be gone after 15 ticks.
	for _, a := range seq.Agents() {
		if a.ID <= 20 {
			t.Errorf("agent %d outlived its lifespan", a.ID)
		}
	}
}

func TestReachCrop(t *testing.T) {
	m := &jumpModel{newFlockModel(8)}
	pop := makePop(m.s, 5, 10, 8)
	e, err := NewSequential(m, clonePop(pop), spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := make(map[agent.ID]geom.Vec)
	for _, a := range pop {
		start[a.ID] = a.Pos(m.s)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Agents() {
		d := a.Pos(m.s).Sub(start[a.ID])
		if math.Abs(d.X) > 1+1e-12 || math.Abs(d.Y) > 1+1e-12 {
			t.Errorf("agent %d moved %v, beyond reach 1", a.ID, d)
		}
	}
}

type jumpModel struct{ *flockModel }

func (j *jumpModel) Update(self *agent.Agent, u *UpdateCtx) {
	self.State[j.x] += 100 // tries to teleport; reach crop must stop it
	self.State[j.y] -= 50
}

func TestVisibilityLimitsInteraction(t *testing.T) {
	// Two agents farther apart than the visibility bound must not see
	// each other: their count effects stay zero.
	m := newFlockModel(5)
	a := agent.New(m.s, 1)
	a.SetPos(m.s, geom.V(0, 0))
	b := agent.New(m.s, 2)
	b.SetPos(m.s, geom.V(100, 0))
	e, err := NewDistributed(m, []*agent.Agent{a, b}, Options{Workers: 2, Index: spatial.KindKDTree, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	// With no visible neighbors the velocity is only the random nudge
	// (≤ 0.005), so displacement stays tiny.
	for _, ag := range e.Agents() {
		v := math.Hypot(ag.State[m.vx], ag.State[m.vy])
		if v > 0.01 {
			t.Errorf("agent %d gained velocity %v from an invisible neighbor", ag.ID, v)
		}
	}
}

// A 2-D median-split partitioning (App. A's quadtree-style alternative to
// strips) produces the same simulation as strips and as the sequential
// engine — partitioning choice never changes semantics.
func TestKD2DPartitioningAgreesExactly(t *testing.T) {
	m := newFlockModel(6)
	base := makePop(m.s, 100, 40, 31)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 19)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(10); err != nil {
		t.Fatal(err)
	}

	var pts []geom.Vec
	for _, a := range base {
		pts = append(pts, a.Pos(m.s))
	}
	kd2d := partition.NewKD2D(pts, 4)
	dist, err := NewDistributed(m, clonePop(base), Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 19,
		InitialPartition: kd2d,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "kd2d partitioning", seq.Agents(), dist.Agents())

	// Load balancing on a non-strip partitioning is rejected up front.
	if _, err := NewDistributed(m, clonePop(base), Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 19,
		InitialPartition: kd2d, LoadBalance: true,
	}); err == nil {
		t.Error("LB over a 2-D partitioning should be rejected")
	}
}

// Visibility is a closed bound: two agents at exactly the visibility
// distance see each other, consistently across engines and index kinds
// (RangeCircle and ReplicaTargets both use ≤).
func TestVisibilityBoundaryInclusive(t *testing.T) {
	m := newFlockModel(5)
	for _, kind := range []spatial.Kind{spatial.KindScan, spatial.KindKDTree, spatial.KindGrid} {
		a := agent.New(m.s, 1)
		a.SetPos(m.s, geom.V(0, 0))
		b := agent.New(m.s, 2)
		b.SetPos(m.s, geom.V(5, 0)) // exactly the visibility bound
		e, err := NewDistributed(m, []*agent.Agent{a, b}, Options{
			Workers: 2, Index: kind, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(1); err != nil {
			t.Fatal(err)
		}
		// The flock model counts visible neighbors into vx/vy; a neighbor
		// at exactly distance 5 must register (velocity beyond the random
		// nudge).
		for _, ag := range e.Agents() {
			v := math.Hypot(ag.State[m.vx], ag.State[m.vy])
			if v <= 0.005 {
				t.Errorf("%v: boundary neighbor invisible to agent %d (v=%v)", kind, ag.ID, v)
			}
		}
	}
}

func TestLoadBalancingReducesImbalance(t *testing.T) {
	m := newFlockModel(3)
	// Skewed population: 90% in a corner.
	pop := makePop(m.s, 200, 10, 9)
	for i := 180; i < 200; i++ {
		pop[i].SetPos(m.s, geom.V(100+float64(i), 0))
	}
	// Deliberately bad initial partitioning: uniform over the full span.
	cm := cluster.DefaultCostModel()
	e, err := NewDistributed(m, pop, Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 3,
		LoadBalance: true, Tunables: Tunables{EpochTicks: 5}, CostModel: &cm,
		InitialPartition: mustStrips(t, []float64{75, 150, 225}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(20); err != nil {
		t.Fatal(err)
	}
	eps := e.Epochs()
	if len(eps) == 0 {
		t.Fatal("no epoch stats recorded")
	}
	rebalanced := false
	for _, ep := range eps {
		if ep.Rebalanced {
			rebalanced = true
		}
	}
	if !rebalanced {
		t.Fatal("load balancer never fired on a 90% skew")
	}
	// The balancer equalizes *cost*, not raw counts, so allow slack on the
	// count-based imbalance; it must still improve markedly from the ~3.6
	// of the skewed initial partitioning.
	if last := eps[len(eps)-1].Imbalance; last > 2.5 {
		t.Errorf("final imbalance = %v, want ≤ 2.5", last)
	}
	if first, last := eps[0].Imbalance, eps[len(eps)-1].Imbalance; last >= first {
		t.Errorf("imbalance did not improve: %v -> %v", first, last)
	}
}

func mustStrips(t *testing.T, cuts []float64) *partition.Strips {
	t.Helper()
	s, err := partition.NewStripsFromCuts(cuts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFailureRecoveryThroughEngine(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 60, 30, 10)
	clean, err := NewDistributed(m, clonePop(base), Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 13,
		Tunables: Tunables{EpochTicks: 4, CheckpointEveryEpochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.RunTicks(16); err != nil {
		t.Fatal(err)
	}
	faulty, err := NewDistributed(m, clonePop(base), Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 13,
		Tunables: Tunables{EpochTicks: 4, CheckpointEveryEpochs: 1},
		Failures: cluster.NewFailurePlan().CrashAt(6, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.RunTicks(16); err != nil {
		t.Fatal(err)
	}
	if faulty.Runtime().Recoveries() != 1 {
		t.Fatalf("Recoveries = %d", faulty.Runtime().Recoveries())
	}
	popsExactlyEqual(t, "failure recovery", clean.Agents(), faulty.Agents())
}

func TestEngineStatsAccessors(t *testing.T) {
	m := newFlockModel(5)
	cmodel := cluster.DefaultCostModel()
	e, err := NewDistributed(m, makePop(m.s, 50, 25, 11), Options{
		Workers: 2, Index: spatial.KindKDTree, Seed: 1, CostModel: &cmodel,
		Tunables: Tunables{EpochTicks: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	if e.Tick() != 10 {
		t.Errorf("Tick = %d", e.Tick())
	}
	if e.AgentTicks() != 500 {
		t.Errorf("AgentTicks = %d, want 500", e.AgentTicks())
	}
	if e.Visited() == 0 {
		t.Error("Visited = 0")
	}
	if e.VirtualSeconds() <= 0 {
		t.Error("VirtualSeconds should be positive with a cost model")
	}
	if e.ThroughputVirtual() <= 0 {
		t.Error("ThroughputVirtual should be positive")
	}
	if e.WallSeconds() <= 0 || e.ThroughputWall() <= 0 {
		t.Error("wall stats should be positive")
	}
	if e.Partition().N() != 2 {
		t.Error("Partition")
	}
}

func TestSequentialStatsAccessors(t *testing.T) {
	m := newFlockModel(5)
	e, err := NewSequential(m, makePop(m.s, 30, 15, 12), spatial.KindScan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(4); err != nil {
		t.Fatal(err)
	}
	if e.Tick() != 4 || e.AgentTicks() != 120 {
		t.Errorf("Tick/AgentTicks = %d/%d", e.Tick(), e.AgentTicks())
	}
	if e.Visited() == 0 || e.WallSeconds() <= 0 || e.ThroughputWall() <= 0 {
		t.Error("sequential stats broken")
	}
}

func TestOptionsValidation(t *testing.T) {
	m := newFlockModel(5)
	if _, err := NewDistributed(m, nil, Options{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	bad := agent.NewSchema("NoPos")
	bad.AddState("q", true)
	if _, err := NewSequential(&schemaOnlyModel{bad}, nil, spatial.KindScan, 1); err == nil {
		t.Error("schema without position accepted")
	}
}

type schemaOnlyModel struct{ s *agent.Schema }

func (m *schemaOnlyModel) Schema() *agent.Schema           { return m.s }
func (m *schemaOnlyModel) Query(*agent.Agent, Env)         {}
func (m *schemaOnlyModel) Update(*agent.Agent, *UpdateCtx) {}
