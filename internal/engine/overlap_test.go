package engine

import (
	"runtime"
	"testing"

	"github.com/bigreddata/brace/internal/spatial"
)

// The overlapped two-pass tick changes scheduling, never results: with the
// split disabled via NoOverlap the run must be bit-identical at every
// worker count, including under load balancing where live cut changes
// force no-split ticks.
func TestOverlapAblationBitIdentical(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 140, 60, 9)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{Index: spatial.KindKDTree, Seed: 17}},
		{"lb", Options{Index: spatial.KindKDTree, Seed: 17, LoadBalance: true, EpochTicks: 3}},
	} {
		for _, workers := range []int{1, 3, 5} {
			tc.opts.Workers = workers
			on, err := NewDistributed(m, clonePop(base), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			offOpts := tc.opts
			offOpts.NoOverlap = true
			off, err := NewDistributed(m, clonePop(base), offOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !on.Overlapped() {
				t.Fatalf("%s/%dw: overlap off despite KD strips local-effect config", tc.name, workers)
			}
			if off.Overlapped() {
				t.Fatalf("%s/%dw: NoOverlap ignored", tc.name, workers)
			}
			if err := on.RunTicks(testTicks); err != nil {
				t.Fatal(err)
			}
			if err := off.RunTicks(testTicks); err != nil {
				t.Fatal(err)
			}
			popsExactlyEqual(t, tc.name+" overlap on vs off", off.Agents(), on.Agents())
		}
	}
}

// The two-pass tick under varying pool parallelism — the race-detector
// canary for the overlap window, where the interior pass, the boundary
// merge and the barrier prebuild all touch the per-partition cache state
// from pool goroutines. CI runs this with -race.
func TestOverlapTickAcrossParallelism(t *testing.T) {
	defer spatial.SetParallelism(runtime.GOMAXPROCS(0))
	m := newFlockModel(8)
	base := makePop(m.s, 120, 60, 5)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2, 8} {
		spatial.SetParallelism(par)
		dist, err := NewDistributed(m, clonePop(base), Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 42, EpochTicks: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !dist.Overlapped() {
			t.Fatal("overlap expected on")
		}
		if err := dist.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}
		popsExactlyEqual(t, "seq vs overlapped dist", seq.Agents(), dist.Agents())
	}
}
