package engine

import (
	"runtime"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/spatial"
)

// The overlapped two-pass tick changes scheduling, never results: with the
// split disabled via NoOverlap the run must be bit-identical at every
// worker count, including under load balancing where live cut changes
// force no-split ticks.
func TestOverlapAblationBitIdentical(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 140, 60, 9)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{Index: spatial.KindKDTree, Seed: 17}},
		{"lb", Options{Index: spatial.KindKDTree, Seed: 17, LoadBalance: true, Tunables: Tunables{EpochTicks: 3}}},
	} {
		for _, workers := range []int{1, 3, 5} {
			tc.opts.Workers = workers
			on, err := NewDistributed(m, clonePop(base), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			offOpts := tc.opts
			offOpts.NoOverlap = true
			off, err := NewDistributed(m, clonePop(base), offOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !on.Overlapped() {
				t.Fatalf("%s/%dw: overlap off despite KD strips local-effect config", tc.name, workers)
			}
			if off.Overlapped() {
				t.Fatalf("%s/%dw: NoOverlap ignored", tc.name, workers)
			}
			if err := on.RunTicks(testTicks); err != nil {
				t.Fatal(err)
			}
			if err := off.RunTicks(testTicks); err != nil {
				t.Fatal(err)
			}
			popsExactlyEqual(t, tc.name+" overlap on vs off", off.Agents(), on.Agents())
		}
	}
}

// The overlapped tick over a 2-D median-split partitioning. Regression:
// the boundary classifier used to assert e.part.(*partition.Strips)
// unconditionally, so admitting KD2D to the overlap gate panicked on the
// first tick. The generic per-rectangle margin test must classify against
// Region bounds and stay bit-identical to the single-pass tick and the
// sequential engine.
func TestOverlapKD2DBitIdentical(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 140, 60, 9)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}

	var pts []geom.Vec
	for _, a := range base {
		pts = append(pts, a.Pos(m.s))
	}
	for _, workers := range []int{2, 4} {
		opts := Options{
			Workers: workers, Index: spatial.KindKDTree, Seed: 17,
			InitialPartition: partition.NewKD2D(pts, workers),
		}
		on, err := NewDistributed(m, clonePop(base), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !on.Overlapped() {
			t.Fatalf("%dw: overlap off for KD2D despite local effects + cached KD index", workers)
		}
		if err := on.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}

		offOpts := opts
		offOpts.NoOverlap = true
		off, err := NewDistributed(m, clonePop(base), offOpts)
		if err != nil {
			t.Fatal(err)
		}
		if err := off.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}

		popsExactlyEqual(t, "kd2d overlap on vs off", off.Agents(), on.Agents())
		popsExactlyEqual(t, "kd2d overlap vs sequential", seq.Agents(), on.Agents())
	}
}

// The two-pass tick under varying pool parallelism — the race-detector
// canary for the overlap window, where the interior pass, the boundary
// merge and the barrier prebuild all touch the per-partition cache state
// from pool goroutines. CI runs this with -race.
func TestOverlapTickAcrossParallelism(t *testing.T) {
	defer spatial.SetParallelism(runtime.GOMAXPROCS(0))
	m := newFlockModel(8)
	base := makePop(m.s, 120, 60, 5)

	seq, err := NewSequential(m, clonePop(base), spatial.KindKDTree, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(testTicks); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2, 8} {
		spatial.SetParallelism(par)
		dist, err := NewDistributed(m, clonePop(base), Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 42, Tunables: Tunables{EpochTicks: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !dist.Overlapped() {
			t.Fatal("overlap expected on")
		}
		if err := dist.RunTicks(testTicks); err != nil {
			t.Fatal(err)
		}
		popsExactlyEqual(t, "seq vs overlapped dist", seq.Agents(), dist.Agents())
	}
}
