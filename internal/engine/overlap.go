// The overlapped two-pass tick. A bulk-synchronous tick wastes the map
// phase's network window: every worker blocks at the phase barrier until
// all peer envelopes arrive, even though most of its owned agents cannot
// see across a partition cut and need nothing from the wire. The split
// reduce computes those agents while boundary envelopes are in flight:
//
//	map (distribute/replicate)  ──FlushPhase──►  peers' markers in flight
//	  early pass: build core index over self-sent envelopes,
//	              classify interior vs boundary, probe interior
//	──AwaitPhase──►  phase drained
//	  late pass:  probe boundary + halo-owned agents against core ∪ halo,
//	              update all owned agents in ascending ID order
//
// The split changes scheduling, never results: interior agents are
// exactly those whose visibility disc lies strictly inside the strip, so
// their candidate sets cannot contain a peer-sent copy, and the late
// pass's two-array probes merge core and halo candidates in ascending
// agent-ID order — the same visible sequence a single combined index
// produces. Update order is immaterial (state-effect pattern; per-agent
// RNG is a function of (seed, tick, ID)), so the final state is
// bit-identical to the single-pass engine's.
package engine

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/bigreddata/brace/internal/mapreduce"
	"github.com/bigreddata/brace/internal/spatial"
)

// neverTick is the "no tick" sentinel for noSplitTick/prebuiltTick.
const neverTick = ^uint64(0)

// overlapBufs carries one partition's state from the early to the late
// pass of a tick. Reused every tick; purely allocation avoidance.
type overlapBufs struct {
	split     bool  // this tick's interior pass ran (no recent cut change)
	listsOK   bool  // the early build carries candidate lists
	before    int64 // index visited counter at early-pass start
	coreOwned []*Envelope
	interior  []int32 // owned slots probed by the early pass
	boundary  []int32 // owned slots deferred to the late pass

	halo      []*Envelope // every peer-sent envelope, ID-sorted
	haloAg    haloArrays  // the probe-side view of halo (agents + positions)
	haloOwned []*Envelope // non-replica members of halo (post-cut-change migrants)
	// haloOwnedRow[i] is haloOwned[i]'s index within haloAg — a migrant's
	// columnar self row is len(copies)+haloOwnedRow[i].
	haloOwnedRow []int32
}

// reduce1Early is the interior pass of the overlapped reduceᵗ₁, running in
// the window between the map phase's local flush and the peer barrier on
// exactly the envelopes this partition sent to itself. Owned agents always
// self-send — an agent's owner at map time is the partition that just
// updated it — except on the one tick right after a live cut change, so
// self is the full owned set whenever the split is allowed. The pass
// builds the core index over self and probes the agents whose visibility
// disc lies strictly inside the partition's strip: those can never see a
// peer-sent copy, so their query phases are exact without the halo.
func (e *Distributed) reduce1Early(ctx *mapreduce.Ctx, self []*Envelope) {
	start := time.Now() //bracevet:allow wallclock metrics-only: feeds the overlapNanos hidden-compute gauge
	w := ctx.Worker
	e.maybeRetune(w, ctx.Tick)
	ob := &e.obufs[w]
	ob.before = e.ixs[w].Stats().Visited
	copies, owned, ownedSlots := e.prepare(w, self)
	cached := e.cixs[w]
	ob.coreOwned = owned
	ob.listsOK = cached.HasLists()
	ob.split = ctx.Tick != e.noSplitTick
	ob.interior = ob.interior[:0]
	ob.boundary = ob.boundary[:0]
	if !ob.split {
		// First tick under freshly installed cuts: owned agents may still
		// be in flight from their previous owners, so every probe must
		// wait for the halo.
		ob.boundary = append(ob.boundary, ownedSlots...)
		atomic.AddInt64(&e.overlapNanos, int64(time.Since(start))) //bracevet:allow wallclock metrics-only: overlapNanos gauge
		return
	}

	// Classify by the exact visibility bound: a foreign agent is at least
	// as far as its distance to this partition's region, so strictly more
	// than vis from every face of Region(w) means nothing outside can be
	// visible. Strict, because a foreign agent at exactly distance vis is
	// visible (the radius comparisons are closed). Strips reduce to the
	// two-cut x test (their y bounds are ±Inf, which classify everything
	// interior on the unbounded sides for free); KD2D leaf rectangles test
	// all four faces. Sound whenever Locate agrees with rectangle
	// membership — the overlap gate admits only such partitionings.
	region := e.part.Region(w)
	vis := e.schema.Visibility
	for _, slot := range ownedSlots {
		pos := copies[slot].Pos(e.schema)
		if pos.X-region.Min.X > vis && region.Max.X-pos.X > vis &&
			pos.Y-region.Min.Y > vis && region.Max.Y-pos.Y > vis {
			ob.interior = append(ob.interior, slot)
		} else {
			ob.boundary = append(ob.boundary, slot)
		}
	}

	penvs := e.partEnvs(w)
	interior := ob.interior
	listsOK := ob.listsOK
	cols := e.bufs[w].cols
	spatial.ParallelFor(len(interior), probeGrain, func(chunk, lo, hi int) {
		q := &penvs[chunk]
		q.copies = copies
		q.cached = cached
		q.listsOK = listsOK
		q.ix = e.ixs[w]
		q.cols = cols
		q.halo = haloArrays{}
		q.haloOn = false
		if e.colM != nil {
			for _, slot := range interior[lo:hi] {
				q.slot = slot
				q.self = copies[slot]
				e.colM.QueryCols((*Cols)(q), slot)
			}
			return
		}
		for _, slot := range interior[lo:hi] {
			q.slot = slot
			q.self = copies[slot]
			e.model.Query(q.self, q)
		}
	})
	atomic.AddInt64(&e.overlapNanos, int64(time.Since(start))) //bracevet:allow wallclock metrics-only: overlapNanos gauge
}

// reduce1Late finishes the overlapped reduceᵗ₁ once the map phase has
// fully drained. rest holds everything peers sent this partition: replica
// copies and, on the tick right after a cut change, owned agents arriving
// from their previous owners. Boundary (and halo-owned) query phases
// merge the core candidate lists with a linear scan of the halo, then the
// update phase runs for all owned agents in ascending ID order — exactly
// the single-pass engine's visible sequences and fold orders.
func (e *Distributed) reduce1Late(ctx *mapreduce.Ctx, rest []*Envelope, emit mapreduce.Emit[*Envelope]) {
	w := ctx.Worker
	ob := &e.obufs[w]
	b := &e.bufs[w]
	cached := e.cixs[w]

	sort.Slice(rest, func(i, j int) bool { return rest[i].A.ID < rest[j].A.ID })
	ob.halo = append(ob.halo[:0], rest...)
	ob.haloAg.agents = ob.haloAg.agents[:0]
	ob.haloAg.pos = ob.haloAg.pos[:0]
	ob.haloOwned = ob.haloOwned[:0]
	ob.haloOwnedRow = ob.haloOwnedRow[:0]
	for _, env := range rest {
		if !env.Replica {
			if ob.split {
				panic("engine: owned envelope arrived from a peer on a split tick")
			}
			ob.haloOwned = append(ob.haloOwned, env)
			ob.haloOwnedRow = append(ob.haloOwnedRow, int32(len(ob.haloAg.agents)))
		}
		ob.haloAg.agents = append(ob.haloAg.agents, env.A)
		ob.haloAg.pos = append(ob.haloAg.pos, env.A.Pos(e.schema))
	}
	if e.colM != nil {
		// Halo copies become rows len(copies)+j so boundary query phases
		// can read their state through the columns.
		b.cols = appendHaloCols(b.cols, ob.haloAg.agents)
	}

	penvs := e.partEnvs(w)
	boundary, haloOwned := ob.boundary, ob.haloOwned
	nb := len(boundary)
	copies := b.copies
	ncore := int32(len(copies))
	halo := ob.haloAg
	listsOK := ob.listsOK
	cols := b.cols
	spatial.ParallelFor(nb+len(haloOwned), probeGrain, func(chunk, lo, hi int) {
		q := &penvs[chunk]
		q.copies = copies
		q.cached = cached
		q.listsOK = listsOK
		q.ix = e.ixs[w]
		q.cols = cols
		q.halo = halo
		q.haloOn = true
		for i := lo; i < hi; i++ {
			selfRow := int32(-1)
			if i < nb {
				q.slot = boundary[i]
				q.self = copies[q.slot]
				selfRow = q.slot
			} else {
				// A migrant owned agent has no core slot; its probes run
				// index queries plus the halo scan.
				q.slot = -1
				q.self = haloOwned[i-nb].A
				selfRow = ncore + ob.haloOwnedRow[i-nb]
			}
			if e.colM != nil {
				e.colM.QueryCols((*Cols)(q), selfRow)
			} else {
				e.model.Query(q.self, q)
			}
		}
		q.halo = haloArrays{}
		q.haloOn = false
	})

	visited := e.ixs[w].Stats().Visited - ob.before
	for i := range penvs {
		visited += penvs[i].takeStats().Visited
	}
	e.wVisited[w] += visited
	e.wOwned[w] += int64(len(ob.coreOwned) + len(haloOwned))

	// Update phase for all owned agents, merging the two ID-sorted owned
	// sets in ascending ID order.
	co, ho := ob.coreOwned, haloOwned
	i, j := 0, 0
	for i < len(co) || j < len(ho) {
		if j >= len(ho) || (i < len(co) && co[i].A.ID < ho[j].A.ID) {
			e.updateAndEmit(ctx, co[i], emit)
			i++
		} else {
			e.updateAndEmit(ctx, ho[j], emit)
			j++
		}
	}
	ob.coreOwned = nil
}

// prebuildCores rebuilds every local partition's core index and candidate
// lists from the values it holds right now. At an epoch barrier (or right
// after a restore) the next tick's self-sent envelope set is exactly
// these values, so this build either is the next early pass's build —
// same keys, same probe set, zero displacement, a guaranteed reuse — or,
// when a directive then installs new cuts, is thrown away by the
// invalidation that follows, leaving the adaptive gate in the same state
// as an invalidate-only barrier. prepare sorts its argument in place and
// a worker's checkpoint may still be serializing the live values, so the
// build works on a copy of the slice.
func (e *Distributed) prebuildCores() {
	if !e.overlap {
		return
	}
	for _, w := range e.LocalPartitions() {
		vs := e.rt.Values(w)
		envs := append(make([]*Envelope, 0, len(vs)), vs...)
		e.prepare(w, envs)
	}
}

// StartBarrierPrebuild begins the epoch-barrier cache invalidation and
// core prebuild on a background goroutine, so a distributed worker
// overlaps next tick's index build with the coordinator round-trip. The
// returned join must be called before the engine ticks again — and before
// InstallCuts, whose invalidation has to land after the build. No-op when
// the overlapped path is off.
func (e *Distributed) StartBarrierPrebuild(tick uint64) (join func()) {
	if !e.overlap {
		return func() {}
	}
	e.prebuiltTick = tick
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.invalidateCaches()
		e.prebuildCores()
	}()
	return func() { <-done }
}

// Overlapped reports whether the two-pass (interior/boundary) tick is
// active.
func (e *Distributed) Overlapped() bool { return e.overlap }

// OverlapSeconds returns the wall time spent in early (interior) passes —
// compute the overlapped tick hides behind envelope exchange. Summed
// across partitions, so with concurrent workers it can exceed elapsed
// wall time.
func (e *Distributed) OverlapSeconds() float64 {
	return time.Duration(atomic.LoadInt64(&e.overlapNanos)).Seconds()
}
