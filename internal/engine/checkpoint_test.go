package engine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/mapreduce"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/spatial"
)

// The engine's envelopes are gob-registered, so a distributed simulation
// can checkpoint its worker memories to disk and resume in a fresh
// process-equivalent runtime, continuing bit-identically.
func TestEngineDiskCheckpointResume(t *testing.T) {
	m := newFlockModel(6)
	base := makePop(m.s, 60, 30, 21)

	// Reference: uninterrupted run.
	ref, err := NewDistributed(m, clonePop(base), Options{Workers: 3, Index: spatial.KindKDTree, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunTicks(14); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: 6 ticks, save, load into a fresh engine, 8 more.
	first, err := NewDistributed(m, clonePop(base), Options{Workers: 3, Index: spatial.KindKDTree, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.RunTicks(6); err != nil {
		t.Fatal(err)
	}
	d := mapreduce.DiskCheckpoint[*Envelope]{Dir: t.TempDir()}
	if err := d.Save(first.Runtime()); err != nil {
		t.Fatal(err)
	}

	second, err := NewDistributed(m, nil, Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 8,
		// Partitioning is part of engine state; restore the same cuts.
		InitialPartition: first.Partition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tick, err := d.Load(second.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	if tick != 6 {
		t.Fatalf("restored tick = %d", tick)
	}
	if err := second.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "disk checkpoint resume", ref.Agents(), second.Agents())
}

// Incremental disk checkpoints: saves after the keyframe write only
// field-level deltas (engine.EnvelopeDiffer), and loading the keyframe +
// delta chain resumes bit-identically to an uninterrupted run — the
// reassembly invariant, exercised through the production codec.
func TestEngineIncrementalDiskCheckpointResume(t *testing.T) {
	m := newFlockModel(6)
	base := makePop(m.s, 60, 30, 21)

	ref, err := NewDistributed(m, clonePop(base), Options{Workers: 3, Index: spatial.KindKDTree, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunTicks(14); err != nil {
		t.Fatal(err)
	}

	first, err := NewDistributed(m, clonePop(base), Options{Workers: 3, Index: spatial.KindKDTree, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d := mapreduce.DiskCheckpoint[*Envelope]{Dir: dir, Differ: EnvelopeDiffer{}, FullEvery: 4}
	// Three saves: keyframe at tick 2, deltas at ticks 4 and 6.
	for i := 0; i < 3; i++ {
		if err := first.RunTicks(2); err != nil {
			t.Fatal(err)
		}
		if err := d.Save(first.Runtime()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "worker-000.k001.d02.gob")); err != nil {
		t.Fatalf("expected a two-delta chain on disk: %v", err)
	}

	second, err := NewDistributed(m, nil, Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 8,
		InitialPartition: first.Partition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d2 := mapreduce.DiskCheckpoint[*Envelope]{Dir: dir, Differ: EnvelopeDiffer{}}
	tick, err := d2.Load(second.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	if tick != 6 {
		t.Fatalf("restored tick = %d", tick)
	}
	if err := second.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "incremental disk checkpoint resume", ref.Agents(), second.Agents())

	// A chain cannot be replayed without its codec.
	plain := mapreduce.DiskCheckpoint[*Envelope]{Dir: dir}
	if _, err := plain.Load(second.Runtime()); err == nil {
		t.Error("delta chain loaded without a Differ")
	}
}

// Epoch statistics must account for every agent: owned counts sum to the
// live population at each epoch.
func TestEpochOwnedCountsConsistent(t *testing.T) {
	m := newFlockModel(6)
	e, err := NewDistributed(m, makePop(m.s, 90, 45, 22), Options{
		Workers: 4, Index: spatial.KindKDTree, Seed: 5, Tunables: Tunables{EpochTicks: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(12); err != nil {
		t.Fatal(err)
	}
	for _, ep := range e.Epochs() {
		total := 0
		for _, c := range ep.OwnedCounts {
			total += c
		}
		if total != 90 {
			t.Fatalf("epoch %d owned counts sum to %d, want 90", ep.Tick, total)
		}
		if ep.Imbalance < 1 {
			t.Fatalf("epoch %d imbalance %v < 1", ep.Tick, ep.Imbalance)
		}
	}
}

// Load balancing is itself deterministic: two identically configured runs
// with LB on rebalance identically and end in the same state.
func TestLoadBalancerDeterministic(t *testing.T) {
	m := newFlockModel(4)
	mkrun := func() (agent.Population, []float64) {
		pop := makePop(m.s, 120, 20, 23)
		for i := 100; i < 120; i++ {
			pop[i].SetPos(m.s, geom.V(60+float64(i), 0))
		}
		e, err := NewDistributed(m, pop, Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 6,
			LoadBalance: true, Tunables: Tunables{EpochTicks: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(16); err != nil {
			t.Fatal(err)
		}
		return e.Agents(), e.Partition().(*partition.Strips).Cuts()
	}
	a1, c1 := mkrun()
	a2, c2 := mkrun()
	popsExactlyEqual(t, "lb determinism", a1, a2)
	if len(c1) != len(c2) {
		t.Fatal("cut counts differ")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("cut %d differs: %v vs %v", i, c1[i], c2[i])
		}
	}
}
