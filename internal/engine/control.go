// Control-plane surface of the distributed engine: the accessors and
// mutators a coordinator-driven worker needs at epoch barriers. The
// in-memory engine is its own master (onEpoch rebalances, the runtime
// checkpoints internally); a multi-process worker instead ships the same
// per-partition inputs to the coordinator, which runs PlanRebalance — the
// identical decision procedure — and answers with cuts to install, a
// checkpoint order, or a restore. Keeping both paths on one procedure is
// what makes `-lb` over TCP bit-identical to the in-memory engine.
package engine

import (
	"fmt"
	"sort"

	"github.com/bigreddata/brace/internal/partition"
)

// PartitionState is one partition's checkpointed state as it travels
// between a worker and the coordinator: the owned envelopes plus the
// partition's cumulative cost counter, so a restored run keeps making the
// same load-balancing decisions as an unfailed one.
type PartitionState struct {
	Part    int
	Visited int64
	Envs    []*Envelope
}

// PlanRebalance runs the 1-D balancer's decision procedure from
// per-partition inputs: xs[p] holds the x coordinates of partition p's
// owned agents, visited[p] its cumulative candidates-visited counter (the
// per-agent cost proxy: visited/owned + 1). Positions are folded
// partition-major and sorted within each partition, so the decision is a
// function of the per-partition position multisets alone — an in-memory
// engine and a coordinator assembling worker statistics reach the same
// cuts bit for bit.
func PlanRebalance(b partition.Balancer, strips *partition.Strips, xs [][]float64, visited []int64) partition.Decision {
	var flat, costs []float64
	for p := range xs {
		sorted := append([]float64(nil), xs[p]...)
		sort.Float64s(sorted)
		perAgent := 1.0
		if n := len(sorted); n > 0 {
			perAgent = float64(visited[p])/float64(n) + 1
		}
		for _, x := range sorted {
			flat = append(flat, x)
			costs = append(costs, perAgent)
		}
	}
	return b.Plan(strips, flat, costs)
}

// LocalPartitions returns the partitions this engine computes (all of
// them for a single-process engine).
func (e *Distributed) LocalPartitions() []int {
	if e.opts.LocalParts == nil {
		all := make([]int, e.opts.Workers)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return append([]int(nil), e.opts.LocalParts...)
}

// PartitionXs returns the x coordinates of partition p's owned values —
// the balancer's per-partition input.
func (e *Distributed) PartitionXs(p int) []float64 {
	vals := e.rt.Values(p)
	xs := make([]float64, len(vals))
	for i, env := range vals {
		xs[i] = env.A.Pos(e.schema).X
	}
	return xs
}

// PartitionVisited returns partition p's cumulative candidates-visited
// counter.
func (e *Distributed) PartitionVisited(p int) int64 { return e.wVisited[p] }

// ExportPartition returns partition p's current envelopes for checkpoint
// shipping. The slice aliases live engine state: the caller must
// serialize it before the engine ticks again.
func (e *Distributed) ExportPartition(p int) []*Envelope { return e.rt.Values(p) }

// InstallCuts replaces the strip partitioning with the given interior
// boundaries — a coordinator rebalancing directive. Only legal at an
// epoch barrier (no phase may be executing).
func (e *Distributed) InstallCuts(cuts []float64) error {
	if _, ok := e.part.(*partition.Strips); !ok {
		return fmt.Errorf("engine: cannot install cuts over a non-strip partitioning")
	}
	p, err := partition.NewStripsFromCuts(cuts)
	if err != nil {
		return err
	}
	if p.N() != e.opts.Workers {
		return fmt.Errorf("engine: %d cuts make %d partitions, want %d", len(cuts), p.N(), e.opts.Workers)
	}
	e.part = p
	e.invalidateCaches() // migrations change copy sets; start the epoch cold
	// Migrating agents reach their new owner over the wire, so the first
	// tick under the new cuts runs single-pass (matching the in-memory
	// master, which marks the rebalance tick the same way in onEpoch).
	e.noSplitTick = e.rt.Tick()
	return nil
}

// Restore rewinds the engine to a coordinator-held checkpoint: tick,
// strip cuts (nil keeps the current partitioning), the set of partitions
// this process now computes, and their state. Partitions outside the new
// local set are cleared. Only legal between RunTicks calls.
func (e *Distributed) Restore(tick uint64, cuts []float64, local []int, parts []PartitionState) error {
	if cuts != nil {
		if err := e.InstallCuts(cuts); err != nil {
			return err
		}
	}
	vals := make(map[int][]*Envelope, len(parts))
	for i := range e.wVisited {
		e.wVisited[i] = 0
	}
	for _, ps := range parts {
		if ps.Part < 0 || ps.Part >= e.opts.Workers {
			return fmt.Errorf("engine: restore of unknown partition %d", ps.Part)
		}
		vals[ps.Part] = ps.Envs
		e.wVisited[ps.Part] = ps.Visited
	}
	e.rt.Reset(tick, local, vals)
	e.opts.LocalParts = local
	e.lastEpochT = tick
	e.invalidateCaches() // restored state must rebuild like an unfailed run
	// The restored values sit consistently under the restored cuts, so the
	// next tick self-sends every owned agent: the two-pass split resumes
	// immediately, with the core lists prebuilt exactly as at an ordinary
	// barrier.
	e.noSplitTick = neverTick
	e.prebuildCores()
	return nil
}
