package engine

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
)

func env(id uint64, state, effect []float64, dead, replica bool, src int32) *Envelope {
	return &Envelope{
		A: &agent.Agent{
			ID:     agent.ID(id),
			State:  append([]float64(nil), state...),
			Effect: append([]float64(nil), effect...),
			Dead:   dead,
		},
		Replica: replica,
		SrcPart: src,
	}
}

// bitsEqual compares float vectors on bit patterns so NaN payloads and
// -0 count as round-tripped (agent.Equal's != would reject NaN == NaN).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func envsEqual(t *testing.T, want, got []*Envelope) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("lengths differ: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.A.ID != g.A.ID || w.A.Dead != g.A.Dead ||
			!bitsEqual(w.A.State, g.A.State) || !bitsEqual(w.A.Effect, g.A.Effect) ||
			w.Replica != g.Replica || w.SrcPart != g.SrcPart {
			t.Fatalf("envelope %d differs:\n  want %v (replica=%v src=%d)\n  got  %v (replica=%v src=%d)",
				i, w.A, w.Replica, w.SrcPart, g.A, g.Replica, g.SrcPart)
		}
	}
}

// The reassembly invariant: base + delta reproduces the current state
// exactly, including slice order, for every kind of change an epoch can
// produce — moves, flag flips, migrations (SrcPart), births and deaths.
func TestDeltaRoundTrip(t *testing.T) {
	base := []*Envelope{
		env(1, []float64{1, 2, 0}, []float64{0, 0}, false, false, 0),
		env(2, []float64{3, 4, 1}, []float64{5, 0}, false, false, 0),
		env(7, []float64{9, 9, 2}, []float64{1, 1}, false, false, 1),
		env(9, []float64{0, 0, 0}, []float64{0, 0}, true, false, 0),
	}
	cur := []*Envelope{
		env(2, []float64{3.5, 4, 1}, []float64{5, 0}, false, false, 0),                // one field moved
		env(1, []float64{1, 2, 0}, []float64{0, 0}, false, false, 0),                  // unchanged, reordered
		env(7, []float64{9, 9, 2}, []float64{1, 1}, false, false, 3),                  // migrated (SrcPart)
		env(12, []float64{8, 8, 8}, []float64{2, 2}, false, true, 1),                  // born
		env(13, []float64{math.Copysign(0, -1), 1, math.NaN()}, nil, false, false, 0), // born, odd floats
		// agent 9 removed
	}
	delta, ok := DiffPartition(base, cur)
	if !ok {
		t.Fatal("DiffPartition refused a plain partition")
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	envsEqual(t, cur, got)

	// The baseline must be untouched (it is the previous rollback point).
	if base[1].A.State[0] != 3 || base[2].SrcPart != 1 {
		t.Fatal("ApplyDelta mutated the baseline")
	}
	// -0 must survive as -0 (bit-pattern comparison).
	if math.Signbit(got[4].A.State[0]) != true {
		t.Error("-0 did not round-trip")
	}
	if !math.IsNaN(got[4].A.State[2]) {
		t.Error("NaN did not round-trip")
	}
}

func TestDeltaEmptyAndIdentity(t *testing.T) {
	// Identity delta: nothing changed.
	base := []*Envelope{env(1, []float64{1}, []float64{2}, false, false, 0)}
	delta, ok := DiffPartition(base, base)
	if !ok {
		t.Fatal("identity diff refused")
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	envsEqual(t, base, got)
	if len(delta) > 8 {
		t.Errorf("identity delta is %d bytes, want a handful", len(delta))
	}

	// Empty current state: everything removed.
	delta, ok = DiffPartition(base, nil)
	if !ok {
		t.Fatal("empty diff refused")
	}
	got, err = ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d envelopes, want 0", len(got))
	}

	// Empty base: everything fresh.
	delta, ok = DiffPartition(nil, base)
	if !ok {
		t.Fatal("fresh-only diff refused")
	}
	got, err = ApplyDelta(nil, delta)
	if err != nil {
		t.Fatal(err)
	}
	envsEqual(t, base, got)
}

// Duplicate IDs (replica copies present) make the baseline ambiguous: the
// codec must refuse so the caller ships full state.
func TestDeltaRefusesDuplicateIDs(t *testing.T) {
	dup := []*Envelope{
		env(1, []float64{1}, nil, false, false, 0),
		env(1, []float64{2}, nil, false, true, 1),
	}
	plain := []*Envelope{env(1, []float64{1}, nil, false, false, 0)}
	if _, ok := DiffPartition(dup, plain); ok {
		t.Error("diff against a base with duplicate IDs accepted")
	}
	if _, ok := DiffPartition(plain, dup); ok {
		t.Error("diff of a current state with duplicate IDs accepted")
	}
}

func TestDeltaRejectsCorruptBlobs(t *testing.T) {
	base := []*Envelope{env(1, []float64{1, 2}, []float64{3}, false, false, 0)}
	cur := []*Envelope{env(1, []float64{5, 2}, []float64{3}, false, false, 0)}
	delta, ok := DiffPartition(base, cur)
	if !ok {
		t.Fatal("diff refused")
	}
	if _, err := ApplyDelta(base, delta[:len(delta)-1]); err == nil {
		t.Error("truncated delta accepted")
	}
	if _, err := ApplyDelta(base, append(append([]byte(nil), delta...), 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := ApplyDelta(nil, delta); err == nil {
		t.Error("delta against the wrong base accepted")
	}
	bad := append([]byte(nil), delta...)
	bad[0] = 99
	if _, err := ApplyDelta(base, bad); err == nil {
		t.Error("unknown version accepted")
	}
}

// Randomized reassembly: many epochs of random churn, each delta applied
// on top of the previous reconstruction, must track the truth exactly —
// the chained form a keyframe-plus-deltas checkpoint store relies on.
func TestDeltaChainRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := make([]*Envelope, 0, 64)
	nextID := uint64(1)
	for i := 0; i < 40; i++ {
		truth = append(truth, env(nextID, []float64{rng.Float64(), rng.Float64(), float64(rng.Intn(3))},
			[]float64{0, 0, 0, 0}, false, false, int32(rng.Intn(4))))
		nextID++
	}
	reconstructed := CloneEnvelopes(truth)
	for epoch := 0; epoch < 25; epoch++ {
		prev := CloneEnvelopes(truth)
		// Mutate: move some agents, flip flags, spawn, remove, shuffle.
		for _, e := range truth {
			if rng.Float64() < 0.7 {
				e.A.State[0] += rng.NormFloat64()
			}
			if rng.Float64() < 0.2 {
				e.A.Effect[rng.Intn(4)] = rng.Float64()
			}
			if rng.Float64() < 0.05 {
				e.A.Dead = !e.A.Dead
			}
			if rng.Float64() < 0.05 {
				e.SrcPart = int32(rng.Intn(4))
			}
		}
		if rng.Float64() < 0.5 {
			truth = append(truth, env(nextID, []float64{rng.Float64(), 0, 0}, []float64{0, 0, 0, 0}, false, false, 0))
			nextID++
		}
		if len(truth) > 4 && rng.Float64() < 0.5 {
			k := rng.Intn(len(truth))
			truth = append(truth[:k], truth[k+1:]...)
		}
		rng.Shuffle(len(truth), func(i, j int) { truth[i], truth[j] = truth[j], truth[i] })

		delta, ok := DiffPartition(prev, truth)
		if !ok {
			t.Fatalf("epoch %d: diff refused", epoch)
		}
		var err error
		reconstructed, err = ApplyDelta(reconstructed, delta)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		envsEqual(t, truth, reconstructed)
	}
}

// The point of the exercise: a delta of a typical epoch (every agent
// moved, most other fields quiet) must be materially smaller than the
// gob-encoded full state a v2 checkpoint would ship.
func TestDeltaSmallerThanFullState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]*Envelope, 0, 200)
	for i := 0; i < 200; i++ {
		state := []float64{rng.Float64() * 30, rng.Float64() * 30, rng.Float64(), rng.Float64(), float64(i % 3)}
		effect := make([]float64, 8)
		base = append(base, env(uint64(i+1), state, effect, false, false, int32(i%4)))
	}
	cur := CloneEnvelopes(base)
	for _, e := range cur {
		e.A.State[0] += rng.NormFloat64() // drift: positions move,
		e.A.State[1] += rng.NormFloat64() // class and effects stay
	}
	delta, ok := DiffPartition(base, cur)
	if !ok {
		t.Fatal("diff refused")
	}
	var full bytes.Buffer
	if err := gob.NewEncoder(&full).Encode(cur); err != nil {
		t.Fatal(err)
	}
	if len(delta)*2 > full.Len() {
		t.Errorf("delta %dB is not materially smaller than full %dB", len(delta), full.Len())
	}
}
