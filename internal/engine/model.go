// Package engine implements BRACE's core contribution: processing a
// behavioral simulation as an *iterated spatial join* on a shared-nothing,
// main-memory MapReduce runtime (paper §3).
//
// Each tick joins every agent with the agents in its visible region (the
// query phase, run by reducers over replicated partitions) and then lets
// every agent update its own state (the update phase). Simulations with
// only local effect assignments use a single reduce per tick; simulations
// with non-local assignments use the map-reduce-reduce model of §3.2 with a
// second reduce that globally aggregates effect values at each agent's
// owner partition.
//
// Two engines share the same Model interface: Distributed (the BRACE
// runtime over internal/mapreduce) and Sequential (a single-loop reference
// used for validation and as the single-node baseline).
package engine

import (
	"fmt"

	"github.com/bigreddata/brace/internal/agent"
)

// Model is the behavior of one agent class under the state-effect pattern.
// Implementations must follow the pattern's read/write discipline (which
// the BRASIL compiler enforces mechanically for scripted models):
//
//   - Query may read any visible agent's State, but writes only Effect
//     fields, and only through Env.Assign;
//   - Update may read and write only the agent's own fields;
//   - Query must be insensitive to neighbor *iteration order* beyond what
//     commutative effect combinators absorb. Env iterates visible agents
//     in ascending agent-ID order, so any residual order dependence is at
//     least deterministic.
//   - For local-effect models the engines may run Query for *distinct*
//     agents concurrently (the batched-probe fast path), so Query must not
//     mutate shared model state. Each invocation still sees its own Env
//     and its deterministic ID-ordered iteration; results are
//     bit-identical to a serial run. (Compiled BRASIL programs satisfy
//     this via per-invocation frames.)
type Model interface {
	// Schema describes the agent class.
	Schema() *agent.Schema
	// Query runs the query phase for self against its visible region.
	Query(self *agent.Agent, env Env)
	// Update runs the update phase: compute tick t+1 state from tick t
	// state and aggregated effects.
	Update(self *agent.Agent, u *UpdateCtx)
}

// NonLocalModel is implemented by models whose Query assigns effects to
// agents other than self. The engine then uses the two-reduce dataflow.
// Models without this method (or returning false) are run with the cheaper
// single-reduce dataflow, and any non-local Assign panics — silently
// dropping it would corrupt the simulation.
type NonLocalModel interface {
	HasNonLocalEffects() bool
}

// Env is the query phase's window onto the visible region. All iteration
// respects the schema's visibility bound and runs in ascending agent-ID
// order (see Model).
type Env interface {
	// Self returns the agent whose query phase is running.
	Self() *agent.Agent
	// ForEachVisible calls fn for every agent within the visibility bound
	// of self's position, including self (BRASIL's Extent<Class>; scripts
	// guard with p != this when needed).
	ForEachVisible(fn func(*agent.Agent))
	// Nearby is ForEachVisible restricted to the given radius (cropped to
	// the visibility bound).
	Nearby(radius float64, fn func(*agent.Agent))
	// Nearest appends to buf up to k visible agents closest to self,
	// excluding self, ordered by (distance, agent ID).
	Nearest(k int, buf []*agent.Agent) []*agent.Agent
	// Assign folds value into target's effect field using the schema's
	// combinator. Assigning to an agent other than Self is a non-local
	// effect and requires the model to declare HasNonLocalEffects.
	Assign(target *agent.Agent, effectIndex int, value float64)
}

// UpdateCtx carries the update phase's context: deterministic per-agent
// randomness and agent lifecycle operations (used by the predator model).
type UpdateCtx struct {
	// Tick is the tick being completed (0-based).
	Tick uint64
	// RNG is seeded from (simulation seed, tick, agent ID) so results do
	// not depend on partitioning or scheduling.
	RNG *agent.RNG

	schema *agent.Schema
	self   agent.ID
	spawns []*agent.Agent
	nspawn int
	// rngv is the generator RNG points at when the engines reuse one
	// UpdateCtx across agents (reset re-seeds it in place, so the update
	// loop allocates nothing per agent).
	rngv agent.RNG
}

// reset re-arms a reused UpdateCtx for the next agent: re-seed the
// in-place RNG, clear the spawn batch (spawned agents were already emitted
// by the caller), and retarget the identity fields. The stream each agent
// sees is exactly what a freshly allocated UpdateCtx would produce.
func (u *UpdateCtx) reset(seed, tick uint64, schema *agent.Schema, self agent.ID) {
	u.Tick = tick
	u.rngv = agent.SeedRNG(seed, tick, self)
	u.RNG = &u.rngv
	u.schema = schema
	u.self = self
	u.spawns = u.spawns[:0]
	u.nspawn = 0
}

// Spawn allocates a new agent that joins the simulation next tick. The
// caller must set its state (including position) before Update returns.
// IDs are derived from (parent, tick, sequence) so spawning is
// deterministic under any distribution.
func (u *UpdateCtx) Spawn() *agent.Agent {
	a := agent.New(u.schema, agent.HashID(u.self, u.Tick, u.nspawn))
	u.nspawn++
	u.spawns = append(u.spawns, a)
	return a
}

// Kill marks the updating agent dead; it is removed at the tick boundary.
func (u *UpdateCtx) Kill(self *agent.Agent) { self.Dead = true }

func modelNonLocal(m Model) bool {
	if nl, ok := m.(NonLocalModel); ok {
		return nl.HasNonLocalEffects()
	}
	return false
}

func validateModel(m Model) error {
	s := m.Schema()
	if s == nil {
		return fmt.Errorf("engine: model has nil schema")
	}
	return s.Validate()
}
