package engine

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/spatial"
)

// lifecyclePushModel combines every engine feature in one model: non-local
// effects (two-reduce dataflow), spawning, death, and movement — a
// predator-like stress model for the everything-on integration test.
type lifecyclePushModel struct {
	s        *agent.Schema
	x, y, en int
	hurt     int
}

func newLifecyclePushModel() *lifecyclePushModel {
	m := &lifecyclePushModel{}
	s := agent.NewSchema("Stress")
	m.s = s
	m.x = s.AddState("x", true)
	m.y = s.AddState("y", true)
	m.en = s.AddState("en", true)
	m.hurt = s.AddEffect("hurt", true, agent.Sum)
	s.SetPosition("x", "y").SetVisibility(4).SetReach(1.5)
	return m
}

func (m *lifecyclePushModel) Schema() *agent.Schema    { return m.s }
func (m *lifecyclePushModel) HasNonLocalEffects() bool { return true }

func (m *lifecyclePushModel) Query(self *agent.Agent, env Env) {
	env.Nearby(2, func(o *agent.Agent) {
		if o.ID != self.ID && self.State[m.en] > o.State[m.en] {
			env.Assign(o, m.hurt, 0.4)
		}
	})
}

func (m *lifecyclePushModel) Update(self *agent.Agent, u *UpdateCtx) {
	e := self.State[m.en] - self.Effect[m.hurt] + 0.15
	if e <= 0 {
		u.Kill(self)
		return
	}
	if e > 10 {
		e /= 2
		c := u.Spawn()
		c.State[m.x] = self.State[m.x] + u.RNG.Range(-1, 1)
		c.State[m.y] = self.State[m.y] + u.RNG.Range(-1, 1)
		c.State[m.en] = e / 2
	}
	self.State[m.en] = e
	self.State[m.x] += u.RNG.Range(-1, 1)
	self.State[m.y] += u.RNG.Range(-1, 1)
}

// Everything on at once: non-local effects (map-reduce-reduce), spawning
// and death, load balancing, checkpoints, and a mid-run crash. The run
// must (a) complete, (b) recover exactly once, and (c) be reproducible:
// an identical second run (same failure plan) ends bit-identical.
func TestEverythingOnIntegration(t *testing.T) {
	m := newLifecyclePushModel()
	mkpop := func() []*agent.Agent {
		pop := make([]*agent.Agent, 80)
		for i := range pop {
			id := agent.ID(i + 1)
			rng := agent.NewRNG(77, 0, id)
			a := agent.New(m.s, id)
			a.State[m.x] = rng.Range(0, 40)
			a.State[m.y] = rng.Range(0, 40)
			a.State[m.en] = rng.Range(3, 9)
			pop[i] = a
		}
		return pop
	}
	run := func() agent.Population {
		e, err := NewDistributed(m, mkpop(), Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 17,
			Tunables: Tunables{EpochTicks: 4, CheckpointEveryEpochs: 1}, LoadBalance: true,
			Failures: cluster.NewFailurePlan().CrashAt(9, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(24); err != nil {
			t.Fatal(err)
		}
		if e.Runtime().Recoveries() != 1 {
			t.Fatalf("Recoveries = %d, want 1", e.Runtime().Recoveries())
		}
		return e.Agents()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("population died out")
	}
	popsExactlyEqual(t, "everything-on reproducibility", a, b)
}

// The same stress model must also survive an index-kind change with only
// FP-reassociation-level drift (non-local ⊕ order depends on partitions,
// not on the index), and match the sequential engine on 1 worker exactly.
func TestStressModelOneWorkerMatchesSequential(t *testing.T) {
	m := newLifecyclePushModel()
	mkpop := func() []*agent.Agent {
		pop := make([]*agent.Agent, 50)
		for i := range pop {
			id := agent.ID(i + 1)
			rng := agent.NewRNG(78, 0, id)
			a := agent.New(m.s, id)
			a.State[m.x] = rng.Range(0, 30)
			a.State[m.y] = rng.Range(0, 30)
			a.State[m.en] = rng.Range(3, 9)
			pop[i] = a
		}
		return pop
	}
	seq, err := NewSequential(m, mkpop(), spatial.KindKDTree, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	one, err := NewDistributed(m, mkpop(), Options{Workers: 1, Index: spatial.KindKDTree, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := one.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	popsExactlyEqual(t, "stress 1-worker", seq.Agents(), one.Agents())
}
