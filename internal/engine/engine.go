package engine

import (
	"fmt"
	"sort"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/mapreduce"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/transport"
)

// Options configures a Distributed engine.
// Tunables aliases the shared knob set Options embeds, so engine callers
// can write engine.Tunables{...} without importing internal/cluster.
type Tunables = cluster.Tunables

type Options struct {
	// Workers is the number of worker nodes (= spatial partitions).
	Workers int
	// Index selects the spatial index used by reducers; KindScan is the
	// "no indexing" configuration of Figs. 3–4.
	Index spatial.Kind
	// Seed drives all simulation randomness.
	Seed uint64
	// Tunables is the knob set shared with distrib.Options and the
	// service run config. The engine reads EpochTicks (the master
	// interaction interval, default 10), CheckpointEveryEpochs (0 = off;
	// an initial rollback point is still kept) and CacheSkin (see below);
	// the network timeouts and the mesh switch belong to the distributed
	// layers and are ignored here.
	cluster.Tunables
	// LoadBalance enables the one-dimensional load balancer at epoch
	// boundaries.
	LoadBalance bool
	// Balancer tunes load balancing; zero value means DefaultBalancer.
	Balancer partition.Balancer
	// Failures optionally schedules worker crashes.
	Failures *cluster.FailurePlan
	// CostModel, when non-nil, enables virtual-time accounting (see
	// internal/cluster): required for the scale-up experiments.
	CostModel *cluster.CostModel
	// Sequential runs worker tasks one at a time (debugging/determinism).
	Sequential bool
	// Transport overrides the message layer (default: in-memory). A
	// multi-process run passes the TCP transport wired to its
	// coordinator; its node count must equal Workers.
	Transport transport.Transport
	// LocalParts restricts this engine to computing the given partitions
	// (nil = all). Set by the distributed driver: every worker process
	// builds the same model and initial population, then loads and ticks
	// only the partitions the coordinator assigned it. Incompatible with
	// engine-local LoadBalance, CostModel and Failures, which need a
	// global view — in multi-process runs the coordinator owns those
	// features and drives this engine through EpochBarrier, InstallCuts
	// and Restore.
	LocalParts []int
	// EpochBarrier, when non-nil, runs first at every epoch boundary.
	// Distributed workers use it for the coordinator round-trip (ship
	// stats, await the directive); a returned error aborts RunTicks.
	EpochBarrier func(tick uint64) error
	// Tunables.CacheSkin tunes the Verlet query cache (KD-tree index with
	// bounded visibility only): 0 selects spatial.DefaultSkin as the seed
	// and auto-tunes per partition from observed per-tick displacement
	// (each epoch re-seeds, observes a warmup window, then retunes — a
	// pure function of forward execution from the last barrier, so
	// recovered and load-balanced runs still do identical index work); a
	// negative value disables the cached path; a positive value is the
	// skin radius s, used verbatim with no auto-tuning.
	// The cache is semantics-preserving — reuse requires an unchanged
	// keyed copy set with every agent within s/2 of its build position,
	// and every epoch barrier (plus restores and rebalances) invalidates
	// it, so recovered and load-balanced runs stay bit-identical.

	// InitialPartition overrides the automatic quantile strip
	// partitioning with any partitioning function (e.g. partition.KD2D
	// for 2-D median splits). Load balancing applies only when the
	// function is a *partition.Strips.
	InitialPartition partition.Func
	// NoOverlap disables the overlapped two-pass tick (see overlap.go)
	// even when its preconditions hold. The overlap changes scheduling,
	// never results; this switch exists for the ablation experiment and
	// for debugging.
	NoOverlap bool
	// NoColumnar disables the columnar query path (see cols.go) even for
	// models implementing ColumnarModel — the equivalence suite's
	// ablation knob. Columnar and classic query phases are bit-identical.
	NoColumnar bool
}

// EpochStat records one epoch for the Fig. 8 style series.
type EpochStat struct {
	Tick        uint64
	VirtualSec  float64 // virtual time consumed by this epoch's ticks
	WallSec     float64
	OwnedCounts []int
	Imbalance   float64 // max/mean of owned counts
	Rebalanced  bool
}

// Distributed is the BRACE engine: a Model executed as an iterated spatial
// join on the MapReduce runtime.
type Distributed struct {
	model    Model
	schema   *agent.Schema
	combs    []agent.Combinator
	opts     Options
	nonLocal bool

	part   partition.Func
	rt     *mapreduce.Runtime[*Envelope]
	vclock *cluster.VClock

	// Per-worker tick counters; each worker writes only its own slot
	// during a phase and the master reads after the phase barrier.
	wOwned   []int64
	wVisited []int64

	// Reusable per-worker machinery. ixs[w] is the partition's index;
	// when the cached path is on it is also cixs[w]. envs[w] holds one
	// probe env per worker-pool chunk; bufs[w] the tick build buffers.
	ixs   []spatial.Index
	cixs  []*spatial.CachedIndex
	envs  [][]queryEnv
	bufs  []partBufs
	isSum []bool
	// colM is non-nil when the model runs the columnar query path; the
	// per-partition columns live in bufs[w].cols (see cols.go).
	colM ColumnarModel

	// Overlapped two-pass tick state (overlap.go). obufs[w] carries the
	// interior/boundary split between the early and late pass; noSplitTick
	// is the single tick that must not split (the one right after a live
	// cut change, when owned agents may still arrive from peers);
	// prebuiltTick marks the barrier whose invalidate+prebuild already ran
	// on the worker side, so onEpoch must not redo it.
	overlap      bool
	obufs        []overlapBufs
	noSplitTick  uint64
	prebuiltTick uint64
	overlapNanos int64

	// Skin auto-tuning (CacheSkin == 0): every invalidation re-seeds the
	// skin to seedSkin, and skinWarmupTicks into each epoch the per-tick
	// displacement observed so far picks the partition's skin for the rest
	// of the epoch. Epoch-self-contained by construction, so runs reaching
	// a barrier state through different histories retune identically.
	autoSkin bool
	seedSkin float64
	// tunedSkin[w] is the last skin maybeRetune installed for partition w
	// (0 until the first retune). Epoch barriers re-seed the live skin, so
	// this is the only record of a retune that survives RunTicks — the
	// runtime runs a barrier at the end of every RunTicks call. Written
	// only by worker w's goroutine; read after RunTicks returns.
	tunedSkin []float64

	agentTicks   int64
	visitedTotal int64
	epochs       []EpochStat
	lastEpochV   float64
	lastEpochT   uint64
	lastWall     time.Time
	wallTotal    time.Duration
	virtStart    float64
}

// NewDistributed builds the engine and loads the initial population.
func NewDistributed(m Model, pop []*agent.Agent, opts Options) (*Distributed, error) {
	if err := validateModel(m); err != nil {
		return nil, err
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("engine: Workers must be ≥ 1, got %d", opts.Workers)
	}
	if opts.EpochTicks <= 0 {
		opts.EpochTicks = 10
	}
	if opts.Balancer == (partition.Balancer{}) {
		opts.Balancer = partition.DefaultBalancer()
	}
	if opts.LocalParts != nil {
		// A partial engine sees only its own partitions; features that
		// need the whole cluster's state live on the coordinator side or
		// are unsupported in multi-process runs.
		switch {
		case opts.LoadBalance:
			return nil, fmt.Errorf("engine: LoadBalance needs a global view; unsupported with LocalParts")
		case opts.CostModel != nil:
			return nil, fmt.Errorf("engine: CostModel needs a global view; unsupported with LocalParts")
		case opts.Failures != nil && !opts.Failures.Empty():
			return nil, fmt.Errorf("engine: failure injection is unsupported with LocalParts")
		}
	}
	s := m.Schema()
	e := &Distributed{
		model:    m,
		schema:   s,
		combs:    effectCombs(s),
		opts:     opts,
		nonLocal: modelNonLocal(m),
		wOwned:   make([]int64, opts.Workers),
		wVisited: make([]int64, opts.Workers),
		ixs:      make([]spatial.Index, opts.Workers),
		cixs:     make([]*spatial.CachedIndex, opts.Workers),
		envs:     make([][]queryEnv, opts.Workers),
		bufs:     make([]partBufs, opts.Workers),

		noSplitTick:  neverTick,
		prebuiltTick: neverTick,
	}
	e.isSum = sumMask(e.combs)
	if !opts.NoColumnar {
		e.colM = columnarModel(m)
	}
	skin := resolveSkin(s, opts.Index, opts.CacheSkin)
	if opts.CostModel != nil {
		// Virtual-time accounting charges candidates-visited through a
		// cost model calibrated for the per-tick rebuild dataflow; the
		// cached path changes what a "visit" physically costs (sequential
		// list scan vs tree walk), so scale-up experiments keep the
		// paper-faithful uncached accounting.
		skin = 0
	}
	e.autoSkin = skin > 0 && opts.CacheSkin == 0 && opts.CostModel == nil
	e.seedSkin = skin
	e.tunedSkin = make([]float64, len(e.ixs))
	for i := range e.ixs {
		if skin > 0 {
			e.cixs[i] = spatial.NewCached(cacheProbeRadius(s), skin)
			e.cixs[i].SetStepTracking(e.autoSkin)
			e.ixs[i] = e.cixs[i]
		} else {
			e.ixs[i] = spatial.New(opts.Index, indexCell(s))
		}
	}

	// Initial partitioning: equal-count quantiles of the initial agent x
	// positions (§3.3: "the master computes a partitioning function based
	// on the visible regions of the agents and then broadcasts [it]").
	if opts.InitialPartition != nil {
		e.part = opts.InitialPartition
	} else {
		xs := make([]float64, len(pop))
		for i, a := range pop {
			xs[i] = a.Pos(s).X
		}
		e.part = partition.InitialStrips(xs, opts.Workers)
	}
	if e.part.N() != opts.Workers {
		return nil, fmt.Errorf("engine: partitioning has %d regions, want %d workers", e.part.N(), opts.Workers)
	}
	if _, isStrips := e.part.(*partition.Strips); opts.LoadBalance && !isStrips {
		return nil, fmt.Errorf("engine: load balancing requires a strip partitioning (the paper's 1-D balancer)")
	}

	if opts.CostModel != nil {
		e.vclock = cluster.NewVClock(opts.Workers, *opts.CostModel)
	}

	// Overlap gate: the two-pass tick needs the cached index (KD tree,
	// bounded visibility, positive skin — never under a cost model), local
	// effects, and a rectilinear partitioning whose Locate agrees with
	// rectangle membership, so reduce1Early's per-rectangle distance checks
	// against Region bounds are sound (Strips and KD2D qualify; Grid's
	// edge clamping does not). The decision is a pure function of the
	// options, so every process of a distributed run takes the same branch.
	if !opts.NoOverlap && !e.nonLocal && overlapPartitioning(e.part) && e.cixs[0] != nil {
		e.overlap = true
		e.obufs = make([]overlapBufs, opts.Workers)
	}

	job := mapreduce.Job[*Envelope]{
		Name:    s.Name,
		Map:     e.mapPhase,
		Reduce1: e.reduce1,
		SizeOf:  func(*Envelope) int { return s.ByteSize() },
		Clone:   cloneEnvelope,
	}
	if e.nonLocal {
		job.Reduce2 = e.reduce2
	}
	if e.overlap {
		job.Reduce1 = nil
		job.Reduce1Early = e.reduce1Early
		job.Reduce1Late = e.reduce1Late
	}
	cfg := mapreduce.Config{
		Workers:               opts.Workers,
		Transport:             opts.Transport,
		LocalParts:            opts.LocalParts,
		EpochTicks:            opts.EpochTicks,
		CheckpointEveryEpochs: opts.CheckpointEveryEpochs,
		Failures:              opts.Failures,
		Sequential:            opts.Sequential,
		Barrier:               opts.EpochBarrier,
		OnEpoch:               e.onEpoch,
		// Checkpoints capture master state alongside worker memories: the
		// strip cuts (the balancer mutates them) and the per-partition
		// visited counters (the balancer's cost proxy), so a recovered run
		// makes the same balancing decisions as an unfailed one.
		SnapshotMaster: func() any {
			ms := &masterState{visited: append([]int64(nil), e.wVisited...)}
			if s, ok := e.part.(*partition.Strips); ok {
				ms.cuts = s.Cuts()
			}
			return ms
		},
		RestoreMaster: func(v any) {
			e.invalidateCaches() // rolled-back state must rebuild like an unfailed run
			// Restored values sit consistently under the restored cuts, so
			// every owned agent self-sends on the next tick: the two-pass
			// split may resume immediately, and the prebuilt core lists
			// keep the cache-gate trajectory identical to an unfailed
			// run's. Deferred so the prebuild sees the restored cuts.
			e.noSplitTick = neverTick
			defer e.prebuildCores()
			if v == nil {
				return
			}
			ms := v.(*masterState)
			copy(e.wVisited, ms.visited)
			if ms.cuts == nil {
				return // static partitionings never change
			}
			p, err := partition.NewStripsFromCuts(ms.cuts)
			if err != nil {
				panic(err) // snapshots are produced by us; invalid means a bug
			}
			e.part = p
		},
	}
	if e.vclock != nil {
		cfg.VClock = e.vclock
	}
	e.rt = mapreduce.New(job, cfg)

	// Place initial owned copies. With LocalParts, every process derives
	// the identical partitioning from the identical full population, then
	// loads only the agents it owns — the union across processes is
	// exactly the single-process load.
	localPart := make([]bool, opts.Workers)
	for i := range localPart {
		localPart[i] = opts.LocalParts == nil
	}
	for _, p := range opts.LocalParts {
		localPart[p] = true
	}
	sorted := append(agent.Population(nil), pop...)
	sort.Sort(sorted)
	// Morton-pack the storage once before loading: each partition owns a
	// spatially contiguous region, so a Z-ordered arena keeps its agents
	// (and their halo neighbors) dense in memory. Unlike the sequential
	// engine there is no periodic repack — delta checkpoints and in-flight
	// envelopes hold references into the current layout across ticks.
	agent.PackMorton(s, sorted)
	for _, a := range sorted {
		p := e.part.Locate(a.Pos(s))
		if localPart[p] {
			e.rt.Load(p, []*Envelope{{A: a, SrcPart: int32(p)}})
		}
	}
	return e, nil
}

// overlapPartitioning reports whether p supports the overlapped tick's
// interior classification: a foreign agent must provably lie on or beyond
// a face of Region(w), so "self more than vis from every face" proves no
// foreign agent is visible. Strips and KD2D qualify — their Locate
// compares coordinates against the exact cut values Region returns, so
// the bound is exact. Grid recomputes cell faces from the bounds with
// fresh floating-point arithmetic, which can disagree with Locate's
// truncation by an ulp; it stays on the single-pass path.
func overlapPartitioning(p partition.Func) bool {
	switch p.(type) {
	case *partition.Strips, *partition.KD2D:
		return true
	}
	return false
}

// indexCell picks a grid-index cell size near the visibility bound.
func indexCell(s *agent.Schema) float64 {
	if s.Visibility > 0 {
		return s.Visibility
	}
	return 1
}

// mapPhase is mapᵗ₁: distribute and replicate (Table 1; update has already
// run at the end of the previous tick's final reduce, which is collocated
// with this map on the same worker).
func (e *Distributed) mapPhase(ctx *mapreduce.Ctx, env *Envelope, emit mapreduce.Emit[*Envelope]) {
	if env.Replica || env.A.Dead {
		return
	}
	pos := env.A.Pos(e.schema)
	owner := e.part.Locate(pos)
	env.SrcPart = int32(owner)
	emit(owner, env)
	var scratch [64]int
	for _, q := range partition.ReplicaTargets(e.part, pos, e.schema.Visibility, scratch[:0]) {
		if q == owner {
			continue
		}
		emit(q, &Envelope{A: env.A.Clone(), Replica: true, SrcPart: int32(owner)})
	}
}

// reduce1 is reduceᵗ₁. In local mode it runs the full query phase and the
// update phase for owned agents. In non-local mode it runs the query phase
// (assigning effects to local copies) and ships partial aggregates to the
// owners for reduce₂.
func (e *Distributed) reduce1(ctx *mapreduce.Ctx, envs []*Envelope, emit mapreduce.Emit[*Envelope]) {
	w := ctx.Worker
	e.maybeRetune(w, ctx.Tick)
	copies, owned, ownedSlots := e.prepare(w, envs)
	before := e.ixs[w].Stats().Visited
	cached := e.cixs[w]
	listsOK := cached != nil && cached.HasLists()

	penvs := e.partEnvs(w)
	if cached != nil && !e.nonLocal {
		// Batched probes: owned agents' query phases are independent in a
		// local-effects model (each writes only its own effect fields), so
		// they fan out over the spatial worker pool, one probe env per
		// chunk. Per-agent fold order is unchanged — bit-identical state.
		cols := e.bufs[w].cols
		spatial.ParallelFor(len(ownedSlots), probeGrain, func(chunk, lo, hi int) {
			q := &penvs[chunk]
			q.copies = copies
			q.cached = cached
			q.listsOK = listsOK
			q.ix = e.ixs[w]
			q.cols = cols
			if e.colM != nil {
				for oi := lo; oi < hi; oi++ {
					q.slot = ownedSlots[oi]
					q.self = copies[q.slot]
					e.colM.QueryCols((*Cols)(q), q.slot)
				}
				return
			}
			for oi := lo; oi < hi; oi++ {
				q.slot = ownedSlots[oi]
				q.self = copies[q.slot]
				e.model.Query(q.self, q)
			}
		})
	} else {
		q := &penvs[0]
		q.copies = copies
		q.cached = cached
		q.listsOK = listsOK
		q.ix = e.ixs[w]
		q.cols = e.bufs[w].cols
		for _, slot := range ownedSlots {
			q.slot = slot
			q.self = copies[slot]
			if e.colM != nil {
				e.colM.QueryCols((*Cols)(q), slot)
			} else {
				e.model.Query(q.self, q)
			}
		}
	}

	visited := e.ixs[w].Stats().Visited - before
	for i := range penvs {
		visited += penvs[i].takeStats().Visited
	}
	e.wVisited[w] += visited
	e.wOwned[w] += int64(len(owned))
	if e.vclock != nil {
		e.vclock.ChargeCompute(cluster.NodeID(w), visited, int64(len(owned)))
	}

	if !e.nonLocal {
		for _, oe := range owned {
			e.updateAndEmit(ctx, oe, emit)
		}
		return
	}

	// Non-local: route every touched copy to its owner for global ⊕.
	for _, env := range envs {
		if !env.Replica {
			env.SrcPart = int32(w)
			emit(int(ownerOf(e.part, e.schema, env)), env)
			continue
		}
		if effectsAreIdentity(e.combs, env.A.Effect) {
			continue // untouched replica: nothing to aggregate
		}
		env.SrcPart = int32(w)
		emit(int(ownerOf(e.part, e.schema, env)), env)
	}
}

func ownerOf(p partition.Func, s *agent.Schema, env *Envelope) int32 {
	return int32(p.Locate(env.A.Pos(s)))
}

// reduce2 is reduceᵗ₂: global effect aggregation ⊕ followed by the update
// phase (folded in here; the identity mapᵗ₂ is eliminated, §3.2).
func (e *Distributed) reduce2(ctx *mapreduce.Ctx, envs []*Envelope, emit mapreduce.Emit[*Envelope]) {
	w := ctx.Worker
	// Group by agent; fold partials in ascending SrcPart order so the ⊕
	// fold order is a function of the partitioning alone.
	sort.Slice(envs, func(i, j int) bool {
		if envs[i].A.ID != envs[j].A.ID {
			return envs[i].A.ID < envs[j].A.ID
		}
		if envs[i].Replica != envs[j].Replica {
			return !envs[i].Replica // owned copy first
		}
		return envs[i].SrcPart < envs[j].SrcPart
	})
	i := 0
	for i < len(envs) {
		j := i
		for j < len(envs) && envs[j].A.ID == envs[i].A.ID {
			j++
		}
		oe := envs[i]
		if oe.Replica {
			// Partials for an agent that died or was lost: drop.
			i = j
			continue
		}
		for _, pe := range envs[i+1 : j] {
			agent.CombineEffects(e.schema, oe.A.Effect, pe.A.Effect)
		}
		e.updateAndEmit(ctx, oe, emit)
		i = j
	}
	if e.vclock != nil {
		e.vclock.ChargeCompute(cluster.NodeID(w), 0, int64(len(envs)))
	}
}

// updateAndEmit runs the update phase for one owned agent, applies the
// reachability crop, handles death and spawning, resets effects to θ, and
// emits the owned copy to its (possibly new) owner partition.
func (e *Distributed) updateAndEmit(ctx *mapreduce.Ctx, oe *Envelope, emit mapreduce.Emit[*Envelope]) {
	a := oe.A
	u := &e.bufs[ctx.Worker].uctx
	u.reset(e.opts.Seed, ctx.Tick, e.schema, a.ID)
	oldPos := a.Pos(e.schema)
	e.model.Update(a, u)
	if r := e.schema.Reach; r > 0 {
		// Reachability crop (§4.1): the update may move the agent at most
		// r along each axis.
		a.SetPos(e.schema, a.Pos(e.schema).Clamp(geom.Square(oldPos, r)))
	}
	e.schema.ResetEffects(a.Effect)
	if !a.Dead {
		owner := e.part.Locate(a.Pos(e.schema))
		oe.Replica = false
		oe.SrcPart = int32(owner)
		emit(owner, oe)
	}
	for _, sp := range u.spawns {
		owner := e.part.Locate(sp.Pos(e.schema))
		emit(owner, &Envelope{A: sp, SrcPart: int32(owner)})
	}
}

// partBufs is one partition's reusable tick build state; prepare rewrites
// every entry each tick, so reuse is pure allocation avoidance.
type partBufs struct {
	pts       []spatial.Point
	keys      []int64
	ownedSlot []int32
	copies    []*agent.Agent
	owned     []*Envelope
	// cols are the tick's gathered state columns (columnar models only);
	// the late overlap pass appends the halo rows.
	cols [][]float64
	// uctx is the partition's reused update context (reducers for one
	// worker never run concurrently); reset re-seeds it per agent.
	uctx UpdateCtx
}

// prepare sorts this reducer's copies by agent ID, (re)builds the spatial
// index over them — through the keyed cache when enabled, so unchanged
// copy sets with sub-skin motion reuse their candidate lists — and returns
// the ID-sorted copies plus the owned envelopes and their slots.
func (e *Distributed) prepare(w int, envs []*Envelope) (copies []*agent.Agent, owned []*Envelope, ownedSlots []int32) {
	sort.Slice(envs, func(i, j int) bool { return envs[i].A.ID < envs[j].A.ID })
	b := &e.bufs[w]
	n := len(envs)
	b.copies = resize(b.copies, n)
	b.ownedSlot = b.ownedSlot[:0]
	b.owned = b.owned[:0]
	cached := e.cixs[w]
	if cached != nil {
		b.keys = resize(b.keys, n)
	}
	for i, env := range envs {
		b.copies[i] = env.A
		if cached != nil {
			b.keys[i] = int64(env.A.ID)
		}
		if !env.Replica {
			b.ownedSlot = append(b.ownedSlot, int32(i))
			b.owned = append(b.owned, env)
		}
	}
	// Columnar models gather columns before the build so the index build
	// reads the position columns directly.
	if e.colM != nil {
		b.cols = gatherCols(b.cols, e.schema, b.copies)
	}
	fillPts := func() {
		b.pts = resize(b.pts, n)
		for i, a := range b.copies {
			b.pts[i] = spatial.Point{Pos: a.Pos(e.schema), ID: int32(i)}
		}
	}
	if cached != nil {
		// Keys are agent IDs and the probe set is the owned slots: any
		// membership or ownership change rebuilds; replica drift beyond
		// skin/2 rebuilds; everything else reuses.
		if e.colM != nil {
			cached.BuildKeyedCols(b.cols[e.schema.PosX], b.cols[e.schema.PosY], b.keys, b.ownedSlot)
		} else {
			fillPts()
			cached.BuildKeyed(b.pts, b.keys, b.ownedSlot)
		}
	} else {
		fillPts()
		e.ixs[w].Build(b.pts)
	}
	return b.copies, b.owned, b.ownedSlot
}

// partEnvs returns partition w's probe envs, one per worker-pool chunk
// (just one when the partition probes serially).
func (e *Distributed) partEnvs(w int) []queryEnv {
	need := 1
	if e.cixs[w] != nil && !e.nonLocal {
		need = spatial.Parallelism()
	}
	for len(e.envs[w]) < need {
		e.envs[w] = append(e.envs[w], newQueryEnv(e.schema, e.combs, e.isSum, e.nonLocal))
	}
	return e.envs[w]
}

// invalidateCaches drops every partition's query cache. Called at epoch
// barriers, restores and rebalances: a run must do identical per-tick
// index work from a given state no matter how it got there (recovery,
// rebalancing, or plain execution), because the visited counters feed the
// load balancer's cost model.
func (e *Distributed) invalidateCaches() {
	for _, c := range e.cixs {
		if c == nil {
			continue
		}
		if e.autoSkin {
			c.SetSkin(e.seedSkin) // re-seed; SetSkin invalidates
		} else {
			c.Invalidate()
		}
	}
}

// skinWarmupTicks is the auto-tune observation window: the retune runs at
// the start of the tick this many past the epoch barrier, on the steps the
// warmup builds observed. Epochs shorter than the window never retune and
// keep the seed skin.
const skinWarmupTicks = 3

// maybeRetune re-picks partition w's skin from the displacement observed
// since the epoch barrier. Runs at the top of the tick's query phase —
// before prepare builds the index — exactly once per epoch, at a fixed tick
// offset from the barrier: the decision depends only on barrier state plus
// forward execution, never on how the run reached the barrier (recovery,
// rebalancing) or on whether the overlapped tick is active (its duplicate
// zero-displacement prebuilds never raise the observed max).
func (e *Distributed) maybeRetune(w int, tick uint64) {
	if !e.autoSkin || tick != e.lastEpochT+skinWarmupTicks {
		return
	}
	c := e.cixs[w]
	samples, step := c.StepStats()
	if samples == 0 {
		return // population churned every warmup tick; keep the seed
	}
	s := autoSkinFor(step, c.ProbeRadius())
	e.tunedSkin[w] = s
	if s != c.Skin() {
		c.SetSkin(s)
	}
}

// autoSkinFor maps an observed max per-tick displacement to a skin: four
// ticks of reuse at the observed speed, clamped so lists stay near the true
// neighborhood (≤ ρ/2, the DefaultSkin cap) and a near-stationary workload
// still gets a usable skin (≥ ρ/16).
func autoSkinFor(step, probeRad float64) float64 {
	s := 4 * step
	if lo := probeRad / 16; s < lo {
		s = lo
	}
	if hi := probeRad / 2; s > hi {
		s = hi
	}
	return s
}

// CacheStats sums the query-cache counters across partitions (zero when
// the cached path is disabled).
func (e *Distributed) CacheStats() spatial.CacheStats {
	var cs spatial.CacheStats
	for _, c := range e.cixs {
		if c != nil {
			s := c.CacheStats()
			cs.Builds += s.Builds
			cs.Reuses += s.Reuses
		}
	}
	return cs
}

// RunTicks advances the simulation n full ticks (query + update each).
func (e *Distributed) RunTicks(n int) error {
	e.lastWall = time.Now() //bracevet:allow wallclock metrics-only: feeds the wallTotal throughput gauge, never simulation state
	if e.vclock != nil && e.rt.Tick() == 0 {
		e.virtStart = e.vclock.Now()
	}
	err := e.rt.RunTicks(n)
	e.wallTotal += time.Since(e.lastWall) //bracevet:allow wallclock metrics-only: wallTotal throughput gauge
	return err
}

// onEpoch runs on the master at epoch boundaries: record statistics and,
// when enabled, rebalance partitions.
func (e *Distributed) onEpoch(tick uint64, v mapreduce.EpochView) {
	counts := v.OwnedCounts()
	loads := make([]float64, len(counts))
	for i, c := range counts {
		loads[i] = float64(c)
	}
	st := EpochStat{
		Tick:        tick,
		OwnedCounts: counts,
		Imbalance:   partition.Imbalance(loads),
	}
	if e.vclock != nil {
		now := e.vclock.Now()
		st.VirtualSec = now - e.lastEpochV
		e.lastEpochV = now
	}

	var owned, visited int64
	for w := range e.wOwned {
		owned += e.wOwned[w]
		visited += e.wVisited[w]
	}
	e.agentTicks = owned
	e.visitedTotal = visited

	if e.opts.LoadBalance && tick > e.lastEpochT {
		st.Rebalanced = e.rebalance()
	}

	// Epoch barriers are the deterministic cache-invalidation points: a
	// restored run resumes at a barrier, so forcing a rebuild at every
	// barrier makes its subsequent index work — and hence the balancer's
	// cost inputs — identical to an unfailed run's. When the cuts survive
	// the barrier the next tick's core build is already known, so the
	// overlapped engine prebuilds it here; a worker process did both steps
	// while awaiting the directive (StartBarrierPrebuild stamps
	// prebuiltTick so they are not redone).
	// A worker process never sees st.Rebalanced (the coordinator owns the
	// decision and installs cuts through InstallCuts, which marks
	// noSplitTick); either signal means this barrier changed the cuts and
	// a prebuild would poison the adaptive gate with a build the next tick
	// throws away.
	cutsChanged := st.Rebalanced || e.noSplitTick == tick
	if cutsChanged || e.prebuiltTick != tick {
		e.invalidateCaches()
		if e.overlap && !cutsChanged {
			e.prebuildCores()
		}
	}
	if st.Rebalanced {
		// The tick right after a cut change cannot split: agents may reach
		// their new owner from a peer, so no owned agent is provably
		// local until the map phase drains.
		e.noSplitTick = tick
	}
	e.lastEpochT = tick
	e.epochs = append(e.epochs, st)
}

// rebalance gathers agent positions and per-partition cost estimates and
// applies the balancer's plan when beneficial.
func (e *Distributed) rebalance() bool {
	strips, ok := e.part.(*partition.Strips)
	if !ok {
		return false // the 1-D balancer only adjusts strip cuts
	}
	xs := make([][]float64, e.opts.Workers)
	for w := 0; w < e.opts.Workers; w++ {
		xs[w] = e.PartitionXs(w)
	}
	d := PlanRebalance(e.opts.Balancer, strips, xs, e.wVisited)
	if !d.Apply {
		return false
	}
	p, err := partition.NewStripsFromCuts(d.NewCuts)
	if err != nil {
		return false
	}
	e.part = p
	return true
}

// masterState is the engine's contribution to a coordinated checkpoint.
type masterState struct {
	cuts    []float64 // strip cuts; nil for non-strip partitionings
	visited []int64   // cumulative per-partition candidates-visited
}

// Agents returns the current population, ID-sorted (owned copies only).
func (e *Distributed) Agents() agent.Population {
	var pop agent.Population
	for _, env := range e.rt.AllValues() {
		if !env.Replica && !env.A.Dead {
			pop = append(pop, env.A)
		}
	}
	sort.Sort(pop)
	return pop
}

// Tick returns completed ticks.
func (e *Distributed) Tick() uint64 { return e.rt.Tick() }

// Partition returns the current partitioning function.
func (e *Distributed) Partition() partition.Func { return e.part }

// Runtime exposes the underlying MapReduce runtime (metrics, transport).
func (e *Distributed) Runtime() *mapreduce.Runtime[*Envelope] { return e.rt }

// Epochs returns per-epoch statistics recorded so far.
func (e *Distributed) Epochs() []EpochStat { return e.epochs }

// AgentTicks returns the total owned-agent query phases processed.
func (e *Distributed) AgentTicks() int64 { return e.agentTicks }

// Visited returns total index candidates examined across all reducers.
func (e *Distributed) Visited() int64 { return e.visitedTotal }

// VirtualSeconds returns virtual time consumed since construction (0 when
// virtual accounting is disabled).
func (e *Distributed) VirtualSeconds() float64 {
	if e.vclock == nil {
		return 0
	}
	return e.vclock.Now() - e.virtStart
}

// WallSeconds returns wall-clock time spent inside RunTicks.
func (e *Distributed) WallSeconds() float64 { return e.wallTotal.Seconds() }

// ThroughputVirtual returns agent-ticks per virtual second, the Fig. 5–7
// metric.
func (e *Distributed) ThroughputVirtual() float64 {
	v := e.VirtualSeconds()
	if v <= 0 {
		return 0
	}
	return float64(e.agentTicks) / v
}

// ThroughputWall returns agent-ticks per wall second.
func (e *Distributed) ThroughputWall() float64 {
	w := e.WallSeconds()
	if w <= 0 {
		return 0
	}
	return float64(e.agentTicks) / w
}
