package engine

import (
	"sort"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

// Sequential is the single-node reference engine: the same Model executed
// by a plain loop over all agents, with the same canonical orderings and
// the same per-(seed, tick, agent) randomness as Distributed. It serves
// three roles: the correctness oracle for the distributed engine, the
// "BRACE single node" configuration of the Fig. 3–4 experiments (with
// Index selecting indexed vs non-indexed), and the substrate the
// hand-coded-simulator comparisons run against.
//
// For models with only local effect assignments, Sequential and
// Distributed agree bit-for-bit: the visible set of each agent is
// identical and effects fold in ascending neighbor-ID order in both. For
// non-local models the distributed engine folds partial aggregates per
// partition before the global ⊕, so results agree only up to
// floating-point reassociation; tests compare those with a tolerance.
//
// With the KD-tree index and a bounded visibility, the engine runs the
// cached query path by default: Verlet candidate lists are reused across
// ticks while no agent has moved more than skin/2, and batched probes fan
// out across the spatial worker pool for local-effect models. Both are
// semantics-preserving — state is bit-identical to the uncached,
// single-threaded path.
type Sequential struct {
	model    Model
	schema   *agent.Schema
	combs    []agent.Combinator
	isSum    []bool
	nonLocal bool
	seed     uint64
	tick     uint64

	agents agent.Population // ID-sorted
	ix     spatial.Index
	cached *spatial.CachedIndex
	envs   []queryEnv
	uctx   UpdateCtx // reused across agents; reset re-seeds per agent

	// colM is non-nil when the model runs the columnar query path; cols
	// holds the tick's gathered state columns (see cols.go).
	colM ColumnarModel
	cols [][]float64

	// Per-tick build buffers, reused across ticks.
	pts    []spatial.Point
	keys   []int64
	copies []*agent.Agent

	agentTicks   int64
	visitedTotal int64
	wallTotal    time.Duration
}

// NewSequential builds a sequential engine over the given population with
// the default query-cache policy (see NewSequentialCache).
func NewSequential(m Model, pop []*agent.Agent, index spatial.Kind, seed uint64) (*Sequential, error) {
	return NewSequentialCache(m, pop, index, seed, 0)
}

// NewSequentialCache builds a sequential engine with an explicit query
// cache skin: 0 selects spatial.DefaultSkin, a negative value disables the
// cached path (the reference configuration), and a positive value is used
// as-is. The cache only ever engages for the KD-tree index with a bounded
// visibility.
func NewSequentialCache(m Model, pop []*agent.Agent, index spatial.Kind, seed uint64, cacheSkin float64) (*Sequential, error) {
	if err := validateModel(m); err != nil {
		return nil, err
	}
	s := m.Schema()
	agents := append(agent.Population(nil), pop...)
	sort.Sort(agents)
	combs := effectCombs(s)
	e := &Sequential{
		model:    m,
		schema:   s,
		combs:    combs,
		isSum:    sumMask(combs),
		nonLocal: modelNonLocal(m),
		seed:     seed,
		agents:   agents,
		ix:       spatial.New(index, indexCell(s)),
	}
	if skin := resolveSkin(s, index, cacheSkin); skin > 0 {
		e.cached = spatial.NewCached(cacheProbeRadius(s), skin)
		e.ix = e.cached
	}
	e.colM = columnarModel(m)
	e.envs = append(e.envs, newQueryEnv(s, combs, e.isSum, e.nonLocal))
	return e, nil
}

// DisableColumnar forces the classic per-agent Env path even for models
// implementing ColumnarModel — the equivalence suite's ablation knob.
func (e *Sequential) DisableColumnar() { e.colM = nil }

// resolveSkin applies the engine-wide cache policy: the cached query path
// requires the KD-tree index and a bounded visibility; cacheSkin < 0
// disables it, 0 selects the default skin.
func resolveSkin(s *agent.Schema, index spatial.Kind, cacheSkin float64) float64 {
	if index != spatial.KindKDTree || s.Visibility <= 0 || cacheSkin < 0 {
		return 0
	}
	if cacheSkin == 0 {
		return spatial.DefaultSkin(cacheProbeRadius(s), s.Reach)
	}
	return cacheSkin
}

// cacheProbeRadius is the radius the query cache's candidate lists cover:
// the model's declared probe radius when it is tighter than visibility
// (e.g. predators bite within 2 but see within 5), else visibility.
func cacheProbeRadius(s *agent.Schema) float64 {
	if s.ProbeRadius > 0 && s.ProbeRadius < s.Visibility {
		return s.ProbeRadius
	}
	return s.Visibility
}

// probeGrain is the minimum number of query phases per worker-pool chunk;
// below it, fan-out overhead beats the win.
const probeGrain = 64

// packInterval is the Morton-relayout cadence in ticks: long enough to
// amortize the O(n log n) repack, short enough that drift (agents moving
// away from their arena neighbors) stays modest.
const packInterval = 64

// RunTicks advances the simulation n full ticks.
func (e *Sequential) RunTicks(n int) error {
	start := time.Now() //bracevet:allow wallclock metrics-only: feeds the wallTotal throughput gauge, never simulation state
	for i := 0; i < n; i++ {
		e.runTick()
		e.tick++
	}
	e.wallTotal += time.Since(start) //bracevet:allow wallclock metrics-only: wallTotal throughput gauge
	return nil
}

func (e *Sequential) runTick() {
	// Relayout epoch: repack agent storage in Morton order of current
	// positions so neighbors in space are neighbors in memory for the next
	// packInterval ticks of candidate walks. Pure relayout — no value or
	// ordering change (see agent.PackMorton).
	if e.tick%packInterval == 0 {
		agent.PackMorton(e.schema, e.agents)
	}
	// Query phase over the whole world.
	n := len(e.agents)
	e.copies = resize(e.copies, n)
	for i, a := range e.agents {
		e.copies[i] = a
	}
	// Columnar models gather state columns before the index build so the
	// build itself reads the position columns (BuildKeyedCols) instead of
	// walking the agents again.
	if e.colM != nil {
		e.cols = gatherCols(e.cols, e.schema, e.copies)
	}
	listsOK := false
	if e.cached != nil {
		e.keys = resize(e.keys, n)
		for i, a := range e.agents {
			e.keys[i] = int64(a.ID)
		}
		if e.colM != nil {
			e.cached.BuildKeyedCols(e.cols[e.schema.PosX], e.cols[e.schema.PosY], e.keys, nil)
		} else {
			e.fillPts()
			e.cached.BuildKeyed(e.pts, e.keys, nil)
		}
		listsOK = e.cached.HasLists()
	} else {
		e.fillPts()
		e.ix.Build(e.pts)
	}
	before := e.ix.Stats().Visited
	if e.cached != nil && !e.nonLocal {
		for len(e.envs) < spatial.Parallelism() {
			e.envs = append(e.envs, newQueryEnv(e.schema, e.combs, e.isSum, e.nonLocal))
		}
		spatial.ParallelFor(n, probeGrain, func(chunk, lo, hi int) {
			env := &e.envs[chunk]
			env.copies = e.copies
			env.cached = e.cached
			env.listsOK = listsOK
			env.ix = e.ix
			env.cols = e.cols
			if e.colM != nil {
				for i := lo; i < hi; i++ {
					env.self = e.copies[i]
					env.slot = int32(i)
					e.colM.QueryCols((*Cols)(env), int32(i))
				}
				return
			}
			for i := lo; i < hi; i++ {
				env.self = e.copies[i]
				env.slot = int32(i)
				e.model.Query(env.self, env)
			}
		})
	} else {
		env := &e.envs[0]
		env.copies = e.copies
		env.cached = e.cached
		env.listsOK = listsOK
		env.ix = e.ix
		env.cols = e.cols
		for i, a := range e.agents {
			env.self = a
			env.slot = int32(i)
			if e.colM != nil {
				e.colM.QueryCols((*Cols)(env), int32(i))
			} else {
				e.model.Query(a, env)
			}
		}
	}
	visited := e.ix.Stats().Visited - before
	for i := range e.envs {
		visited += e.envs[i].takeStats().Visited
	}
	e.visitedTotal += visited
	e.agentTicks += int64(n)

	// Update phase.
	var spawned agent.Population
	alive := e.agents[:0]
	for _, a := range e.agents {
		e.uctx.reset(e.seed, e.tick, e.schema, a.ID)
		oldPos := a.Pos(e.schema)
		e.model.Update(a, &e.uctx)
		if r := e.schema.Reach; r > 0 {
			a.SetPos(e.schema, a.Pos(e.schema).Clamp(geom.Square(oldPos, r)))
		}
		e.schema.ResetEffects(a.Effect)
		if !a.Dead {
			alive = append(alive, a)
		}
		spawned = append(spawned, e.uctx.spawns...)
	}
	e.agents = append(alive, spawned...)
	// The in-place death filter preserves ID order, so the canonical sort
	// is only needed when the tick spawned agents.
	if len(spawned) > 0 {
		sort.Sort(e.agents)
	}
}

// fillPts materializes the tick's point set from the agents (the
// non-columnar build path).
func (e *Sequential) fillPts() {
	e.pts = resize(e.pts, len(e.agents))
	for i, a := range e.agents {
		e.pts[i] = spatial.Point{Pos: a.Pos(e.schema), ID: int32(i)}
	}
}

// resize returns s with length n, reusing capacity.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Agents returns the current ID-sorted population.
func (e *Sequential) Agents() agent.Population { return e.agents }

// Tick returns completed ticks.
func (e *Sequential) Tick() uint64 { return e.tick }

// AgentTicks returns total agent query phases processed.
func (e *Sequential) AgentTicks() int64 { return e.agentTicks }

// Visited returns total index candidates examined across all ticks (the
// per-tick index rebuild resets the index's own counters; this accumulates
// them).
func (e *Sequential) Visited() int64 { return e.visitedTotal }

// CacheStats returns the query cache's cumulative build/reuse counters
// (zero when the cached path is disabled).
func (e *Sequential) CacheStats() spatial.CacheStats {
	if e.cached == nil {
		return spatial.CacheStats{}
	}
	return e.cached.CacheStats()
}

// WallSeconds returns wall time spent in RunTicks.
func (e *Sequential) WallSeconds() float64 { return e.wallTotal.Seconds() }

// ThroughputWall returns agent-ticks per wall second.
func (e *Sequential) ThroughputWall() float64 {
	w := e.WallSeconds()
	if w <= 0 {
		return 0
	}
	return float64(e.agentTicks) / w
}
