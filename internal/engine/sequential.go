package engine

import (
	"sort"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/spatial"
)

// Sequential is the single-node reference engine: the same Model executed
// by a plain loop over all agents, with the same canonical orderings and
// the same per-(seed, tick, agent) randomness as Distributed. It serves
// three roles: the correctness oracle for the distributed engine, the
// "BRACE single node" configuration of the Fig. 3–4 experiments (with
// Index selecting indexed vs non-indexed), and the substrate the
// hand-coded-simulator comparisons run against.
//
// For models with only local effect assignments, Sequential and
// Distributed agree bit-for-bit: the visible set of each agent is
// identical and effects fold in ascending neighbor-ID order in both. For
// non-local models the distributed engine folds partial aggregates per
// partition before the global ⊕, so results agree only up to
// floating-point reassociation; tests compare those with a tolerance.
type Sequential struct {
	model  Model
	schema *agent.Schema
	combs  []agent.Combinator
	seed   uint64
	tick   uint64

	agents agent.Population // ID-sorted
	ix     spatial.Index
	env    queryEnv

	agentTicks   int64
	visitedTotal int64
	wallTotal    time.Duration
}

// NewSequential builds a sequential engine over the given population.
func NewSequential(m Model, pop []*agent.Agent, index spatial.Kind, seed uint64) (*Sequential, error) {
	if err := validateModel(m); err != nil {
		return nil, err
	}
	s := m.Schema()
	agents := append(agent.Population(nil), pop...)
	sort.Sort(agents)
	e := &Sequential{
		model:  m,
		schema: s,
		combs:  effectCombs(s),
		seed:   seed,
		agents: agents,
		ix:     spatial.New(index, indexCell(s)),
	}
	e.env = queryEnv{schema: s, combs: e.combs, nonLocal: modelNonLocal(m)}
	return e, nil
}

// RunTicks advances the simulation n full ticks.
func (e *Sequential) RunTicks(n int) error {
	start := time.Now()
	for i := 0; i < n; i++ {
		e.runTick()
		e.tick++
	}
	e.wallTotal += time.Since(start)
	return nil
}

func (e *Sequential) runTick() {
	// Query phase over the whole world.
	pts := make([]spatial.Point, len(e.agents))
	copies := make([]*agent.Agent, len(e.agents))
	for i, a := range e.agents {
		pts[i] = spatial.Point{Pos: a.Pos(e.schema), ID: int32(i)}
		copies[i] = a
	}
	e.ix.Build(pts)
	e.env.copies = copies
	e.env.ix = e.ix
	before := e.ix.Stats().Visited
	for _, a := range e.agents {
		e.env.self = a
		e.model.Query(a, &e.env)
	}
	e.visitedTotal += e.ix.Stats().Visited - before
	e.agentTicks += int64(len(e.agents))

	// Update phase.
	var spawned agent.Population
	alive := e.agents[:0]
	for _, a := range e.agents {
		u := UpdateCtx{
			Tick:   e.tick,
			RNG:    agent.NewRNG(e.seed, e.tick, a.ID),
			schema: e.schema,
			self:   a.ID,
		}
		oldPos := a.Pos(e.schema)
		e.model.Update(a, &u)
		if r := e.schema.Reach; r > 0 {
			a.SetPos(e.schema, a.Pos(e.schema).Clamp(geom.Square(oldPos, r)))
		}
		e.schema.ResetEffects(a.Effect)
		if !a.Dead {
			alive = append(alive, a)
		}
		spawned = append(spawned, u.spawns...)
	}
	e.agents = append(alive, spawned...)
	sort.Sort(e.agents)
}

// Agents returns the current ID-sorted population.
func (e *Sequential) Agents() agent.Population { return e.agents }

// Tick returns completed ticks.
func (e *Sequential) Tick() uint64 { return e.tick }

// AgentTicks returns total agent query phases processed.
func (e *Sequential) AgentTicks() int64 { return e.agentTicks }

// Visited returns total index candidates examined across all ticks (the
// per-tick index rebuild resets the index's own counters; this accumulates
// them).
func (e *Sequential) Visited() int64 { return e.visitedTotal }

// WallSeconds returns wall time spent in RunTicks.
func (e *Sequential) WallSeconds() float64 { return e.wallTotal.Seconds() }

// ThroughputWall returns agent-ticks per wall second.
func (e *Sequential) ThroughputWall() float64 {
	w := e.WallSeconds()
	if w <= 0 {
		return 0
	}
	return float64(e.agentTicks) / w
}
