package engine

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestAutoSkinForClamps(t *testing.T) {
	const rho = 8.0
	for _, tc := range []struct {
		step, want float64
	}{
		{0, rho / 16},    // floor: near-static populations keep a minimal margin
		{0.01, rho / 16}, // still under the floor
		{0.5, 2},         // 4×step inside the band
		{10, rho / 2},    // ceiling: fast movers never blow the probe radius
	} {
		if got := autoSkinFor(tc.step, rho); got != tc.want {
			t.Errorf("autoSkinFor(%v, %v) = %v, want %v", tc.step, rho, got, tc.want)
		}
	}
}

// The satellite's core guarantee: the skin — default-seeded auto-tune, an
// explicit flag value, or no cache at all — is a pure performance knob.
// Every mode must produce bit-identical populations, so operators who pin
// -cache-skin explicitly keep bit-identity with auto-tuned runs.
func TestAutoSkinModesBitIdentical(t *testing.T) {
	m := newFlockModel(8)
	base := makePop(m.s, 150, 60, 21)
	const ticks = 25 // crosses two epoch barriers and two retune points

	run := func(cacheSkin float64) agent.Population {
		t.Helper()
		e, err := NewDistributed(m, clonePop(base), Options{
			Workers: 4, Index: spatial.KindKDTree, Seed: 17, Tunables: Tunables{CacheSkin: cacheSkin},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunTicks(ticks); err != nil {
			t.Fatal(err)
		}
		return e.Agents()
	}

	auto := run(0)
	popsExactlyEqual(t, "auto vs explicit", auto, run(2.5))
	popsExactlyEqual(t, "auto vs uncached", auto, run(-1))
}

// Auto mode engages only when the skin is left to the engine: an explicit
// CacheSkin or a CostModel pins it.
func TestAutoSkinGating(t *testing.T) {
	m := newFlockModel(8)
	for _, tc := range []struct {
		name string
		opts Options
		want bool
	}{
		{"default", Options{Workers: 2, Index: spatial.KindKDTree, Seed: 3}, true},
		{"explicit skin", Options{Workers: 2, Index: spatial.KindKDTree, Seed: 3, Tunables: Tunables{CacheSkin: 2}}, false},
		{"cache off", Options{Workers: 2, Index: spatial.KindKDTree, Seed: 3, Tunables: Tunables{CacheSkin: -1}}, false},
		{"non-kd index", Options{Workers: 2, Index: spatial.KindGrid, Seed: 3}, false},
	} {
		e, err := NewDistributed(m, makePop(m.s, 40, 30, 4), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if e.autoSkin != tc.want {
			t.Errorf("%s: autoSkin = %v, want %v", tc.name, e.autoSkin, tc.want)
		}
	}
}

// The retune actually happens and lands inside the clamp band. Observed
// via tunedSkin: the runtime runs an epoch barrier at the end of every
// RunTicks call, and barriers re-seed the live skin and wipe the step
// observations (the policy that keeps recovered and rebalanced runs
// identical) — so the live cache state after RunTicks never shows the
// retune.
func TestAutoSkinRetunesWithinBand(t *testing.T) {
	// One worker: a single partition's key set is stable tick over tick
	// (flocking has no births or deaths), so displacement observations are
	// guaranteed. Multi-worker runs observe only churn-free ticks — agents
	// crossing partitions reset the comparison — which is timing-free but
	// not guaranteed to sample in a short test.
	m := newFlockModel(8)
	e, err := NewDistributed(m, makePop(m.s, 150, 60, 21), Options{
		Workers: 1, Index: spatial.KindKDTree, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.autoSkin {
		t.Fatal("auto mode should engage")
	}
	// 15 ticks: barrier at 10, warmup observations at 11-12, retune at 13.
	if err := e.RunTicks(15); err != nil {
		t.Fatal(err)
	}
	for w, c := range e.cixs {
		if c == nil {
			continue
		}
		rho := c.ProbeRadius()
		tuned := e.tunedSkin[w]
		if tuned == 0 {
			t.Errorf("worker %d never retuned", w)
			continue
		}
		if tuned < rho/16 || tuned > rho/2 {
			t.Errorf("worker %d retuned skin %v outside clamp band [%v, %v]", w, tuned, rho/16, rho/2)
		}
		// The trailing barrier re-seeded the live skin and restarted the
		// observation window from the prebuild.
		if s := c.Skin(); s != e.seedSkin {
			t.Errorf("worker %d live skin %v, want re-seeded %v after the trailing barrier", w, s, e.seedSkin)
		}
	}
}
