package engine

import (
	"github.com/bigreddata/brace/internal/agent"
)

// Envelope is the value flowing through the MapReduce dataflow: an agent
// copy plus routing metadata. Between ticks only owned copies exist; during
// a tick the map task adds replicas for every partition whose visible
// region contains the agent (App. A).
type Envelope struct {
	A *agent.Agent
	// Replica marks copies distributed for reading (and, in non-local
	// mode, for collecting partial effect aggregates); the one non-replica
	// copy per agent carries the authoritative state.
	Replica bool
	// SrcPart is the partition that produced this record. reduce₂ folds
	// partial aggregates in ascending SrcPart order, making the global ⊕
	// deterministic for a fixed partitioning.
	SrcPart int32
}

// Envelopes travel inside interface-typed fields (cluster.Message.Payload
// on the TCP transport, FinalReport.Values, disk checkpoints), which
// requires gob registration; internal/scenario performs it, so every
// registered workload is wire-ready by construction.

func cloneEnvelope(e *Envelope) *Envelope {
	return &Envelope{A: e.A.Clone(), Replica: e.Replica, SrcPart: e.SrcPart}
}
