package monad

import (
	"fmt"
	"math"

	"github.com/bigreddata/brace/internal/brasil"
)

// This file implements the App. B.1 translation of BRASIL query scripts
// into the monad algebra. The translated expression maps the triple
//
//	⟨1: active-agent tuple τ′, 2: {agent tuples}, 3: {effect tuples}⟩
//
// to a triple of the same shape, where effect tuples are ⟨k, e, v⟩ —
// target key, effect field name, value. Agent tuples carry KEY plus one
// attribute per state field; loop variables and local constants extend the
// active tuple (τ′ "extends" τ).
//
// The translation exists to machine-check Theorems 1–3 against an
// independent semantics; it supports the query-script subset those
// theorems quantify over (no effect reads inside run()).

// Extend is the χ_a(f) operator from App. B: extend the Base tuple with
// attribute A holding F's result (both evaluated on the same input).
type Extend struct {
	Base Expr
	A    string
	F    Expr
}

// Eval implements Expr.
func (x Extend) Eval(v Value) Value {
	b, ok := x.Base.Eval(v).(Tuple)
	if !ok {
		return Nil{}
	}
	out := make(Tuple, len(b)+1)
	for k, e := range b {
		out[k] = e
	}
	out[x.A] = x.F.Eval(v)
	return out
}

// String implements Expr.
func (x Extend) String() string {
	return "χ" + x.A + "(" + x.Base.String() + ";" + x.F.String() + ")"
}

// Translator holds per-script context.
type Translator struct {
	ck *brasil.Checked
	// Visibility is the distance bound used for σ_V filtering of foreach
	// candidates (0 = unbounded). It defaults to the script's own bound
	// but can be overridden to exercise Theorem 3's 2R construction.
	Visibility float64
}

// NewTranslator builds a translator for a checked class.
func NewTranslator(ck *brasil.Checked) *Translator {
	return &Translator{ck: ck, Visibility: ck.Visibility}
}

// scope tracks which names are loop variables or locals during
// translation (they live as attributes of the active tuple).
type scope struct {
	vars map[string]bool
}

func (s *scope) with(name string) *scope {
	ns := &scope{vars: map[string]bool{}}
	for k := range s.vars {
		ns.vars[k] = true
	}
	ns.vars[name] = true
	return ns
}

// TranslateRun translates the whole run() body to an Expr over the triple.
func (tr *Translator) TranslateRun() (Expr, error) {
	return tr.stmts(tr.ck.Class.Run.Body, &scope{vars: map[string]bool{}})
}

func (tr *Translator) stmts(body []brasil.Stmt, sc *scope) (Expr, error) {
	out := Expr(ID{})
	for _, s := range body {
		e, err := tr.stmt(s, sc)
		if err != nil {
			return nil, err
		}
		// Sequencing is composition (left-to-right).
		out = Compose{out, e}
		// Variable declarations extend the scope for later statements.
		if vd, ok := s.(*brasil.VarDecl); ok {
			sc = sc.with(vd.Name)
		}
	}
	return out, nil
}

func (tr *Translator) stmt(s brasil.Stmt, sc *scope) (Expr, error) {
	switch st := s.(type) {
	case *brasil.VarDecl:
		init, err := tr.expr(st.Init, sc)
		if err != nil {
			return nil, err
		}
		// ⟨1: χx([[E]]), 2: π2, 3: π3⟩.
		return MkTuple{map[string]Expr{
			"1": Extend{Base: Proj{"1"}, A: st.Name, F: init},
			"2": Proj{"2"},
			"3": Proj{"3"},
		}}, nil

	case *brasil.AssignEffect:
		val, err := tr.expr(st.Value, sc)
		if err != nil {
			return nil, err
		}
		target := Expr(Pipe(Proj{"1"}, Proj{"KEY"}))
		if st.On != nil {
			on, err := tr.agentExpr(st.On, sc)
			if err != nil {
				return nil, err
			}
			target = Compose{on, Proj{"KEY"}}
		}
		// ⟨1:π1, 2:π2, 3: π3 ⊕ SNG(⟨k, e, v⟩)⟩.
		eff := MkTuple{map[string]Expr{
			"k": target,
			"e": Const{strVal(st.Field)},
			"v": val,
		}}
		return MkTuple{map[string]Expr{
			"1": Proj{"1"},
			"2": Proj{"2"},
			"3": Union{Proj{"3"}, Compose{eff, SNG{}}},
		}}, nil

	case *brasil.If:
		cond, err := tr.expr(st.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := tr.stmts(st.Then, sc)
		if err != nil {
			return nil, err
		}
		els, err := tr.stmts(st.Else, sc)
		if err != nil {
			return nil, err
		}
		// Effects flow from whichever branch ran; slots 1 and 2 pass
		// through (locals declared in a branch die with it).
		return MkTuple{map[string]Expr{
			"1": Proj{"1"},
			"2": Proj{"2"},
			"3": Cond{If: cond, Then: Compose{then, Proj{"3"}}, Else: Compose{els, Proj{"3"}}},
		}}, nil

	case *brasil.Foreach:
		body, err := tr.stmts(st.Body, sc.with(st.VarName))
		if err != nil {
			return nil, err
		}
		// Candidates: ⟨a: π1, w: π2, c: π2⟩ ◦ PAIRWITH_c ◦ σ_V, then for
		// each candidate run the body on ⟨1: χ_x(a, c), 2: w, 3: {}⟩ and
		// collect its effect slot; union everything into π3.
		pair := Pipe(
			MkTuple{map[string]Expr{"a": Proj{"1"}, "w": Proj{"2"}, "c": Proj{"2"}}},
			PairWith{"c"},
		)
		var filtered Expr = pair
		if tr.Visibility > 0 {
			filtered = Compose{pair, Select{tr.visPred()}}
		}
		perCandidate := Pipe(
			MkTuple{map[string]Expr{
				"1": Extend{Base: Proj{"a"}, A: st.VarName, F: Proj{"c"}},
				"2": Proj{"w"},
				"3": Const{Set{}},
			}},
			body,
			Proj{"3"},
		)
		loop := Compose{filtered, FlatMap{perCandidate}}
		return MkTuple{map[string]Expr{
			"1": Proj{"1"},
			"2": Proj{"2"},
			"3": Union{Proj{"3"}, loop},
		}}, nil
	}
	return nil, fmt.Errorf("monad: cannot translate statement %T", s)
}

// visPred builds V(a, c): dist(a, c) ≤ Visibility over the paired tuple.
func (tr *Translator) visPred() Expr {
	dx := BinOp{Op: "-", L: Pipe(Proj{"a"}, Proj{"x"}), R: Pipe(Proj{"c"}, Proj{"x"})}
	dy := BinOp{Op: "-", L: Pipe(Proj{"a"}, Proj{"y"}), R: Pipe(Proj{"c"}, Proj{"y"})}
	d := Fn{Name: "hypot", Args: []Expr{dx, dy}}
	return BinOp{Op: "<=", L: d, R: Const{Num(tr.Visibility)}}
}

// agentExpr translates an agent-typed expression to one yielding the
// agent's tuple.
func (tr *Translator) agentExpr(e brasil.Expr, sc *scope) (Expr, error) {
	switch ex := e.(type) {
	case *brasil.This:
		return Proj{"1"}, nil
	case *brasil.Ref:
		if sc.vars[ex.Name] {
			return Pipe(Proj{"1"}, Proj{ex.Name}), nil
		}
		return nil, fmt.Errorf("monad: %q is not an agent variable", ex.Name)
	}
	return nil, fmt.Errorf("monad: not an agent expression: %T", e)
}

// expr translates a numeric BRASIL expression.
func (tr *Translator) expr(e brasil.Expr, sc *scope) (Expr, error) {
	switch ex := e.(type) {
	case *brasil.Num:
		return Const{Num(ex.Val)}, nil

	case *brasil.Ref:
		if sc.vars[ex.Name] {
			// Local constant (numeric) stored on the active tuple. Agent
			// variables are handled by agentExpr callers.
			return Pipe(Proj{"1"}, Proj{ex.Name}), nil
		}
		if f, ok := tr.ck.Fields[ex.Name]; ok {
			if !f.IsState {
				return nil, fmt.Errorf("monad: effect reads are outside the translated subset")
			}
			return Pipe(Proj{"1"}, Proj{ex.Name}), nil
		}
		return nil, fmt.Errorf("monad: undefined name %q", ex.Name)

	case *brasil.FieldRef:
		on, err := tr.agentExpr(ex.On, sc)
		if err != nil {
			return nil, err
		}
		if f, ok := tr.ck.Fields[ex.Field]; !ok || !f.IsState {
			return nil, fmt.Errorf("monad: field %q is not a readable state field", ex.Field)
		}
		return Compose{on, Proj{ex.Field}}, nil

	case *brasil.Unary:
		x, err := tr.expr(ex.X, sc)
		if err != nil {
			return nil, err
		}
		if ex.Op == "-" {
			return BinOp{Op: "-", L: Const{Num(0)}, R: x}, nil
		}
		return BinOp{Op: "==", L: x, R: Const{Num(0)}}, nil

	case *brasil.Binary:
		if ex.Op == "==" || ex.Op == "!=" {
			la, lerr := tr.agentExpr(ex.L, sc)
			ra, rerr := tr.agentExpr(ex.R, sc)
			if lerr == nil && rerr == nil {
				cmp := BinOp{Op: "==",
					L: Compose{la, Proj{"KEY"}},
					R: Compose{ra, Proj{"KEY"}}}
				if ex.Op == "==" {
					return cmp, nil
				}
				return BinOp{Op: "==", L: cmp, R: Const{Bool(false)}}, nil
			}
		}
		l, err := tr.expr(ex.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(ex.R, sc)
		if err != nil {
			return nil, err
		}
		return BinOp{Op: ex.Op, L: l, R: r}, nil

	case *brasil.Call:
		if ex.Name == "dist" {
			a, err := tr.agentExpr(ex.Args[0], sc)
			if err != nil {
				return nil, err
			}
			b, err := tr.agentExpr(ex.Args[1], sc)
			if err != nil {
				return nil, err
			}
			dx := BinOp{Op: "-", L: Compose{a, Proj{"x"}}, R: Compose{b, Proj{"x"}}}
			dy := BinOp{Op: "-", L: Compose{a, Proj{"y"}}, R: Compose{b, Proj{"y"}}}
			return Fn{Name: "hypot", Args: []Expr{dx, dy}}, nil
		}
		if ex.Name == "rand" {
			return nil, fmt.Errorf("monad: rand() has no algebraic meaning in the query phase")
		}
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			x, err := tr.expr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return Fn{Name: ex.Name, Args: args}, nil

	case *brasil.This:
		return nil, fmt.Errorf("monad: this used as a number")
	}
	return nil, fmt.Errorf("monad: cannot translate expression %T", e)
}

// strVal interns field names as one-attribute tuples so Value stays a
// closed algebra (no string atom needed): the effect id ρ(x).
func strVal(s string) Value { return Tuple{"id$" + s: Num(1)} }

// EffectFieldOf recovers the field name from an effect tuple's e slot.
func EffectFieldOf(v Value) (string, bool) {
	t, ok := v.(Tuple)
	if !ok {
		return "", false
	}
	for k := range t {
		if len(k) > 3 && k[:3] == "id$" {
			return k[3:], true
		}
	}
	return "", false
}

// AgentTuple converts a flat state map + key into an agent tuple.
func AgentTuple(key float64, state map[string]float64) Tuple {
	t := Tuple{"KEY": Num(key)}
	for k, v := range state {
		t[k] = Num(v)
	}
	return t
}

// RunQuery evaluates the translated script for every agent in the world
// and returns the union of all produced effect tuples — the NEST₂/MAP
// driver of eq. (2), Q(Q).
func RunQuery(script Expr, world Set) (Set, error) {
	var out Set
	for _, a := range world {
		in := Tuple{"1": Clone(a), "2": Clone(world).(Set), "3": Set{}}
		res := script.Eval(in)
		rt, ok := res.(Tuple)
		if !ok {
			return nil, fmt.Errorf("monad: script produced %T, want triple", res)
		}
		eff, ok := rt["3"].(Set)
		if !ok {
			return nil, fmt.Errorf("monad: effect slot is %T", rt["3"])
		}
		out = append(out, eff...)
	}
	return out, nil
}

// AggregateEffects folds an effect set into per-(key, field) totals using
// each effect field's combinator from the schema — the global ⊕ of
// reduce₂.
func AggregateEffects(ck *brasil.Checked, effs Set) (map[float64]map[string]float64, error) {
	out := map[float64]map[string]float64{}
	for _, e := range effs {
		t, ok := e.(Tuple)
		if !ok {
			return nil, fmt.Errorf("monad: effect %s is not a tuple", e)
		}
		k, ok := t["k"].(Num)
		if !ok {
			return nil, fmt.Errorf("monad: effect key missing")
		}
		field, ok := EffectFieldOf(t["e"])
		if !ok {
			return nil, fmt.Errorf("monad: effect id missing")
		}
		v, ok := t["v"].(Num)
		if !ok {
			return nil, fmt.Errorf("monad: effect value missing")
		}
		fd, ok := ck.Fields[field]
		if !ok || fd.IsState {
			return nil, fmt.Errorf("monad: unknown effect field %q", field)
		}
		m := out[float64(k)]
		if m == nil {
			m = map[string]float64{}
			out[float64(k)] = m
		}
		// Fold with the declared combinator, starting from its identity.
		comb := combinatorFor(fd.Comb)
		if cur, seen := m[field]; seen {
			m[field] = comb.fold(cur, float64(v))
		} else {
			m[field] = comb.fold(comb.identity, float64(v))
		}
	}
	return out, nil
}

type simpleComb struct {
	identity float64
	fold     func(a, b float64) float64
}

func combinatorFor(name string) simpleComb {
	switch name {
	case "min":
		return simpleComb{identity: inf(), fold: func(a, b float64) float64 {
			if b < a {
				return b
			}
			return a
		}}
	case "max":
		return simpleComb{identity: -inf(), fold: func(a, b float64) float64 {
			if b > a {
				return b
			}
			return a
		}}
	case "mul":
		return simpleComb{identity: 1, fold: func(a, b float64) float64 { return a * b }}
	default: // sum, count, or/and collapse to sum/bool-ish for tests
		return simpleComb{identity: 0, fold: func(a, b float64) float64 { return a + b }}
	}
}

func inf() float64 { return math.Inf(1) }
