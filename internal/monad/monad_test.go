package monad

import (
	"math"
	"math/rand"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestValueStringsCanonical(t *testing.T) {
	a := Tuple{"b": Num(2), "a": Num(1)}
	b := Tuple{"a": Num(1), "b": Num(2)}
	if a.String() != b.String() {
		t.Error("tuple strings not canonical")
	}
	s1 := Set{Num(1), Num(2)}
	s2 := Set{Num(2), Num(1)}
	if !Equal(s1, s2) {
		t.Error("bag equality should ignore order")
	}
	if Equal(s1, Set{Num(1)}) {
		t.Error("different bags equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := Tuple{"s": Set{Tuple{"x": Num(1)}}}
	c := Clone(v).(Tuple)
	c["s"].(Set)[0].(Tuple)["x"] = Num(9)
	if v["s"].(Set)[0].(Tuple)["x"] != Num(1) {
		t.Error("clone shares storage")
	}
}

func TestCoreOperators(t *testing.T) {
	in := Tuple{"a": Num(3), "s": Set{Num(1), Num(2), Num(3)}}

	if got := (Proj{"a"}).Eval(in); got != Num(3) {
		t.Errorf("Proj = %v", got)
	}
	if got := (Proj{"zz"}).Eval(in); !IsNil(got) {
		t.Errorf("Proj missing = %v", got)
	}
	if got := (Proj{"a"}).Eval(Num(1)); !IsNil(got) {
		t.Errorf("Proj on atom = %v", got)
	}

	mk := MkTuple{map[string]Expr{"x": Proj{"a"}, "y": Const{Num(7)}}}
	if got := mk.Eval(in); !Equal(got, Tuple{"x": Num(3), "y": Num(7)}) {
		t.Errorf("MkTuple = %v", got)
	}

	if got := (SNG{}).Eval(Num(5)); !Equal(got, Set{Num(5)}) {
		t.Errorf("SNG = %v", got)
	}

	double := BinOp{Op: "*", L: ID{}, R: Const{Num(2)}}
	if got := Pipe(Proj{"s"}, Map{double}).Eval(in); !Equal(got, Set{Num(2), Num(4), Num(6)}) {
		t.Errorf("MAP = %v", got)
	}

	dup := FlatMap{MkTuple{map[string]Expr{}}} // not a set: NIL
	if got := dup.Eval(Set{Num(1)}); !IsNil(got) {
		t.Errorf("FLATMAP non-set body = %v", got)
	}
	if got := (Flatten{}).Eval(Set{Set{Num(1)}, Set{Num(2), Num(3)}}); !Equal(got, Set{Num(1), Num(2), Num(3)}) {
		t.Errorf("FLATTEN = %v", got)
	}

	pw := PairWith{"s"}
	got := pw.Eval(Tuple{"s": Set{Num(1), Num(2)}, "k": Num(9)})
	want := Set{Tuple{"s": Num(1), "k": Num(9)}, Tuple{"s": Num(2), "k": Num(9)}}
	if !Equal(got, want) {
		t.Errorf("PAIRWITH = %v", got)
	}

	pos := Select{BinOp{Op: ">", L: ID{}, R: Const{Num(1)}}}
	if got := Pipe(Proj{"s"}, pos).Eval(in); !Equal(got, Set{Num(2), Num(3)}) {
		t.Errorf("SELECT = %v", got)
	}

	if got := (Union{Const{Set{Num(1)}}, Const{Set{Num(2)}}}).Eval(Nil{}); !Equal(got, Set{Num(1), Num(2)}) {
		t.Errorf("UNION = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	s := Set{Num(3), Nil{}, Num(1), Num(2)}
	cases := map[string]Value{
		"SUM":   Num(6),
		"COUNT": Num(3), // NIL ignored
		"MIN":   Num(1),
		"MAX":   Num(3),
	}
	for op, want := range cases {
		if got := (Agg{op}).Eval(s); !Equal(got, want) {
			t.Errorf("%s = %v, want %v", op, got, want)
		}
	}
	if got := (Agg{"GET"}).Eval(Set{Num(7)}); got != Num(7) {
		t.Errorf("GET singleton = %v", got)
	}
	if got := (Agg{"GET"}).Eval(Set{Num(7), Num(8)}); !IsNil(got) {
		t.Errorf("GET non-singleton = %v", got)
	}
	if got := (Agg{"SUM"}).Eval(Set{}); got != Num(0) {
		t.Errorf("SUM empty = %v", got)
	}
	if got := (Agg{"MIN"}).Eval(Set{}); !IsNil(got) {
		t.Errorf("MIN empty = %v", got)
	}
}

func TestNilPropagation(t *testing.T) {
	if got := (BinOp{Op: "+", L: Const{Nil{}}, R: Const{Num(1)}}).Eval(Nil{}); !IsNil(got) {
		t.Errorf("NIL + 1 = %v", got)
	}
	if got := (MkTuple{map[string]Expr{"a": ID{}}}).Eval(Nil{}); !IsNil(got) {
		t.Errorf("tuple of NIL input = %v", got)
	}
	// NIL elements in a set are ignored by MAP.
	if got := (Map{ID{}}).Eval(Set{Num(1), Nil{}, Num(2)}); !Equal(got, Set{Num(1), Num(2)}) {
		t.Errorf("MAP over NILs = %v", got)
	}
}

func TestCondSigmaGetEncoding(t *testing.T) {
	// The App. B encoding of conditionals via σ and GET agrees with the
	// native Cond on set-producing branches.
	pred := BinOp{Op: ">", L: Proj{"v"}, R: Const{Num(0)}}
	then := Const{Set{Num(1)}}
	els := Const{Set{Num(2)}}
	native := Cond{If: pred, Then: then, Else: els}
	encoded := CondViaSigmaGet(pred, then, els)
	for _, v := range []Value{Tuple{"v": Num(5)}, Tuple{"v": Num(-5)}} {
		a, b := native.Eval(v), encoded.Eval(v)
		if !Equal(a, b) {
			t.Errorf("Cond(%v) = %v, σ/GET = %v", v, a, b)
		}
	}
}

// randomWorldInput builds inputs for rewrite equivalence checks.
func randomWorldInput(rng *rand.Rand) Value {
	n := 1 + rng.Intn(5)
	s := make(Set, n)
	for i := range s {
		s[i] = Tuple{"a": Num(rng.Float64() * 10), "b": Num(rng.Float64() * 10)}
	}
	return Tuple{"s": s, "k": Num(rng.Float64())}
}

func TestRewritePreservesSemantics(t *testing.T) {
	double := BinOp{Op: "*", L: Proj{"a"}, R: Const{Num(2)}}
	wrap := MkTuple{map[string]Expr{"a": double, "b": Proj{"b"}}}
	exprs := []Expr{
		// MAP fusion target.
		Pipe(Proj{"s"}, Map{wrap}, Map{Proj{"a"}}),
		// Dead tuple elimination.
		Pipe(MkTuple{map[string]Expr{"x": Proj{"k"}, "junk": Proj{"s"}}}, Proj{"x"}),
		// FLATMAP(SNG) identity.
		Pipe(Proj{"s"}, FlatMap{SNG{}}, Agg{"COUNT"}),
		// σ(true) identity.
		Pipe(Proj{"s"}, Select{Const{Bool(true)}}, Agg{"COUNT"}),
		// Constant folding in scalars.
		BinOp{Op: "+", L: Const{Num(2)}, R: BinOp{Op: "*", L: Const{Num(3)}, R: Const{Num(4)}}},
		// Nested composition normalization.
		Compose{Compose{Proj{"s"}, Map{wrap}}, Agg{"COUNT"}},
	}
	rng := rand.New(rand.NewSource(1))
	for i, e := range exprs {
		r := Rewrite(e)
		for trial := 0; trial < 50; trial++ {
			in := randomWorldInput(rng)
			a, b := e.Eval(Clone(in)), r.Eval(Clone(in))
			if !Equal(a, b) {
				t.Fatalf("expr %d: rewrite changed semantics:\n  orig %s = %v\n  new  %s = %v",
					i, e, a, r, b)
			}
		}
	}
}

func TestRewriteShrinksPlans(t *testing.T) {
	wrap := MkTuple{map[string]Expr{"a": Proj{"a"}, "b": Proj{"b"}}}
	e := Pipe(Proj{"s"}, Map{wrap}, Map{Proj{"a"}}, FlatMap{SNG{}}, Select{Const{Bool(true)}})
	r := Rewrite(e)
	if Size(r) >= Size(e) {
		t.Errorf("rewrite did not shrink: %d -> %d (%s)", Size(e), Size(r), r)
	}
	// Specific algebraic facts.
	if got := Rewrite(Map{ID{}}); got.String() != "ID" {
		t.Errorf("MAP(ID) = %s", got)
	}
	if got := Rewrite(FlatMap{SNG{}}); got.String() != "ID" {
		t.Errorf("FLATMAP(SNG) = %s", got)
	}
	fused := Rewrite(Compose{Map{Proj{"a"}}, Map{Proj{"b"}}})
	if _, ok := fused.(Map); !ok {
		t.Errorf("MAP fusion failed: %s", fused)
	}
}

// ---- Translation and the theorems ----

const localSrc = `
class A {
  public state float x : x; #range[-3,3];
  public state float y : y; #range[-3,3];
  public state float acc : near;
  public effect float near : sum;
  public void run() {
    foreach (A p : Extent<A>) {
      if (p != this) {
        near <- 1 / (dist(this, p) + 1);
      }
    }
  }
}
`

const nonLocalSrc = `
class B {
  public state float x : x;
  public state float y : y;
  public state float m : m;
  public effect float push : sum;
  public void run() {
    foreach (B p : Extent<B>) {
      if (p != this) {
        p.push <- (p.x - x) * m;
      }
    }
  }
}
`

const nonLocalVisSrc = `
class C {
  public state float x : x; #range[-4,4];
  public state float y : y; #range[-4,4];
  public state float m : m;
  public effect float push : sum;
  public void run() {
    foreach (C p : Extent<C>) {
      if (p != this) {
        p.push <- (p.x - x) * m;
      }
    }
  }
}
`

func checkedOf(t *testing.T, src string) *brasil.Checked {
	t.Helper()
	cl, err := brasil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := brasil.Check(cl)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func randomWorld(rng *rand.Rand, n int, fields []string, span float64) Set {
	w := make(Set, n)
	for i := range w {
		st := map[string]float64{}
		for _, f := range fields {
			st[f] = rng.Float64() * span
		}
		w[i] = AgentTuple(float64(i+1), st)
	}
	return w
}

// Theorem 1: the BRASIL weak-reference/visibility semantics (monad
// translation with σ_V) equals the BRACE implementation (distributed
// engine with replication and replica filtering). The script copies its
// aggregated effect into state field acc, which we compare per agent.
func TestTheorem1MonadMatchesEngine(t *testing.T) {
	ck := checkedOf(t, localSrc)
	tr := NewTranslator(ck)
	script, err := tr.TranslateRun()
	if err != nil {
		t.Fatal(err)
	}

	prog, err := brasil.Compile(localSrc, brasil.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	// World sorted by ID so both sides fold local sums in the same order.
	const n = 40
	world := make(Set, n)
	pop := make([]*agent.Agent, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*12, rng.Float64()*12
		world[i] = AgentTuple(float64(i+1), map[string]float64{"x": x, "y": y, "acc": 0})
		a := agent.New(prog.Schema(), agent.ID(i+1))
		a.State[prog.Schema().StateIndex("x")] = x
		a.State[prog.Schema().StateIndex("y")] = y
		pop[i] = a
	}

	effs, err := RunQuery(script, world)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateEffects(ck, effs)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := engine.NewDistributed(prog, pop, engine.Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	accIdx := prog.Schema().StateIndex("acc")
	for _, a := range eng.Agents() {
		want := agg[float64(a.ID)]["near"]
		got := a.State[accIdx]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("agent %d: engine acc %v, monad %v", a.ID, got, want)
		}
	}
}

// Theorem 2: with no visibility constraints, effect inversion preserves
// the script's semantics exactly.
func TestTheorem2EffectInversion(t *testing.T) {
	ck := checkedOf(t, nonLocalSrc)
	if !ck.HasNonLocal {
		t.Fatal("test script should be non-local")
	}
	inv, err := brasil.Invert(ck)
	if err != nil {
		t.Fatal(err)
	}
	ckInv, err := brasil.Check(inv)
	if err != nil {
		t.Fatal(err)
	}
	if ckInv.HasNonLocal {
		t.Fatal("inverted script still non-local")
	}

	s1, err := NewTranslator(ck).TranslateRun()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewTranslator(ckInv).TranslateRun()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		world := randomWorld(rng, 3+rng.Intn(10), []string{"x", "y", "m"}, 10)
		e1, err := RunQuery(s1, world)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := RunQuery(s2, world)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := AggregateEffects(ck, e1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := AggregateEffects(ckInv, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !aggEqual(a1, a2, 0) {
			t.Fatalf("trial %d: inversion changed semantics:\n%v\n%v", trial, a1, a2)
		}
	}
}

// Theorem 3: with a distance-bound visibility constraint R, the inverted
// script evaluated under the enlarged bound (≤ 2R per the theorem; the
// explicit distance guard the inverter adds re-imposes R) agrees with the
// original under R.
func TestTheorem3InversionUnderVisibility(t *testing.T) {
	ck := checkedOf(t, nonLocalVisSrc)
	if ck.Visibility != 4 {
		t.Fatalf("visibility = %v", ck.Visibility)
	}
	inv, err := brasil.Invert(ck)
	if err != nil {
		t.Fatal(err)
	}
	ckInv, err := brasil.Check(inv)
	if err != nil {
		t.Fatal(err)
	}

	trOrig := NewTranslator(ck) // σ_V with R = 4
	s1, err := trOrig.TranslateRun()
	if err != nil {
		t.Fatal(err)
	}
	trInv := NewTranslator(ckInv)
	trInv.Visibility = 2 * ck.Visibility // V′ of the theorem: 2R
	s2, err := trInv.TranslateRun()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		world := randomWorld(rng, 3+rng.Intn(12), []string{"x", "y", "m"}, 12)
		e1, err := RunQuery(s1, world)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := RunQuery(s2, world)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := AggregateEffects(ck, e1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := AggregateEffects(ckInv, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !aggEqual(a1, a2, 1e-12) {
			t.Fatalf("trial %d: visibility inversion mismatch:\n%v\n%v", trial, a1, a2)
		}
	}
}

// Theorem 1 corollary exercised algebraically: translating with σ_V over
// the full world equals translating without σ_V over a pre-filtered world
// — replica filtering commutes with the query.
func TestVisibilityFilterCommutes(t *testing.T) {
	ck := checkedOf(t, localSrc)
	withV := NewTranslator(ck)
	s1, err := withV.TranslateRun()
	if err != nil {
		t.Fatal(err)
	}
	noV := NewTranslator(ck)
	noV.Visibility = 0
	s2, err := noV.TranslateRun()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	world := randomWorld(rng, 12, []string{"x", "y", "acc"}, 10)

	e1, err := RunQuery(s1, world)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-filter per active agent, then run the unfiltered script.
	var e2 Set
	for _, a := range world {
		at := a.(Tuple)
		var vis Set
		for _, b := range world {
			bt := b.(Tuple)
			dx := float64(at["x"].(Num) - bt["x"].(Num))
			dy := float64(at["y"].(Num) - bt["y"].(Num))
			if math.Hypot(dx, dy) <= ck.Visibility {
				vis = append(vis, b)
			}
		}
		in := Tuple{"1": Clone(a), "2": Clone(vis).(Set), "3": Set{}}
		res := s2.Eval(in).(Tuple)
		e2 = append(e2, res["3"].(Set)...)
	}
	a1, err := AggregateEffects(ck, e1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AggregateEffects(ck, e2)
	if err != nil {
		t.Fatal(err)
	}
	if !aggEqual(a1, a2, 0) {
		t.Fatalf("σ_V does not commute with pre-filtering:\n%v\n%v", a1, a2)
	}
}

func aggEqual(a, b map[float64]map[string]float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ma := range a {
		mb, ok := b[k]
		if !ok || len(ma) != len(mb) {
			return false
		}
		for f, va := range ma {
			vb, ok := mb[f]
			if !ok || math.Abs(va-vb) > tol {
				return false
			}
		}
	}
	return true
}
