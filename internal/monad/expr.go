package monad

import (
	"fmt"
	"math"
)

// Expr is a monad algebra expression: a function from Value to Value.
// Composition reads left-to-right as in the paper: Compose(f, g)(x) =
// g(f(x)).
type Expr interface {
	Eval(v Value) Value
	String() string
}

// ---- Core operators ----

// ID is the identity.
type ID struct{}

// Eval implements Expr.
func (ID) Eval(v Value) Value { return v }

// String implements Expr.
func (ID) String() string { return "ID" }

// Const ignores its input and returns a fixed value.
type Const struct{ V Value }

// Eval implements Expr.
func (c Const) Eval(Value) Value { return Clone(c.V) }

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("CONST(%s)", c.V) }

// Proj projects a tuple attribute: π_A. Projection on a nonexistent
// attribute or a non-tuple is NIL (App. B's relaxed typing).
type Proj struct{ A string }

// Eval implements Expr.
func (p Proj) Eval(v Value) Value {
	t, ok := v.(Tuple)
	if !ok {
		return Nil{}
	}
	e, ok := t[p.A]
	if !ok {
		return Nil{}
	}
	return e
}

// String implements Expr.
func (p Proj) String() string { return "π" + p.A }

// MkTuple builds a tuple ⟨a₁: f₁, ..., aₙ: fₙ⟩.
type MkTuple struct{ Fields map[string]Expr }

// Eval implements Expr.
func (m MkTuple) Eval(v Value) Value {
	if IsNil(v) {
		return Nil{}
	}
	out := make(Tuple, len(m.Fields))
	for k, f := range m.Fields {
		out[k] = f.Eval(v)
	}
	return out
}

// String implements Expr.
func (m MkTuple) String() string {
	s := "⟨"
	first := true
	for k, f := range m.Fields {
		if !first {
			s += ","
		}
		first = false
		s += k + ":" + f.String()
	}
	return s + "⟩"
}

// SNG wraps its input into a singleton set.
type SNG struct{}

// Eval implements Expr.
func (SNG) Eval(v Value) Value { return Set{v} }

// String implements Expr.
func (SNG) String() string { return "SNG" }

// Map applies F to every set element (the MAP primitive that "descends
// into the components of the nested data model").
type Map struct{ F Expr }

// Eval implements Expr.
func (m Map) Eval(v Value) Value {
	s, ok := v.(Set)
	if !ok {
		return Nil{}
	}
	out := make(Set, 0, len(s))
	for _, e := range s {
		if IsNil(e) {
			continue // NIL elements in a set are ignored
		}
		out = append(out, m.F.Eval(e))
	}
	return out
}

// String implements Expr.
func (m Map) String() string { return "MAP(" + m.F.String() + ")" }

// FlatMap applies F (which must yield sets) and flattens one level.
type FlatMap struct{ F Expr }

// Eval implements Expr.
func (m FlatMap) Eval(v Value) Value {
	s, ok := v.(Set)
	if !ok {
		return Nil{}
	}
	var out Set
	for _, e := range s {
		if IsNil(e) {
			continue
		}
		r := m.F.Eval(e)
		rs, ok := r.(Set)
		if !ok {
			if IsNil(r) {
				continue
			}
			return Nil{}
		}
		out = append(out, rs...)
	}
	if out == nil {
		out = Set{}
	}
	return out
}

// String implements Expr.
func (m FlatMap) String() string { return "FLATMAP(" + m.F.String() + ")" }

// Flatten unnests a set of sets.
type Flatten struct{}

// Eval implements Expr.
func (Flatten) Eval(v Value) Value { return FlatMap{ID{}}.Eval(v) }

// String implements Expr.
func (Flatten) String() string { return "FLATTEN" }

// PairWith distributes a set-valued attribute over its tuple:
// PAIRWITH_A(⟨A:{x...}, rest⟩) = {⟨A:x, rest⟩ ...}.
type PairWith struct{ A string }

// Eval implements Expr.
func (p PairWith) Eval(v Value) Value {
	t, ok := v.(Tuple)
	if !ok {
		return Nil{}
	}
	s, ok := t[p.A].(Set)
	if !ok {
		return Nil{}
	}
	out := make(Set, 0, len(s))
	for _, e := range s {
		nt := make(Tuple, len(t))
		for k, val := range t {
			nt[k] = val
		}
		nt[p.A] = e
		out = append(out, nt)
	}
	return out
}

// String implements Expr.
func (p PairWith) String() string { return "PAIRWITH" + p.A }

// Select filters a set by a boolean-valued predicate (σ). Elements where
// the predicate is NIL or false are dropped.
type Select struct{ Pred Expr }

// Eval implements Expr.
func (s Select) Eval(v Value) Value {
	set, ok := v.(Set)
	if !ok {
		return Nil{}
	}
	out := make(Set, 0, len(set))
	for _, e := range set {
		if truthy(s.Pred.Eval(e)) {
			out = append(out, e)
		}
	}
	return out
}

// String implements Expr.
func (s Select) String() string { return "σ(" + s.Pred.String() + ")" }

// Union concatenates the set results of L and R (bag union; it is also
// the effect-merge ⊕ before aggregation).
type Union struct{ L, R Expr }

// Eval implements Expr.
func (u Union) Eval(v Value) Value {
	l, lok := u.L.Eval(v).(Set)
	r, rok := u.R.Eval(v).(Set)
	if !lok || !rok {
		return Nil{}
	}
	out := make(Set, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// String implements Expr.
func (u Union) String() string { return u.L.String() + " ∪ " + u.R.String() }

// Compose is left-to-right composition: (f ◦ g)(x) = g(f(x)).
type Compose struct{ F, G Expr }

// Eval implements Expr.
func (c Compose) Eval(v Value) Value { return c.G.Eval(c.F.Eval(v)) }

// String implements Expr.
func (c Compose) String() string { return c.F.String() + "◦" + c.G.String() }

// Pipe composes a chain left-to-right.
func Pipe(es ...Expr) Expr {
	if len(es) == 0 {
		return ID{}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Compose{out, e}
	}
	return out
}

// ---- Aggregates ----

// Agg applies a named aggregate over a set: SUM, COUNT, MIN, MAX, and GET
// (the App. B function returning the contents of a singleton, NIL
// otherwise). NIL elements are ignored.
type Agg struct{ Op string }

// Eval implements Expr.
func (a Agg) Eval(v Value) Value {
	s, ok := v.(Set)
	if !ok {
		return Nil{}
	}
	var elems []Value
	for _, e := range s {
		if !IsNil(e) {
			elems = append(elems, e)
		}
	}
	switch a.Op {
	case "COUNT":
		return Num(len(elems))
	case "GET":
		if len(elems) == 1 {
			return elems[0]
		}
		return Nil{}
	case "SUM", "MIN", "MAX":
		if len(elems) == 0 {
			if a.Op == "SUM" {
				return Num(0)
			}
			return Nil{}
		}
		acc, ok := elems[0].(Num)
		if !ok {
			return Nil{}
		}
		for _, e := range elems[1:] {
			n, ok := e.(Num)
			if !ok {
				return Nil{}
			}
			switch a.Op {
			case "SUM":
				acc += n
			case "MIN":
				acc = Num(math.Min(float64(acc), float64(n)))
			case "MAX":
				acc = Num(math.Max(float64(acc), float64(n)))
			}
		}
		return acc
	}
	return Nil{}
}

// String implements Expr.
func (a Agg) String() string { return a.Op }

// ---- Scalar operations ----

// BinOp applies an arithmetic/comparison/logical operator to the numeric
// (or boolean) results of L and R. NIL operands yield NIL ("values
// combined with NIL are NIL").
type BinOp struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(v Value) Value {
	l, r := b.L.Eval(v), b.R.Eval(v)
	if IsNil(l) || IsNil(r) {
		return Nil{}
	}
	switch b.Op {
	case "&&", "||":
		lb, rb := truthy(l), truthy(r)
		if b.Op == "&&" {
			return Bool(lb && rb)
		}
		return Bool(lb || rb)
	case "==":
		return Bool(Equal(l, r))
	case "!=":
		return Bool(!Equal(l, r))
	}
	ln, lok := l.(Num)
	rn, rok := r.(Num)
	if !lok || !rok {
		return Nil{}
	}
	switch b.Op {
	case "+":
		return ln + rn
	case "-":
		return ln - rn
	case "*":
		return ln * rn
	case "/":
		return Num(float64(ln) / float64(rn))
	case "<":
		return Bool(ln < rn)
	case "<=":
		return Bool(ln <= rn)
	case ">":
		return Bool(ln > rn)
	case ">=":
		return Bool(ln >= rn)
	}
	return Nil{}
}

// String implements Expr.
func (b BinOp) String() string {
	return "(" + b.L.String() + b.Op + b.R.String() + ")"
}

// Fn applies a named unary/binary math function.
type Fn struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (f Fn) Eval(v Value) Value {
	xs := make([]float64, len(f.Args))
	for i, a := range f.Args {
		r := a.Eval(v)
		n, ok := r.(Num)
		if !ok {
			return Nil{}
		}
		xs[i] = float64(n)
	}
	switch f.Name {
	case "abs":
		return Num(math.Abs(xs[0]))
	case "sqrt":
		return Num(math.Sqrt(xs[0]))
	case "floor":
		return Num(math.Floor(xs[0]))
	case "exp":
		return Num(math.Exp(xs[0]))
	case "log":
		return Num(math.Log(xs[0]))
	case "sin":
		return Num(math.Sin(xs[0]))
	case "cos":
		return Num(math.Cos(xs[0]))
	case "min":
		return Num(math.Min(xs[0], xs[1]))
	case "max":
		return Num(math.Max(xs[0], xs[1]))
	case "pow":
		return Num(math.Pow(xs[0], xs[1]))
	case "cond":
		if xs[0] != 0 {
			return Num(xs[1])
		}
		return Num(xs[2])
	case "hypot":
		return Num(math.Hypot(xs[0], xs[1]))
	}
	return Nil{}
}

// String implements Expr.
func (f Fn) String() string {
	s := f.Name + "("
	for i, a := range f.Args {
		if i > 0 {
			s += ","
		}
		s += a.String()
	}
	return s + ")"
}

// Cond is the eager conditional; App. B encodes it with σ/GET (see the
// rewrite tests for the equivalence), the evaluator provides it natively.
type Cond struct{ If, Then, Else Expr }

// Eval implements Expr.
func (c Cond) Eval(v Value) Value {
	if truthy(c.If.Eval(v)) {
		return c.Then.Eval(v)
	}
	return c.Else.Eval(v)
}

// String implements Expr.
func (c Cond) String() string {
	return "IF(" + c.If.String() + ";" + c.Then.String() + ";" + c.Else.String() + ")"
}

func truthy(v Value) bool {
	switch x := v.(type) {
	case Bool:
		return bool(x)
	case Num:
		return x != 0
	default:
		return false
	}
}

// CondViaSigmaGet is the App. B encoding of a conditional on sets:
// SNG ◦ σ_pred ◦ GET ◦ then ⊕ SNG ◦ σ_!pred ◦ GET ◦ else, specialized to
// expressions producing sets. It exists to machine-check that the Cond
// primitive matches the paper's encoding (see TestCondSigmaGetEncoding).
func CondViaSigmaGet(pred, then, els Expr) Expr {
	notPred := BinOp{Op: "==", L: pred, R: Const{Bool(false)}}
	branch := func(p, body Expr) Expr {
		return Pipe(SNG{}, Select{p}, Agg{"GET"},
			condNilGuard{body})
	}
	return Union{branch(pred, then), branch(notPred, els)}
}

// condNilGuard evaluates Body unless the input is NIL, in which case it
// yields the empty set (a dropped branch).
type condNilGuard struct{ Body Expr }

// Eval implements Expr.
func (c condNilGuard) Eval(v Value) Value {
	if IsNil(v) {
		return Set{}
	}
	return c.Body.Eval(v)
}

// String implements Expr.
func (c condNilGuard) String() string { return "GUARD(" + c.Body.String() + ")" }
