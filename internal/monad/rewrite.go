package monad

// Rewrite rules of §4.2 / App. B: "Most of these optimizations are the
// same as those that would be present in a relational algebra query plan:
// algebraic rewrites and automatic indexing." Rewrite applies the rules
// bottom-up to a fixpoint; every rule preserves semantics, which the
// package tests check on randomized inputs.

// Rewrite normalizes an expression.
func Rewrite(e Expr) Expr {
	for {
		next, changed := rewriteOnce(e)
		if !changed {
			return next
		}
		e = next
	}
}

func rewriteOnce(e Expr) (Expr, bool) {
	changed := false
	rec := func(x Expr) Expr {
		nx, ch := rewriteOnce(x)
		changed = changed || ch
		return nx
	}

	switch ex := e.(type) {
	case Compose:
		f := rec(ex.F)
		g := rec(ex.G)
		// Identity elimination.
		if _, ok := f.(ID); ok {
			return g, true
		}
		if _, ok := g.(ID); ok {
			return f, true
		}
		// Associate to the right for pattern matching: (a◦b)◦c → a◦(b◦c).
		if fc, ok := f.(Compose); ok {
			return Compose{fc.F, Compose{fc.G, g}}, true
		}
		// Dead-tuple elimination: ⟨..., a: h, ...⟩ ◦ π_a → h ("there are
		// rewrite rules that function like dead-code elimination").
		if mk, ok := f.(MkTuple); ok {
			if pr, ok := g.(Proj); ok {
				if h, ok := mk.Fields[pr.A]; ok {
					return h, true
				}
			}
			if cg, ok := g.(Compose); ok {
				if pr, ok := cg.F.(Proj); ok {
					if h, ok := mk.Fields[pr.A]; ok {
						return Compose{h, cg.G}, true
					}
				}
			}
		}
		// MAP fusion: MAP(f) ◦ MAP(g) = MAP(f◦g).
		if mf, ok := f.(Map); ok {
			if mg, ok := g.(Map); ok {
				return Map{Compose{mf.F, mg.F}}, true
			}
			if cg, ok := g.(Compose); ok {
				if mg, ok := cg.F.(Map); ok {
					return Compose{Map{Compose{mf.F, mg.F}}, cg.G}, true
				}
			}
			// MAP(f) ◦ FLATMAP(g) = FLATMAP(f◦g).
			if fg, ok := g.(FlatMap); ok {
				return FlatMap{Compose{mf.F, fg.F}}, true
			}
		}
		// SNG ◦ FLATMAP(f) = f;  SNG ◦ MAP(f) = f ◦ SNG.
		if _, ok := f.(SNG); ok {
			if fg, ok := g.(FlatMap); ok {
				return fg.F, true
			}
			if mg, ok := g.(Map); ok {
				return Compose{mg.F, SNG{}}, true
			}
		}
		// CONST absorbs whatever precedes it.
		if c, ok := g.(Const); ok {
			return c, true
		}
		if changed {
			return Compose{f, g}, true
		}
		return Compose{f, g}, false

	case Map:
		f := rec(ex.F)
		// MAP(ID) = ID.
		if _, ok := f.(ID); ok {
			return ID{}, true
		}
		return Map{f}, changed

	case FlatMap:
		f := rec(ex.F)
		// FLATMAP(SNG) = ID.
		if _, ok := f.(SNG); ok {
			return ID{}, true
		}
		return FlatMap{f}, changed

	case Select:
		p := rec(ex.Pred)
		// σ(true) = ID.
		if c, ok := p.(Const); ok {
			if b, ok := c.V.(Bool); ok && bool(b) {
				return ID{}, true
			}
		}
		return Select{p}, changed

	case Union:
		return Union{rec(ex.L), rec(ex.R)}, changed

	case MkTuple:
		out := make(map[string]Expr, len(ex.Fields))
		for k, f := range ex.Fields {
			out[k] = rec(f)
		}
		return MkTuple{out}, changed

	case BinOp:
		l, r := rec(ex.L), rec(ex.R)
		// Constant folding for closed operands.
		lc, lok := l.(Const)
		rc, rok := r.(Const)
		if lok && rok {
			return Const{BinOp{ex.Op, lc, rc}.Eval(Nil{})}, true
		}
		return BinOp{ex.Op, l, r}, changed

	case Cond:
		c, t, f := rec(ex.If), rec(ex.Then), rec(ex.Else)
		if cc, ok := c.(Const); ok {
			if truthy(cc.V) {
				return t, true
			}
			return f, true
		}
		return Cond{c, t, f}, changed

	case Fn:
		args := make([]Expr, len(ex.Args))
		allConst := true
		for i, a := range ex.Args {
			args[i] = rec(a)
			if _, ok := args[i].(Const); !ok {
				allConst = false
			}
		}
		if allConst && ex.Name != "rand" {
			return Const{Fn{ex.Name, args}.Eval(Nil{})}, true
		}
		return Fn{ex.Name, args}, changed

	case Extend:
		return Extend{Base: rec(ex.Base), A: ex.A, F: rec(ex.F)}, changed
	}
	return e, false
}

// Size counts operator nodes, so tests can assert that rewriting shrinks
// plans.
func Size(e Expr) int {
	switch ex := e.(type) {
	case Compose:
		return 1 + Size(ex.F) + Size(ex.G)
	case Map:
		return 1 + Size(ex.F)
	case FlatMap:
		return 1 + Size(ex.F)
	case Select:
		return 1 + Size(ex.Pred)
	case Union:
		return 1 + Size(ex.L) + Size(ex.R)
	case MkTuple:
		n := 1
		for _, f := range ex.Fields {
			n += Size(f)
		}
		return n
	case BinOp:
		return 1 + Size(ex.L) + Size(ex.R)
	case Cond:
		return 1 + Size(ex.If) + Size(ex.Then) + Size(ex.Else)
	case Fn:
		n := 1
		for _, a := range ex.Args {
			n += Size(a)
		}
		return n
	case Extend:
		return 1 + Size(ex.Base) + Size(ex.F)
	default:
		return 1
	}
}
