// Package monad implements the monad algebra of Appendix B — the
// theoretical foundation BRASIL compiles into ("the monad algebra ... a
// much more natural companion to MapReduce than the relational algebra",
// §4.2) — together with an evaluator, the classic rewrite rules, and the
// translation of BRASIL query scripts into algebra expressions. The
// package exists to *machine-check* the paper's claims: Theorem 1
// (weak-reference visibility ≡ replica-filter visibility) and Theorems 2–3
// (effect inversion), which the tests verify on randomized worlds.
//
// The data model is the standard nested one: numbers, booleans, tuples,
// sets (bags), plus the special NIL value of App. B ("the result of any
// query that is undefined on the input data"), which propagates through
// operations and is skipped by aggregates.
package monad

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a nested value.
type Value interface {
	value()
	String() string
}

// Num is a numeric atom.
type Num float64

// Bool is a boolean atom.
type Bool bool

// Nil is the undefined value: "values combined with NIL are NIL, and NIL
// elements in a set are ignored by aggregates."
type Nil struct{}

// Tuple is a record with named attributes.
type Tuple map[string]Value

// Set is a bag of values.
type Set []Value

func (Num) value()   {}
func (Bool) value()  {}
func (Nil) value()   {}
func (Tuple) value() {}
func (Set) value()   {}

// String implements fmt.Stringer.
func (n Num) String() string { return fmt.Sprintf("%g", float64(n)) }

// String implements fmt.Stringer.
func (b Bool) String() string { return fmt.Sprintf("%v", bool(b)) }

// String implements fmt.Stringer.
func (Nil) String() string { return "NIL" }

// String implements fmt.Stringer; attributes print in sorted order so
// string forms are canonical.
func (t Tuple) String() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('<')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", k, t[k])
	}
	b.WriteByte('>')
	return b.String()
}

// String implements fmt.Stringer; elements print sorted by their string
// form, giving a canonical representation for bag comparison.
func (s Set) String() string {
	elems := make([]string, len(s))
	for i, v := range s {
		elems[i] = v.String()
	}
	sort.Strings(elems)
	return "{" + strings.Join(elems, ";") + "}"
}

// IsNil reports whether v is NIL.
func IsNil(v Value) bool { _, ok := v.(Nil); return ok }

// Equal compares two values as bags (set order is irrelevant).
func Equal(a, b Value) bool { return a.String() == b.String() }

// Clone deep-copies a value.
func Clone(v Value) Value {
	switch x := v.(type) {
	case Tuple:
		out := make(Tuple, len(x))
		for k, e := range x {
			out[k] = Clone(e)
		}
		return out
	case Set:
		out := make(Set, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	default:
		return v
	}
}
