package cluster

import (
	"math"
	"sync"
	"testing"
)

func TestVClockBarrierTakesMax(t *testing.T) {
	c := NewVClock(3, CostModel{SecPerVisit: 1}) // zero barrier cost for exactness
	c.Charge(0, 1.0)
	c.Charge(1, 2.5)
	c.Charge(2, 0.5)
	if got := c.PeekNode(1); got != 2.5 {
		t.Errorf("PeekNode = %v", got)
	}
	d := c.Barrier()
	if d != 2.5 {
		t.Errorf("Barrier = %v, want max 2.5", d)
	}
	if c.Now() != 2.5 {
		t.Errorf("Now = %v", c.Now())
	}
	// Accumulators reset.
	if c.Barrier() != 0 {
		t.Error("second barrier should be zero")
	}
	// Negative / zero charges ignored.
	c.Charge(0, -5)
	if c.Barrier() != 0 {
		t.Error("negative charge affected clock")
	}
}

func TestVClockChargeHelpers(t *testing.T) {
	m := CostModel{SecPerVisit: 1, SecPerAgent: 10, SecPerByte: 100, SecPerMsg: 1000}
	c := NewVClock(1, m)
	c.ChargeCompute(0, 3, 2) // 3*1 + 2*10 = 23
	c.ChargeNetwork(0, 2, 5) // 5*100 + 2*1000 = 2500
	if d := c.Barrier(); d != 2523 {
		t.Errorf("Barrier = %v, want 2523", d)
	}
	if c.Model() != m {
		t.Error("Model accessor")
	}
}

func TestVClockLoadImbalanceCostsTime(t *testing.T) {
	// Balanced: 4 nodes × 1s work each per superstep → 1s per superstep.
	// Imbalanced: all 4s of work on one node → 4s per superstep.
	zero := CostModel{SecPerVisit: 1}
	bal := NewVClock(4, zero)
	imb := NewVClock(4, zero)
	for i := 0; i < 10; i++ {
		for n := 0; n < 4; n++ {
			bal.Charge(NodeID(n), 1)
		}
		imb.Charge(0, 4)
		bal.Barrier()
		imb.Barrier()
	}
	if bal.Now() >= imb.Now() {
		t.Errorf("balanced %v should beat imbalanced %v", bal.Now(), imb.Now())
	}
	if math.Abs(imb.Now()/bal.Now()-4) > 1e-9 {
		t.Errorf("imbalance ratio = %v, want 4", imb.Now()/bal.Now())
	}
}

func TestVClockConcurrentCharges(t *testing.T) {
	c := NewVClock(8, CostModel{SecPerVisit: 1})
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func(id NodeID) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Charge(id, 0.001)
			}
		}(NodeID(n))
	}
	wg.Wait()
	if d := c.Barrier(); math.Abs(d-1.0) > 1e-9 {
		t.Errorf("Barrier = %v, want 1.0", d)
	}
}

func TestFailurePlan(t *testing.T) {
	p := NewFailurePlan().CrashAt(5, 2).CrashAt(5, 3).CrashAt(9, 0)
	if p.Empty() {
		t.Error("plan with events reported empty")
	}
	if got := p.At(4); got != nil {
		t.Errorf("At(4) = %v", got)
	}
	got := p.At(5)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("At(5) = %v", got)
	}
	// Consumed: re-executing tick 5 after recovery must not crash again.
	if got := p.At(5); got != nil {
		t.Errorf("At(5) second call = %v", got)
	}
	p.At(9)
	if !p.Empty() {
		t.Error("plan should be empty after all events consumed")
	}
	var nilPlan *FailurePlan
	if nilPlan.At(1) != nil || !nilPlan.Empty() {
		t.Error("nil plan should be a no-op")
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.SecPerVisit <= 0 || m.SecPerAgent <= 0 || m.SecPerByte <= 0 || m.SecPerMsg <= 0 || m.SecPerBarrier <= 0 {
		t.Error("cost model must have positive coefficients")
	}
	// A barrier must cost real but sub-millisecond time.
	if m.SecPerBarrier < 10e-6 || m.SecPerBarrier > 1e-3 {
		t.Errorf("barrier cost %v implausible", m.SecPerBarrier)
	}
	// 1 GbE: a 1 MB transfer should cost around 8 ms.
	sec := 1e6 * m.SecPerByte
	if sec < 1e-3 || sec > 0.1 {
		t.Errorf("1MB transfer = %v s, implausible for 1GbE", sec)
	}
}
