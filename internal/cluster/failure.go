package cluster

// FailurePlan schedules worker crashes for fault-tolerance tests and the
// checkpointing ablation: node Node crashes at the start of tick Tick
// (0-based). The paper's prototype omitted checkpointing because failures
// were unlikely at 60-node scale (§5.1); we implement and exercise the
// design of §3.3 — coordinated epoch checkpoints, recovery by re-execution.
type FailurePlan struct {
	events map[uint64][]NodeID
}

// NewFailurePlan returns an empty plan (no failures).
func NewFailurePlan() *FailurePlan {
	return &FailurePlan{events: make(map[uint64][]NodeID)}
}

// CrashAt schedules node n to crash at the given tick.
func (p *FailurePlan) CrashAt(tick uint64, n NodeID) *FailurePlan {
	p.events[tick] = append(p.events[tick], n)
	return p
}

// At returns the nodes scheduled to crash at tick, and removes them from
// the plan so a re-executed tick (after recovery) does not crash again —
// matching the usual "fail once, recover, continue" test discipline.
func (p *FailurePlan) At(tick uint64) []NodeID {
	if p == nil || p.events == nil {
		return nil
	}
	ns := p.events[tick]
	delete(p.events, tick)
	return ns
}

// Empty reports whether no failures remain scheduled.
func (p *FailurePlan) Empty() bool { return p == nil || len(p.events) == 0 }
