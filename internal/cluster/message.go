package cluster

// Message is one payload in flight between tasks. On the in-memory
// transport payloads stay in memory and Bytes carries the size the payload
// would occupy on the wire, supplied by the sender (schemas know their
// encoded size), so the cost model can charge transfer time without
// serializing. On the TCP transport the payload is gob-encoded for real;
// Bytes still carries the schema-derived estimate so both transports meter
// identically.
type Message struct {
	From, To NodeID
	Tag      int // phase tag, lets a receiver sanity-check routing
	Payload  any
	Bytes    int
}
