package cluster

import (
	"fmt"
	"sync"
)

// Message is one payload in flight between tasks. Payloads stay in memory
// (this is a simulated network); Bytes carries the size the payload would
// occupy on the wire, supplied by the sender (schemas know their encoded
// size), so the cost model can charge transfer time without serializing.
type Message struct {
	From, To NodeID
	Tag      int // phase tag, lets a receiver sanity-check routing
	Payload  any
	Bytes    int
}

// Transport delivers messages between nodes of the simulated cluster and
// meters every delivery.
//
// The BRACE runtime is bulk-synchronous: a phase's sends all complete
// before any receiver drains its inbox, so Transport exposes phase-oriented
// Send/Drain rather than streaming channels. Send is safe for concurrent
// use by many sending nodes; Drain(n) must not race with sends to n (the
// runtime's barrier guarantees this).
type Transport struct {
	mu      sync.Mutex
	inbox   [][]Message
	metrics *Metrics
	failed  []bool
}

// NewTransport creates a transport connecting n nodes.
func NewTransport(n int) *Transport {
	return &Transport{
		inbox:   make([][]Message, n),
		metrics: NewMetrics(n),
		failed:  make([]bool, n),
	}
}

// N returns the number of nodes.
func (t *Transport) N() int { return len(t.inbox) }

// Send enqueues a message for the destination node. Sends to or from a
// failed node are dropped, mimicking a crashed worker; the runtime notices
// the failure at the next barrier.
func (t *Transport) Send(m Message) error {
	if m.To < 0 || int(m.To) >= len(t.inbox) {
		return fmt.Errorf("cluster: send to unknown node %d", m.To)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed[m.From] || t.failed[m.To] {
		return nil // silently lost, like a dead TCP peer
	}
	t.inbox[m.To] = append(t.inbox[m.To], m)
	t.metrics.recordSend(m.From, m.To, m.Bytes)
	return nil
}

// Drain removes and returns all messages queued for node n, in arrival
// order. Arrival order is deliberately *not* part of the runtime's
// semantics (the state-effect pattern makes reducers order-independent);
// tests shuffle drained batches to enforce that.
func (t *Transport) Drain(n NodeID) []Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	msgs := t.inbox[n]
	t.inbox[n] = nil
	return msgs
}

// Pending returns the number of queued messages for node n without
// removing them.
func (t *Transport) Pending(n NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inbox[n])
}

// Fail marks a node as crashed: its queued messages are discarded and all
// future traffic involving it is dropped until Recover.
func (t *Transport) Fail(n NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = true
	t.inbox[n] = nil
}

// Recover clears a node's failed status (after the master restores its
// state from a checkpoint).
func (t *Transport) Recover(n NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = false
}

// Failed reports whether node n is currently marked crashed.
func (t *Transport) Failed(n NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[n]
}

// Metrics returns the transport's traffic counters.
func (t *Transport) Metrics() *Metrics { return t.metrics }
