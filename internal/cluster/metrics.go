// Package cluster models the shared-nothing cluster BRACE runs on: node
// identities, message and traffic metering types, failure plans, and the
// virtual clock. The message-delivery mechanisms themselves (in-memory and
// TCP) live in internal/transport.
//
// The paper evaluates on 60 nodes of the Cornell Web Lab connected by
// 1 Gbit/s Ethernet. This reproduction defaults to a single machine, where
// the cluster is *simulated*: worker "nodes" are goroutines, the network is
// an in-memory metered transport, and — crucially for the scale-up figures —
// time is accounted by a virtual clock driven by a calibrated cost model
// rather than by wall-clock alone. Each node is charged for the compute
// work it actually performs (agents updated, index candidates visited) and
// for the bytes it ships to other nodes; a bulk-synchronous barrier then
// advances cluster time by the *maximum* charge across nodes, exactly the
// quantity that makes load imbalance visible in Figs. 7–8.
package cluster

import (
	"fmt"
	"sync"
)

// NodeID identifies a worker node in [0, N).
type NodeID int

// NodeMetrics counts traffic observed at one node. Local traffic is
// messages whose source and destination tasks are collocated on the same
// node and therefore bypass the network (§3.3 "Collocation of Tasks").
type NodeMetrics struct {
	SentMsgs   int64
	SentBytes  int64
	RecvMsgs   int64
	RecvBytes  int64
	LocalMsgs  int64
	LocalBytes int64
}

// Metrics aggregates per-node counters. It is safe for concurrent use.
type Metrics struct {
	mu   sync.Mutex
	node []NodeMetrics
}

// NewMetrics returns metrics for n nodes.
func NewMetrics(n int) *Metrics {
	return &Metrics{node: make([]NodeMetrics, n)}
}

// RecordSend meters one delivery from a sender's point of view. local
// marks collocated traffic that bypasses the network — same-node messages
// on the in-memory transport, same-process messages on the TCP transport
// (§3.3 "Collocation of Tasks"). Senders meter, receivers don't, so
// summing Totals across processes counts each delivery exactly once.
func (m *Metrics) RecordSend(from, to NodeID, bytes int, local bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if local {
		m.node[from].LocalMsgs++
		m.node[from].LocalBytes += int64(bytes)
		return
	}
	m.node[from].SentMsgs++
	m.node[from].SentBytes += int64(bytes)
	m.node[to].RecvMsgs++
	m.node[to].RecvBytes += int64(bytes)
}

// Node returns a copy of one node's counters.
func (m *Metrics) Node(id NodeID) NodeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node[id]
}

// Totals sums counters across nodes.
func (m *Metrics) Totals() NodeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t NodeMetrics
	for _, n := range m.node {
		t.SentMsgs += n.SentMsgs
		t.SentBytes += n.SentBytes
		t.RecvMsgs += n.RecvMsgs
		t.RecvBytes += n.RecvBytes
		t.LocalMsgs += n.LocalMsgs
		t.LocalBytes += n.LocalBytes
	}
	return t
}

// NetworkFraction returns the fraction of all message bytes that crossed
// the network (vs. delivered locally through collocation). The collocation
// ablation asserts this drops when map and reduce tasks share nodes.
func (m *Metrics) NetworkFraction() float64 {
	t := m.Totals()
	total := t.SentBytes + t.LocalBytes
	if total == 0 {
		return 0
	}
	return float64(t.SentBytes) / float64(total)
}

// String implements fmt.Stringer.
func (m *Metrics) String() string {
	t := m.Totals()
	return fmt.Sprintf("net: %d msgs / %d B, local: %d msgs / %d B",
		t.SentMsgs, t.SentBytes, t.LocalMsgs, t.LocalBytes)
}
