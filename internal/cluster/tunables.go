package cluster

import "time"

// Defaults for the shared tunables; exported so every CLI (bracesim,
// bracesim-worker, bracesimd) derives its flag help from the values
// actually in force, and tests assert against them.
const (
	DefaultHeartbeat           = 2 * time.Second
	DefaultHeartbeatMisses     = 5
	DefaultEpochTimeout        = 60 * time.Second
	DefaultDialTimeout         = 10 * time.Second
	DefaultCheckpointFullEvery = 8
	DefaultMaxRecoveries       = 8
)

// Tunables is the knob set shared by every layer that runs or hosts a
// simulation: the in-process engine, the distributed coordinator, and the
// bracesimd service all embed it, so a new knob (and its default) lands in
// exactly one place. Each layer reads the subset that applies to it — the
// engine ignores the network timeouts, a star-topology run ignores Mesh —
// and the zero value always means "use the default".
type Tunables struct {
	// EpochTicks is the master interaction interval (0 = engine default).
	EpochTicks int
	// CheckpointEveryEpochs orders a coordinated checkpoint every k epochs
	// (0 = only the initial tick-0 rollback point is kept).
	CheckpointEveryEpochs int
	// CheckpointFullEvery makes every Nth coordinated checkpoint a full
	// keyframe; the ones between ship field-level deltas against the
	// previous checkpoint. 1 ships full state every time; 0 means the
	// default (DefaultCheckpointFullEvery).
	CheckpointFullEvery int
	// CacheSkin tunes the Verlet query cache (KD-tree index with bounded
	// visibility only): 0 auto-tunes per partition from observed per-tick
	// displacement, a negative value disables the cached path, a positive
	// value is the skin radius used verbatim. Semantics-preserving in all
	// modes — see engine.Options for the full contract.
	CacheSkin float64
	// Heartbeat is the coordinator's liveness ping interval. 0 means the
	// default (DefaultHeartbeat); negative disables heartbeats.
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive silent intervals declare a
	// worker dead (0 = DefaultHeartbeatMisses). The product
	// Heartbeat×HeartbeatMisses is the detection window.
	HeartbeatMisses int
	// EpochTimeout bounds every control-plane round and, via observed
	// marker progress, the gap between barriers. 0 selects adaptive
	// deadlines floored at DefaultEpochTimeout; an explicit positive value
	// is a fixed deadline; negative disables the deadline.
	EpochTimeout time.Duration
	// DialTimeout bounds dialing + handshaking each worker (0 =
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// RejoinTimeout bounds the re-dial + handshake when re-admitting a
	// dead worker. It defaults to DialTimeout: a daemon healthy enough
	// for the initial dial deserves the same budget to rejoin.
	RejoinTimeout time.Duration
	// MaxRecoveries bounds failure recoveries per run (0 = default):
	// a worker that keeps dying at the same replayed point must
	// eventually fail the run instead of looping forever.
	MaxRecoveries int
	// Mesh routes data-plane envelope traffic directly between worker
	// peers instead of relaying it through the coordinator hub; control
	// frames (stats, directives, checkpoints, pings) stay on the star.
	// Peer pairs that cannot reach each other fall back to the hub relay,
	// so the switch changes topology, never results.
	Mesh bool
}
