package cluster

import "sync"

// CostModel converts work counters into virtual seconds. The defaults are
// calibrated to commodity 2010-era hardware (2.66 GHz Xeon, 1 GbE), the
// Cornell Web Lab configuration of the paper, so that throughput magnitudes
// land in the paper's range (millions of agent-ticks per second per node
// for cheap models).
type CostModel struct {
	// SecPerVisit charges each candidate agent examined during the query
	// phase (index probes), the dominant compute term.
	SecPerVisit float64
	// SecPerAgent charges per owned agent per tick for map/update work and
	// per-agent fixed overheads.
	SecPerAgent float64
	// SecPerByte charges network transfer (1 GbE ≈ 125 MB/s payload).
	SecPerByte float64
	// SecPerMsg charges fixed per-message latency/processing.
	SecPerMsg float64
	// SecPerBarrier charges each bulk-synchronous barrier — the fixed
	// cost of one communication phase (task dispatch + synchronization).
	// Eliminating one reduce pass per tick via effect inversion saves
	// exactly one barrier plus its traffic, which is what Fig. 5 measures.
	SecPerBarrier float64
}

// DefaultCostModel returns the calibration used by the experiment harness.
func DefaultCostModel() CostModel {
	return CostModel{
		SecPerVisit:   120e-9, // ~320 cycles of model math per candidate
		SecPerAgent:   250e-9, // per-agent bookkeeping + update rule
		SecPerByte:    8e-9,   // 1 Gbit/s
		SecPerMsg:     40e-6,  // switch + stack latency per batch
		SecPerBarrier: 150e-6, // MPI-style barrier at tens of nodes
	}
}

// VClock is the cluster's bulk-synchronous virtual clock. During a
// superstep each node accumulates charge; Barrier advances the cluster time
// by the maximum node charge (all nodes wait for the slowest — the BSP
// model that makes load imbalance cost wall time) and resets the per-node
// accumulators.
type VClock struct {
	mu    sync.Mutex
	node  []float64
	now   float64
	model CostModel
}

// NewVClock creates a clock for n nodes with the given cost model.
func NewVClock(n int, m CostModel) *VClock {
	return &VClock{node: make([]float64, n), model: m}
}

// Model returns the cost model.
func (c *VClock) Model() CostModel { return c.model }

// Charge adds dt virtual seconds to node n's current superstep.
func (c *VClock) Charge(n NodeID, dt float64) {
	if dt <= 0 {
		return
	}
	c.mu.Lock()
	c.node[n] += dt
	c.mu.Unlock()
}

// ChargeCompute charges node n for visiting `visited` index candidates and
// updating `agents` agents.
func (c *VClock) ChargeCompute(n NodeID, visited, agents int64) {
	c.Charge(n, float64(visited)*c.model.SecPerVisit+float64(agents)*c.model.SecPerAgent)
}

// ChargeNetwork charges node n for sending msgs messages totaling the given
// bytes across the network. Collocated (local) deliveries cost nothing.
func (c *VClock) ChargeNetwork(n NodeID, msgs, bytes int64) {
	c.Charge(n, float64(bytes)*c.model.SecPerByte+float64(msgs)*c.model.SecPerMsg)
}

// Barrier ends the superstep: cluster time advances by the maximum per-node
// charge plus the fixed barrier cost; accumulators reset. It returns the
// superstep's duration.
func (c *VClock) Barrier() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max float64
	for i, v := range c.node {
		if v > max {
			max = v
		}
		c.node[i] = 0
	}
	d := max + c.model.SecPerBarrier
	c.now += d
	return d
}

// Now returns the cluster virtual time in seconds.
func (c *VClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// PeekNode returns node n's accumulated charge in the current superstep,
// for load statistics sampling before a barrier.
func (c *VClock) PeekNode(n NodeID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node[n]
}
