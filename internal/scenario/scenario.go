// Package scenario is BRACE's workload registry. The paper evaluates
// three behaviors (fish school, traffic, predator); the registry makes
// "one more scenario" a one-file change: a workload registers its name,
// description, parameter defaults, population builder and effect-locality
// flag once, and every tool — cmd/bracesim, cmd/experiments, the
// benchmark sweep and the cross-engine equivalence tests — picks it up
// automatically.
//
// The effect-locality flag drives the engine-equivalence oracle that is
// this codebase's core correctness claim: scenarios whose query phase
// assigns effects only to self (LocalOnly) must produce *bit-identical*
// state on the sequential and distributed engines at any worker count;
// scenarios with non-local assignments agree exactly at one worker and up
// to floating-point reassociation of the global ⊕ fold beyond that
// (bounded by Tolerance).
package scenario

import (
	"fmt"
	"sync"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/detutil"
	"github.com/bigreddata/brace/internal/engine"
)

// Config sizes one scenario instance. Zero values select the spec's
// defaults, so Config{Seed: s} is always valid.
type Config struct {
	// Agents is the requested population size. Scenarios that derive
	// their population from geometry (traffic: density × length) treat it
	// as a hint and may ignore it.
	Agents int
	// Seed drives population placement (and, via the engine, all
	// simulation randomness).
	Seed uint64
	// Extent is the scenario's spatial size knob: segment length for
	// traffic, world radius for free-space models, the long room side for
	// evacuation.
	Extent float64
}

// Spec is one registered workload.
type Spec struct {
	// Name is the registry key (what bracesim -model takes).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Defaults holds the scenario's parameter struct (fish.Params etc.),
	// for display; Build re-derives it from Config, so mutating this copy
	// has no effect.
	Defaults any
	// DefaultAgents is the population used when Config.Agents is zero
	// (informational for scenarios that derive population from Extent).
	DefaultAgents int
	// DefaultExtent is the spatial size used when Config.Extent is zero.
	DefaultExtent float64
	// LocalOnly reports that every effect assignment targets self, i.e.
	// the engines must agree bit-for-bit at any worker count.
	LocalOnly bool
	// Tolerance bounds cross-engine state divergence for non-local
	// scenarios at >1 workers (ignored when LocalOnly).
	Tolerance float64
	// Build constructs the model and its initial population. cfg arrives
	// normalized: Agents and Extent are never zero.
	Build func(cfg Config) (engine.Model, []*agent.Agent, error)
}

// normalize fills cfg's zero fields from the spec's defaults.
func (sp Spec) normalize(cfg Config) Config {
	if cfg.Agents <= 0 {
		cfg.Agents = sp.DefaultAgents
	}
	if cfg.Extent <= 0 {
		cfg.Extent = sp.DefaultExtent
	}
	return cfg
}

// New builds the scenario's model and population with defaults applied.
func (sp Spec) New(cfg Config) (engine.Model, []*agent.Agent, error) {
	m, pop, err := sp.Build(sp.normalize(cfg))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	return m, pop, nil
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Spec)
)

// Register adds a scenario to the registry. It panics on an empty name, a
// duplicate, or a nil builder — registration happens in package init,
// where a bad spec is a programming error.
func Register(sp Spec) {
	if sp.Name == "" {
		panic("scenario: Register with empty name")
	}
	if sp.Build == nil {
		panic(fmt.Sprintf("scenario: %s has no Build function", sp.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[sp.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", sp.Name))
	}
	registry[sp.Name] = sp
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	sp, ok := registry[name]
	return sp, ok
}

// All returns every registered scenario, sorted by name.
func All() []Spec {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, name := range detutil.SortedKeys(registry) {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the sorted registry keys.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, sp := range all {
		names[i] = sp.Name
	}
	return names
}

// ErrUnknown builds the standard unknown-scenario error, listing what is
// available so CLI users can self-serve.
func ErrUnknown(name string) error {
	return fmt.Errorf("unknown scenario %q (registered: %v)", name, Names())
}
