package scenario

// The built-in workloads: the paper's three evaluation behaviors (fish,
// traffic, predator — §5.1, App. C) plus the epidemic and evacuation
// scenarios this reproduction adds. Each registration is the *only* place
// a workload is wired up; every tool enumerates the registry.

import (
	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/sim/epidemic"
	"github.com/bigreddata/brace/internal/sim/evacuate"
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/sim/predator"
	"github.com/bigreddata/brace/internal/sim/traffic"
)

func init() {
	Register(Spec{
		Name:          "fish",
		Description:   "Couzin fish school: avoidance/attraction/alignment with informed leaders",
		Defaults:      fish.DefaultParams(),
		DefaultAgents: 5000,
		DefaultExtent: fish.DefaultParams().SchoolRadius,
		LocalOnly:     true,
		Build: func(cfg Config) (engine.Model, []*agent.Agent, error) {
			p := fish.DefaultParams()
			p.SchoolRadius = cfg.Extent
			m := fish.NewModel(p)
			return m, m.NewPopulation(cfg.Agents, cfg.Seed), nil
		},
	})

	Register(Spec{
		Name:          "traffic",
		Description:   "MITSIM highway: lane-changing and car-following drivers on a linear segment",
		Defaults:      traffic.DefaultParams(20000),
		DefaultAgents: traffic.DefaultParams(20000).Vehicles(),
		DefaultExtent: 20000,
		LocalOnly:     true,
		Build: func(cfg Config) (engine.Model, []*agent.Agent, error) {
			// Population follows from density × length × lanes; Agents is
			// ignored by design (constant-density inflow is the workload).
			m := traffic.NewModel(traffic.DefaultParams(cfg.Extent))
			return m, m.NewPopulation(cfg.Seed), nil
		},
	})

	pp := predator.DefaultParams()
	Register(Spec{
		Name:          "predator",
		Description:   "predator fish: bite/spawn dynamics with non-local hurt effects (2 reduce passes)",
		Defaults:      pp,
		DefaultAgents: 4000,
		DefaultExtent: pp.WorldRadius,
		LocalOnly:     false,
		Tolerance:     1e-7,
		Build:         buildPredator(false),
	})
	Register(Spec{
		Name:          "predator-inv",
		Description:   "predator fish, effect-inverted: victims collect bites locally (1 reduce pass)",
		Defaults:      pp,
		DefaultAgents: 4000,
		DefaultExtent: pp.WorldRadius,
		LocalOnly:     true,
		Build:         buildPredator(true),
	})

	Register(Spec{
		Name:          "epidemic",
		Description:   "spatial SIR epidemic: exposure spreads through the visible region as a local effect",
		Defaults:      epidemic.DefaultParams(),
		DefaultAgents: 4000,
		DefaultExtent: epidemic.DefaultParams().WorldRadius,
		LocalOnly:     true,
		Build: func(cfg Config) (engine.Model, []*agent.Agent, error) {
			p := epidemic.DefaultParams()
			p.WorldRadius = cfg.Extent
			m := epidemic.NewModel(p)
			return m, m.NewPopulation(cfg.Agents, cfg.Seed), nil
		},
	})

	Register(Spec{
		Name:          "evacuate",
		Description:   "crowd evacuation: social-force repulsion plus exit seeking; population drains",
		Defaults:      evacuate.DefaultParams(),
		DefaultAgents: 2000,
		DefaultExtent: evacuate.DefaultParams().Width,
		LocalOnly:     true,
		Build: func(cfg Config) (engine.Model, []*agent.Agent, error) {
			p := evacuate.DefaultParams()
			// Scale the room geometry to the requested extent, preserving
			// aspect ratio, keeping the exits on the side walls at
			// mid-height, and shrinking the capture radius with the room so
			// tiny extents don't let the exit discs swallow the floor.
			scale := cfg.Extent / p.Width
			p.Width *= scale
			p.Height *= scale
			p.ExitRadius *= scale
			for i, e := range p.Exits {
				p.Exits[i] = geom.V(e.X*scale, e.Y*scale)
			}
			m := evacuate.NewModel(p)
			return m, m.NewPopulation(cfg.Agents, cfg.Seed), nil
		},
	})
}

func buildPredator(inverted bool) func(Config) (engine.Model, []*agent.Agent, error) {
	return func(cfg Config) (engine.Model, []*agent.Agent, error) {
		p := predator.DefaultParams()
		p.WorldRadius = cfg.Extent
		m := predator.NewModel(p, inverted)
		return m, m.NewPopulation(cfg.Agents, cfg.Seed), nil
	}
}
