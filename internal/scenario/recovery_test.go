package scenario

import (
	"testing"

	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// TestRecoveryBitIdenticalOnNewScenarios extends the checkpoint/recovery
// coverage to the workloads this reproduction added: epidemic and evacuate
// must roll back to the last coordinated checkpoint after a mid-run worker
// crash and re-execute to *bit-identical* final state — the §3.3 recovery
// discipline is scenario-independent, and only the original workloads
// exercised it before.
func TestRecoveryBitIdenticalOnNewScenarios(t *testing.T) {
	const (
		workers    = 4
		ticks      = 20
		epochTicks = 5
		crashTick  = 12 // between the tick-10 and tick-15 checkpoints
	)
	for _, name := range []string{"epidemic", "evacuate"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sp, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			mkrun := func(failures *cluster.FailurePlan) *engine.Distributed {
				t.Helper()
				m, pop, err := sp.New(testConfig(sp, 13))
				if err != nil {
					t.Fatal(err)
				}
				e, err := engine.NewDistributed(m, pop, engine.Options{
					Workers: workers, Index: spatial.KindKDTree, Seed: 13,
					Tunables: engine.Tunables{EpochTicks: epochTicks, CheckpointEveryEpochs: 1},
					Failures: failures,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				return e
			}

			ref := mkrun(nil)
			faulty := mkrun(cluster.NewFailurePlan().CrashAt(crashTick, 2))

			if got := faulty.Runtime().Recoveries(); got < 1 {
				t.Fatalf("expected at least one recovery, got %d", got)
			}
			if faulty.Tick() != ticks {
				t.Fatalf("faulty run stopped at tick %d", faulty.Tick())
			}
			a, b := ref.Agents(), faulty.Agents()
			if len(a) == 0 {
				t.Fatal("population died out; test config mis-tuned")
			}
			assertExact(t, name+"/recovery", 13, workers, a, b)
		})
	}
}

// A crash that wipes a worker's memory before the first periodic
// checkpoint must still recover — the runtime always holds a tick-0
// rollback point.
func TestRecoveryFromInitialCheckpoint(t *testing.T) {
	sp, ok := Lookup("epidemic")
	if !ok {
		t.Fatal("epidemic not registered")
	}
	m, pop, err := sp.New(testConfig(sp, 29))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewDistributed(m, pop, engine.Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 29,
		Tunables: engine.Tunables{EpochTicks: 4},
		// No periodic checkpoints: recovery must rewind to tick 0.
		Failures: cluster.NewFailurePlan().CrashAt(2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	if e.Runtime().Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", e.Runtime().Recoveries())
	}

	m2, pop2, err := sp.New(testConfig(sp, 29))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.NewDistributed(m2, pop2, engine.Options{
		Workers: 3, Index: spatial.KindKDTree, Seed: 29, Tunables: engine.Tunables{EpochTicks: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	assertExact(t, "epidemic/tick0-recovery", 29, 3, ref.Agents(), e.Agents())
}
