package scenario

import (
	"encoding/gob"

	"github.com/bigreddata/brace/internal/engine"
)

// Wire registration lives with the registry so that *every* registered
// workload is wire-ready by construction: engine envelopes travel inside
// interface-typed fields — cluster.Message.Payload holds a []*Envelope
// batch on the TCP transport, transport.FinalReport.Values carries a
// worker's final owned envelopes, and disk checkpoints gob worker
// memories — and gob can only decode interface values whose concrete type
// was registered in the process. Any binary that links the registry
// (coordinator, worker daemon, tests) gets the registrations for free.
func init() {
	gob.Register(&engine.Envelope{})
	gob.Register([]*engine.Envelope{})
}
