package scenario

import (
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// TestColumnarEquivalence is the struct-of-arrays analogue of
// TestCrossEngineEquivalence: for every registered scenario, the columnar
// query path (the default for local-effect models that implement
// engine.ColumnarModel) must compute bit-identical state to the classic
// per-agent Env path, on the sequential engine and on the distributed
// engine at 1, 2 and 8 workers. The columnar path is a pure layout
// optimization — any divergence, even one ulp, is a bug.
func TestColumnarEquivalence(t *testing.T) {
	const ticks = 10
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			for _, seed := range []uint64{3, 17} {
				m, base, err := sp.New(testConfig(sp, seed))
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := m.(engine.ColumnarModel); !ok {
					t.Skipf("%s does not implement ColumnarModel", sp.Name)
				}

				ref, err := engine.NewSequential(m, clonePop(base), spatial.KindKDTree, seed)
				if err != nil {
					t.Fatal(err)
				}
				ref.DisableColumnar()
				col, err := engine.NewSequential(m, clonePop(base), spatial.KindKDTree, seed)
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if err := col.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if len(ref.Agents()) == 0 {
					t.Fatalf("seed %d: population died out; test config mis-tuned", seed)
				}
				assertExact(t, sp.Name+"/seq", seed, 0, ref.Agents(), col.Agents())

				for _, workers := range []int{1, 2, 8} {
					run := func(noColumnar bool) []*agent.Agent {
						t.Helper()
						e, err := engine.NewDistributed(m, clonePop(base), engine.Options{
							Workers: workers, Index: spatial.KindKDTree, Seed: seed,
							NoColumnar: noColumnar,
						})
						if err != nil {
							t.Fatal(err)
						}
						if err := e.RunTicks(ticks); err != nil {
							t.Fatal(err)
						}
						return e.Agents()
					}
					assertExact(t, sp.Name+"/dist", seed, workers, run(true), run(false))
				}
			}
		})
	}
}

// TestFishTickSteadyStateAllocs pins the columnar tick's allocation
// behavior: once buffers have warmed up, a fish tick on the sequential
// engine allocates (near) nothing — the columns, candidate lists, probe
// scratch and update context are all reused. Parallelism is forced to 1
// so the worker pool cannot contribute scheduling allocations; the
// measured window sits strictly between Morton repack epochs (tick 16 to
// tick 48 with packInterval 64), so the repack's arena is excluded too.
func TestFishTickSteadyStateAllocs(t *testing.T) {
	old := spatial.Parallelism()
	spatial.SetParallelism(1)
	defer spatial.SetParallelism(old)

	sp, ok := Lookup("fish")
	if !ok {
		t.Fatal("fish not registered")
	}
	m, pop, err := sp.New(Config{Agents: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewSequential(m, pop, spatial.KindKDTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTicks(16); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(32, func() {
		if err := e.RunTicks(1); err != nil {
			t.Fatal(err)
		}
	})
	// The bound leaves headroom for amortized Verlet-list growth (a list
	// append can still cross a capacity boundary as the school spreads)
	// while catching any per-agent or per-probe regression: 500 agents
	// would blow straight past it.
	if avg > 16 {
		t.Errorf("steady-state fish tick allocates %.1f times/op, want ≤ 16", avg)
	}
}

// TestColumnarEquivalenceLoadBalanceAndRecovery runs the same ablation
// through the two dataflows that restructure a run mid-flight: the 1-D
// load balancer (repartitioning at epoch barriers) and checkpoint
// recovery after a worker crash. Both must stay bit-identical with the
// columnar path on or off.
func TestColumnarEquivalenceLoadBalanceAndRecovery(t *testing.T) {
	const (
		workers    = 4
		ticks      = 20
		epochTicks = 5
		crashTick  = 12
		seed       = 13
	)
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			m, _, err := sp.New(testConfig(sp, seed))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := m.(engine.ColumnarModel); !ok {
				t.Skipf("%s does not implement ColumnarModel", sp.Name)
			}
			run := func(noColumnar, lb bool, failures *cluster.FailurePlan) []*agent.Agent {
				t.Helper()
				m, pop, err := sp.New(testConfig(sp, seed))
				if err != nil {
					t.Fatal(err)
				}
				e, err := engine.NewDistributed(m, pop, engine.Options{
					Workers: workers, Index: spatial.KindKDTree, Seed: seed,
					Tunables:    engine.Tunables{EpochTicks: epochTicks, CheckpointEveryEpochs: 1},
					LoadBalance: lb,
					Failures:    failures,
					NoColumnar:  noColumnar,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if failures != nil && e.Runtime().Recoveries() < 1 {
					t.Fatalf("expected at least one recovery, got %d", e.Runtime().Recoveries())
				}
				return e.Agents()
			}

			lbRef := run(true, true, nil)
			lbCol := run(false, true, nil)
			if len(lbRef) == 0 {
				t.Fatal("population died out; test config mis-tuned")
			}
			assertExact(t, sp.Name+"/lb", seed, workers, lbRef, lbCol)

			recRef := run(true, false, cluster.NewFailurePlan().CrashAt(crashTick, 2))
			recCol := run(false, false, cluster.NewFailurePlan().CrashAt(crashTick, 2))
			assertExact(t, sp.Name+"/recovery", seed, workers, recRef, recCol)
		})
	}
}
