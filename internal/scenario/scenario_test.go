package scenario

import (
	"math"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

func TestRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{"fish", "traffic", "predator", "predator-inv", "epidemic", "evacuate"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("builtin scenario %q not registered", name)
		}
	}
	if len(All()) < 5 {
		t.Fatalf("registry has %d scenarios, want ≥ 5", len(All()))
	}
}

func TestAllSortedAndNamesMatch(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All/Names length mismatch: %d vs %d", len(all), len(names))
	}
	for i, sp := range all {
		if sp.Name != names[i] {
			t.Errorf("All[%d].Name = %q, Names[%d] = %q", i, sp.Name, i, names[i])
		}
		if i > 0 && all[i-1].Name >= sp.Name {
			t.Errorf("All not sorted: %q before %q", all[i-1].Name, sp.Name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	err := ErrUnknown("no-such-scenario")
	if !strings.Contains(err.Error(), "no-such-scenario") || !strings.Contains(err.Error(), "fish") {
		t.Errorf("ErrUnknown message unhelpful: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, sp Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(sp)
	}
	ok := Spec{Name: "tmp-valid", Build: func(Config) (engine.Model, []*agent.Agent, error) { return nil, nil, nil }}
	mustPanic("empty name", Spec{Build: ok.Build})
	mustPanic("nil build", Spec{Name: "tmp-nil-build"})
	mustPanic("duplicate", Spec{Name: "fish", Build: ok.Build})
}

func TestDefaultsApplied(t *testing.T) {
	for _, sp := range All() {
		m, pop, err := sp.New(Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if m == nil || m.Schema() == nil {
			t.Fatalf("%s: nil model/schema", sp.Name)
		}
		if err := m.Schema().Validate(); err != nil {
			t.Fatalf("%s: invalid schema: %v", sp.Name, err)
		}
		if len(pop) == 0 {
			t.Fatalf("%s: empty default population", sp.Name)
		}
		if sp.Description == "" {
			t.Errorf("%s: missing description", sp.Name)
		}
	}
}

// testConfig sizes a scenario down so the equivalence sweep stays fast.
// Traffic derives its population from Extent (density × length × lanes);
// everything else honors Agents.
func testConfig(sp Spec, seed uint64) Config {
	cfg := Config{Agents: 96, Extent: 30, Seed: seed}
	if sp.Name == "traffic" {
		cfg.Extent = 1800 // ≈ 115 vehicles at default density
	}
	return cfg
}

func clonePop(pop []*agent.Agent) []*agent.Agent {
	out := make([]*agent.Agent, len(pop))
	for i, a := range pop {
		out[i] = a.Clone()
	}
	return out
}

// TestCrossEngineEquivalence is the registry-driven form of this
// codebase's core correctness claim: every registered scenario computes
// the same simulation on the sequential reference engine and on the
// distributed MapReduce engine at any worker count — bit-identically for
// local-effect scenarios, and within the spec's tolerance for non-local
// ones at >1 workers (the global ⊕ fold reassociates floating point).
func TestCrossEngineEquivalence(t *testing.T) {
	const ticks = 10
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			for _, seed := range []uint64{3, 17} {
				m, base, err := sp.New(testConfig(sp, seed))
				if err != nil {
					t.Fatal(err)
				}
				seq, err := engine.NewSequential(m, clonePop(base), spatial.KindKDTree, seed)
				if err != nil {
					t.Fatal(err)
				}
				if err := seq.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if len(seq.Agents()) == 0 {
					t.Fatalf("seed %d: population died out; test config mis-tuned", seed)
				}
				for _, workers := range []int{1, 2, 8} {
					dist, err := engine.NewDistributed(m, clonePop(base), engine.Options{
						Workers: workers, Index: spatial.KindKDTree, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := dist.RunTicks(ticks); err != nil {
						t.Fatal(err)
					}
					if sp.LocalOnly || workers == 1 {
						assertExact(t, sp.Name, seed, workers, seq.Agents(), dist.Agents())
					} else {
						assertApprox(t, sp.Name, seed, workers, seq.Agents(), dist.Agents(), sp.Tolerance)
					}
				}
			}
		})
	}
}

func assertExact(t *testing.T, name string, seed uint64, workers int, a, b []*agent.Agent) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s seed=%d workers=%d: population sizes differ: %d vs %d",
			name, seed, workers, len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("%s seed=%d workers=%d: agent %d differs:\n  seq:  %v\n  dist: %v",
				name, seed, workers, a[i].ID, a[i], b[i])
		}
	}
}

func assertApprox(t *testing.T, name string, seed uint64, workers int, a, b []*agent.Agent, tol float64) {
	t.Helper()
	if tol <= 0 {
		t.Fatalf("%s: non-local scenario must declare a positive Tolerance", name)
	}
	if len(a) != len(b) {
		t.Fatalf("%s seed=%d workers=%d: population sizes differ: %d vs %d",
			name, seed, workers, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("%s seed=%d workers=%d: agent ID mismatch at %d: %d vs %d",
				name, seed, workers, i, a[i].ID, b[i].ID)
		}
		for j := range a[i].State {
			if d := math.Abs(a[i].State[j] - b[i].State[j]); d > tol {
				t.Fatalf("%s seed=%d workers=%d: agent %d state[%d]: %v vs %v (Δ%g > %g)",
					name, seed, workers, a[i].ID, j, a[i].State[j], b[i].State[j], d, tol)
			}
		}
	}
}

// TestDistributedDeterminismAcrossIndexes spot-checks that the index
// structure never changes scenario semantics: for every registered
// scenario, scan and KD-tree runs agree bit-for-bit.
func TestDistributedDeterminismAcrossIndexes(t *testing.T) {
	const ticks = 6
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			m, base, err := sp.New(testConfig(sp, 9))
			if err != nil {
				t.Fatal(err)
			}
			var ref []*agent.Agent
			for i, kind := range []spatial.Kind{spatial.KindScan, spatial.KindKDTree} {
				e, err := engine.NewDistributed(m, clonePop(base), engine.Options{
					Workers: 3, Index: kind, Seed: 9,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					ref = e.Agents()
				} else {
					assertExact(t, sp.Name+"/"+kind.String(), 9, 3, ref, e.Agents())
				}
			}
		})
	}
}
