package scenario

import (
	"testing"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/spatial"
)

// TestCachedQueryEquivalence asserts the Verlet query cache is
// semantics-preserving for every registered scenario: the cached engines
// (the default) compute bit-identical state to explicitly uncached ones,
// on the sequential engine and on the distributed engine at 1, 2 and 8
// workers. Sequential comparisons are exact even for non-local scenarios
// (one process, one fold order); distributed comparisons pin cached vs
// uncached at the *same* worker count, where the fold grouping is
// identical, so they are exact for every scenario too.
func TestCachedQueryEquivalence(t *testing.T) {
	const ticks = 12
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			for _, seed := range []uint64{3, 17} {
				m, base, err := sp.New(testConfig(sp, seed))
				if err != nil {
					t.Fatal(err)
				}

				plain, err := engine.NewSequentialCache(m, clonePop(base), spatial.KindKDTree, seed, -1)
				if err != nil {
					t.Fatal(err)
				}
				cached, err := engine.NewSequentialCache(m, clonePop(base), spatial.KindKDTree, seed, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := plain.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				if err := cached.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				assertExact(t, sp.Name+"/seq-cached", seed, 1, plain.Agents(), cached.Agents())

				for _, workers := range []int{1, 2, 8} {
					dPlain, err := engine.NewDistributed(m, clonePop(base), engine.Options{
						Workers: workers, Index: spatial.KindKDTree, Seed: seed, Tunables: engine.Tunables{CacheSkin: -1},
					})
					if err != nil {
						t.Fatal(err)
					}
					dCached, err := engine.NewDistributed(m, clonePop(base), engine.Options{
						Workers: workers, Index: spatial.KindKDTree, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := dPlain.RunTicks(ticks); err != nil {
						t.Fatal(err)
					}
					if err := dCached.RunTicks(ticks); err != nil {
						t.Fatal(err)
					}
					assertExact(t, sp.Name+"/dist-cached", seed, workers, dPlain.Agents(), dCached.Agents())
				}
			}
		})
	}
}

// TestCachedEquivalenceUnderLoadBalance pins the epoch-barrier
// invalidation contract where it matters most: with the load balancer on,
// the balancer's inputs (candidates-visited counters) differ between
// cached and uncached runs, so partitionings may diverge — but for
// local-effect scenarios state must not, because partitioning never
// changes results. Runs long enough to cross several epoch boundaries and
// rebalances.
func TestCachedEquivalenceUnderLoadBalance(t *testing.T) {
	const ticks = 30
	for _, sp := range All() {
		if !sp.LocalOnly {
			continue
		}
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			m, base, err := sp.New(testConfig(sp, 11))
			if err != nil {
				t.Fatal(err)
			}
			run := func(skin float64) *engine.Distributed {
				e, err := engine.NewDistributed(m, clonePop(base), engine.Options{
					Workers: 4, Index: spatial.KindKDTree, Seed: 11,
					LoadBalance: true, Tunables: engine.Tunables{EpochTicks: 5, CacheSkin: skin},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.RunTicks(ticks); err != nil {
					t.Fatal(err)
				}
				return e
			}
			plain := run(-1)
			cached := run(0)
			assertExact(t, sp.Name+"/lb-cached", 11, 4, plain.Agents(), cached.Agents())
		})
	}
}
