// Package sim exercises globalrand inside a deterministic package.
package sim

import "math/rand"

func Flagged() float64 {
	x := rand.Float64()                // want "draws from the process-global rand source"
	n := rand.Intn(10)                 // want "draws from the process-global rand source"
	rand.Shuffle(n, func(i, j int) {}) // want "draws from the process-global rand source"
	return x
}

func SeededIsFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + float64(rng.Intn(10))
}

func Annotated() int {
	return rand.Int() //bracevet:allow globalrand jitter for a retry backoff; never reaches simulation state
}

func AllowedWithoutReason() int {
	//bracevet:allow globalrand
	return rand.Int() // want "missing its required reason"
}
