// Package tools is outside the deterministic set; the global source is
// tolerated here.
package tools

import "math/rand"

func Jitter() int {
	return rand.Intn(100)
}
