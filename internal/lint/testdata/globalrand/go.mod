module example.com/globalrand

go 1.21
