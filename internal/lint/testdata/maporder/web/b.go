// Package web is outside the deterministic set: map ranges are fine here.
package web

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
