// Package engine exercises maporder inside a deterministic package.
package engine

func Flagged(m map[string]int) int {
	total := 0
	for k, v := range m { // want "range over map"
		total += len(k) + v
	}
	type state map[int]bool
	s := state{1: true}
	for k := range s { // want "range over map"
		total += k
	}
	return total
}

func AllowedWithReason(m map[string]int) int {
	total := 0
	for _, v := range m { //bracevet:allow maporder commutative sum; order unobservable
		total += v
	}
	//bracevet:allow maporder annotation on the line above also suppresses
	for _, v := range m {
		total += v
	}
	return total
}

func AllowedWithoutReason(m map[string]int) int {
	total := 0
	//bracevet:allow maporder
	for _, v := range m { // want "missing its required reason"
		total += v
	}
	return total
}

func NotAMap(xs []int, s string, ch chan int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	for range s {
		total++
	}
	for v := range ch {
		total += v
	}
	return total
}
