module example.com/maporder

go 1.21
