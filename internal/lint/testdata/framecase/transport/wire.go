// Package transport declares a miniature frame discriminator mirroring
// the real wire protocol's FrameKind.
package transport

type FrameKind uint8

const (
	FrameHello FrameKind = iota + 1
	FrameData
	FrameEndPhase
	FramePing
)

// NotAFrame is an unrelated named type switches may range over freely.
type NotAFrame uint8

const (
	NotA NotAFrame = iota
	NotB
)
