// Package engine exercises framecase: switches over the transport frame
// discriminator must be exhaustive or fail loudly in default.
package engine

import (
	"errors"

	"example.com/framecase/transport"
)

func NonExhaustiveNoDefault(k transport.FrameKind) int {
	switch k { // want "not exhaustive"
	case transport.FrameHello:
		return 1
	case transport.FrameData:
		return 2
	}
	return 0
}

func SilentDefaultBareReturn(k transport.FrameKind) {
	switch k {
	case transport.FrameHello:
		work()
	default: // want "silently drops"
		return
	}
}

func SilentDefaultLoop(ks []transport.FrameKind) {
	for _, k := range ks {
		switch k {
		case transport.FrameData:
			work()
		default: // want "silently drops"
			continue
		}
	}
}

func Exhaustive(k transport.FrameKind) int {
	switch k {
	case transport.FrameHello:
		return 1
	case transport.FrameData, transport.FrameEndPhase:
		return 2
	case transport.FramePing:
		return 3
	}
	return 0
}

func LoudDefault(k transport.FrameKind) error {
	switch k {
	case transport.FrameHello:
		return nil
	default:
		return errors.New("unexpected frame kind")
	}
}

func AnnotatedSilent(k transport.FrameKind) {
	switch k {
	case transport.FrameHello:
		work()
	//bracevet:allow framecase handshake probe; every other kind is legitimately ignored here
	default:
		return
	}
}

func OtherTypeUnchecked(n transport.NotAFrame, m uint8) int {
	switch n {
	case transport.NotA:
		return 1
	}
	switch m {
	case 1:
		return 2
	}
	return 0
}

func work() {}
