module example.com/framecase

go 1.21
