// Package engine exercises wallclock inside a simulation-state package.
package engine

import "time"

var epoch time.Time

func Flagged() float64 {
	now := time.Now()      // want "time.Now reads the wall clock"
	d := time.Since(epoch) // want "time.Since reads the wall clock"
	_ = time.Until(epoch)  // want "time.Until reads the wall clock"
	return now.Sub(epoch).Seconds() + d.Seconds()
}

func FlaggedValueUse() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}

func AllowedMetrics() time.Duration {
	start := time.Now() //bracevet:allow wallclock metrics-only: throughput gauge
	work()
	return time.Since(start) //bracevet:allow wallclock metrics-only: throughput gauge
}

func AllowedWithoutReason() time.Time {
	//bracevet:allow wallclock
	return time.Now() // want "missing its required reason"
}

func FineUses(t time.Time) time.Duration {
	// Arithmetic on supplied times and timers that never read the wall
	// clock directly are fine.
	return t.Add(3 * time.Second).Sub(t)
}

func work() {}
