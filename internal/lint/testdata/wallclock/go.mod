module example.com/wallclock

go 1.21
