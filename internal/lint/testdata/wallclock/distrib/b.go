// Package distrib is control plane: liveness deadlines read the wall
// clock by design, so wallclock does not apply here.
package distrib

import "time"

func Deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}
