package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags reads of the real clock (time.Now, time.Since,
// time.Until) in simulation-state packages. A wall-clock value that
// reaches agent state, envelope contents, placement decisions, or
// checkpoint bytes makes two runs of the same seed diverge, which the
// cross-engine equivalence suites can only catch probabilistically.
// Metrics-only timing (throughput counters, phase-duration gauges) is
// legitimate and carries a //bracevet:allow wallclock annotation naming
// it so; the control plane (distrib, transport, service) is out of scope
// entirely because liveness deadlines and adaptive timeouts are its job.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/time.Since/time.Until in simulation-state packages except annotated metrics-only sites",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	if !simStatePkg(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch obj.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulation-state package; derive timing from ticks/virtual time, or annotate //%s wallclock <reason> for metrics-only use", obj.Name(), AllowDirective)
			}
			return true
		})
	}
	return nil
}
