package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of math/rand's (and math/rand/v2's) global,
// process-seeded source in the deterministic packages. Simulation
// randomness must flow from the run's seed through an explicitly
// constructed generator (rand.New(rand.NewSource(seed)), or the repo's
// agent RNG) so replays and distributed re-executions draw identical
// streams. Constructors are fine; the package-level draw/seed functions
// are not.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no global math/rand source in deterministic non-test code; use a per-run seeded generator",
	Run:  runGlobalRand,
}

// globalRandOK lists the math/rand package-level functions that do not
// touch the shared global source.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) error {
	if !deterministicPkg(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are seeded-instance draws; only
			// package-scope functions hit the global source.
			if obj.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if globalRandOK[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s draws from the process-global rand source; use a per-run seeded *rand.Rand (or annotate //%s globalrand <reason>)", obj.Pkg().Name(), obj.Name(), AllowDirective)
			return true
		})
	}
	return nil
}
