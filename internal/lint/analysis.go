package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowDirective is the comment prefix that suppresses one bracevet
// finding: `//bracevet:allow <analyzer> <reason>`. The reason is
// mandatory — an allow without one does not suppress and is itself
// reported — so every escape hatch in the tree documents why the site is
// exempt from the determinism invariant. The directive covers findings on
// its own line (trailing comment) and on the line directly below it
// (comment-above style).
const AllowDirective = "bracevet:allow"

// Analyzer is one bracevet check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags  *[]Diagnostic
	allows map[string][]allow // file name -> directives, built lazily
}

type allow struct {
	line     int // line the directive comment starts on
	analyzer string
	reason   string
}

// Reportf records a finding at pos unless an allow directive with a
// non-empty reason covers it. An allow that names this analyzer but
// carries no reason is deliberately ignored — and called out — so bare
// suppressions can't accumulate.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	for _, a := range p.allowsFor(position.Filename) {
		if a.analyzer != p.Analyzer.Name {
			continue
		}
		if a.line != position.Line && a.line != position.Line-1 {
			continue
		}
		if a.reason == "" {
			msg += fmt.Sprintf(" (the %s directive on line %d is missing its required reason and was ignored)", AllowDirective, a.line)
			break
		}
		return // suppressed, with a documented reason
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: msg})
}

// allowsFor parses the allow directives of one file, caching per Pass.
func (p *Pass) allowsFor(filename string) []allow {
	if p.allows == nil {
		p.allows = make(map[string][]allow)
	}
	if as, ok := p.allows[filename]; ok {
		return as
	}
	var file *ast.File
	for _, f := range p.Pkg.Files {
		if p.Pkg.Fset.Position(f.Package).Filename == filename {
			file = f
			break
		}
	}
	var as []allow
	if file != nil {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				a := allow{line: p.Pkg.Fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					a.analyzer = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				as = append(as, a)
			}
		}
	}
	p.allows[filename] = as
	return as
}

// Run applies every analyzer to every target package and returns the
// surviving findings in deterministic (file, line, column, analyzer)
// order. Packages that failed to parse or type-check yield a loud
// diagnostic instead of silently analyzing half a tree.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range Targets(pkgs) {
		if len(pkg.Errors) > 0 {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: pkg.Dir},
				Analyzer: "typecheck",
				Message:  fmt.Sprintf("package %s failed to load: %v", pkg.PkgPath, pkg.Errors[0]),
			})
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.Dir},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full bracevet suite.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, FrameCase, WallClock, GlobalRand}
}

// deterministicPkg reports whether a package path belongs to the
// deterministic core: the packages whose in-memory execution order must
// not leak into simulation state because the cross-engine equivalence
// suites assert bit-identical results over them. Matching is by path
// element so the analyzers work unchanged on testdata modules.
func deterministicPkg(path string) bool {
	for _, elem := range strings.Split(path, "/") {
		switch elem {
		case "engine", "mapreduce", "distrib", "transport", "scenario",
			"sim", "spatial", "partition", "agent", "service":
			return true
		}
	}
	return false
}

// simStatePkg reports whether a package path computes simulation state
// proper — the wallclock scope. Narrower than deterministicPkg: the
// control plane (distrib, transport, service) reads real clocks by
// design for liveness deadlines and adaptive timeouts; state-bearing
// packages may not, except at sites annotated metrics-only.
func simStatePkg(path string) bool {
	for _, elem := range strings.Split(path, "/") {
		switch elem {
		case "engine", "mapreduce", "scenario", "sim", "spatial",
			"partition", "agent":
			return true
		}
	}
	return false
}
