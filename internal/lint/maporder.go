package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for … range` over a map inside the deterministic
// packages. Go randomizes map iteration order per run, so any map range
// whose body emits envelopes, builds placements, serializes checkpoints,
// or otherwise feeds simulation state breaks the bit-identity invariant
// in a way no single-seed test reliably catches. The fix is to iterate
// detutil.SortedKeys (or an equivalent sorted slice); sites whose output
// order provably cannot matter carry a //bracevet:allow maporder
// annotation with the proof sketched as the reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages (engine, mapreduce, distrib, transport, scenario, sim, spatial, partition, agent, service)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !deterministicPkg(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.Range, "range over map %s has randomized order in a deterministic package; iterate detutil.SortedKeys(m) or annotate //%s maporder <reason>", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)), AllowDirective)
			}
			return true
		})
	}
	return nil
}
