package lint

// An analysistest-style harness: each analyzer has a testdata module
// (its own go.mod, ignored by the repo's build because it lives under
// testdata/) whose source files carry `// want "substring"` comments on
// the lines a diagnostic must land on. The harness loads the module with
// the real loader, runs one analyzer, and diffs findings against wants in
// both directions, so a silently dead analyzer fails its suite exactly
// like a noisy one.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`// want (".*")$`)
var wantStrRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// runTestdata runs a single analyzer over testdata/<name> and checks its
// diagnostics against the want comments in that module's files.
func runTestdata(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	targets := Targets(pkgs)
	if len(targets) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	for _, p := range targets {
		for _, e := range p.Errors {
			t.Errorf("package %s: %v", p.PkgPath, e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Collect wants straight from the comment ASTs.
	wants := make(map[wantKey][]string)
	for _, p := range targets {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					k := wantKey{file: pos.Filename, line: pos.Line}
					for _, q := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
						wants[k] = append(wants[k], q[1])
					}
				}
			}
		}
	}

	diags := Run([]*Analyzer{a}, pkgs)
	for _, d := range diags {
		k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
		}
	}
}
