// Package lint is bracevet's analysis framework: a stdlib-only package
// loader plus a small analyzer API in the spirit of
// golang.org/x/tools/go/analysis. The repo pins no external modules and the
// build environment is offline, so instead of depending on x/tools the
// framework loads packages with `go list -json -deps` and type-checks them
// from source with go/types. The analyzers themselves (maporder, framecase,
// wallclock, globalrand) mechanically enforce the determinism and wire
// protocol invariants every equivalence suite in this repo leans on.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	// Info is populated only for target (non-DepOnly) packages; analyzer
	// passes need it, dependency type-checking does not.
	Info    *types.Info
	DepOnly bool
	// Errors holds parse/type errors. Targets must be error-free for a
	// lint run to be trustworthy, so drivers fail loudly on any.
	Errors []error
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *listedErr
}

type listedErr struct {
	Err string
}

// Load enumerates the packages matching patterns (resolved relative to
// dir) together with all their dependencies, then parses and type-checks
// them from source in dependency order. It shells out to the go command
// for package metadata only — no network, no module downloads. CGo is
// disabled so every listed file is plain Go the type checker can digest.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	var pkgs []*Package

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		p := &Package{
			PkgPath: lp.ImportPath,
			Name:    lp.Name,
			Dir:     lp.Dir,
			Fset:    fset,
			DepOnly: lp.DepOnly,
		}
		if lp.Error != nil {
			p.Errors = append(p.Errors, fmt.Errorf("%s", lp.Error.Err))
		}
		for _, f := range lp.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				p.Errors = append(p.Errors, err)
				continue
			}
			p.Files = append(p.Files, af)
		}
		importMap := lp.ImportMap
		imp := importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
			if tp, ok := checked[path]; ok && tp != nil {
				return tp, nil
			}
			return nil, fmt.Errorf("package %q not loaded", path)
		})
		if !lp.DepOnly {
			p.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
			}
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", build.Default.GOARCH),
			Error: func(err error) {
				p.Errors = append(p.Errors, err)
			},
		}
		tp, _ := conf.Check(lp.ImportPath, fset, p.Files, p.Info)
		p.Types = tp
		checked[lp.ImportPath] = tp
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Targets filters a Load result down to the packages named by the
// patterns (the ones analyzers run on).
func Targets(pkgs []*Package) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if !p.DepOnly {
			out = append(out, p)
		}
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
