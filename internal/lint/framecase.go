package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FrameCase enforces that every `switch` over the transport frame
// discriminator (transport.FrameKind) either covers all declared frame
// kinds or carries a default arm that actually does something — so a new
// frame kind added to the protocol can never be silently swallowed by a
// relay or reader loop. A default consisting solely of a bare
// return/break/continue is treated as a silent drop and flagged: the arm
// must at minimum surface a typed protocol error (transport.ProtocolError)
// or route the frame somewhere observable.
var FrameCase = &Analyzer{
	Name: "framecase",
	Doc:  "switches on transport.FrameKind must be exhaustive or fail loudly in default",
	Run:  runFrameCase,
}

// frameKindType reports whether t is the wire frame discriminator: a
// named type called FrameKind (or FrameType) declared in a transport
// package. Matching by name+package element keeps the analyzer working
// on testdata modules.
func frameKindType(t types.Type) (*types.TypeName, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	if obj.Name() != "FrameKind" && obj.Name() != "FrameType" {
		return nil, false
	}
	path := obj.Pkg().Path()
	if path != "transport" && !strings.HasSuffix(path, "/transport") {
		return nil, false
	}
	return obj, true
}

func runFrameCase(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			obj, ok := frameKindType(tv.Type)
			if !ok {
				return true
			}

			// Every constant of the FrameKind type declared in its
			// package, by exact constant value.
			declared := make(map[string]string) // value -> const name
			scope := obj.Pkg().Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || !types.Identical(c.Type(), tv.Type) {
					continue
				}
				declared[c.Val().ExactString()] = name
			}

			covered := make(map[string]bool)
			var def *ast.CaseClause
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					def = cc
					continue
				}
				for _, e := range cc.List {
					if etv, ok := pass.Pkg.Info.Types[e]; ok && etv.Value != nil {
						covered[etv.Value.ExactString()] = true
					}
				}
			}

			var missing []string
			for val, name := range declared {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			sort.Strings(missing)

			switch {
			case def == nil && len(missing) > 0:
				pass.Reportf(sw.Switch, "switch on %s.%s is not exhaustive (missing %s) and has no default: a new frame kind would be silently dropped; add a default returning a typed protocol error", obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
			case def != nil && silentDefault(def):
				pass.Reportf(def.Case, "default arm of switch on %s.%s silently drops the frame; return or log a typed protocol error instead", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil
}

// silentDefault reports whether a default arm's body does nothing
// observable: empty, or only bare control flow (break/continue/goto, or a
// `return` carrying no values). Any call, assignment, send, or
// value-bearing return counts as loud enough — the analyzer checks that
// the drop is at least acted on, not what the action is.
func silentDefault(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return true
	}
	for _, stmt := range cc.Body {
		switch s := stmt.(type) {
		case *ast.BranchStmt:
			// break/continue/goto: pure control flow.
		case *ast.ReturnStmt:
			if len(s.Results) > 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
