package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMapOrder(t *testing.T)   { runTestdata(t, MapOrder, "maporder") }
func TestFrameCase(t *testing.T)  { runTestdata(t, FrameCase, "framecase") }
func TestWallClock(t *testing.T)  { runTestdata(t, WallClock, "wallclock") }
func TestGlobalRand(t *testing.T) { runTestdata(t, GlobalRand, "globalrand") }

// TestRepoIsCleanAtHEAD is the self-check the CI lint job depends on:
// the full suite over the whole repository must be finding-free. Any
// regression — a new map range in a deterministic package, a swallowed
// frame kind, a wall-clock read in sim state — fails this test before it
// fails CI.
func TestRepoIsCleanAtHEAD(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire repository")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(All(), pkgs)
	for _, d := range diags {
		t.Errorf("bracevet finding at HEAD: %s", d)
	}
}

// TestDiagnosticsAreDeterministic runs the suite twice over the same
// testdata and asserts identical output order — the lint tool obeys the
// invariant it polices.
func TestDiagnosticsAreDeterministic(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "maporder"))
	if err != nil {
		t.Fatal(err)
	}
	var prev []Diagnostic
	for i := 0; i < 2; i++ {
		pkgs, err := Load(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		diags := Run([]*Analyzer{MapOrder}, pkgs)
		if len(diags) == 0 {
			t.Fatal("expected findings in maporder testdata")
		}
		if i > 0 {
			if len(diags) != len(prev) {
				t.Fatalf("run %d: %d findings, previous run had %d", i, len(diags), len(prev))
			}
			for j := range diags {
				if diags[j].String() != prev[j].String() {
					t.Errorf("finding %d differs across runs:\n  %s\n  %s", j, prev[j], diags[j])
				}
			}
		}
		prev = diags
	}
}
