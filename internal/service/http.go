// The HTTP+JSON surface of bracesimd. Routing is by hand: the module pins
// go 1.21, where the enhanced ServeMux patterns (methods, wildcards) are
// disabled, and the API is small enough that a prefix switch stays honest.
//
//	POST   /v1/runs            submit a RunSpec            -> 202 RunStatus
//	GET    /v1/runs            list runs                   -> 200 []RunStatus
//	GET    /v1/runs/{id}       one run's status            -> 200 RunStatus
//	DELETE /v1/runs/{id}       cancel a run                -> 200 RunStatus
//	GET    /v1/runs/{id}/watch observation stream          -> 200 ndjson ObsFrame
//	GET    /v1/fleet           fleet worker states         -> 200 []WorkerInfo
//
// The watch endpoint streams newline-delimited JSON ObsFrames: first the
// backlog (latest keyframe onward), then live frames as the run publishes
// them, flushed per frame. The connection closes when the run finishes or
// the subscriber falls too far behind (the final frame is then followed by
// EOF; a dropped subscriber can reconnect and resync from the keyframe).
package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler serves the service API for a manager.
func Handler(m *Manager) http.Handler {
	return &apiHandler{m: m}
}

type apiHandler struct {
	m *Manager
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	default:
		// Spec validation problems are the client's fault.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (h *apiHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/v1/runs" || path == "/v1/runs/":
		switch r.Method {
		case http.MethodPost:
			h.submit(w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, h.m.List())
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case strings.HasPrefix(path, "/v1/runs/"):
		rest := strings.TrimPrefix(path, "/v1/runs/")
		if id := strings.TrimSuffix(rest, "/watch"); id != rest && !strings.Contains(id, "/") {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", "GET")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h.watch(w, r, id)
			return
		}
		if strings.Contains(rest, "/") {
			http.NotFound(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			st, err := h.m.Get(rest)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case http.MethodDelete:
			st, err := h.m.Cancel(rest)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		default:
			w.Header().Set("Allow", "GET, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case path == "/v1/fleet":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, h.m.Fleet())
	default:
		http.NotFound(w, r)
	}
}

func (h *apiHandler) submit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad run spec: " + err.Error()})
		return
	}
	st, err := h.m.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// watch streams a run's observation frames as ndjson until the run ends,
// the subscriber falls behind, or the client disconnects.
func (h *apiHandler) watch(w http.ResponseWriter, r *http.Request, id string) {
	sub, err := h.m.Watch(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	send := func(f *ObsFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, f := range sub.Backlog {
		if !send(f) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case f, ok := <-sub.Live:
			if !ok {
				return // run finished or subscriber dropped for lagging
			}
			if !send(f) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
