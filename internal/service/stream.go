// The observation stream: snapshot-then-delta fan-out of a run's per-tick
// state to many subscribers, reusing the engine's checkpoint delta codec
// as the streaming wire format.
//
// Every frame carries one engine-delta blob. A keyframe is the degenerate
// delta against an empty baseline — DiffPartition(nil, state) — so one
// codec, one decoder, and one set of loud-failure guarantees (unknown
// agents, truncation, trailing bytes all error) cover both frame kinds.
// Keyframes recur on a fixed cadence so late joiners start from the most
// recent one instead of replaying the run; the frames since it are the
// backlog a new subscriber receives before going live. Frames are strictly
// sequenced: a delta names the frame it builds on, and StreamDecoder
// refuses gaps, reordering and unseeded deltas rather than ever producing
// silently wrong state.
package service

import (
	"fmt"
	"sync"

	"github.com/bigreddata/brace/internal/engine"
)

// DefaultKeyframeEvery is the keyframe cadence when a stream is built with
// keyEvery <= 0: one keyframe, then seven deltas, repeating — the same
// default ratio as the control plane's incremental checkpoints.
const DefaultKeyframeEvery = 8

// subBuffer is a subscriber's frame buffer. A subscriber that falls this
// many frames behind a live stream is dropped (its channel is closed with
// Lost set) — one slow reader must never stall the run or its peers.
const subBuffer = 64

// ObsFrame is one frame of a run's observation stream.
type ObsFrame struct {
	// Seq numbers frames from 1, consecutively; a decoder treats any gap
	// as fatal.
	Seq uint64 `json:"seq"`
	// Tick is the simulation tick the state belongs to. After a recovery
	// ticks can regress: re-executed epochs republish their checkpoints.
	Tick uint64 `json:"tick"`
	// Keyframe marks Data as a full snapshot (delta against nothing);
	// otherwise Data is a delta against frame Base = Seq-1.
	Keyframe bool   `json:"keyframe"`
	Base     uint64 `json:"base,omitempty"`
	// Data is the engine delta-codec blob (base64 in JSON).
	Data []byte `json:"data"`
}

// Subscription is one subscriber's view of a stream: the backlog replays
// state from the latest keyframe to the subscription point, then Live
// carries every subsequent frame. Cancel detaches (idempotent, safe after
// a drop). When Live closes, Lost reports whether the subscriber was
// dropped for falling behind (vs. the stream simply ending).
type Subscription struct {
	Backlog []*ObsFrame
	Live    <-chan *ObsFrame
	Cancel  func()
	Lost    func() bool
}

// ObsStream encodes observed states into frames and fans them out.
// Publish is called from the run's coordinator loop; Subscribe/Cancel from
// HTTP handlers. One mutex serializes them: encoding is quick (one delta
// over the live population) and fan-out is non-blocking.
type ObsStream struct {
	mu       sync.Mutex
	keyEvery int
	seq      uint64
	sinceKey int                // frames since the last keyframe
	prev     []*engine.Envelope // deep copy of the last published state
	backlog  []*ObsFrame        // latest keyframe + every frame after it
	subs     map[*subscriber]struct{}
	closed   bool
}

type subscriber struct {
	ch   chan *ObsFrame
	lost bool
}

// NewObsStream builds a stream with the given keyframe cadence (a keyframe
// every keyEvery frames; <= 0 selects DefaultKeyframeEvery, 1 means every
// frame is a keyframe).
func NewObsStream(keyEvery int) *ObsStream {
	if keyEvery <= 0 {
		keyEvery = DefaultKeyframeEvery
	}
	return &ObsStream{keyEvery: keyEvery, subs: make(map[*subscriber]struct{})}
}

// Publish encodes one observed state and fans the frame out. envs must be
// the run's live population, ID-sorted with unique IDs (the coordinator's
// OnCheckpoint view); the slice is copied, not retained. Slow subscribers
// are dropped here rather than waited for.
func (s *ObsStream) Publish(tick uint64, envs []*engine.Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	key := s.prev == nil || s.sinceKey >= s.keyEvery-1
	var blob []byte
	if !key {
		// Delta against the previous frame. Encoding can fail only on
		// malformed input (duplicate IDs); fall back to a keyframe rather
		// than dropping the observation.
		var ok bool
		blob, ok = engine.DiffPartition(s.prev, envs)
		key = !ok
	}
	if key {
		var ok bool
		blob, ok = engine.DiffPartition(nil, envs)
		if !ok {
			return // duplicate/nil agents: not an encodable observation
		}
	}
	s.seq++
	f := &ObsFrame{Seq: s.seq, Tick: tick, Keyframe: key, Data: blob}
	if key {
		s.sinceKey = 0
		s.backlog = s.backlog[:0]
	} else {
		f.Base = s.seq - 1
		s.sinceKey++
	}
	s.backlog = append(s.backlog, f)
	s.prev = engine.CloneEnvelopes(envs)
	for sub := range s.subs { //bracevet:allow maporder every subscriber gets the same frame; delivery order unobservable
		select {
		case sub.ch <- f:
		default:
			sub.lost = true
			close(sub.ch)
			delete(s.subs, sub)
		}
	}
}

// Subscribe attaches a new subscriber. The returned backlog and the live
// channel are gap-free by construction: both are produced under the
// stream's mutex, so the first live frame is exactly the one after the
// backlog's last. Subscribing before the first Publish yields an empty
// backlog; the first live frame is then seq 1, a keyframe.
func (s *ObsStream) Subscribe() *Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub := &subscriber{ch: make(chan *ObsFrame, subBuffer)}
	backlog := append([]*ObsFrame(nil), s.backlog...)
	if s.closed {
		close(sub.ch)
	} else {
		s.subs[sub] = struct{}{}
	}
	return &Subscription{
		Backlog: backlog,
		Live:    sub.ch,
		Cancel:  func() { s.drop(sub) },
		Lost:    func() bool { s.mu.Lock(); defer s.mu.Unlock(); return sub.lost },
	}
}

func (s *ObsStream) drop(sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.subs[sub]; ok {
		close(sub.ch)
		delete(s.subs, sub)
	}
}

// Close ends the stream: every subscriber's live channel closes after the
// frames already delivered, and future subscribers get the final backlog
// with an immediately closed live channel (they can still reconstruct the
// final state).
func (s *ObsStream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for sub := range s.subs { //bracevet:allow maporder teardown fan-out; closes are independent and order unobservable
		close(sub.ch)
		delete(s.subs, sub)
	}
}

// Frames returns how many frames the stream has published.
func (s *ObsStream) Frames() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// StreamDecoder reconstructs per-tick state from a frame sequence. It is
// deliberately strict — the stream format's correctness story depends on
// failing loudly instead of drifting:
//
//   - the first frame must be a keyframe (deltas need a seeded baseline);
//   - every subsequent frame's Seq must be exactly the last Seq+1 — a gap
//     or reordering means the reconstruction would silently diverge;
//   - a delta's Base must name the frame it actually builds on;
//   - the blob itself is validated by the engine codec (unknown agents,
//     truncation, trailing bytes all error).
//
// A keyframe re-seeds the decoder, so joining late from the most recent
// keyframe — exactly what Subscription.Backlog provides — reconstructs
// state bit-identical to a subscriber attached from the start.
type StreamDecoder struct {
	seeded bool
	seq    uint64
	envs   []*engine.Envelope
}

// Apply folds one frame in and returns the reconstructed state. The
// returned slice is the decoder's internal state: read it, don't keep it
// across Apply calls without copying.
func (d *StreamDecoder) Apply(f *ObsFrame) ([]*engine.Envelope, error) {
	if f.Keyframe {
		envs, err := engine.ApplyDelta(nil, f.Data)
		if err != nil {
			return nil, fmt.Errorf("service: keyframe seq %d: %w", f.Seq, err)
		}
		d.seeded, d.seq, d.envs = true, f.Seq, envs
		return envs, nil
	}
	if !d.seeded {
		return nil, fmt.Errorf("service: stream must start at a keyframe, got delta seq %d", f.Seq)
	}
	if f.Seq != d.seq+1 {
		return nil, fmt.Errorf("service: frame gap: got seq %d after %d", f.Seq, d.seq)
	}
	if f.Base != d.seq {
		return nil, fmt.Errorf("service: delta seq %d builds on %d, decoder holds %d", f.Seq, f.Base, d.seq)
	}
	envs, err := engine.ApplyDelta(d.envs, f.Data)
	if err != nil {
		return nil, fmt.Errorf("service: delta seq %d: %w", f.Seq, err)
	}
	d.seq, d.envs = f.Seq, envs
	return envs, nil
}

// Seq returns the last applied frame's sequence number (0 before any).
func (d *StreamDecoder) Seq() uint64 { return d.seq }
