package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/engine"
)

// startFleet spins up n in-process worker daemons (concurrent sessions,
// exactly what bracesim-worker serves) on loopback and returns their
// addresses.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		addrs = append(addrs, lis.Addr().String())
		go distrib.Serve(lis, io.Discard, false)
	}
	return addrs
}

// waitState polls a run until it leaves the live states.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) *RunStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func requireSamePopulation(t *testing.T, label string, want, got agent.Population) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: population sizes differ: want %d, got %d", label, len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("%s: agent %d differs:\n  want %v\n  got  %v", label, want[i].ID, want[i], got[i])
		}
	}
}

// The multi-tenancy acceptance criterion's service half: two concurrent
// runs — different scenarios, different seeds — share one 4-worker fleet
// and each finishes bit-identical to its single-run `-distribute tcp`
// equivalent on a private fleet.
func TestTwoConcurrentRunsShareFleetBitIdentical(t *testing.T) {
	shared := startFleet(t, 4)
	m, err := NewManager(Config{WorkerAddrs: shared, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	specA := RunSpec{Scenario: "epidemic", Agents: 150, Seed: 9, Ticks: 40, Partitions: 4, EpochTicks: 5}
	specB := RunSpec{Scenario: "fish", Agents: 120, Seed: 23, Ticks: 30, Partitions: 4, EpochTicks: 5}
	stA, err := m.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := m.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if stA.State != StateRunning || stB.State != StateRunning {
		t.Fatalf("both runs should start immediately: %s, %s", stA.State, stB.State)
	}

	finA := waitState(t, m, stA.ID, 60*time.Second)
	finB := waitState(t, m, stB.ID, 60*time.Second)
	if finA.State != StateDone || finB.State != StateDone {
		t.Fatalf("states = %s / %s (errors: %q / %q)", finA.State, finB.State, finA.Error, finB.Error)
	}

	// Single-run equivalents, each on its own fresh fleet.
	for _, tc := range []struct {
		id   string
		spec RunSpec
	}{{stA.ID, specA}, {stB.ID, specB}} {
		solo, err := distrib.Run(distrib.Options{
			Addrs:    startFleet(t, 4),
			Scenario: tc.spec.Scenario,
			Agents:   tc.spec.Agents, Seed: tc.spec.Seed,
			Partitions: tc.spec.Partitions, Ticks: tc.spec.Ticks,
			Tunables: distrib.Tunables{EpochTicks: tc.spec.EpochTicks},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Result(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		requireSamePopulation(t, tc.spec.Scenario, solo.Agents, res.Agents)
	}
}

// Admission control: MaxRuns gates concurrency, the queue holds admitted
// runs in FIFO, QueueDepth rejects beyond it, and a canceled head frees
// its slot for the next queued run.
func TestAdmissionQueueingAndCancel(t *testing.T) {
	m, err := NewManager(Config{
		WorkerAddrs: startFleet(t, 2),
		MaxRuns:     1,
		QueueDepth:  1,
		Log:         io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	long := RunSpec{Scenario: "epidemic", Agents: 150, Seed: 1, Ticks: 100000, EpochTicks: 5}
	short := RunSpec{Scenario: "epidemic", Agents: 60, Seed: 2, Ticks: 10, EpochTicks: 5}
	a, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != StateRunning {
		t.Fatalf("first run state = %s, want running", a.State)
	}
	b, err := m.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("second run state = %s, want queued (MaxRuns=1)", b.State)
	}
	if _, err := m.Submit(short); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission err = %v, want ErrQueueFull", err)
	}

	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, m, a.ID, 30*time.Second); st.State != StateCanceled {
		t.Fatalf("canceled run state = %s", st.State)
	}
	if st := waitState(t, m, b.ID, 60*time.Second); st.State != StateDone {
		t.Fatalf("queued run after slot freed: state = %s (%s)", st.State, st.Error)
	}

	// Canceling a queued run removes it without ever placing it.
	c, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	d, err := m.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != StateQueued {
		t.Fatalf("state = %s, want queued", d.State)
	}
	if st, err := m.Cancel(d.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: state=%v err=%v", st, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := NewManager(Config{WorkerAddrs: startFleet(t, 2), Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, tc := range []struct {
		name string
		spec RunSpec
	}{
		{"unknown scenario", RunSpec{Scenario: "no-such", Ticks: 5}},
		{"zero ticks", RunSpec{Scenario: "fish"}},
		{"worker budget over fleet", RunSpec{Scenario: "fish", Ticks: 5, Workers: 3}},
		{"partitions under workers", RunSpec{Scenario: "fish", Ticks: 5, Workers: 2, Partitions: 1}},
		{"bad index", RunSpec{Scenario: "fish", Ticks: 5, Index: "btree"}},
	} {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// The streaming acceptance criterion, end to end through the HTTP API:
// three subscribers attach to one run's watch endpoint at different
// ticks; every per-tick observation each of them reconstructs from
// snapshot+delta frames is bit-identical across subscribers.
func TestWatchThreeSubscribersBitIdentical(t *testing.T) {
	m, err := NewManager(Config{
		WorkerAddrs:   startFleet(t, 2),
		KeyframeEvery: 4,
		Log:           io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	// EpochTicks=1 + checkpoint every epoch = one observation per tick.
	body := `{"scenario":"epidemic","agents":120,"seed":7,"ticks":40,"epoch_ticks":1}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// observed holds seq -> decoded state; each subscriber decodes its
	// whole stream with the strict decoder.
	type obs map[uint64][]*engine.Envelope
	watch := func() (obs, error) {
		resp, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/watch")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("watch: %s", resp.Status)
		}
		got := obs{}
		var dec StreamDecoder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			var f ObsFrame
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				return nil, err
			}
			envs, err := dec.Apply(&f)
			if err != nil {
				return nil, err
			}
			got[f.Seq] = engine.CloneEnvelopes(envs)
		}
		return got, sc.Err()
	}

	// Subscriber 1 attaches immediately; 2 and 3 attach once the run has
	// demonstrably progressed past different frame counts.
	results := make([]obs, 3)
	errs := make([]error, 3)
	done := make(chan int, 3)
	attach := func(i int, afterFrames uint64) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			cur, err := m.Get(st.ID)
			if err != nil {
				errs[i] = err
				done <- i
				return
			}
			if cur.Frames >= afterFrames || cur.State == StateDone {
				break
			}
			if time.Now().After(deadline) {
				errs[i] = fmt.Errorf("run never reached %d frames", afterFrames)
				done <- i
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		results[i], errs[i] = watch()
		done <- i
	}
	go attach(0, 0)
	go attach(1, 6)
	go attach(2, 13)
	for n := 0; n < 3; n++ {
		select {
		case i := <-done:
			if errs[i] != nil {
				t.Fatalf("subscriber %d: %v", i, errs[i])
			}
		case <-time.After(120 * time.Second):
			t.Fatal("subscribers did not finish")
		}
	}

	if len(results[0]) == 0 {
		t.Fatal("subscriber 0 saw no frames")
	}
	fin := waitState(t, m, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("run state = %s (%s)", fin.State, fin.Error)
	}
	// Later subscribers see a suffix (from their join keyframe onward);
	// every seq they saw must decode bit-identical to subscriber 0's view.
	for i := 1; i < 3; i++ {
		if len(results[i]) == 0 {
			t.Fatalf("subscriber %d saw no frames", i)
		}
		matched := 0
		for seq, envs := range results[i] {
			ref, ok := results[0][seq]
			if !ok {
				continue // sub 0 could itself have joined after a recovery republish
			}
			requireSameState(t, fmt.Sprintf("subscriber %d seq %d", i, seq), ref, envs)
			matched++
		}
		if matched == 0 {
			t.Errorf("subscriber %d shared no frames with subscriber 0", i)
		}
	}
}

// The HTTP surface: routing, status codes and error mapping.
func TestHTTPEndpoints(t *testing.T) {
	m, err := NewManager(Config{WorkerAddrs: startFleet(t, 2), Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/v1/fleet"); code != 200 || !strings.Contains(body, "addr") {
		t.Errorf("fleet: %d %s", code, body)
	}
	if code, body := get("/v1/runs"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("empty list: %d %q", code, body)
	}
	if code, _ := get("/v1/runs/run-9999"); code != 404 {
		t.Errorf("missing run: %d, want 404", code)
	}
	if code, _ := get("/v1/nope"); code != 404 {
		t.Errorf("bad path: %d, want 404", code)
	}

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"scenario":"no-such","ticks":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scenario: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"scenario":"fish","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"scenario":"epidemic","agents":60,"seed":3,"ticks":8,"epoch_ticks":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	if code, body := get("/v1/runs/" + st.ID); code != 200 || !strings.Contains(body, st.ID) {
		t.Errorf("status: %d %s", code, body)
	}
	waitState(t, m, st.ID, 60*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Errorf("delete finished run: %d", dresp.StatusCode)
	}
	if code, body := get("/v1/runs"); code != 200 || !strings.Contains(body, st.ID) {
		t.Errorf("list: %d %s", code, body)
	}
}

// A registry-fed fleet end to end: the manager starts with no worker
// addresses at all, daemons announce themselves, a mesh run completes
// bit-identical to a star-fleet equivalent, and /v1/fleet's data reports
// the workers as registered.
func TestRegistryFedFleetMeshRun(t *testing.T) {
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := distrib.NewRegistry(rlis)
	t.Cleanup(reg.Close)
	for i := 0; i < 2; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		go distrib.ServeWith(lis, distrib.ServeOptions{Register: reg.Addr()})
	}
	if _, err := reg.Await(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Config{
		Registry: reg,
		Tunables: distrib.Tunables{Mesh: true},
		Log:      io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := RunSpec{Scenario: "epidemic", Agents: 120, Seed: 9, Ticks: 12, Partitions: 4, EpochTicks: 3}
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error: %q)", fin.State, fin.Error)
	}

	solo, err := distrib.Run(distrib.Options{
		Addrs:    startFleet(t, 2),
		Scenario: spec.Scenario,
		Agents:   spec.Agents, Seed: spec.Seed,
		Partitions: spec.Partitions, Ticks: spec.Ticks,
		Tunables: distrib.Tunables{EpochTicks: spec.EpochTicks},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePopulation(t, "registry-fed mesh", solo.Agents, res.Agents)
	if res.RelayedDataFrames != 0 {
		t.Errorf("coordinator relayed %d data frames in a healthy mesh", res.RelayedDataFrames)
	}

	for _, w := range m.Fleet() {
		if !w.Registered {
			t.Errorf("worker %s not marked registered", w.Addr)
		}
	}
}
