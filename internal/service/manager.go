// The run manager: admission control, queueing, and the lifecycle of every
// simulation the daemon multiplexes over its fleet.
//
// One submitted run = one distrib coordinator, embedded as a library and
// wired to the slice of the fleet the scheduler reserved for it. Isolation
// falls out of the architecture: each run has its own coordinator
// goroutine, its own hub, its own TCP sessions (wire v4 scopes a session
// to a run), and its own recovery machinery — a tenant's failure,
// stall-drop or cancellation never crosses into another run. The only
// shared failure domain is a worker *process*; when one dies, every run
// placed on it recovers independently through its own coordinator, and the
// fleet marks the address down so future placements avoid it.
package service

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
)

// Run states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrNotFound     = errors.New("service: no such run")
	ErrQueueFull    = errors.New("service: run queue full")
	ErrShuttingDown = errors.New("service: shutting down")
)

// RunSpec is a submitted run, the JSON body of POST /v1/runs. Scenario
// parameters mirror the bracesim CLI; zero values take the same defaults.
type RunSpec struct {
	// Scenario names a registry entry; Agents/Extent/Seed size it exactly
	// as on the CLI.
	Scenario string  `json:"scenario"`
	Agents   int     `json:"agents,omitempty"`
	Extent   float64 `json:"extent,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	// Ticks to simulate (required, > 0).
	Ticks int `json:"ticks"`
	// Workers is the run's worker budget: how many fleet daemons the run
	// is placed on (0 = the daemon's default). Admission control queues
	// the run until that many workers have a free session slot.
	Workers int `json:"workers,omitempty"`
	// Partitions is the mapreduce partition count (0 = Workers).
	Partitions int `json:"partitions,omitempty"`
	// EpochTicks is the epoch barrier interval (0 = engine default 10).
	// Together with CheckpointEpochs it sets the observation cadence:
	// the watch stream gets one frame per installed checkpoint.
	EpochTicks int    `json:"epoch_ticks,omitempty"`
	Index      string `json:"index,omitempty"`
	// LoadBalance enables the coordinator-driven 1-D balancer.
	LoadBalance bool `json:"lb,omitempty"`
	// CheckpointEpochs orders a coordinated checkpoint every k epochs
	// (0 = every epoch — the service default leans observable, unlike the
	// CLI's initial-checkpoint-only default).
	CheckpointEpochs    int  `json:"checkpoint_epochs,omitempty"`
	CheckpointFullEvery int  `json:"checkpoint_full_every,omitempty"`
	Sequential          bool `json:"sequential,omitempty"`
}

// RunStatus is a run's externally visible state, the JSON body of
// GET /v1/runs/{id}.
type RunStatus struct {
	ID      string   `json:"id"`
	State   string   `json:"state"`
	Spec    RunSpec  `json:"spec"`
	Error   string   `json:"error,omitempty"`
	Workers []string `json:"workers,omitempty"`
	// LastTick is the latest epoch barrier the control plane completed;
	// Frames counts observation frames published so far.
	LastTick uint64 `json:"last_tick"`
	Epochs   int    `json:"epochs"`
	Frames   uint64 `json:"frames"`
	// Final results (done runs only).
	Ticks      uint64 `json:"ticks,omitempty"`
	Agents     int    `json:"agents,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
	Rejoins    int    `json:"rejoins,omitempty"`
	Rebalances int    `json:"rebalances,omitempty"`
	StallDrops int    `json:"stall_drops,omitempty"`
	NetBytes   int64  `json:"net_bytes,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Config tunes a Manager. The admission-control knobs — MaxRuns,
// QueueDepth, SessionsPerWorker, DefaultRunWorkers — bound how much work
// the daemon accepts and how densely it multiplexes the fleet.
type Config struct {
	// WorkerAddrs is the fleet: bracesim-worker daemon addresses.
	WorkerAddrs []string
	// MaxRuns caps concurrently *running* runs (0 = default 4); further
	// admitted runs queue.
	MaxRuns int
	// QueueDepth caps queued runs (0 = default 16); beyond it submissions
	// are rejected with ErrQueueFull.
	QueueDepth int
	// SessionsPerWorker caps concurrent run sessions per fleet worker
	// (0 = default 4).
	SessionsPerWorker int
	// DefaultRunWorkers is the worker budget for specs that omit one
	// (0 = the whole fleet).
	DefaultRunWorkers int
	// KeyframeEvery is the observation streams' keyframe cadence
	// (0 = DefaultKeyframeEvery).
	KeyframeEvery int

	// Tunables carries the shared knob set passed through to every run's
	// coordinator — liveness timeouts, checkpoint keyframe cadence, the
	// mesh switch; zero values take the cluster.Default* values. The
	// per-run cadence knobs (EpochTicks, CheckpointEveryEpochs) come from
	// each RunSpec instead and are ignored here.
	distrib.Tunables

	// Registry, when non-nil, is the worker registry the daemon's fleet
	// grows from: registered workers join the fleet as they announce
	// themselves, and every run coordinator gets the registry for mid-run
	// admissions. WorkerAddrs may be empty when a registry is set.
	Registry *distrib.Registry

	// Log receives run lifecycle lines (nil: silent).
	Log io.Writer
}

// Manager owns the fleet and every run. All public methods are safe for
// concurrent use by HTTP handlers.
type Manager struct {
	cfg   Config
	fleet *fleet

	mu      sync.Mutex
	runs    map[string]*run
	order   []string // submission order, for List
	queue   []*run   // admitted but not yet placed, FIFO
	running int
	nextID  int
	closed  bool
	wg      sync.WaitGroup
}

// run is the manager's per-run record. Its own mutex guards the mutable
// fields so coordinator hooks never contend with the manager lock.
type run struct {
	id     string
	stream *ObsStream
	cancel chan struct{}

	mu        sync.Mutex
	spec      RunSpec
	state     string
	errText   string
	workers   []string
	idxs      []int
	lastTick  uint64
	epochs    int
	result    *distrib.Result
	canceled  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// NewManager builds a manager over the given fleet. With a Registry the
// fleet may start empty: workers join it as they register, and each
// registration pumps the queue in case a waiting run now fits.
func NewManager(cfg Config) (*Manager, error) {
	if len(cfg.WorkerAddrs) == 0 && cfg.Registry == nil {
		return nil, fmt.Errorf("service: no worker addresses and no registry")
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	m := &Manager{
		cfg:   cfg,
		fleet: newFleet(cfg.WorkerAddrs, cfg.SessionsPerWorker),
		runs:  make(map[string]*run),
	}
	if cfg.Registry != nil {
		for _, w := range cfg.Registry.Workers() {
			m.fleet.admit(w.Addr)
		}
		go func() {
			for w := range cfg.Registry.Events() {
				m.fleet.admit(w.Addr)
				m.mu.Lock()
				if !m.closed {
					m.pumpLocked()
				}
				m.mu.Unlock()
			}
		}()
	}
	return m, nil
}

// fleetSize is the current fleet width — static fleets fix it at
// construction, registry-fed fleets grow it as workers announce themselves.
func (m *Manager) fleetSize() int { return m.fleet.size() }

// normalize validates a spec and fills defaults. Validation failures are
// client errors (HTTP 400).
func (m *Manager) normalize(spec RunSpec) (RunSpec, error) {
	if _, ok := scenario.Lookup(spec.Scenario); !ok {
		return spec, scenario.ErrUnknown(spec.Scenario)
	}
	if spec.Ticks <= 0 {
		return spec, fmt.Errorf("service: ticks must be > 0")
	}
	fleetN := m.fleetSize()
	if spec.Workers == 0 {
		if spec.Workers = m.cfg.DefaultRunWorkers; spec.Workers <= 0 || spec.Workers > fleetN {
			spec.Workers = fleetN
		}
		// A spec that asks for fewer partitions than the default worker
		// budget (e.g. bracesim -submit -workers 2 against a wide fleet)
		// means a narrow run, not an invalid one.
		if spec.Partitions > 0 && spec.Partitions < spec.Workers {
			spec.Workers = spec.Partitions
		}
	}
	if spec.Workers < 1 || spec.Workers > fleetN {
		return spec, fmt.Errorf("service: worker budget %d outside fleet of %d", spec.Workers, fleetN)
	}
	if spec.Partitions == 0 {
		spec.Partitions = spec.Workers
	}
	if spec.Partitions < spec.Workers {
		return spec, fmt.Errorf("service: %d partitions cannot cover %d workers", spec.Partitions, spec.Workers)
	}
	if spec.Index == "" {
		spec.Index = "kd"
	}
	if _, err := spatial.ParseKind(spec.Index); err != nil {
		return spec, err
	}
	if spec.CheckpointEpochs == 0 {
		spec.CheckpointEpochs = 1 // the service default: observable runs
	}
	return spec, nil
}

// Submit admits a run: it starts immediately when a running slot and
// enough fleet capacity exist, queues otherwise, and fails with
// ErrQueueFull when the queue is at depth.
func (m *Manager) Submit(spec RunSpec) (*RunStatus, error) {
	spec, err := m.normalize(spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.nextID++
	r := &run{
		id:        fmt.Sprintf("run-%04d", m.nextID),
		spec:      spec,
		state:     StateQueued,
		stream:    NewObsStream(m.cfg.KeyframeEvery),
		cancel:    make(chan struct{}),
		submitted: time.Now(),
	}
	if !m.startLocked(r) {
		if len(m.queue) >= m.cfg.QueueDepth {
			return nil, ErrQueueFull
		}
		m.queue = append(m.queue, r)
	}
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	return r.status(), nil
}

// startLocked tries to place and launch a run; m.mu must be held.
func (m *Manager) startLocked(r *run) bool {
	if m.running >= m.cfg.MaxRuns {
		return false
	}
	addrs, idxs, err := m.fleet.place(r.spec.Workers)
	if err != nil {
		return false
	}
	r.mu.Lock()
	r.state = StateRunning
	r.workers = addrs
	r.idxs = idxs
	r.started = time.Now()
	r.mu.Unlock()
	m.running++
	m.wg.Add(1)
	go m.execute(r)
	if m.cfg.Log != nil {
		fmt.Fprintf(m.cfg.Log, "bracesimd: %s started: %s seed=%d ticks=%d on %v\n",
			r.id, r.spec.Scenario, r.spec.Seed, r.spec.Ticks, addrs)
	}
	return true
}

// execute runs one simulation to completion on its reserved fleet slice.
func (m *Manager) execute(r *run) {
	defer m.wg.Done()
	r.mu.Lock()
	spec, addrs := r.spec, r.workers
	r.mu.Unlock()
	res, err := distrib.Run(distrib.Options{
		Addrs:       addrs,
		RunID:       r.id,
		Scenario:    spec.Scenario,
		Agents:      spec.Agents,
		Extent:      spec.Extent,
		Seed:        spec.Seed,
		Partitions:  spec.Partitions,
		Ticks:       spec.Ticks,
		Index:       spec.Index,
		Sequential:  spec.Sequential,
		LoadBalance: spec.LoadBalance,
		Tunables: distrib.Tunables{
			EpochTicks:            spec.EpochTicks,
			CheckpointEveryEpochs: spec.CheckpointEpochs,
			CheckpointFullEvery:   spec.CheckpointFullEvery,
			Heartbeat:             m.cfg.Heartbeat,
			HeartbeatMisses:       m.cfg.HeartbeatMisses,
			EpochTimeout:          m.cfg.EpochTimeout,
			DialTimeout:           m.cfg.DialTimeout,
			Mesh:                  m.cfg.Mesh,
		},
		Cancel:       r.cancel,
		OnCheckpoint: r.stream.Publish,
		OnEpoch: func(d distrib.EpochDecision) {
			r.mu.Lock()
			r.lastTick = d.Tick
			r.epochs++
			r.mu.Unlock()
		},
		OnWorkerDown: func(proc int, addr string, cause error) {
			m.fleet.markDown(addr, cause)
			if m.cfg.Log != nil {
				fmt.Fprintf(m.cfg.Log, "bracesimd: %s: worker %s down: %v\n", r.id, addr, cause)
			}
		},
	})

	r.mu.Lock()
	r.result = res
	switch {
	case errors.Is(err, distrib.ErrCanceled):
		r.state = StateCanceled
	case err != nil:
		r.state = StateFailed
		r.errText = err.Error()
	default:
		r.state = StateDone
	}
	r.finished = time.Now()
	idxs := r.idxs
	state, errText := r.state, r.errText
	r.mu.Unlock()

	m.fleet.release(idxs)
	r.stream.Close()
	if m.cfg.Log != nil {
		if errText != "" {
			fmt.Fprintf(m.cfg.Log, "bracesimd: %s %s: %s\n", r.id, state, errText)
		} else {
			fmt.Fprintf(m.cfg.Log, "bracesimd: %s %s\n", r.id, state)
		}
	}

	m.mu.Lock()
	m.running--
	m.pumpLocked()
	m.mu.Unlock()
}

// pumpLocked starts every queued run that fits. The scan covers the whole
// queue, not just its head: a wide run waiting for capacity must not block
// a narrow one that fits right now.
func (m *Manager) pumpLocked() {
	kept := m.queue[:0]
	for _, r := range m.queue {
		if !m.startLocked(r) {
			kept = append(kept, r)
		}
	}
	m.queue = kept
}

// Get returns a run's status.
func (m *Manager) Get(id string) (*RunStatus, error) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return nil, ErrNotFound
	}
	return r.status(), nil
}

// List returns every run's status in submission order.
func (m *Manager) List() []*RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*RunStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.runs[id].status())
	}
	return out
}

// Cancel aborts a run: a queued run is removed from the queue, a running
// one's coordinator is told to stop (its workers unwind through connection
// errors and watchdogs). Canceling a finished run is a no-op.
func (m *Manager) Cancel(id string) (*RunStatus, error) {
	m.mu.Lock()
	r := m.runs[id]
	if r == nil {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	for i, q := range m.queue {
		if q == r {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	m.mu.Unlock()

	r.mu.Lock()
	switch r.state {
	case StateQueued:
		r.state = StateCanceled
		r.finished = time.Now()
	case StateRunning:
		if !r.canceled {
			r.canceled = true
			close(r.cancel)
		}
	}
	st := r.state
	r.mu.Unlock()
	if st == StateCanceled {
		r.stream.Close()
	}
	return r.status(), nil
}

// Watch subscribes to a run's observation stream.
func (m *Manager) Watch(id string) (*Subscription, error) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return nil, ErrNotFound
	}
	return r.stream.Subscribe(), nil
}

// Fleet returns the fleet's worker states. Registry-fed workers get their
// self-reported peer-link counts overlaid on the scheduler's session view.
func (m *Manager) Fleet() []WorkerInfo {
	ws := m.fleet.snapshot()
	if m.cfg.Registry != nil {
		links := make(map[string]int)
		for _, w := range m.cfg.Registry.Workers() {
			links[w.Addr] = w.PeerLinks
		}
		for i := range ws {
			if n, ok := links[ws[i].Addr]; ok && ws[i].Registered {
				ws[i].PeerLinks = n
			}
		}
	}
	return ws
}

// Close cancels every run and waits for their coordinators to unwind.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		m.Cancel(id)
	}
	m.wg.Wait()
}

// status snapshots a run for the API.
func (r *run) status() *RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &RunStatus{
		ID:          r.id,
		State:       r.state,
		Spec:        r.spec,
		Error:       r.errText,
		Workers:     append([]string(nil), r.workers...),
		LastTick:    r.lastTick,
		Epochs:      r.epochs,
		Frames:      r.stream.Frames(),
		SubmittedAt: r.submitted,
	}
	if !r.started.IsZero() {
		t := r.started
		st.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.FinishedAt = &t
	}
	if res := r.result; res != nil {
		st.Ticks = res.Ticks
		st.Agents = len(res.Agents)
		st.Recoveries = res.Recoveries
		st.Rejoins = res.Rejoins
		st.Rebalances = res.Rebalances
		st.StallDrops = res.StallDrops
		st.NetBytes = res.Net.SentBytes + res.Net.LocalBytes
	}
	return st
}

// Result returns a finished run's full distrib result (nil while running).
func (m *Manager) Result(id string) (*distrib.Result, error) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return nil, ErrNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, nil
}
