// The fleet: the daemon's shared pool of bracesim-worker daemons, and the
// scheduler that places runs on it. Placement mirrors how the coordinator
// places partitions on workers — least-loaded first, deterministic
// tie-break by index — except the unit is a whole run session: each
// admitted run opens one coordinator session on each worker it is placed
// on, and workers serve sessions of many runs concurrently (wire v4).
package service

import (
	"fmt"
	"sync"
)

// WorkerInfo is one fleet worker's externally visible state.
type WorkerInfo struct {
	Addr string `json:"addr"`
	// Sessions is the number of active run sessions placed on the worker.
	Sessions int `json:"sessions"`
	// Down marks a worker whose process left a run and could not be
	// re-admitted; the scheduler stops placing new runs on it.
	Down bool `json:"down"`
	// LastError is the cause that marked the worker down, if any.
	LastError string `json:"last_error,omitempty"`
	// Registered marks a worker that announced itself through the
	// registry (-register) rather than being pre-wired via -worker-addrs.
	Registered bool `json:"registered,omitempty"`
	// PeerLinks is the worker-reported count of open mesh peer links.
	PeerLinks int `json:"peer_links,omitempty"`
}

// fleet tracks per-worker load and health for the scheduler.
type fleet struct {
	mu      sync.Mutex
	workers []WorkerInfo
	// perWorker caps concurrent run sessions per worker (admission
	// control: a fleet can refuse more multiplexing than it wants).
	perWorker int
}

func newFleet(addrs []string, sessionsPerWorker int) *fleet {
	if sessionsPerWorker <= 0 {
		sessionsPerWorker = 4
	}
	f := &fleet{perWorker: sessionsPerWorker}
	for _, a := range addrs {
		f.workers = append(f.workers, WorkerInfo{Addr: a})
	}
	return f
}

// place reserves n distinct workers for a run, least-loaded first with
// ascending index as the tie-break, and returns their addresses and
// indexes. It fails — without reserving anything — when fewer than n
// workers are up and under their session cap; the caller queues the run.
func (f *fleet) place(n int) (addrs []string, idxs []int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(idxs) < n {
		best := -1
		for i := range f.workers {
			w := &f.workers[i]
			if w.Down || w.Sessions >= f.perWorker || contains(idxs, i) {
				continue
			}
			if best < 0 || w.Sessions < f.workers[best].Sessions {
				best = i
			}
		}
		if best < 0 {
			return nil, nil, fmt.Errorf("service: %d of %d requested workers available", len(idxs), n)
		}
		idxs = append(idxs, best)
		addrs = append(addrs, f.workers[best].Addr)
	}
	for _, i := range idxs {
		f.workers[i].Sessions++
	}
	return addrs, idxs, nil
}

// admit adds a self-registered worker to the pool, or revives it if a
// previous incarnation at the same address was marked down: a daemon that
// re-registers is provably a live process again.
func (f *fleet) admit(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.workers {
		if f.workers[i].Addr == addr {
			f.workers[i].Registered = true
			f.workers[i].Down = false
			f.workers[i].LastError = ""
			return
		}
	}
	f.workers = append(f.workers, WorkerInfo{Addr: addr, Registered: true})
}

// size is the fleet width (up or down).
func (f *fleet) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers)
}

// release returns a finished run's session slots to the pool.
func (f *fleet) release(idxs []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, i := range idxs {
		if f.workers[i].Sessions > 0 {
			f.workers[i].Sessions--
		}
	}
}

// markDown records that a worker's process is gone. Any run whose
// coordinator reports the death calls this, so one crash steers every
// future placement away — not just the run that noticed. (Active runs on
// the worker each recover independently through their own coordinators.)
func (f *fleet) markDown(addr string, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.workers {
		if f.workers[i].Addr == addr {
			f.workers[i].Down = true
			if cause != nil {
				f.workers[i].LastError = cause.Error()
			}
		}
	}
}

// capacity returns how many more sessions the fleet can host right now.
func (f *fleet) capacity() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	free := 0
	for i := range f.workers {
		if !f.workers[i].Down {
			free += f.perWorker - f.workers[i].Sessions
		}
	}
	return free
}

// upWorkers returns how many workers are currently schedulable.
func (f *fleet) upWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for i := range f.workers {
		if !f.workers[i].Down {
			n++
		}
	}
	return n
}

// snapshot copies the fleet state for the status API.
func (f *fleet) snapshot() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]WorkerInfo(nil), f.workers...)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
