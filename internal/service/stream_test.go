package service

import (
	"math"
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/engine"
)

// fakeRun produces a deterministic evolving population: n agents whose
// state drifts every tick, with one birth and one death along the way —
// the change kinds the delta codec must carry.
type fakeRun struct {
	tick uint64
	envs []*engine.Envelope
}

func newFakeRun(n int) *fakeRun {
	r := &fakeRun{}
	for i := 0; i < n; i++ {
		r.envs = append(r.envs, &engine.Envelope{A: &agent.Agent{
			ID:     agent.ID(i + 1),
			State:  []float64{float64(i), 0, 0},
			Effect: []float64{0},
		}})
	}
	return r
}

// step advances one tick and returns the population (ID-sorted, as the
// coordinator's OnCheckpoint delivers it).
func (r *fakeRun) step() (uint64, []*engine.Envelope) {
	r.tick++
	for _, e := range r.envs {
		e.A.State[1] += 0.5 * float64(e.A.ID)
		e.A.State[2] = math.Sin(float64(r.tick))
	}
	if r.tick == 3 { // birth
		born := &engine.Envelope{A: &agent.Agent{
			ID:     agent.ID(1000 + r.tick),
			State:  []float64{9, 9, 9},
			Effect: []float64{0},
		}}
		r.envs = append(r.envs, born)
	}
	if r.tick == 5 && len(r.envs) > 1 { // death
		r.envs = r.envs[1:]
	}
	return r.tick, r.envs
}

func bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func requireSameState(t *testing.T, label string, want, got []*engine.Envelope) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: population sizes differ: want %d, got %d", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.A.ID != g.A.ID || w.A.Dead != g.A.Dead ||
			!bitsEq(w.A.State, g.A.State) || !bitsEq(w.A.Effect, g.A.Effect) {
			t.Fatalf("%s: agent %d differs:\n  want %v\n  got  %v", label, i, w.A, g.A)
		}
	}
}

// publishTicks drives n ticks of a fake run into the stream, returning a
// deep copy of each published state for later comparison.
func publishTicks(s *ObsStream, r *fakeRun, n int) [][]*engine.Envelope {
	var states [][]*engine.Envelope
	for i := 0; i < n; i++ {
		tick, envs := r.step()
		s.Publish(tick, envs)
		states = append(states, engine.CloneEnvelopes(envs))
	}
	return states
}

func TestStreamKeyframeCadence(t *testing.T) {
	s := NewObsStream(4)
	sub := s.Subscribe()
	publishTicks(s, newFakeRun(6), 10)
	s.Close()
	var frames []*ObsFrame
	for f := range sub.Live {
		frames = append(frames, f)
	}
	if len(frames) != 10 {
		t.Fatalf("frames = %d, want 10", len(frames))
	}
	for i, f := range frames {
		wantKey := i%4 == 0 // frames 1, 5, 9 with keyEvery=4
		if f.Keyframe != wantKey {
			t.Errorf("frame seq %d keyframe = %v, want %v", f.Seq, f.Keyframe, wantKey)
		}
		if f.Seq != uint64(i+1) {
			t.Errorf("frame %d seq = %d, want %d", i, f.Seq, i+1)
		}
		if !f.Keyframe && f.Base != f.Seq-1 {
			t.Errorf("delta seq %d base = %d, want %d", f.Seq, f.Base, f.Seq-1)
		}
	}
}

// The core decode invariant: a subscriber attached from the start
// reconstructs every published state bit-identically, through births,
// deaths and keyframe boundaries.
func TestStreamDecodeBitIdentical(t *testing.T) {
	s := NewObsStream(3)
	sub := s.Subscribe()
	states := publishTicks(s, newFakeRun(5), 9)
	s.Close()
	var dec StreamDecoder
	i := 0
	for f := range sub.Live {
		got, err := dec.Apply(f)
		if err != nil {
			t.Fatalf("frame seq %d: %v", f.Seq, err)
		}
		requireSameState(t, "tick", states[i], got)
		i++
	}
	if i != len(states) {
		t.Fatalf("decoded %d frames, want %d", i, len(states))
	}
	if sub.Lost() {
		t.Error("subscriber marked lost on a clean close")
	}
}

// Late joiners: a subscriber attaching mid-run gets a backlog that starts
// at the most recent keyframe, and from there reconstructs state
// bit-identical to a subscriber attached from tick one.
func TestStreamLateJoinFromKeyframe(t *testing.T) {
	s := NewObsStream(4)
	r := newFakeRun(5)
	states := publishTicks(s, r, 7) // keyframes at seq 1 and 5
	late := s.Subscribe()
	if len(late.Backlog) != 3 { // seqs 5, 6, 7
		t.Fatalf("backlog = %d frames, want 3", len(late.Backlog))
	}
	if !late.Backlog[0].Keyframe || late.Backlog[0].Seq != 5 {
		t.Fatalf("backlog must start at the latest keyframe, got seq %d keyframe=%v",
			late.Backlog[0].Seq, late.Backlog[0].Keyframe)
	}
	var dec StreamDecoder
	var got []*engine.Envelope
	var err error
	for _, f := range late.Backlog {
		if got, err = dec.Apply(f); err != nil {
			t.Fatalf("backlog seq %d: %v", f.Seq, err)
		}
	}
	requireSameState(t, "join point", states[6], got)

	// Live continuation across the backlog/live boundary is gap-free.
	states = append(states, publishTicks(s, r, 4)...)
	s.Close()
	i := 7
	for f := range late.Live {
		if got, err = dec.Apply(f); err != nil {
			t.Fatalf("live seq %d: %v", f.Seq, err)
		}
		requireSameState(t, "live tick", states[i], got)
		i++
	}
	if i != len(states) {
		t.Fatalf("decoded through %d states, want %d", i, len(states))
	}
}

// Stream-format strictness (the satellite requirement): gaps, reordering,
// unseeded deltas, wrong bases and corrupted blobs must all fail loudly —
// never silently diverging state.
func TestStreamDecoderRejectsBrokenSequences(t *testing.T) {
	s := NewObsStream(100) // one keyframe, then deltas
	sub := s.Subscribe()
	publishTicks(s, newFakeRun(4), 6)
	s.Close()
	var frames []*ObsFrame
	for f := range sub.Live {
		frames = append(frames, f)
	}

	fresh := func(upTo int) *StreamDecoder {
		d := &StreamDecoder{}
		for _, f := range frames[:upTo] {
			if _, err := d.Apply(f); err != nil {
				t.Fatalf("prefix seq %d: %v", f.Seq, err)
			}
		}
		return d
	}

	t.Run("gap", func(t *testing.T) {
		d := fresh(2)
		if _, err := d.Apply(frames[3]); err == nil || !strings.Contains(err.Error(), "gap") {
			t.Fatalf("skipping seq 3 must fail loudly, got %v", err)
		}
	})
	t.Run("out-of-order", func(t *testing.T) {
		d := fresh(4)
		if _, err := d.Apply(frames[2]); err == nil {
			t.Fatal("replaying an earlier delta must fail")
		}
	})
	t.Run("unseeded delta", func(t *testing.T) {
		d := &StreamDecoder{}
		if _, err := d.Apply(frames[1]); err == nil || !strings.Contains(err.Error(), "keyframe") {
			t.Fatalf("delta without a keyframe must fail, got %v", err)
		}
	})
	t.Run("wrong base", func(t *testing.T) {
		d := fresh(3)
		bad := *frames[3]
		bad.Base = 1
		if _, err := d.Apply(&bad); err == nil || !strings.Contains(err.Error(), "builds on") {
			t.Fatalf("mismatched base must fail, got %v", err)
		}
	})
	t.Run("truncated blob", func(t *testing.T) {
		d := fresh(3)
		bad := *frames[3]
		bad.Data = bad.Data[:len(bad.Data)-1]
		if _, err := d.Apply(&bad); err == nil {
			t.Fatal("truncated delta must fail")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		d := fresh(3)
		bad := *frames[3]
		bad.Data = append(append([]byte(nil), bad.Data...), 0xFF)
		if _, err := d.Apply(&bad); err == nil {
			t.Fatal("trailing bytes must fail")
		}
	})
}

// A subscriber that stops draining is dropped — channel closed, Lost set —
// while the stream and its other subscribers continue unharmed.
func TestStreamSlowSubscriberDropped(t *testing.T) {
	s := NewObsStream(8)
	slow := s.Subscribe()
	r := newFakeRun(3)
	publishTicks(s, r, subBuffer+8) // overflow the slow subscriber's buffer

	if !slow.Lost() {
		t.Fatal("lagging subscriber was not dropped")
	}
	n := 0
	for range slow.Live {
		n++
	}
	if n != subBuffer {
		t.Errorf("slow subscriber drained %d frames, want the %d buffered before the drop", n, subBuffer)
	}

	// The stream is still live for a new subscriber.
	sub := s.Subscribe()
	var dec StreamDecoder
	var last []*engine.Envelope
	for _, f := range sub.Backlog {
		var err error
		if last, err = dec.Apply(f); err != nil {
			t.Fatalf("post-drop backlog seq %d: %v", f.Seq, err)
		}
	}
	tick, envs := r.step()
	s.Publish(tick, envs)
	f := <-sub.Live
	var err error
	if last, err = dec.Apply(f); err != nil {
		t.Fatalf("post-drop live frame: %v", err)
	}
	requireSameState(t, "post-drop", envs, last)
	s.Close()
}

func TestStreamSubscribeAfterClose(t *testing.T) {
	s := NewObsStream(0)
	states := publishTicks(s, newFakeRun(3), 5)
	s.Close()
	sub := s.Subscribe()
	if _, open := <-sub.Live; open {
		t.Fatal("live channel of a closed stream must be closed")
	}
	var dec StreamDecoder
	var got []*engine.Envelope
	for _, f := range sub.Backlog {
		var err error
		if got, err = dec.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, "final state", states[len(states)-1], got)
	if sub.Lost() {
		t.Error("close is not a drop")
	}
}
