package partition

import (
	"math/rand"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
)

func randomVecs(rng *rand.Rand, n int, span float64) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*span, rng.Float64()*span)
	}
	return pts
}

func TestKD2DCoversPlaneUniquely(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVecs(rng, 500, 100)
	for _, n := range []int{1, 2, 3, 7, 16} {
		k := NewKD2D(pts, n)
		if k.N() != n {
			t.Fatalf("N = %d, want %d", k.N(), n)
		}
		for trial := 0; trial < 500; trial++ {
			p := geom.V(rng.Float64()*140-20, rng.Float64()*140-20)
			owner := k.Locate(p)
			if owner < 0 || owner >= n {
				t.Fatalf("owner out of range: %d", owner)
			}
			if !k.Region(owner).Contains(p) {
				t.Fatalf("region %v does not contain %v", k.Region(owner), p)
			}
		}
	}
}

func TestKD2DBalancesPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVecs(rng, 1000, 50)
	const n = 8
	k := NewKD2D(pts, n)
	counts := make([]float64, n)
	for _, p := range pts {
		counts[k.Locate(p)]++
	}
	if imb := Imbalance(counts); imb > 1.6 {
		t.Errorf("KD2D imbalance = %v on uniform data (counts %v)", imb, counts)
	}
}

func TestKD2DHandlesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 90% of points in a tiny corner cluster, 10% spread out.
	pts := make([]geom.Vec, 0, 1000)
	for i := 0; i < 900; i++ {
		pts = append(pts, geom.V(rng.Float64(), rng.Float64()))
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.V(rng.Float64()*100, rng.Float64()*100))
	}
	const n = 8
	k := NewKD2D(pts, n)
	counts := make([]float64, n)
	for _, p := range pts {
		counts[k.Locate(p)]++
	}
	// Median splits target the populated regions; no partition should own
	// the majority of the points.
	if imb := Imbalance(counts); imb > 2.5 {
		t.Errorf("KD2D skew imbalance = %v (counts %v)", imb, counts)
	}
}

func TestKD2DDegenerateInputs(t *testing.T) {
	// No points at all.
	k := NewKD2D(nil, 4)
	if k.N() != 4 {
		t.Fatalf("N = %d", k.N())
	}
	seen := map[int]bool{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		seen[k.Locate(geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10))] = true
	}
	if len(seen) == 0 {
		t.Fatal("no owners")
	}
	// Point mass.
	same := make([]geom.Vec, 50)
	k2 := NewKD2D(same, 4)
	if got := k2.Locate(geom.V(0, 0)); got < 0 || got >= 4 {
		t.Fatalf("point-mass Locate = %d", got)
	}
	// Panic on zero regions.
	defer func() {
		if recover() == nil {
			t.Error("n=0 accepted")
		}
	}()
	NewKD2D(nil, 0)
}

func TestKD2DReplicaTargetsSufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVecs(rng, 400, 60)
	k := NewKD2D(pts, 6)
	const vis = 4.0
	for i := 0; i < 2000; i++ {
		a := geom.V(rng.Float64()*70-5, rng.Float64()*70-5)
		b := geom.V(a.X+rng.Float64()*2*vis-vis, a.Y+rng.Float64()*2*vis-vis)
		if a.Dist(b) > vis {
			continue
		}
		ownerA := k.Locate(a)
		found := false
		for _, p := range ReplicaTargets(k, b, vis, nil) {
			if p == ownerA {
				found = true
			}
		}
		if !found {
			t.Fatalf("b=%v not replicated to owner %d of a=%v", b, ownerA, a)
		}
	}
}
