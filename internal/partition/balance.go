package partition

import (
	"math"
	"sort"

	"github.com/bigreddata/brace/internal/geom"
)

// Balancer is the one-dimensional load balancer of §5.1: it "periodically
// receives statistics from the slave nodes, including computational load
// and number of owned agents; from these it heuristically computes a new
// partition trying to balance improved performance against estimated
// migration cost."
//
// The heuristic: given every agent's x coordinate weighted by its measured
// per-tick cost, choose new strip cuts at equal-weight quantiles. Apply the
// new cuts only if the projected per-tick saving (the drop in the maximum
// per-strip load, which is what bulk-synchronous ticks wait for), accrued
// over HorizonTicks, exceeds the one-time cost of migrating the agents
// that change owners.
type Balancer struct {
	// MigrateCostPerAgent is the virtual-time cost of moving one agent's
	// state to a new owner (serialization + transfer).
	MigrateCostPerAgent float64
	// HorizonTicks is how many ticks the new partitioning is assumed to
	// stay effective (typically the repartition check interval).
	HorizonTicks float64
	// MinRelativeGain suppresses churn: the projected max-load reduction
	// must be at least this fraction of the current max load.
	MinRelativeGain float64
}

// DefaultBalancer returns the tuning used by the experiments.
func DefaultBalancer() Balancer {
	return Balancer{
		MigrateCostPerAgent: 2e-6, // ~250 B over 1 GbE
		HorizonTicks:        100,
		MinRelativeGain:     0.05,
	}
}

// Decision is the balancer's verdict for one epoch.
type Decision struct {
	// Apply reports whether the new cuts are worth the migration.
	Apply bool
	// NewCuts holds the proposed interior boundaries (always populated).
	NewCuts []float64
	// GainPerTick is the projected reduction of the max per-strip load.
	GainPerTick float64
	// MigrationCost is the projected one-time cost of switching.
	MigrationCost float64
	// Moved is the number of agents that would change owners.
	Moved int
}

// Plan computes a balancing decision. xs are the x coordinates of all
// agents; costs are the per-agent per-tick cost estimates (same length; a
// nil costs means uniform weight 1). cur is the current partitioning.
func (b Balancer) Plan(cur *Strips, xs []float64, costs []float64) Decision {
	n := cur.N()
	if len(xs) == 0 || n == 1 {
		return Decision{NewCuts: cur.Cuts()}
	}
	type wp struct{ x, w float64 }
	pts := make([]wp, len(xs))
	var total float64
	for i, x := range xs {
		w := 1.0
		if costs != nil {
			w = costs[i]
		}
		pts[i] = wp{x, w}
		total += w
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })

	// Current per-strip load.
	curLoad := make([]float64, n)
	for _, p := range pts {
		curLoad[cur.Locate(vecX(p.x))] += p.w
	}
	curMax := maxOf(curLoad)

	// Equal-weight quantile cuts. Cuts must be strictly increasing; when
	// the weight mass is concentrated (e.g. all agents at one x), fall
	// back to nudging by an epsilon of the data span.
	newCuts := make([]float64, 0, n-1)
	targetPer := total / float64(n)
	span := pts[len(pts)-1].x - pts[0].x
	eps := span * 1e-9
	if eps == 0 {
		eps = 1e-9
	}
	var acc float64
	next := targetPer
	for i := 0; i < len(pts) && len(newCuts) < n-1; i++ {
		acc += pts[i].w
		for acc >= next && len(newCuts) < n-1 {
			c := pts[i].x
			if len(newCuts) > 0 && c <= newCuts[len(newCuts)-1] {
				c = newCuts[len(newCuts)-1] + eps
			}
			newCuts = append(newCuts, c)
			next += targetPer
		}
	}
	// If mass ran out (numerical edge), pad monotonically.
	for len(newCuts) < n-1 {
		last := pts[len(pts)-1].x
		if len(newCuts) > 0 {
			last = newCuts[len(newCuts)-1]
		}
		newCuts = append(newCuts, last+eps)
	}

	prop, err := NewStripsFromCuts(newCuts)
	if err != nil {
		// Construction guarantees monotonicity; treat violation as no-op.
		return Decision{NewCuts: cur.Cuts()}
	}

	// Projected load and migration volume under the proposal.
	newLoad := make([]float64, n)
	moved := 0
	for _, p := range pts {
		from := cur.Locate(vecX(p.x))
		to := prop.Locate(vecX(p.x))
		newLoad[to] += p.w
		if from != to {
			moved++
		}
	}
	gain := curMax - maxOf(newLoad)
	cost := float64(moved) * b.MigrateCostPerAgent
	apply := gain > 0 &&
		gain >= b.MinRelativeGain*curMax &&
		gain*b.HorizonTicks > cost
	return Decision{
		Apply:         apply,
		NewCuts:       newCuts,
		GainPerTick:   gain,
		MigrationCost: cost,
		Moved:         moved,
	}
}

// Imbalance returns max/mean of the per-partition loads (1 = perfectly
// balanced). Empty input returns 1.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	if sum == 0 {
		return 1
	}
	return maxOf(loads) * float64(len(loads)) / sum
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func vecX(x float64) geom.Vec { return geom.Vec{X: x} }
