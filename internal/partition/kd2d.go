package partition

import (
	"container/heap"
	"math"
	"sort"

	"github.com/bigreddata/brace/internal/geom"
)

// KD2D is a two-dimensional recursive median-split partitioning: the
// spatial decomposition alternative App. A alludes to ("this partitioning
// function can be implemented in multiple ways, such as a regular grid or
// a quadtree"). Starting from the whole plane, the most populated region
// is repeatedly split at the median of its points along its wider extent,
// until exactly n regions exist. Compared to 1-D strips it bounds the
// *perimeter* of each partition, cutting replication for workloads that
// spread in both dimensions.
//
// KD2D is static (built from a population snapshot); the 1-D load
// balancer applies to Strips only, as in the paper's prototype.
type KD2D struct {
	nodes []kd2dNode
	n     int
}

type kd2dNode struct {
	axis        int8 // 0=x, 1=y, -1=leaf
	split       float64
	left, right int32 // children when internal
	part        int32 // partition id when leaf
}

// buildRegion is a work-in-progress leaf during construction.
type buildRegion struct {
	node   int32 // index into nodes
	rect   geom.Rect
	points []geom.Vec
}

// regionHeap pops the most populated region first.
type regionHeap []buildRegion

func (h regionHeap) Len() int           { return len(h) }
func (h regionHeap) Less(i, j int) bool { return len(h[i].points) > len(h[j].points) }
func (h regionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x any)        { *h = append(*h, x.(buildRegion)) }
func (h *regionHeap) Pop() any {
	old := *h
	n := len(old) - 1
	r := old[n]
	*h = old[:n]
	return r
}

// NewKD2D builds an n-region partitioning over the given point snapshot.
// n must be ≥ 1; with fewer points than regions, degenerate splits still
// produce n valid (possibly empty) regions.
func NewKD2D(points []geom.Vec, n int) *KD2D {
	if n < 1 {
		panic("partition: need at least one region")
	}
	k := &KD2D{n: n}
	k.nodes = append(k.nodes, kd2dNode{axis: -1, part: 0})
	h := &regionHeap{{node: 0, rect: geom.Infinite(), points: append([]geom.Vec(nil), points...)}}
	leaves := 1
	for leaves < n {
		r := heap.Pop(h).(buildRegion)
		a, b := k.splitRegion(r)
		heap.Push(h, a)
		heap.Push(h, b)
		leaves++
	}
	// Assign partition ids to leaves in a deterministic order (by node
	// index, which reflects the split sequence).
	ids := make([]int32, 0, n)
	for i := range k.nodes {
		if k.nodes[i].axis == -1 {
			ids = append(ids, int32(i))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for p, ni := range ids {
		k.nodes[ni].part = int32(p)
	}
	return k
}

// splitRegion turns leaf r into an internal node with two fresh leaves.
func (k *KD2D) splitRegion(r buildRegion) (left, right buildRegion) {
	// Choose the axis with the wider *data* extent (falling back to the
	// region's finite extent, then to x).
	axis := int8(0)
	var split float64
	if len(r.points) > 0 {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range r.points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
		if maxY-minY > maxX-minX {
			axis = 1
		}
		split = medianCoord(r.points, axis)
	} else {
		c := r.rect.Center()
		if !r.rect.Empty() && r.rect.H() > r.rect.W() {
			axis = 1
		}
		split = c.X
		if axis == 1 {
			split = c.Y
		}
		if math.IsInf(split, 0) || math.IsNaN(split) {
			split = 0
		}
	}

	li, ri := int32(len(k.nodes)), int32(len(k.nodes)+1)
	k.nodes = append(k.nodes,
		kd2dNode{axis: -1},
		kd2dNode{axis: -1},
	)
	node := &k.nodes[r.node]
	node.axis = axis
	node.split = split
	node.left, node.right = li, ri

	var lr, rr geom.Rect
	if axis == 0 {
		lr, rr = r.rect.SplitX(split)
	} else {
		lr, rr = r.rect.SplitY(split)
	}
	left = buildRegion{node: li, rect: lr}
	right = buildRegion{node: ri, rect: rr}
	for _, p := range r.points {
		if coord(p, axis) < split {
			left.points = append(left.points, p)
		} else {
			right.points = append(right.points, p)
		}
	}
	return left, right
}

func coord(p geom.Vec, axis int8) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

func medianCoord(pts []geom.Vec, axis int8) float64 {
	cs := make([]float64, len(pts))
	for i, p := range pts {
		cs[i] = coord(p, axis)
	}
	sort.Float64s(cs)
	return cs[len(cs)/2]
}

// N implements Func.
func (k *KD2D) N() int { return k.n }

// Locate implements Func: descend the split tree. Points exactly on a
// split go right, matching the half-open build partitioning.
func (k *KD2D) Locate(p geom.Vec) int {
	ni := int32(0)
	for {
		n := &k.nodes[ni]
		if n.axis == -1 {
			return int(n.part)
		}
		if coord(p, n.axis) < n.split {
			ni = n.left
		} else {
			ni = n.right
		}
	}
}

// Region implements Func: the leaf rectangle of partition i, reconstructed
// by walking the tree.
func (k *KD2D) Region(i int) geom.Rect {
	rect := geom.Infinite()
	var walk func(ni int32, r geom.Rect) (geom.Rect, bool)
	walk = func(ni int32, r geom.Rect) (geom.Rect, bool) {
		n := &k.nodes[ni]
		if n.axis == -1 {
			if int(n.part) == i {
				return r, true
			}
			return geom.Rect{}, false
		}
		var lr, rr geom.Rect
		if n.axis == 0 {
			lr, rr = r.SplitX(n.split)
		} else {
			lr, rr = r.SplitY(n.split)
		}
		if out, ok := walk(n.left, lr); ok {
			return out, true
		}
		return walk(n.right, rr)
	}
	out, ok := walk(0, rect)
	if !ok {
		panic("partition: unknown region id")
	}
	return out
}

var _ Func = (*KD2D)(nil)
