// Package partition implements BRACE's spatial partitioning functions
// P : L → partitions (paper §3.2, App. A) and the one-dimensional load
// balancer of §5.1.
//
// A partitioning function assigns every location to exactly one partition
// (its owner); each partition also has a *visible region* — its owned
// region expanded by the agents' visibility bound — which determines
// replication: an agent is copied to every partition whose visible region
// contains it.
package partition

import (
	"fmt"
	"math"
	"sort"

	"github.com/bigreddata/brace/internal/geom"
)

// Func is a spatial partitioning function.
type Func interface {
	// N returns the number of partitions.
	N() int
	// Locate returns the partition owning location p.
	Locate(p geom.Vec) int
	// Region returns the owned region of partition i.
	Region(i int) geom.Rect
}

// ReplicaTargets appends to dst every partition whose visible region
// contains pos — i.e. every partition that must receive a replica of an
// agent at pos, given the visibility distance bound (≤ 0 = unbounded, in
// which case every partition receives the agent).
//
// VR(p) = ∪_{l : P(l)=p} VR(l) is, for distance-bound visibility, exactly
// Region(p) expanded by the bound; pos ∈ VR(p) ⇔ dist(pos, Region(p)) ≤
// bound.
func ReplicaTargets(f Func, pos geom.Vec, visibility float64, dst []int) []int {
	n := f.N()
	if visibility <= 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	v2 := visibility * visibility
	for i := 0; i < n; i++ {
		if f.Region(i).Dist2(pos) <= v2 {
			dst = append(dst, i)
		}
	}
	return dst
}

// Strips is a one-dimensional rectilinear partitioning: vertical strips
// with variable cut positions along the x axis. It is the partitioning the
// paper's one-dimensional load balancer adjusts. Strip i owns
// [cut[i-1], cut[i]) × (−∞, ∞), with the first strip extending to −∞ and
// the last to +∞, so every location always has an owner even as agents
// wander (the fish "ocean" is unbounded).
type Strips struct {
	cuts []float64 // ascending interior boundaries; len = N-1
}

// NewStrips builds n equal-width strips whose interior cuts subdivide
// [lo, hi]. n must be ≥ 1 and hi > lo for n > 1.
func NewStrips(n int, lo, hi float64) *Strips {
	if n < 1 {
		panic("partition: need at least one strip")
	}
	if n > 1 && hi <= lo {
		panic("partition: empty strip domain")
	}
	cuts := make([]float64, n-1)
	for i := range cuts {
		cuts[i] = lo + (hi-lo)*float64(i+1)/float64(n)
	}
	return &Strips{cuts: cuts}
}

// NewStripsFromCuts builds strips from explicit interior boundaries, which
// must be strictly increasing.
func NewStripsFromCuts(cuts []float64) (*Strips, error) {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("partition: cuts not strictly increasing at %d", i)
		}
	}
	return &Strips{cuts: append([]float64(nil), cuts...)}, nil
}

// N implements Func.
func (s *Strips) N() int { return len(s.cuts) + 1 }

// Cuts returns a copy of the interior boundaries.
func (s *Strips) Cuts() []float64 { return append([]float64(nil), s.cuts...) }

// Locate implements Func by binary search over the cuts.
func (s *Strips) Locate(p geom.Vec) int {
	return sort.SearchFloat64s(s.cuts, p.X+smallestNonzero(p.X)) // see note below
}

// smallestNonzero nudges the search key so a point exactly on cut c belongs
// to the strip on its right, matching the half-open [prev, c) ownership.
// sort.SearchFloat64s returns the first index with cuts[i] >= key; with
// key = x we would mis-assign x == cuts[i] to strip i, so bias the key up
// by one ulp.
func smallestNonzero(x float64) float64 {
	u := math.Nextafter(x, math.Inf(1)) - x
	if u <= 0 { // x == +Inf
		return 0
	}
	return u
}

// Region implements Func.
func (s *Strips) Region(i int) geom.Rect {
	lo, hi := math.Inf(-1), math.Inf(1)
	if i > 0 {
		lo = s.cuts[i-1]
	}
	if i < len(s.cuts) {
		hi = s.cuts[i]
	}
	return geom.Rect{
		Min: geom.Vec{X: lo, Y: math.Inf(-1)},
		Max: geom.Vec{X: hi, Y: math.Inf(1)},
	}
}

var _ Func = (*Strips)(nil)

// InitialStrips builds n strips whose cuts sit at equal-count quantiles of
// the given x coordinates — the master's initial partitioning computed
// from the starting population (§3.3). Degenerate inputs (few or identical
// positions) fall back to strictly increasing cuts around the data.
func InitialStrips(xs []float64, n int) *Strips {
	if n < 1 {
		panic("partition: need at least one strip")
	}
	if n == 1 {
		return &Strips{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cuts := make([]float64, 0, n-1)
	eps := 1e-9
	if len(sorted) > 1 {
		if span := sorted[len(sorted)-1] - sorted[0]; span > 0 {
			eps = span * 1e-9
		}
	}
	for i := 1; i < n; i++ {
		var c float64
		if len(sorted) == 0 {
			c = float64(i)
		} else {
			c = sorted[i*len(sorted)/n]
		}
		if len(cuts) > 0 && c <= cuts[len(cuts)-1] {
			c = cuts[len(cuts)-1] + eps
		}
		cuts = append(cuts, c)
	}
	return &Strips{cuts: cuts}
}

// Grid is a uniform nx × ny rectilinear grid over a bounding rectangle,
// the paper's "simple rectilinear grid partitioning scheme". Locations
// outside the bounds clamp to the nearest cell, so ownership is total.
type Grid struct {
	bounds geom.Rect
	nx, ny int
}

// NewGrid builds an nx × ny grid over bounds.
func NewGrid(bounds geom.Rect, nx, ny int) *Grid {
	if nx < 1 || ny < 1 {
		panic("partition: grid needs at least one cell per axis")
	}
	if bounds.Empty() || bounds.W() <= 0 || bounds.H() <= 0 {
		panic("partition: grid needs a non-degenerate bounding rectangle")
	}
	return &Grid{bounds: bounds, nx: nx, ny: ny}
}

// N implements Func.
func (g *Grid) N() int { return g.nx * g.ny }

// Locate implements Func.
func (g *Grid) Locate(p geom.Vec) int {
	cx := int(float64(g.nx) * (p.X - g.bounds.Min.X) / g.bounds.W())
	cy := int(float64(g.ny) * (p.Y - g.bounds.Min.Y) / g.bounds.H())
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Region implements Func. Edge cells extend to infinity on their outer
// sides so that Region is consistent with Locate's clamping.
func (g *Grid) Region(i int) geom.Rect {
	cx, cy := i%g.nx, i/g.nx
	w, h := g.bounds.W()/float64(g.nx), g.bounds.H()/float64(g.ny)
	r := geom.Rect{
		Min: geom.Vec{X: g.bounds.Min.X + float64(cx)*w, Y: g.bounds.Min.Y + float64(cy)*h},
		Max: geom.Vec{X: g.bounds.Min.X + float64(cx+1)*w, Y: g.bounds.Min.Y + float64(cy+1)*h},
	}
	if cx == 0 {
		r.Min.X = math.Inf(-1)
	}
	if cx == g.nx-1 {
		r.Max.X = math.Inf(1)
	}
	if cy == 0 {
		r.Min.Y = math.Inf(-1)
	}
	if cy == g.ny-1 {
		r.Max.Y = math.Inf(1)
	}
	return r
}

var _ Func = (*Grid)(nil)
