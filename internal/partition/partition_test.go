package partition

import (
	"math"
	"math/rand"
	"testing"

	"github.com/bigreddata/brace/internal/geom"
)

func TestStripsUniform(t *testing.T) {
	s := NewStrips(4, 0, 100)
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	wantCuts := []float64{25, 50, 75}
	cuts := s.Cuts()
	for i, c := range wantCuts {
		if cuts[i] != c {
			t.Errorf("cut[%d] = %v, want %v", i, cuts[i], c)
		}
	}
	cases := []struct {
		x    float64
		want int
	}{
		{-1e9, 0}, {0, 0}, {24.9, 0},
		{25, 1}, // boundary belongs to the right strip
		{49, 1}, {50, 2}, {74, 2}, {75, 3}, {1e9, 3},
	}
	for _, c := range cases {
		if got := s.Locate(geom.V(c.x, 0)); got != c.want {
			t.Errorf("Locate(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestStripsRegionsCoverPlane(t *testing.T) {
	s := NewStrips(5, -10, 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := geom.V(rng.NormFloat64()*20, rng.NormFloat64()*20)
		owner := s.Locate(p)
		if !s.Region(owner).Contains(p) {
			t.Fatalf("own region %v does not contain %v", s.Region(owner), p)
		}
		// Exactly one region owns p — strips are half-open [lo, hi).
		owners := 0
		for q := 0; q < s.N(); q++ {
			r := s.Region(q)
			if p.X >= r.Min.X && p.X < r.Max.X || q == s.N()-1 && p.X >= r.Min.X {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v owned by %d strips", p, owners)
		}
	}
}

func TestStripsSingle(t *testing.T) {
	s := NewStrips(1, 0, 0) // single strip allows degenerate domain
	if s.N() != 1 || s.Locate(geom.V(123, 4)) != 0 {
		t.Error("single strip should own everything")
	}
	if !s.Region(0).Contains(geom.V(-1e18, 1e18)) {
		t.Error("single strip region should be the plane")
	}
}

func TestStripsFromCuts(t *testing.T) {
	if _, err := NewStripsFromCuts([]float64{1, 2, 3}); err != nil {
		t.Errorf("valid cuts rejected: %v", err)
	}
	if _, err := NewStripsFromCuts([]float64{1, 1}); err == nil {
		t.Error("non-increasing cuts accepted")
	}
	s, _ := NewStripsFromCuts(nil)
	if s.N() != 1 {
		t.Error("empty cuts should mean one strip")
	}
}

func TestStripsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero strips", func() { NewStrips(0, 0, 1) })
	mustPanic("empty domain", func() { NewStrips(2, 5, 5) })
}

func TestGridLocateRegion(t *testing.T) {
	g := NewGrid(geom.R(0, 0, 100, 100), 4, 2)
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := geom.V(rng.Float64()*140-20, rng.Float64()*140-20)
		owner := g.Locate(p)
		if owner < 0 || owner >= g.N() {
			t.Fatalf("Locate out of range: %d", owner)
		}
		if !g.Region(owner).Contains(p) {
			t.Fatalf("region %v does not contain %v (owner %d)", g.Region(owner), p, owner)
		}
	}
	// Interior cell has finite bounds; corner cells extend to infinity.
	if r := g.Region(g.Locate(geom.V(30, 30))); math.IsInf(r.Min.X, -1) {
		t.Errorf("interior cell region unbounded: %v", r)
	}
	if r := g.Region(0); !math.IsInf(r.Min.X, -1) || !math.IsInf(r.Min.Y, -1) {
		t.Errorf("corner cell should extend to -inf: %v", r)
	}
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degenerate grid accepted")
		}
	}()
	NewGrid(geom.R(0, 0, 0, 10), 2, 2)
}

func TestReplicaTargets(t *testing.T) {
	s := NewStrips(4, 0, 100) // cuts at 25, 50, 75
	// Agent at x=24 with visibility 5 must replicate to strips 0 and 1.
	got := ReplicaTargets(s, geom.V(24, 0), 5, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ReplicaTargets(24, vis 5) = %v", got)
	}
	// Deep inside a strip: only the owner.
	got = ReplicaTargets(s, geom.V(60, 0), 5, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("ReplicaTargets(60, vis 5) = %v", got)
	}
	// Huge visibility: all strips.
	got = ReplicaTargets(s, geom.V(60, 0), 1000, nil)
	if len(got) != 4 {
		t.Errorf("ReplicaTargets(60, vis 1000) = %v", got)
	}
	// Unbounded visibility: all strips.
	got = ReplicaTargets(s, geom.V(60, 0), 0, nil)
	if len(got) != 4 {
		t.Errorf("ReplicaTargets unbounded = %v", got)
	}
}

// Replication sufficiency: for any pair of agents within visibility range,
// the owner partition of each receives a replica of the other.
func TestReplicaTargetsSufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStrips(6, 0, 60)
	const vis = 4.0
	for i := 0; i < 2000; i++ {
		a := geom.V(rng.Float64()*70-5, rng.Float64()*10)
		b := geom.V(a.X+rng.Float64()*2*vis-vis, a.Y+rng.Float64()*2*vis-vis)
		if a.Dist(b) > vis {
			continue
		}
		ownerA := s.Locate(a)
		targetsB := ReplicaTargets(s, b, vis, nil)
		found := false
		for _, p := range targetsB {
			if p == ownerA {
				found = true
			}
		}
		if !found {
			t.Fatalf("b=%v (dist %v) not replicated to owner %d of a=%v; targets %v",
				b, a.Dist(b), ownerA, a, targetsB)
		}
	}
}

func TestBalancerEqualizesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewStrips(4, 0, 100)
	// Skew: 90% of agents bunched in [0, 25) — strip 0.
	xs := make([]float64, 1000)
	for i := range xs {
		if i < 900 {
			xs[i] = rng.Float64() * 25
		} else {
			xs[i] = 25 + rng.Float64()*75
		}
	}
	b := DefaultBalancer()
	d := b.Plan(s, xs, nil)
	if !d.Apply {
		t.Fatalf("balancer refused an obviously beneficial move: %+v", d)
	}
	ns, err := NewStripsFromCuts(d.NewCuts)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, ns.N())
	for _, x := range xs {
		loads[ns.Locate(geom.V(x, 0))]++
	}
	if imb := Imbalance(loads); imb > 1.2 {
		t.Errorf("post-balance imbalance = %v, want ≤ 1.2 (loads %v)", imb, loads)
	}
	if d.Moved == 0 || d.GainPerTick <= 0 {
		t.Errorf("decision looks wrong: %+v", d)
	}
}

func TestBalancerDeclinesBalancedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStrips(4, 0, 100)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	d := DefaultBalancer().Plan(s, xs, nil)
	if d.Apply {
		t.Errorf("balancer churned on near-uniform load: %+v", d)
	}
}

func TestBalancerUsesCostWeights(t *testing.T) {
	s := NewStrips(2, 0, 100)
	// Few agents on the left, but each 100× more expensive.
	xs := []float64{10, 20, 60, 65, 70, 75, 80, 85, 90, 95}
	costs := []float64{100, 100, 1, 1, 1, 1, 1, 1, 1, 1}
	d := DefaultBalancer().Plan(s, xs, costs)
	if !d.Apply {
		t.Fatalf("cost-weighted skew not detected: %+v", d)
	}
	ns, _ := NewStripsFromCuts(d.NewCuts)
	// The cut should move left of x=60 so the cheap agents share a strip.
	if ns.Cuts()[0] >= 60 {
		t.Errorf("cut = %v, expected < 60", ns.Cuts()[0])
	}
}

func TestBalancerPointMass(t *testing.T) {
	s := NewStrips(3, 0, 30)
	xs := []float64{10, 10, 10, 10}
	d := DefaultBalancer().Plan(s, xs, nil)
	// Proposed cuts must still be strictly increasing (validity), whatever
	// the Apply verdict.
	if _, err := NewStripsFromCuts(d.NewCuts); err != nil {
		t.Errorf("point-mass produced invalid cuts %v: %v", d.NewCuts, err)
	}
}

func TestBalancerEmptyAndSingle(t *testing.T) {
	s := NewStrips(3, 0, 30)
	d := DefaultBalancer().Plan(s, nil, nil)
	if d.Apply {
		t.Error("empty input should not trigger balancing")
	}
	s1 := NewStrips(1, 0, 0)
	d = DefaultBalancer().Plan(s1, []float64{1, 2, 3}, nil)
	if d.Apply {
		t.Error("single partition cannot be balanced")
	}
}

func TestBalancerMigrationCostVeto(t *testing.T) {
	s := NewStrips(2, 0, 100)
	xs := []float64{10, 20, 30, 40, 60, 70}
	b := Balancer{MigrateCostPerAgent: 1e9, HorizonTicks: 1, MinRelativeGain: 0}
	d := b.Plan(s, xs, nil)
	if d.Apply {
		t.Errorf("absurd migration cost should veto: %+v", d)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{1, 1, 1, 1}); got != 1 {
		t.Errorf("uniform imbalance = %v", got)
	}
	if got := Imbalance([]float64{4, 0, 0, 0}); got != 4 {
		t.Errorf("concentrated imbalance = %v", got)
	}
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty imbalance = %v", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Errorf("zero-load imbalance = %v", got)
	}
}
